"""Pytest bootstrap: make the in-tree ``src`` layout importable.

The project is normally installed with ``pip install -e .``; this fallback
keeps ``pytest`` working in a pristine checkout (or in offline environments
where the editable install is unavailable).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
