"""Pytest bootstrap: make the in-tree ``src`` layout importable.

The project is normally installed with ``pip install -e .``; this fallback
keeps ``pytest`` working in a pristine checkout (or in offline environments
where the editable install is unavailable).
"""

import atexit
import os
import shutil
import sys
import tempfile

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# Point the cross-process artifact cache (repro.cache) at a throwaway
# directory unless the invoker pinned one: the suite must never read stale
# artifacts from — or leak test artifacts into — the developer's real
# ~/.cache/art9.  Spawned worker subprocesses inherit the variable, so the
# cross-process behaviour under test is preserved; the directory is removed
# when this (parent) session exits.
if "ART9_CACHE_DIR" not in os.environ:
    _CACHE_DIR = tempfile.mkdtemp(prefix="art9-test-artifacts-")
    os.environ["ART9_CACHE_DIR"] = _CACHE_DIR
    atexit.register(shutil.rmtree, _CACHE_DIR, True)
