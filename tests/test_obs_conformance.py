"""Non-perturbation guarantees of the observability layer.

The tentpole's hard requirement: instrumentation must observe, never
alter.  Traced sweeps must produce records canonically identical to
untraced ones on every backend, and running the compiled engine with
block-profile counters enabled must leave the architectural state (and
the golden-trace digests pinned by ``tests/golden/``) untouched.
"""

import glob
import json
import os

import pytest

from repro.obs import trace
from repro.runner import canonical_record, run_sweep, SweepSpec
from repro.service import AsyncQueueBackend, MultiprocessingBackend

#: Small grid covering translation, the compiled engine's codegen path and
#: a baseline core — enough surface to notice any record perturbation.
_SPEC = SweepSpec(
    workloads=("bubble_sort", "gemm"),
    engines=("fast", "compiled", "picorv32"),
    optimize=(True,),
    params={"bubble_sort": [{"length": 8}], "gemm": [{"n": 2}]},
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
FIXTURE_PATHS = sorted(glob.glob(os.path.join(GOLDEN_DIR, "*.json")))


def _canonical_set(outcome):
    return sorted(canonical_record(record) for record in outcome.records)


@pytest.fixture
def tracing(tmp_path, monkeypatch):
    """Enable env-driven tracing exactly the way ``--trace`` does."""
    path = str(tmp_path / "spans.jsonl")
    monkeypatch.setenv(trace.TRACE_ENV, "1")
    monkeypatch.setenv(trace.TRACE_FILE_ENV, path)
    trace.configure_from_env()
    yield path
    trace.configure(None)


class TestTracedSweepConformance:
    @pytest.fixture(scope="class")
    def untraced(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("untraced") / "run")
        return run_sweep(_SPEC, out, jobs=1)

    def test_serial_backend(self, untraced, tracing, tmp_path):
        traced = run_sweep(_SPEC, str(tmp_path / "run"), jobs=1)
        assert traced.ok
        assert _canonical_set(traced) == _canonical_set(untraced)
        assert trace.read_spans(tracing), "tracing was on but wrote nothing"

    def test_multiprocessing_backend(self, untraced, tracing, tmp_path):
        traced = run_sweep(_SPEC, str(tmp_path / "run"),
                           backend=MultiprocessingBackend(processes=2))
        assert traced.ok
        assert _canonical_set(traced) == _canonical_set(untraced)

    def test_queue_backend(self, untraced, tracing, tmp_path):
        traced = run_sweep(_SPEC, str(tmp_path / "run"),
                           backend=AsyncQueueBackend(workers=2))
        assert traced.ok
        assert _canonical_set(traced) == _canonical_set(untraced)
        # Spawned queue workers inherit the env and trace into the same file.
        names = {span["name"] for span in trace.read_spans(tracing)}
        assert "job" in names

    def test_traced_records_carry_timings_without_perturbing(self, tracing,
                                                             tmp_path):
        traced = run_sweep(_SPEC, str(tmp_path / "run"), jobs=1)
        for record in traced.records:
            timings = record["timings"]
            assert set(timings) == {"xlate_s", "codegen_s", "execute_s"}
            assert all(value >= 0 for value in timings.values())
            assert record["cache_hit"] in (True, False)
            # The new fields are volatile: canonicalisation strips them.
            stable = json.loads(canonical_record(record))
            assert "timings" not in stable and "cache_hit" not in stable

    def test_job_span_per_executed_job(self, tracing, tmp_path):
        outcome = run_sweep(_SPEC, str(tmp_path / "run"), jobs=1)
        job_spans = [span for span in trace.read_spans(tracing)
                     if span["name"] == "job"]
        assert len(job_spans) == outcome.executed
        labels = {span["attrs"]["label"] for span in job_spans}
        assert labels == {record["label"] for record in outcome.records}


class TestProfiledGoldenReplay:
    """``profile=True`` must not move a single architectural bit."""

    @pytest.mark.parametrize(
        "path", FIXTURE_PATHS,
        ids=[os.path.splitext(os.path.basename(p))[0] for p in FIXTURE_PATHS])
    def test_profiled_compiled_engine_matches_golden_digest(self, path):
        from repro.framework import SoftwareFramework
        from repro.sim.compiled import CompiledEngine
        from repro.sim.trace import state_digest, trace_mismatches

        with open(path, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        program, _, _ = SoftwareFramework(optimize=True).compile_named_workload(
            golden["workload"], golden["params"])
        engine = CompiledEngine(program, profile=True)
        stats = engine.run_with_stats(max_cycles=50_000_000)
        mismatches = trace_mismatches(
            golden, engine.register_snapshot(), engine.tdm.contents(), stats)
        assert not mismatches, "\n".join(mismatches)
        assert state_digest(engine.register_snapshot(),
                            engine.tdm.contents()) == golden["state_digest"]
        # And the profile itself is conservative: block counts account for
        # exactly the instructions the engine executed.
        rows = engine.block_profile()
        assert sum(row["instructions"] for row in rows) == \
            engine.instructions_executed
        assert all(row["executions"] > 0 for row in rows)

    def test_block_profile_requires_the_flag(self):
        from repro.framework import SoftwareFramework
        from repro.sim.compiled import CompiledEngine, SimulationError
        program, _, _ = SoftwareFramework().compile_named_workload(
            "bubble_sort", {})
        engine = CompiledEngine(program)
        engine.run_with_stats()
        with pytest.raises(SimulationError):
            engine.block_profile()

    def test_profiled_and_plain_cycle_counts_agree(self):
        from repro.framework import SoftwareFramework
        from repro.sim.compiled import CompiledEngine
        program, _, _ = SoftwareFramework().compile_named_workload(
            "gemm", {"n": 2})
        plain = CompiledEngine(program).run_with_stats()
        profiled = CompiledEngine(program, profile=True).run_with_stats()
        assert profiled.cycles == plain.cycles
        assert profiled.instructions_committed == plain.instructions_committed
