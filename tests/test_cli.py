"""End-to-end coverage of the ``art9`` command-line interface.

Every subcommand is driven through ``main(argv)`` with temporary-file
sources, asserting both the exit code and the key lines of the output.
"""

import pytest

from repro.cli import build_parser, main

_RV_SOURCE = """\
li a0, 5
li a1, 7
add a0, a0, a1
ecall
"""


@pytest.fixture
def rv_file(tmp_path):
    source = tmp_path / "prog.s"
    source.write_text(_RV_SOURCE)
    return str(source)


class TestTranslate:
    def test_translate_prints_report(self, rv_file, capsys):
        assert main(["translate", rv_file]) == 0
        out = capsys.readouterr().out
        assert "translation of" in out

    def test_translate_listing_shows_instructions(self, rv_file, capsys):
        assert main(["translate", rv_file, "--listing"]) == 0
        out = capsys.readouterr().out
        assert "HALT" in out

    def test_translate_no_optimize(self, rv_file, capsys):
        assert main(["translate", rv_file, "--no-optimize"]) == 0
        assert "translation of" in capsys.readouterr().out


class TestRun:
    def test_run_default_engine_prints_cycle_summary(self, rv_file, capsys):
        assert main(["run", rv_file]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "instructions committed" in out

    def test_run_engines_agree_on_cycles(self, rv_file, capsys):
        assert main(["run", rv_file, "--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert main(["run", rv_file, "--engine", "pipeline"]) == 0
        pipeline_out = capsys.readouterr().out

        def cycles_line(text):
            return next(line for line in text.splitlines() if line.startswith("cycles"))

        assert cycles_line(fast_out) == cycles_line(pipeline_out)

    def test_unknown_engine_rejected_by_argparse(self, rv_file):
        with pytest.raises(SystemExit):
            main(["run", rv_file, "--engine", "quantum"])

    def test_run_pgo_matches_plain_compiled(self, rv_file, capsys):
        assert main(["run", rv_file, "--engine", "compiled", "--pgo"]) == 0
        pgo_out = capsys.readouterr().out
        assert main(["run", rv_file, "--engine", "compiled"]) == 0
        assert pgo_out == capsys.readouterr().out  # bit-identical summary

    def test_run_pgo_requires_the_compiled_engine(self, rv_file, capsys):
        assert main(["run", rv_file, "--pgo"]) == 2  # default engine is fast
        assert "--pgo" in capsys.readouterr().err


class TestBench:
    def test_bench_single_workload(self, capsys):
        assert main(["bench", "bubble_sort"]) == 0
        out = capsys.readouterr().out
        assert "bubble_sort" in out
        assert "PicoRV32" in out and "VexRiscv" in out

    def test_bench_pipeline_engine_matches_fast(self, capsys):
        assert main(["bench", "bubble_sort", "--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert main(["bench", "bubble_sort", "--engine", "pipeline"]) == 0
        pipeline_out = capsys.readouterr().out
        assert fast_out == pipeline_out

    def test_bench_compiled_engine_matches_fast(self, capsys):
        assert main(["bench", "bubble_sort", "--engine", "compiled"]) == 0
        compiled_out = capsys.readouterr().out
        assert main(["bench", "bubble_sort", "--engine", "fast"]) == 0
        assert compiled_out == capsys.readouterr().out

    def test_bench_json_writes_the_perf_record(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "bench.json")
        assert main(["bench", "--json", path, "--repeat", "1",
                     "--no-sweep-timing", "--batch-lanes", "8"]) == 0
        assert "bench record written" in capsys.readouterr().out
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["format"] == 4
        labels = {row["label"] for row in record["workloads"]}
        assert "dhrystone[iterations=500]" in labels
        for row in record["workloads"]:
            assert row["engines_agree"] is True
            assert row["fast_seconds"] > 0 and row["compiled_seconds"] > 0
            assert row["compiled_speedup_vs_fast"] > 0
            assert row["compiled_chained_seconds"] > 0
            assert row["chained_speedup_vs_fast"] > 0
            assert row["chained_speedup_vs_plain"] > 0
        machines = {row["machine"] for row in record["machines"]}
        assert "paper3stage" in machines and len(machines) >= 3
        for row in record["machines"]:
            assert row["engines_agree"] is True
            assert row["cycles"] > 0
        batch_workloads = {row["workload"] for row in record["batch"]}
        assert batch_workloads == {"bubble_sort", "gemm"}
        for row in record["batch"]:
            assert row["engines_agree"] is True
            assert row["lanes"] == 8
            assert row["jobs_per_second"] > 0
            assert row["serial_jobs_per_second"] > 0
            assert row["batch_speedup"] > 0
        assert "sweep" not in record  # --no-sweep-timing

    def test_bench_json_rejects_workload_and_engine_selection(self, tmp_path,
                                                              capsys):
        path = str(tmp_path / "bench.json")
        assert main(["bench", "dhrystone", "--json", path]) == 2
        assert "drop the workload names" in capsys.readouterr().err
        assert main(["bench", "--engine", "pipeline", "--json", path]) == 2
        capsys.readouterr()


class TestFuzz:
    def test_fuzz_reports_clean_run(self, capsys):
        assert main(["fuzz", "--count", "10", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "10 programs" in out
        assert "OK" in out

    def test_fuzz_without_pipeline_crosscheck(self, capsys):
        assert main(["fuzz", "--count", "5", "--seed", "11", "--no-pipeline"]) == 0
        assert "5 programs" in capsys.readouterr().out

    def test_fuzz_batched_lanes(self, capsys):
        assert main(["fuzz", "--count", "5", "--seed", "7",
                     "--batch-lanes", "3"]) == 0
        assert "5 programs" in capsys.readouterr().out

    def test_fuzz_rejects_negative_batch_lanes(self, capsys):
        assert main(["fuzz", "--count", "2", "--batch-lanes", "-1"]) == 2
        assert "--batch-lanes must be >= 0" in capsys.readouterr().err


class TestSweepInputValidation:
    def test_params_malformed_json_is_a_spec_error(self, tmp_path, capsys):
        assert main(["sweep", "--out", str(tmp_path / "run"),
                     "--workloads", "bubble_sort",
                     "--params", "{not json"]) == 2
        err = capsys.readouterr().err
        assert "art9 sweep:" in err
        assert "--params is not valid JSON" in err
        assert "{not json" in err  # names the offending text

    def test_params_non_dict_json_is_a_spec_error(self, tmp_path, capsys):
        assert main(["sweep", "--out", str(tmp_path / "run"),
                     "--workloads", "bubble_sort",
                     "--params", "[1,2]"]) == 2
        err = capsys.readouterr().err
        assert "art9 sweep:" in err
        assert "--params must be a JSON object" in err
        assert "[1,2]" in err

    def test_batch_flag_rejected_with_queue_backend(self, tmp_path, capsys):
        assert main(["sweep", "--out", str(tmp_path / "run"),
                     "--workloads", "bubble_sort",
                     "--batch", "--backend", "queue"]) == 2
        assert "--batch" in capsys.readouterr().err


class TestMetaCommands:
    def test_workloads_lists_all_four(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("bubble_sort", "gemm", "sobel", "dhrystone"):
            assert name in out

    def test_hw_prints_gate_and_fpga_reports(self, capsys):
        assert main(["hw"]) == 0
        out = capsys.readouterr().out
        assert "ternary gates" in out
        assert "ALMs" in out

    def test_no_command_prints_help_and_fails(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_parser_exposes_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("translate", "run", "bench", "fuzz", "hw", "workloads"):
            assert command in text


class TestBenchJsonOverwrite:
    def test_existing_record_is_refused_without_force(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text('{"format": 3}\n')
        assert main(["bench", "--json", str(path)]) == 2
        assert "--force" in capsys.readouterr().err
        assert path.read_text() == '{"format": 3}\n'  # untouched

    def test_force_overwrites(self, tmp_path, capsys):
        import json

        path = tmp_path / "bench.json"
        path.write_text("{}\n")
        assert main(["bench", "--json", str(path), "--force", "--repeat", "1",
                     "--no-sweep-timing", "--batch-lanes", "4"]) == 0
        capsys.readouterr()
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["format"] == 4


class TestStatus:
    @pytest.fixture
    def run_dir(self, tmp_path):
        out = str(tmp_path / "run")
        assert main(["sweep", "--out", out, "--workloads", "bubble_sort",
                     "--engines", "fast", "--optimize", "on",
                     "--params", '{"bubble_sort": [{"length": 8}]}',
                     "--jobs", "1"]) == 0
        return out

    def test_run_dir_summary_reports_phases_and_cache(self, run_dir, capsys):
        capsys.readouterr()
        assert main(["status", run_dir]) == 0
        out = capsys.readouterr().out
        assert "jobs      1/1 ok" in out
        assert "xlate" in out and "execute" in out
        assert "translation cache hits" in out
        assert "slowest jobs:" in out
        assert "bubble_sort[length=8]/fast/opt" in out

    def test_traced_run_dir_reports_span_count(self, tmp_path, capsys,
                                               monkeypatch):
        from repro.obs import trace

        out = str(tmp_path / "run")
        assert main(["sweep", "--out", out, "--workloads", "bubble_sort",
                     "--engines", "fast", "--optimize", "on",
                     "--params", '{"bubble_sort": [{"length": 8}]}',
                     "--jobs", "1", "--trace"]) == 0
        trace.configure(None)  # --trace enabled it process-wide; undo
        monkeypatch.delenv(trace.TRACE_ENV, raising=False)
        monkeypatch.delenv(trace.TRACE_FILE_ENV, raising=False)
        capsys.readouterr()
        assert main(["status", out]) == 0
        captured = capsys.readouterr().out
        assert "spans.jsonl" in captured
        assert "trace" in captured

    def test_rejects_neither_or_both_modes(self, run_dir, capsys):
        assert main(["status"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["status", run_dir, "--connect", "127.0.0.1:1"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_non_run_directory_fails_cleanly(self, tmp_path, capsys):
        assert main(["status", str(tmp_path / "nope")]) == 2
        assert "not a sweep run directory" in capsys.readouterr().err

    def test_unreachable_coordinator_fails_cleanly(self, capsys):
        assert main(["status", "--connect", "127.0.0.1:1"]) == 2
        assert "cannot query coordinator" in capsys.readouterr().err

    def test_malformed_connect_address(self, capsys):
        assert main(["status", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestProfile:
    def test_hot_block_table_sums_to_dynamic_instructions(self, capsys):
        assert main(["profile", "dhrystone"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        header = lines[0]
        # "dhrystone: 10380 cycles, 8443 instructions, ..."
        executed = int(header.split(" cycles, ")[1].split(" instructions")[0])
        shown = 0
        for line in lines[4:]:
            cells = line.split()
            if not cells or not cells[0].isdigit():
                break
            shown += int(cells[3])
        assert 0 < shown <= executed
        assert "cumulative" in out

    def test_top_truncation_reports_the_remainder(self, capsys):
        assert main(["profile", "dhrystone", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "more blocks accounting for" in out

    def test_profile_respects_params_and_machine(self, capsys):
        assert main(["profile", "gemm", "--params", '{"n": 2}',
                     "--machine", "ideal2"]) == 0
        assert "superblocks executed" in capsys.readouterr().out

    def test_unknown_workload_fails_cleanly(self, capsys):
        assert main(["profile", "not_a_workload"]) == 2
        assert "art9 profile:" in capsys.readouterr().err

    def test_malformed_params_fail_cleanly(self, capsys):
        assert main(["profile", "gemm", "--params", "{oops"]) == 2
        assert "--params" in capsys.readouterr().err

    def test_profile_json_document(self, capsys):
        import json

        assert main(["profile", "bubble_sort", "--params", '{"length": 8}',
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["workload"] == "bubble_sort"
        assert document["accounted"] is True
        assert document["instructions"] == sum(
            row["instructions"] for row in document["blocks"])
        assert document["superblocks"] == len(document["blocks"])
        for row in document["blocks"]:
            assert row["instructions"] == row["executions"] * row["length"]

    def test_profile_pgo_plan_dump(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "plan.json")
        assert main(["profile", "dhrystone", "--pgo-plan", path]) == 0
        captured = capsys.readouterr()
        assert "pgo chain plan" in captured.err
        with open(path, "r", encoding="utf-8") as handle:
            plan = json.load(handle)
        assert plan["workload"] == "dhrystone"
        assert plan["traces"], "dhrystone's hot loops must yield traces"
        for head, members in plan["traces"].items():
            assert members[0] == int(head)
            assert len(members) >= 2


class TestCacheCommand:
    @pytest.fixture
    def populated_root(self, tmp_path):
        from repro.cache import ArtifactCache

        root = str(tmp_path / "cache")
        cache = ArtifactCache(root)
        for index in range(3):
            cache.put_json("probe", {"i": index}, {"pad": "x" * 200})
        return root

    def test_stats_table(self, populated_root, capsys):
        assert main(["cache", "stats", "--dir", populated_root]) == 0
        out = capsys.readouterr().out
        assert populated_root in out
        assert "probe" in out and "total" in out

    def test_stats_json(self, populated_root, capsys):
        import json

        assert main(["cache", "stats", "--dir", populated_root,
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 3
        assert stats["kinds"]["probe"]["entries"] == 3
        assert stats["bytes"] > 0

    def test_prune_to_zero(self, populated_root, capsys):
        assert main(["cache", "prune", "--max-bytes", "0",
                     "--dir", populated_root]) == 0
        assert "pruned 3 entries" in capsys.readouterr().out
        assert main(["cache", "stats", "--dir", populated_root,
                     "--json"]) == 0
        import json

        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_prune_rejects_negative_budget(self, populated_root, capsys):
        assert main(["cache", "prune", "--max-bytes", "-5",
                     "--dir", populated_root]) == 2
        assert "max_bytes" in capsys.readouterr().err

    def test_bare_cache_command_fails_with_usage(self, capsys):
        assert main(["cache"]) == 2
        assert "stats | prune" in capsys.readouterr().err
