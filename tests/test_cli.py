"""End-to-end coverage of the ``art9`` command-line interface.

Every subcommand is driven through ``main(argv)`` with temporary-file
sources, asserting both the exit code and the key lines of the output.
"""

import pytest

from repro.cli import build_parser, main

_RV_SOURCE = """\
li a0, 5
li a1, 7
add a0, a0, a1
ecall
"""


@pytest.fixture
def rv_file(tmp_path):
    source = tmp_path / "prog.s"
    source.write_text(_RV_SOURCE)
    return str(source)


class TestTranslate:
    def test_translate_prints_report(self, rv_file, capsys):
        assert main(["translate", rv_file]) == 0
        out = capsys.readouterr().out
        assert "translation of" in out

    def test_translate_listing_shows_instructions(self, rv_file, capsys):
        assert main(["translate", rv_file, "--listing"]) == 0
        out = capsys.readouterr().out
        assert "HALT" in out

    def test_translate_no_optimize(self, rv_file, capsys):
        assert main(["translate", rv_file, "--no-optimize"]) == 0
        assert "translation of" in capsys.readouterr().out


class TestRun:
    def test_run_default_engine_prints_cycle_summary(self, rv_file, capsys):
        assert main(["run", rv_file]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "instructions committed" in out

    def test_run_engines_agree_on_cycles(self, rv_file, capsys):
        assert main(["run", rv_file, "--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert main(["run", rv_file, "--engine", "pipeline"]) == 0
        pipeline_out = capsys.readouterr().out

        def cycles_line(text):
            return next(line for line in text.splitlines() if line.startswith("cycles"))

        assert cycles_line(fast_out) == cycles_line(pipeline_out)

    def test_unknown_engine_rejected_by_argparse(self, rv_file):
        with pytest.raises(SystemExit):
            main(["run", rv_file, "--engine", "quantum"])


class TestBench:
    def test_bench_single_workload(self, capsys):
        assert main(["bench", "bubble_sort"]) == 0
        out = capsys.readouterr().out
        assert "bubble_sort" in out
        assert "PicoRV32" in out and "VexRiscv" in out

    def test_bench_pipeline_engine_matches_fast(self, capsys):
        assert main(["bench", "bubble_sort", "--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert main(["bench", "bubble_sort", "--engine", "pipeline"]) == 0
        pipeline_out = capsys.readouterr().out
        assert fast_out == pipeline_out

    def test_bench_compiled_engine_matches_fast(self, capsys):
        assert main(["bench", "bubble_sort", "--engine", "compiled"]) == 0
        compiled_out = capsys.readouterr().out
        assert main(["bench", "bubble_sort", "--engine", "fast"]) == 0
        assert compiled_out == capsys.readouterr().out

    def test_bench_json_writes_the_perf_record(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "bench.json")
        assert main(["bench", "--json", path, "--repeat", "1",
                     "--no-sweep-timing", "--batch-lanes", "8"]) == 0
        assert "bench record written" in capsys.readouterr().out
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["format"] == 3
        labels = {row["label"] for row in record["workloads"]}
        assert "dhrystone[iterations=500]" in labels
        for row in record["workloads"]:
            assert row["engines_agree"] is True
            assert row["fast_seconds"] > 0 and row["compiled_seconds"] > 0
            assert row["compiled_speedup_vs_fast"] > 0
        machines = {row["machine"] for row in record["machines"]}
        assert "paper3stage" in machines and len(machines) >= 3
        for row in record["machines"]:
            assert row["engines_agree"] is True
            assert row["cycles"] > 0
        batch_workloads = {row["workload"] for row in record["batch"]}
        assert batch_workloads == {"bubble_sort", "gemm"}
        for row in record["batch"]:
            assert row["engines_agree"] is True
            assert row["lanes"] == 8
            assert row["jobs_per_second"] > 0
            assert row["serial_jobs_per_second"] > 0
            assert row["batch_speedup"] > 0
        assert "sweep" not in record  # --no-sweep-timing

    def test_bench_json_rejects_workload_and_engine_selection(self, tmp_path,
                                                              capsys):
        path = str(tmp_path / "bench.json")
        assert main(["bench", "dhrystone", "--json", path]) == 2
        assert "drop the workload names" in capsys.readouterr().err
        assert main(["bench", "--engine", "pipeline", "--json", path]) == 2
        capsys.readouterr()


class TestFuzz:
    def test_fuzz_reports_clean_run(self, capsys):
        assert main(["fuzz", "--count", "10", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "10 programs" in out
        assert "OK" in out

    def test_fuzz_without_pipeline_crosscheck(self, capsys):
        assert main(["fuzz", "--count", "5", "--seed", "11", "--no-pipeline"]) == 0
        assert "5 programs" in capsys.readouterr().out

    def test_fuzz_batched_lanes(self, capsys):
        assert main(["fuzz", "--count", "5", "--seed", "7",
                     "--batch-lanes", "3"]) == 0
        assert "5 programs" in capsys.readouterr().out

    def test_fuzz_rejects_negative_batch_lanes(self, capsys):
        assert main(["fuzz", "--count", "2", "--batch-lanes", "-1"]) == 2
        assert "--batch-lanes must be >= 0" in capsys.readouterr().err


class TestSweepInputValidation:
    def test_params_malformed_json_is_a_spec_error(self, tmp_path, capsys):
        assert main(["sweep", "--out", str(tmp_path / "run"),
                     "--workloads", "bubble_sort",
                     "--params", "{not json"]) == 2
        err = capsys.readouterr().err
        assert "art9 sweep:" in err
        assert "--params is not valid JSON" in err
        assert "{not json" in err  # names the offending text

    def test_params_non_dict_json_is_a_spec_error(self, tmp_path, capsys):
        assert main(["sweep", "--out", str(tmp_path / "run"),
                     "--workloads", "bubble_sort",
                     "--params", "[1,2]"]) == 2
        err = capsys.readouterr().err
        assert "art9 sweep:" in err
        assert "--params must be a JSON object" in err
        assert "[1,2]" in err

    def test_batch_flag_rejected_with_queue_backend(self, tmp_path, capsys):
        assert main(["sweep", "--out", str(tmp_path / "run"),
                     "--workloads", "bubble_sort",
                     "--batch", "--backend", "queue"]) == 2
        assert "--batch" in capsys.readouterr().err


class TestMetaCommands:
    def test_workloads_lists_all_four(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("bubble_sort", "gemm", "sobel", "dhrystone"):
            assert name in out

    def test_hw_prints_gate_and_fpga_reports(self, capsys):
        assert main(["hw"]) == 0
        out = capsys.readouterr().out
        assert "ternary gates" in out
        assert "ALMs" in out

    def test_no_command_prints_help_and_fails(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_parser_exposes_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("translate", "run", "bench", "fuzz", "hw", "workloads"):
            assert command in text
