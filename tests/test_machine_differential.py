"""Config-matrix differential suite: four executors at every design corner.

For every built-in machine config the differential harness runs generated
programs through the functional simulator, the fast engine, the compiled
engine and the stage-by-stage pipeline and demands exact agreement on
architectural state *and* on the full cycle-accounting record.  The
functional simulator has no timing model, which is precisely the point:
architectural results must be identical across configs, while the three
cycle-accurate engines must agree with each other *under* each config.
"""

import pytest

from repro.framework import HardwareFramework
from repro.sim.machine import MACHINES
from repro.testing import fuzz, run_differential
from repro.testing.generator import generate_program
from repro.runner.fuzzpool import run_parallel_fuzz

#: Seeds per config for the full (pipeline-checked) matrix sweep.  Kept
#: modest because the stage-by-stage pipeline dominates the runtime; the
#: nightly `art9 fuzz --machine` CI job runs far more.
SEEDS_PER_CONFIG = 25

ALL_MACHINES = sorted(MACHINES)


@pytest.mark.parametrize("machine", ALL_MACHINES)
def test_four_way_agreement_under_every_builtin_config(machine):
    report = fuzz(count=SEEDS_PER_CONFIG, seed=1000, check_pipeline=True,
                  machine=machine)
    assert report.ok, f"{machine}: " + "; ".join(
        mismatch
        for failure in report.failures
        for mismatch in failure.mismatches)
    assert report.programs_run == SEEDS_PER_CONFIG


@pytest.mark.parametrize("machine", ALL_MACHINES)
def test_single_program_differential_accepts_machine(machine):
    program = generate_program(4242)
    outcome = run_differential(program, machine=machine)
    assert outcome.ok
    assert outcome.cycles is not None and outcome.cycles > 0


def test_architectural_state_is_machine_invariant():
    """Timing configs must never leak into architectural results."""
    program = generate_program(77)
    digests = set()
    cycles = {}
    for machine in ALL_MACHINES:
        stats, registers, memory = HardwareFramework().simulate_with_state(
            program, machine=machine)
        from repro.sim.trace import state_digest

        digests.add(state_digest(registers, memory))
        cycles[machine] = stats.cycles
    assert len(digests) == 1, "final state depends on the machine config"
    # ...but the timing corners genuinely differ on a branchy trace.
    assert len(set(cycles.values())) > 1, cycles


def test_parallel_fuzz_carries_the_machine_axis():
    serial = fuzz(count=6, seed=300, check_pipeline=False, machine="btfn4")
    parallel = run_parallel_fuzz(count=6, seed=300, jobs=2,
                                 check_pipeline=False, machine="btfn4")
    assert serial.ok and parallel.ok
    assert parallel.programs_run == serial.programs_run == 6
    assert parallel.instructions_executed == serial.instructions_executed
