"""Differential validation of the fast execution engine.

Three layers of evidence that ``repro.sim.engine`` is a faithful drop-in for
the object-model simulators:

* operation-level cross-checks of the integer arithmetic against the
  trit-by-trit reference implementations in ``repro.ternary``;
* whole-program equivalence on all four bundled workloads (registers,
  memory, PC, instruction mix **and** every pipeline statistic);
* a 500-program seeded fuzzing sweep through ``repro.testing``.
"""

import pytest

from repro.framework import HardwareFramework, SoftwareFramework
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.sim import FastEngine, FunctionalSimulator, PipelineSimulator, SimulationError
from repro.sim.engine import HALF, MOD, execute_program, wrap
from repro.ternary.arithmetic import (
    add_words,
    compare_words,
    shift_left,
    shift_right,
    sub_words,
)
from repro.ternary.logic import word_and, word_nti, word_or, word_pti, word_xor
from repro.ternary.word import TernaryWord
from repro.testing import fuzz, generate_program, run_differential
from repro.testing.differential import STATS_FIELDS
from repro.workloads import all_workloads

# Deterministic operand sample spanning small values, extremes and wrap edges.
_SAMPLE = (
    0, 1, -1, 2, -2, 3, -3, 13, -13, 40, -40, 121, -121, 364, -364,
    1093, -1093, 4000, -4000, 9000, -9000, 9840, -9840, 9841, -9841,
)


class TestWrapArithmetic:
    def test_wrap_matches_ternary_word_constructor(self):
        for value in range(-3 * MOD, 3 * MOD, 97):
            assert wrap(value) == TernaryWord(value).value

    @pytest.mark.parametrize("a", _SAMPLE)
    @pytest.mark.parametrize("b", (0, 1, -1, 121, -121, 9841, -9841))
    def test_add_sub_comp_match_trit_reference(self, a, b):
        wa, wb = TernaryWord(a), TernaryWord(b)
        assert wrap(a + b) == add_words(wa, wb).value
        assert wrap(a - b) == sub_words(wa, wb).value
        assert (a > b) - (a < b) == compare_words(wa, wb)

    @pytest.mark.parametrize("amount", range(9))
    def test_shifts_match_trit_reference(self, amount):
        for value in _SAMPLE:
            word = TernaryWord(value)
            assert wrap(value * 3 ** amount) == shift_left(word, amount).value
            p = 3 ** amount
            h = (p - 1) // 2
            expected = (value - ((value + h) % p - h)) // p
            assert expected == shift_right(word, amount).value

    def test_gates_match_trit_reference(self):
        ops = {"AND": word_and, "OR": word_or, "XOR": word_xor}
        for mnemonic, reference in ops.items():
            for a in _SAMPLE[:12]:
                for b in _SAMPLE[:12]:
                    program = _register_program(
                        a, b, Instruction(mnemonic, ta=1, tb=2)
                    )
                    result = execute_program(program)
                    expected = reference(TernaryWord(a), TernaryWord(b)).value
                    assert result.register("T1") == expected, (mnemonic, a, b)

    def test_inverters_match_trit_reference(self):
        for mnemonic, reference in (("PTI", word_pti), ("NTI", word_nti)):
            for value in _SAMPLE:
                program = _register_program(0, value, Instruction(mnemonic, ta=1, tb=2))
                result = execute_program(program)
                assert result.register("T1") == reference(TernaryWord(value)).value


def _register_program(a, b, *instructions) -> Program:
    """A program that materialises T1=a, T2=b then runs ``instructions``."""
    from repro.isa.assembler import split_constant

    program = Program(name="unit")
    for reg, value in ((1, a), (2, b)):
        high, low = split_constant(value)
        program.append(Instruction("LUI", ta=reg, imm=high))
        program.append(Instruction("LI", ta=reg, imm=low))
    program.extend(instructions)
    program.append(Instruction("HALT"))
    return program


@pytest.fixture(scope="module")
def translated_workloads():
    software = SoftwareFramework()
    return {
        name: software.compile_workload(workload)[0]
        for name, workload in all_workloads().items()
    }


@pytest.mark.parametrize("name", ["bubble_sort", "gemm", "sobel", "dhrystone"])
class TestWorkloadEquivalence:
    def test_execution_result_is_bit_identical(self, name, translated_workloads):
        program = translated_workloads[name]
        fast = FastEngine(program).run()
        reference = FunctionalSimulator(program).run()
        assert fast.registers == reference.registers
        assert fast.memory == reference.memory
        assert fast.pc == reference.pc
        assert fast.halted and reference.halted
        assert fast.instructions_executed == reference.instructions_executed
        assert fast.instruction_mix == reference.instruction_mix

    def test_pipeline_stats_are_bit_identical(self, name, translated_workloads):
        program = translated_workloads[name]
        fast_stats = FastEngine(program).run_with_stats()
        pipeline_stats = PipelineSimulator(program).run()
        for field in STATS_FIELDS:
            assert getattr(fast_stats, field) == getattr(pipeline_stats, field), field
        assert fast_stats.instruction_mix == pipeline_stats.instruction_mix

    def test_workload_results_check_out_on_the_engine(self, name, translated_workloads):
        workload = all_workloads()[name]
        engine = FastEngine(translated_workloads[name])
        engine.run()
        workload.check_ternary_results(engine)  # raises on mismatch


class TestHardwareFrameworkEngines:
    def test_both_engines_report_identical_cycles(self, translated_workloads):
        program = translated_workloads["bubble_sort"]
        framework = HardwareFramework()
        fast = framework.simulate(program, engine="fast")
        pipe = framework.simulate(program, engine="pipeline")
        assert fast.cycles == pipe.cycles
        assert fast.stall_cycles == pipe.stall_cycles

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            HardwareFramework(engine="quantum")
        with pytest.raises(ValueError):
            HardwareFramework().simulate(Program(instructions=[Instruction("HALT")]),
                                         engine="quantum")


class TestEngineContract:
    def test_runaway_program_raises(self):
        program = assemble("loop:\nJAL T6, loop")
        with pytest.raises(SimulationError):
            FastEngine(program).run(max_instructions=500)

    def test_pc_escape_raises(self):
        program = assemble("ADDI T1, 1")  # no HALT
        with pytest.raises(SimulationError):
            FastEngine(program).run()

    def test_empty_program_rejected_by_timing_model(self):
        with pytest.raises(SimulationError):
            FastEngine(Program()).run_with_stats()

    def test_single_halt_costs_five_cycles(self):
        stats = FastEngine(assemble("HALT")).run_with_stats()
        assert stats.cycles == 5
        assert stats.instructions_committed == 1

    def test_timing_model_rejects_consumed_engine_state(self):
        program = assemble("ADDI T1, 1\nHALT")
        engine = FastEngine(program)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run_with_stats()

    def test_reduced_depth_memory_fault_matches_functional(self):
        from repro.sim import MemoryError_

        program = assemble("LI T2, 100\nSTORE T1, T2, 0\nHALT")
        with pytest.raises(MemoryError_):
            FastEngine(program, tdm_depth=64).run()
        with pytest.raises(MemoryError_):
            FunctionalSimulator(program, tdm_depth=64).run()
        fast = FastEngine(program, tdm_depth=64)
        functional = FunctionalSimulator(program, tdm_depth=64)
        for simulator in (fast, functional):
            with pytest.raises(MemoryError_):
                simulator.run()
        assert fast.instructions_executed == functional.instructions_executed == 1

    def test_memory_view_matches_functional_tdm(self):
        program = assemble(
            "LI T1, 77\nLI T2, 5\nSTORE T1, T2, 0\nSTORE T1, T2, 1\nHALT"
        )
        engine = FastEngine(program)
        engine.run()
        functional = FunctionalSimulator(program)
        functional.run()
        assert engine.tdm.read_int(5) == functional.tdm.read_int(5) == 77
        assert engine.tdm.dump(5, 2) == functional.tdm.dump(5, 2)
        assert engine.tdm.contents() == functional.tdm.contents()


class TestDifferentialFuzzing:
    def test_500_seeded_programs_agree_across_all_executors(self):
        report = fuzz(count=500, seed=0, check_pipeline=True)
        assert report.ok, "\n".join(
            f"{failure.program_name}: {failure.mismatches}"
            for failure in report.failures
        )
        assert report.programs_run == 500
        assert report.instructions_executed > 5_000

    def test_generator_is_deterministic(self):
        first = generate_program(42)
        second = generate_program(42)
        assert [i.render() for i in first.instructions] == [
            i.render() for i in second.instructions
        ]

    def test_run_differential_reports_clean_outcome(self):
        outcome = run_differential(generate_program(7))
        assert outcome.ok
        assert outcome.cycles is not None

    def test_exhausted_budget_is_agreement_not_a_crash(self):
        # Both executors must fail the budget identically; that agreement is
        # reported, not raised.
        outcome = run_differential(generate_program(7), max_instructions=1)
        assert outcome.ok
        assert outcome.budget_exhausted
        report = fuzz(count=3, seed=7, max_instructions=1)
        assert report.ok
        assert report.budget_exhausted == 3
        assert "hit the instruction budget" in report.summary()
