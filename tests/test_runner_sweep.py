"""End-to-end tests of the sweep orchestrator, compare mode and the CLI.

The small grids here run in a couple of seconds but exercise every moving
part: multi-process sharding, streaming JSONL persistence, resume after an
interrupted run, cross-run comparison (including engine-vs-engine
determinism: the fast engine and the pipeline model land identical
records), the parallel fuzz backend, and the ``art9 sweep`` front end.
"""

import json

import pytest

from repro.cli import main
from repro.runner import (
    RunStore,
    SweepJob,
    SweepSpec,
    compare_runs,
    execute_job,
    list_jobs,
    run_parallel_fuzz,
    run_sweep,
)
from repro.testing import fuzz

#: A cheap grid: 2 workloads x 2 engines x both optimize settings = 8 jobs.
SMALL_SPEC = SweepSpec(
    workloads=("bubble_sort", "gemm"),
    engines=("fast", "pipeline"),
    optimize=(True, False),
    params={"bubble_sort": [{"length": 8}], "gemm": [{"n": 2}]},
)


class TestExecuteJob:
    def test_ok_record_contents(self):
        job = SweepJob("bubble_sort", "fast", True, params=(("length", 8),))
        record = execute_job(job)
        assert record["status"] == "ok"
        assert record["job_id"] == job.job_id
        assert record["verified"] is True
        assert record["cycles"] == record["stats"]["cycles"] > 0
        assert record["stats"]["instructions_committed"] == record["instructions"]
        assert len(record["state_digest"]) == 64
        assert record["translated_instructions"] > 0

    def test_engines_produce_identical_architecture_and_timing(self):
        fast = execute_job(SweepJob("gemm", "fast", True, params=(("n", 2),)))
        pipe = execute_job(SweepJob("gemm", "pipeline", True, params=(("n", 2),)))
        assert fast["state_digest"] == pipe["state_digest"]
        assert fast["stats"] == pipe["stats"]

    def test_errors_become_records_not_exceptions(self):
        record = execute_job(SweepJob("gemm", "fast", True, params=(("n", 3),)))
        assert record["status"] == "error"
        assert "power of two" in record["error"]


class TestRunSweep:
    def test_pool_run_completes_the_grid(self, tmp_path):
        out = str(tmp_path / "run")
        outcome = run_sweep(SMALL_SPEC, out, jobs=2)
        assert outcome.ok
        assert outcome.total_jobs == 8
        assert outcome.executed == 8 and outcome.skipped == 0
        records = RunStore(out).records()
        assert len(records) == 8
        assert all(r["status"] == "ok" and r["verified"] for r in records)
        # The pool really did shard across >= 2 worker processes.
        assert len({r["worker_pid"] for r in records}) >= 2

    def test_rerun_resumes_without_recomputing(self, tmp_path):
        out = str(tmp_path / "run")
        run_sweep(SMALL_SPEC, out, jobs=2)
        again = run_sweep(SMALL_SPEC, out, jobs=2)
        assert again.executed == 0
        assert again.skipped == 8

    def test_interrupted_run_resumes_only_missing_jobs(self, tmp_path):
        out = str(tmp_path / "run")
        run_sweep(SMALL_SPEC, out, jobs=1)
        store = RunStore(out)
        with open(store.results_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(store.results_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:5])        # drop 3 finished jobs...
            handle.write(lines[5][:20])         # ...and truncate one mid-write
        resumed = run_sweep(SMALL_SPEC, out, jobs=2)
        assert resumed.executed == 3
        assert resumed.skipped == 5
        assert len(RunStore(out).records()) == 8

    def test_no_resume_recomputes_everything(self, tmp_path):
        out = str(tmp_path / "run")
        run_sweep(SMALL_SPEC, out, jobs=1)
        fresh = run_sweep(SMALL_SPEC, out, jobs=1, resume=False)
        assert fresh.executed == 8

    def test_inline_and_pool_runs_are_identical(self, tmp_path):
        inline = run_sweep(SMALL_SPEC, str(tmp_path / "a"), jobs=1)
        pooled = run_sweep(SMALL_SPEC, str(tmp_path / "b"), jobs=2)
        assert inline.ok and pooled.ok
        report = compare_runs(str(tmp_path / "a"), str(tmp_path / "b"))
        assert report.ok
        assert report.jobs_compared == 8

    def test_list_jobs_reports_status(self, tmp_path):
        out = str(tmp_path / "run")
        rows = list_jobs(SMALL_SPEC)
        assert len(rows) == 8
        assert all(row["status"] == "pending" for row in rows)
        run_sweep(SMALL_SPEC, out, jobs=1)
        rows = list_jobs(SMALL_SPEC, out)
        assert all(row["status"] == "done" for row in rows)


class TestCompareRuns:
    def _two_identical_runs(self, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        spec = SweepSpec(workloads=("bubble_sort",), engines=("fast",),
                         optimize=(True,), params={"bubble_sort": [{"length": 8}]})
        run_sweep(spec, a, jobs=1)
        run_sweep(spec, b, jobs=1)
        return a, b

    def test_identical_runs_compare_clean(self, tmp_path):
        a, b = self._two_identical_runs(tmp_path)
        report = compare_runs(a, b)
        assert report.ok
        assert report.diff_count == 0
        assert "0 diffs" in report.summary()

    def test_cycle_drift_is_reported(self, tmp_path):
        a, b = self._two_identical_runs(tmp_path)
        store = RunStore(b)
        record = store.records()[0]
        record["cycles"] += 7
        record["stats"]["cycles"] += 7
        store.append(record)  # newest record wins
        report = compare_runs(a, b)
        assert not report.ok
        fields = {diff.field for diff in report.diffs}
        assert "cycles" in fields
        assert report.summary().count("->") >= 1

    def test_architectural_drift_is_reported(self, tmp_path):
        a, b = self._two_identical_runs(tmp_path)
        store = RunStore(b)
        record = store.records()[0]
        record["state_digest"] = "0" * 64
        store.append(record)
        report = compare_runs(a, b)
        assert {diff.field for diff in report.diffs} == {"state_digest"}

    def test_nonexistent_run_directory_is_an_error(self, tmp_path):
        from repro.runner import StoreError
        a, _ = self._two_identical_runs(tmp_path)
        with pytest.raises(StoreError):
            compare_runs(a, str(tmp_path / "no-such-run"))
        with pytest.raises(StoreError):
            compare_runs(str(tmp_path / "no-such-run"), a)

    def test_missing_jobs_are_reported(self, tmp_path):
        a, b = self._two_identical_runs(tmp_path)
        extra = execute_job(SweepJob("gemm", "fast", True, params=(("n", 2),)))
        RunStore(b).append(extra)
        report = compare_runs(a, b)
        assert not report.ok
        assert report.only_in_b == [extra["job_id"]]
        assert report.only_in_a == []


class TestParallelFuzz:
    def test_parallel_report_matches_serial(self):
        serial = fuzz(count=10, seed=0, check_pipeline=False)
        parallel = run_parallel_fuzz(count=10, seed=0, jobs=2,
                                     check_pipeline=False)
        assert parallel.programs_run == serial.programs_run == 10
        assert parallel.instructions_executed == serial.instructions_executed
        assert parallel.budget_exhausted == serial.budget_exhausted
        assert parallel.ok == serial.ok

    def test_jobs_one_falls_back_to_serial(self):
        report = run_parallel_fuzz(count=3, seed=5, jobs=1, check_pipeline=False)
        assert report.programs_run == 3


class TestSweepCLI:
    BASE = ["sweep", "--workloads", "bubble_sort", "--engines", "fast",
            "--optimize", "on", "--params", '{"bubble_sort": [{"length": 8}]}']

    def test_run_resume_and_compare(self, tmp_path, capsys):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        assert main(self.BASE + ["--jobs", "2", "--out", a]) == 0
        assert main(self.BASE + ["--jobs", "2", "--out", b]) == 0
        out = capsys.readouterr().out
        assert "bubble_sort[length=8]/fast/opt" in out
        assert main(self.BASE + ["--jobs", "2", "--out", a]) == 0
        assert "1 executed" not in capsys.readouterr().out  # resumed, not rerun
        assert main(["sweep", "--compare", a, b]) == 0
        assert "0 diffs" in capsys.readouterr().out

    def test_compare_detects_tampering(self, tmp_path, capsys):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        main(self.BASE + ["--jobs", "1", "--out", a])
        main(self.BASE + ["--jobs", "1", "--out", b])
        store = RunStore(b)
        record = store.records()[0]
        record["cycles"] += 1
        store.append(record)
        capsys.readouterr()
        assert main(["sweep", "--compare", a, b]) == 1
        assert "cycles" in capsys.readouterr().out

    def test_list_mode(self, tmp_path, capsys):
        assert main(self.BASE + ["--list", "--out", str(tmp_path / "x")]) == 0
        out = capsys.readouterr().out
        assert "pending" in out and "bubble_sort[length=8]/fast/opt" in out

    def test_spec_file_mode(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "workloads": ["gemm"], "engines": ["fast"], "optimize": [True],
            "params": {"gemm": [{"n": 2}]},
        }))
        out = str(tmp_path / "run")
        assert main(["sweep", "--spec", str(spec_path), "--jobs", "1",
                     "--out", out]) == 0
        records = RunStore(out).records()
        assert len(records) == 1
        assert records[0]["workload"] == "gemm"

    def test_compare_with_bad_path_exits_cleanly(self, tmp_path, capsys):
        assert main(["sweep", "--compare", str(tmp_path / "nope-a"),
                     str(tmp_path / "nope-b")]) == 2
        captured = capsys.readouterr()
        assert "not a sweep run directory" in captured.err

    def test_malformed_params_exit_cleanly(self, capsys):
        assert main(["sweep", "--list", "--workloads", "gemm",
                     "--params", '{"gemm": "n=8"}']) == 2
        assert "list of parameter dicts" in capsys.readouterr().err

    def test_fuzz_jobs_flag(self, capsys):
        assert main(["fuzz", "--count", "6", "--jobs", "2", "--no-pipeline"]) == 0
        assert "6 programs" in capsys.readouterr().out
