"""End-to-end machine axis: spec -> sweep -> ResultsDB -> report corners.

Exercises the machine config as a first-class sweep dimension the way a
design-space exploration would use it: expand a grid over several configs,
run it through the real sweep runner, ingest the run directory into the
results database and regenerate the corners table — then pin the CLI
surface (``--machine`` / ``--machines``) and the job-identity guarantees
the blessed baseline run depends on.
"""

import json
import os

import pytest

from repro.cli import build_parser, main
from repro.runner import SweepJob, SweepSpec, preset_spec, run_sweep
from repro.service import ResultsDB
from repro.service.report import machine_corners
from repro.framework import HardwareFramework
from repro.sim.machine import DEFAULT_MACHINE_NAME


class TestJobIdentity:
    def test_default_machine_job_ids_match_the_blessed_baseline(self):
        """Adding the machine axis must not re-key pre-axis job identities.

        The pinned IDs come from ``benchmarks/baseline/results.jsonl``,
        which was produced before machine configs existed; the CI
        queue-regression job diffs against it by job_id.
        """
        baseline = os.path.join(os.path.dirname(__file__), "..",
                                "benchmarks", "baseline", "results.jsonl")
        pinned = {}
        with open(baseline, "r", encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                pinned[(record["workload"], record["engine"],
                        record["optimize"],
                        json.dumps(record["params"], sort_keys=True))] = \
                    record["job_id"]
        assert pinned
        for (workload, engine, optimize, params_json), job_id in pinned.items():
            job = SweepJob(workload=workload, engine=engine, optimize=optimize,
                           params=tuple(sorted(
                               json.loads(params_json).items())))
            assert job.job_id == job_id, job.label

    def test_non_default_machine_changes_the_job_id_and_label(self):
        default = SweepJob(workload="gemm", engine="fast", optimize=True)
        corner = SweepJob(workload="gemm", engine="fast", optimize=True,
                          machine="btfn4")
        assert default.job_id != corner.job_id
        assert "@btfn4" in corner.label and "@" not in default.label

    def test_job_round_trips_with_machine(self):
        job = SweepJob(workload="sobel", engine="compiled", optimize=False,
                       machine="slowfetch5")
        assert SweepJob.from_dict(job.to_dict()) == job
        # Pre-axis serialised jobs deserialise to the default machine.
        legacy = {"workload": "sobel", "engine": "fast", "optimize": True}
        assert SweepJob.from_dict(legacy).machine == DEFAULT_MACHINE_NAME


class TestSpecExpansion:
    def test_machines_multiply_art9_jobs_but_not_baselines(self):
        spec = SweepSpec(workloads=("dhrystone",),
                         engines=("fast", "picorv32"),
                         optimize=(True,),
                         machines=(DEFAULT_MACHINE_NAME, "btfn4", "ideal2"))
        jobs = spec.expand()
        fast_jobs = [job for job in jobs if job.engine == "fast"]
        baseline_jobs = [job for job in jobs if job.engine == "picorv32"]
        assert {job.machine for job in fast_jobs} == \
            {DEFAULT_MACHINE_NAME, "btfn4", "ideal2"}
        assert [job.machine for job in baseline_jobs] == [DEFAULT_MACHINE_NAME]

    def test_machines_preset_covers_three_engines_and_four_configs(self):
        spec = preset_spec("machines")
        jobs = spec.expand()
        assert {job.engine for job in jobs} == {"fast", "pipeline", "compiled"}
        assert len({job.machine for job in jobs}) == 4
        assert DEFAULT_MACHINE_NAME in {job.machine for job in jobs}

    def test_unknown_machine_is_a_spec_error(self):
        from repro.runner import SpecError

        spec = SweepSpec(workloads=("gemm",), machines=("warp9",))
        with pytest.raises(SpecError, match="warp9"):
            spec.validate()

    def test_spec_round_trips_machines(self):
        spec = preset_spec("machines")
        assert SweepSpec.from_dict(spec.to_dict()).machines == spec.machines


@pytest.fixture(scope="module")
def machine_sweep_run(tmp_path_factory):
    """One real sweep over 3 configs x 3 engines, plus its DB ingest."""
    out = str(tmp_path_factory.mktemp("machine-sweep") / "run")
    spec = SweepSpec(workloads=("dhrystone",),
                     engines=("fast", "pipeline", "compiled"),
                     optimize=(True,),
                     machines=(DEFAULT_MACHINE_NAME, "btfn4", "slowfetch5"))
    outcome = run_sweep(spec, out, jobs=1)
    db = ResultsDB()
    db.ingest(out)
    yield outcome, db
    db.close()


class TestEndToEndSweep:
    def test_sweep_runs_every_corner_verified(self, machine_sweep_run):
        outcome, _ = machine_sweep_run
        assert outcome.ok
        assert len(outcome.records) == 9
        assert all(record["verified"] for record in outcome.records)
        assert {record["machine"] for record in outcome.records} == \
            {DEFAULT_MACHINE_NAME, "btfn4", "slowfetch5"}

    def test_engines_agree_within_each_config(self, machine_sweep_run):
        outcome, _ = machine_sweep_run
        by_machine = {}
        for record in outcome.records:
            by_machine.setdefault(record["machine"], set()).add(
                (record["cycles"], record["state_digest"]))
        for machine, results in by_machine.items():
            assert len(results) == 1, (
                f"engines disagree under {machine}: {results}")

    def test_configs_differ_from_each_other(self, machine_sweep_run):
        outcome, _ = machine_sweep_run
        cycles = {record["machine"]: record["cycles"]
                  for record in outcome.records}
        assert cycles["btfn4"] < cycles[DEFAULT_MACHINE_NAME] \
            < cycles["slowfetch5"]

    def test_resultsdb_machine_column_filters(self, machine_sweep_run):
        _, db = machine_sweep_run
        corner = db.query(machine="btfn4", status="ok")
        assert len(corner) == 3
        assert all(record["machine"] == "btfn4" for record in corner)
        default_only = db.query(machine=DEFAULT_MACHINE_NAME, status="ok")
        assert len(default_only) == 3

    def test_report_corners_table_has_one_row_per_config(self, machine_sweep_run):
        _, db = machine_sweep_run
        table = machine_corners(db, HardwareFramework())
        assert table.headers[0] == "config"
        configs = [row[0] for row in table.rows]
        assert configs[0] == DEFAULT_MACHINE_NAME
        assert set(configs) == {DEFAULT_MACHINE_NAME, "btfn4", "slowfetch5"}
        # Deeper fetch latency costs DMIPS; the corners table shows it.
        assert table.metrics["slowfetch5_cntfet_dmips_per_mhz"] < \
            table.metrics[f"{DEFAULT_MACHINE_NAME}_cntfet_dmips_per_mhz"]


class TestCLISurface:
    def test_sweep_parser_accepts_machines(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--machines", "btfn4", "ideal2"])
        assert args.machines == ["btfn4", "ideal2"]

    def test_fuzz_machine_flag_end_to_end(self, capsys):
        assert main(["fuzz", "--count", "5", "--seed", "9",
                     "--machine", "ideal2"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_run_machine_flag(self, tmp_path, capsys):
        source = tmp_path / "tiny.s"
        source.write_text("li a0, 5\nli a1, 7\nadd a0, a0, a1\necall\n")
        assert main(["run", str(source), "--machine", "ideal2"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out.lower()

    def test_sweep_cli_machine_axis_smoke(self, tmp_path, capsys):
        out_dir = str(tmp_path / "run")
        assert main(["sweep", "--workloads", "bubble_sort",
                     "--engines", "fast", "--optimize", "on",
                     "--machines", DEFAULT_MACHINE_NAME, "ideal2",
                     "--jobs", "1", "--out", out_dir]) == 0
        output = capsys.readouterr().out
        assert "@ideal2" in output
        records = [json.loads(line) for line in
                   open(os.path.join(out_dir, "results.jsonl"),
                        encoding="utf-8")]
        assert {record["machine"] for record in records} == \
            {DEFAULT_MACHINE_NAME, "ideal2"}
