"""Tests for the coordinator write-ahead journal and restart recovery.

The journal's whole contract is that a ``kill -9`` at any byte offset
leaves recoverable state: torn tails are sealed and skipped, leased jobs
are identified, and dispatch counts survive the restart.  The replay half
is tested here as pure functions; the end-to-end crash-and-resume path is
covered by the resilience tests and the chaos harness.
"""

import asyncio
import json
import os

import pytest

from repro.runner.spec import SweepJob
from repro.service.coordinator import Coordinator
from repro.service.journal import (
    JournalRecovery,
    RunJournal,
    journal_path,
    recover_from_events,
    recover_run,
    replay_journal,
)
from repro.service.workerclient import work_async


def _jobs(count):
    return [
        SweepJob("bubble_sort", "fast", True, params=(("length", 4 + 2 * i),))
        for i in range(count)
    ]


def _stub_executor(job):
    return {"job_id": job.job_id, "label": job.label, "status": "ok",
            "verified": True, "cycles": 1}


class TestRunJournal:
    def test_append_writes_whole_fsynced_lines(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path) as journal:
            journal.append("enqueued", job_id="a")
            journal.append("leased", job_id="a", worker="w1", attempt=1)
        lines = open(path).read().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"event": "enqueued", "job_id": "a"}
        assert json.loads(lines[1])["worker"] == "w1"

    def test_append_many_batches_under_one_flush(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path) as journal:
            journal.append_many({"event": "enqueued", "job_id": f"j{i}"}
                                for i in range(5))
            assert journal.events_written == 5
        assert len(replay_journal(path)) == 5

    def test_append_seals_a_torn_tail_first(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as handle:
            handle.write('{"event":"enqueued","job_id":"a"}\n')
            handle.write('{"event":"leased","job_id":"a"')  # no newline
        with RunJournal(path) as journal:
            journal.append("requeued", job_id="a", reason="restart")
        events = replay_journal(path)
        # The torn lease is dropped; the sealed append is intact.
        assert [event["event"] for event in events] == ["enqueued", "requeued"]

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert replay_journal(str(tmp_path / "nope.jsonl")) == []

    def test_replay_skips_garbage_and_non_events(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as handle:
            handle.write('{"event":"enqueued","job_id":"a"}\n')
            handle.write('[1, 2, 3]\n')
            handle.write('{"no_event_key": true}\n')
            handle.write('{"event":"leased","job_id":"a","worker":"w"}\n')
            handle.write('{"event":"result-acce')  # torn tail
        events = replay_journal(path)
        assert [event["event"] for event in events] == ["enqueued", "leased"]

    def test_journal_path_lands_next_to_results(self, tmp_path):
        assert journal_path(str(tmp_path)) == str(tmp_path / "journal.jsonl")


class TestRecovery:
    def test_lease_without_outcome_is_recovered(self):
        recovery = recover_from_events([
            {"event": "enqueued", "job_id": "a"},
            {"event": "leased", "job_id": "a", "worker": "w1"},
            {"event": "leased", "job_id": "b", "worker": "w2"},
            {"event": "result-accepted", "job_id": "b", "status": "ok"},
        ])
        assert recovery.leased == {"a": "w1"}
        assert recovery.dispatch_counts == {"a": 1, "b": 1}
        assert recovery.events_replayed == 4

    def test_requeue_and_lost_clear_the_lease(self):
        recovery = recover_from_events([
            {"event": "leased", "job_id": "a", "worker": "w1"},
            {"event": "requeued", "job_id": "a", "reason": "disconnect"},
            {"event": "leased", "job_id": "a", "worker": "w2"},
            {"event": "leased", "job_id": "b", "worker": "w2"},
            {"event": "lost", "job_id": "b", "reason": "poison"},
        ])
        assert recovery.leased == {"a": "w2"}
        assert recovery.dispatch_counts == {"a": 2, "b": 1}

    def test_results_file_wins_over_a_torn_accept_event(self):
        # The record hit results.jsonl but the result-accepted event was
        # lost to the crash: the job must NOT be treated as leased.
        recovery = recover_from_events(
            [{"event": "leased", "job_id": "a", "worker": "w1"}],
            completed_ids={"a"})
        assert recovery.leased == {}
        assert recovery.dispatch_counts == {"a": 1}

    def test_malformed_job_ids_are_ignored(self):
        recovery = recover_from_events([
            {"event": "leased", "job_id": 17},
            {"event": "leased"},
            {"event": "leased", "job_id": "ok", "worker": "w"},
        ])
        assert recovery.leased == {"ok": "w"}

    def test_recover_run_reads_the_run_directory(self, tmp_path):
        with RunJournal(journal_path(str(tmp_path))) as journal:
            journal.append("leased", job_id="a", worker="w1")
        recovery = recover_run(str(tmp_path))
        assert isinstance(recovery, JournalRecovery)
        assert recovery.leased == {"a": "w1"}
        assert "1 leased jobs requeued" in recovery.summary()


class TestCoordinatorJournaling:
    def test_full_run_journals_every_lifecycle_transition(self, tmp_path):
        path = journal_path(str(tmp_path))
        jobs = _jobs(3)
        journal = RunJournal(path)
        coordinator = Coordinator(jobs, on_result=lambda record: None,
                                  journal=journal)

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            await asyncio.gather(
                work_async("127.0.0.1", port, name="w1",
                           executor=_stub_executor),
                serve,
            )

        asyncio.run(scenario())
        journal.close()
        events = replay_journal(path)
        kinds = [event["event"] for event in events]
        assert kinds.count("enqueued") == 3
        assert kinds.count("leased") == 3
        assert kinds.count("result-accepted") == 3
        # Nothing was requeued or lost in a healthy run.
        assert "requeued" not in kinds and "lost" not in kinds
        # Every lease is attributed to the worker that got the job.
        assert {event["worker"] for event in events
                if event["event"] == "leased"} == {"w1"}

    def test_seeded_dispatch_counts_keep_the_poison_budget(self):
        # A job that already burned its attempts before the crash must be
        # declared lost on the first post-restart failure, not given a
        # fresh budget.
        jobs = _jobs(1)
        records = []
        coordinator = Coordinator(
            jobs, on_result=records.append, heartbeat_timeout=0.3,
            max_requeues=3, dispatch_counts={jobs[0].job_id: 3})

        async def dying_worker(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            from repro.service.protocol import read_message, send_and_drain
            await send_and_drain(writer, {"type": "hello", "worker": "w",
                                          "pid": 0})
            await send_and_drain(writer, {"type": "next"})
            message = await read_message(reader)
            assert message["type"] == "job"
            writer.close()  # vanish with the job: 4th dispatch failure

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            await dying_worker(port)
            return await serve

        stats = asyncio.run(scenario())
        assert stats.lost_jobs == 1
        assert stats.requeues == 0
        assert records and "lost after 4 dispatch attempts" in \
            records[0]["error"]

    def test_recovered_jobs_show_up_in_stats_summary(self):
        coordinator = Coordinator([], recovered_jobs=2)
        assert coordinator.stats.recovered_jobs == 2
        assert "2 recovered jobs" in coordinator.stats.summary()
