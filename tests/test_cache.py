"""The cross-process artifact cache: store semantics and layer integration.

Covers the :mod:`repro.cache` store itself (addressing, atomicity-adjacent
behaviour, corruption tolerance, environment plumbing), Program
serialisation round-trips, the cached translation path of
:class:`SoftwareFramework`, and the worker-level integration that makes a
fresh process reuse another process's translations.
"""

import json
import os

import pytest

from repro.cache import (
    ArtifactCache,
    CACHE_DIR_ENV,
    CACHE_DISABLE_ENV,
    cache_key,
    default_cache,
    reset_default_cache,
)
from repro.framework import SoftwareFramework, TranslationSummary
from repro.runner import SweepJob, execute_job
from repro.runner.worker import reset_caches
from repro.sim import FastEngine
from repro.isa.program import Program


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(str(tmp_path / "artifacts"))


@pytest.fixture
def isolated_default_cache(tmp_path, monkeypatch):
    """Point the process-wide default cache at a private directory."""
    root = str(tmp_path / "default-cache")
    monkeypatch.setenv(CACHE_DIR_ENV, root)
    monkeypatch.delenv(CACHE_DISABLE_ENV, raising=False)
    reset_default_cache()
    reset_caches()
    yield root
    reset_default_cache()
    reset_caches()


class TestArtifactCacheStore:
    def test_roundtrip(self, cache):
        material = {"kind": "unit", "value": 7}
        assert cache.get_json("probe", material) is None
        cache.put_json("probe", material, {"answer": 42})
        assert cache.get_json("probe", material) == {"answer": 42}
        assert cache.hits == 1 and cache.misses == 1 and cache.writes == 1

    def test_key_material_addresses_the_content(self, cache):
        cache.put_json("probe", {"v": 1}, {"payload": "one"})
        assert cache.get_json("probe", {"v": 2}) is None
        assert cache.get_json("probe", {"v": 1}) == {"payload": "one"}
        assert cache_key({"v": 1}) != cache_key({"v": 2})
        # Canonicalisation: key order never matters.
        assert cache_key({"a": 1, "b": 2}) == cache_key({"b": 2, "a": 1})

    def test_corrupted_entry_is_a_miss(self, cache):
        material = {"torn": True}
        cache.put_json("probe", material, {"fine": 1})
        path = cache.path_for("probe", cache_key(material))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"trunca')
        assert cache.get_json("probe", material) is None

    def test_non_dict_entry_is_a_miss(self, cache):
        material = {"shape": "wrong"}
        cache.put_json("probe", material, {"fine": 1})
        path = cache.path_for("probe", cache_key(material))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("[1, 2, 3]")
        assert cache.get_json("probe", material) is None

    def test_entry_count_kinds_and_clear(self, cache):
        cache.put_json("alpha", {"i": 1}, {})
        cache.put_json("alpha", {"i": 2}, {})
        cache.put_json("beta", {"i": 1}, {})
        assert cache.kinds() == ["alpha", "beta"]
        assert cache.entry_count() == 3
        assert cache.entry_count("alpha") == 2
        assert cache.clear() == 3
        assert cache.entry_count() == 0

    def test_stats_line_mentions_the_root(self, cache):
        assert cache.root in cache.stats_line()

    def test_default_cache_env_dir_and_disable(self, tmp_path, monkeypatch):
        root = str(tmp_path / "from-env")
        monkeypatch.setenv(CACHE_DIR_ENV, root)
        monkeypatch.delenv(CACHE_DISABLE_ENV, raising=False)
        reset_default_cache()
        assert default_cache().root == root
        monkeypatch.setenv(CACHE_DISABLE_ENV, "1")
        assert default_cache() is None
        monkeypatch.setenv(CACHE_DISABLE_ENV, "0")
        assert default_cache().root == root
        reset_default_cache()


class TestCacheGrowthControl:
    """disk_stats() and prune(): the ``art9 cache`` maintenance surface."""

    @staticmethod
    def _age(cache, kind, material, seconds_ago):
        """Backdate one entry's mtime so LRU order is deterministic."""
        path = cache.path_for(kind, cache_key(material))
        stamp = os.stat(path).st_mtime - seconds_ago
        os.utime(path, (stamp, stamp))

    def test_disk_stats_counts_entries_and_bytes_per_kind(self, cache):
        cache.put_json("alpha", {"i": 1}, {"pad": "x" * 64})
        cache.put_json("alpha", {"i": 2}, {"pad": "y" * 64})
        cache.put_json("beta", {"i": 1}, {})
        stats = cache.disk_stats()
        assert stats["root"] == cache.root
        assert stats["entries"] == 3
        assert set(stats["kinds"]) == {"alpha", "beta"}
        assert stats["kinds"]["alpha"]["entries"] == 2
        assert stats["kinds"]["beta"]["entries"] == 1
        assert stats["bytes"] == (stats["kinds"]["alpha"]["bytes"]
                                  + stats["kinds"]["beta"]["bytes"])
        assert stats["kinds"]["alpha"]["bytes"] > stats["kinds"]["beta"]["bytes"]

    def test_disk_stats_on_missing_root_is_empty(self, tmp_path):
        stats = ArtifactCache(str(tmp_path / "never-written")).disk_stats()
        assert stats["entries"] == 0 and stats["bytes"] == 0
        assert stats["kinds"] == {}

    def test_prune_evicts_oldest_first_until_under_budget(self, cache):
        for index in range(4):
            cache.put_json("probe", {"i": index}, {"pad": "z" * 100})
        # Oldest → newest: 0, 1, 2, 3.
        for index in range(4):
            self._age(cache, "probe", {"i": index}, seconds_ago=(4 - index) * 60)
        total = cache.disk_stats()["bytes"]
        per_entry = total // 4
        summary = cache.prune(max_bytes=total - per_entry)
        assert summary["removed"] == 1
        assert summary["kept"] == 3
        # The oldest entry went; the newest three survive.
        assert cache.get_json("probe", {"i": 0}) is None
        for index in (1, 2, 3):
            assert cache.get_json("probe", {"i": index}) is not None
        assert cache.disk_stats()["bytes"] <= total - per_entry

    def test_prune_zero_clears_everything_and_shard_dirs(self, cache):
        cache.put_json("alpha", {"i": 1}, {})
        cache.put_json("beta", {"i": 1}, {})
        summary = cache.prune(max_bytes=0)
        assert summary["removed"] == 2 and summary["kept"] == 0
        assert summary["kept_bytes"] == 0
        assert cache.entry_count() == 0
        for kind in ("alpha", "beta"):
            base = os.path.join(cache.root, kind)
            assert os.listdir(base) == []  # emptied shard dirs removed

    def test_prune_under_budget_is_a_no_op(self, cache):
        cache.put_json("probe", {"i": 1}, {"keep": True})
        summary = cache.prune(max_bytes=10**9)
        assert summary["removed"] == 0
        assert cache.get_json("probe", {"i": 1}) == {"keep": True}

    def test_prune_rejects_negative_budget(self, cache):
        with pytest.raises(ValueError, match="max_bytes"):
            cache.prune(max_bytes=-1)

    def test_prune_leaves_in_flight_temp_files_alone(self, cache):
        cache.put_json("probe", {"i": 1}, {})
        shard = os.path.dirname(cache.path_for("probe",
                                               cache_key({"i": 1})))
        temp = os.path.join(shard, "writerXYZ.tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write("{partial")
        cache.prune(max_bytes=0)
        assert os.path.exists(temp)  # the in-flight writer's file survives
        assert cache.get_json("probe", {"i": 1}) is None


class TestProgramSerialisation:
    @pytest.fixture(scope="class")
    def translated(self):
        software = SoftwareFramework()
        return software.compile_named_workload("gemm", {"n": 2})

    def test_roundtrip_is_exact(self, translated):
        program, _, _ = translated
        rebuilt = Program.from_dict(program.to_dict())
        assert rebuilt.to_dict() == program.to_dict()
        assert rebuilt.listing() == program.listing()
        assert rebuilt.content_digest() == program.content_digest()

    def test_rebuilt_program_executes_identically(self, translated):
        program, _, _ = translated
        rebuilt = Program.from_dict(json.loads(json.dumps(program.to_dict())))
        original = FastEngine(program).run()
        replayed = FastEngine(rebuilt).run()
        assert replayed.registers == original.registers
        assert replayed.memory == original.memory

    def test_digest_tracks_content(self, translated):
        program, _, _ = translated
        modified = program.copy()
        modified.instructions[0].imm = (modified.instructions[0].imm or 0) + 1
        assert modified.content_digest() != program.content_digest()


class TestCachedTranslation:
    def test_miss_then_cross_instance_hit(self, cache):
        first = SoftwareFramework()
        program_a, summary_a, workload_a = first.compile_named_workload_cached(
            "bubble_sort", {"length": 8}, cache=cache)
        assert cache.entry_count("xlate") == 1
        second = SoftwareFramework()  # fresh in-process memo: must hit disk
        program_b, summary_b, workload_b = second.compile_named_workload_cached(
            "bubble_sort", {"length": 8}, cache=cache)
        assert cache.hits >= 1
        assert program_b.to_dict() == program_a.to_dict()
        assert summary_b == summary_a
        assert workload_b.name == workload_a.name

    def test_summary_matches_the_full_report(self, cache):
        software = SoftwareFramework()
        program, report, _ = software.compile_named_workload("sobel", None)
        _, summary, _ = software.compile_named_workload_cached(
            "sobel", None, cache=cache)
        assert isinstance(summary, TranslationSummary)
        assert summary.final_instructions == report.final_instructions
        assert summary.instruction_expansion == report.instruction_expansion
        assert summary.ternary_memory_trits == report.ternary_memory_trits
        assert summary.memory_cell_ratio == report.memory_cell_ratio

    def test_optimize_flag_is_part_of_the_key(self, cache):
        SoftwareFramework(optimize=True).compile_named_workload_cached(
            "bubble_sort", {"length": 8}, cache=cache)
        SoftwareFramework(optimize=False).compile_named_workload_cached(
            "bubble_sort", {"length": 8}, cache=cache)
        assert cache.entry_count("xlate") == 2

    def test_workload_source_change_invalidates(self, cache, monkeypatch):
        SoftwareFramework().compile_named_workload_cached(
            "bubble_sort", {"length": 8}, cache=cache)
        import repro.framework.swflow as swflow
        from repro.workloads import get_workload as real_get_workload

        def tweaked(name, **params):
            workload = real_get_workload(name, **params)
            workload.rv_source = "# builder edited\n" + workload.rv_source
            return workload

        monkeypatch.setattr(swflow, "get_workload", tweaked)
        SoftwareFramework().compile_named_workload_cached(
            "bubble_sort", {"length": 8}, cache=cache)
        assert cache.entry_count("xlate") == 2  # old entry no longer addressed

    def test_translator_version_invalidates(self, cache, monkeypatch):
        SoftwareFramework().compile_named_workload_cached(
            "bubble_sort", {"length": 8}, cache=cache)
        import repro.framework.swflow as swflow
        monkeypatch.setattr(swflow, "TRANSLATOR_VERSION", 999)
        SoftwareFramework().compile_named_workload_cached(
            "bubble_sort", {"length": 8}, cache=cache)
        assert cache.entry_count("xlate") == 2

    def test_cache_none_bypasses_the_disk(self, tmp_path):
        software = SoftwareFramework()
        software.compile_named_workload_cached("bubble_sort", {"length": 8},
                                               cache=None)
        assert not os.path.exists(str(tmp_path / "artifacts"))


class TestWorkerIntegration:
    JOB = SweepJob("bubble_sort", "compiled", True, params=(("length", 8),))

    def test_execute_job_populates_and_reuses_the_cache(
            self, isolated_default_cache):
        record = execute_job(self.JOB)
        assert record["status"] == "ok" and record["verified"]
        shared = default_cache()
        assert shared.entry_count("xlate") >= 1
        assert shared.entry_count("codegen") >= 1
        # A "new process": drop every in-process memo, keep the disk.
        reset_caches()
        reset_default_cache()
        from repro.sim.compiled import _CODE_MEMO
        _CODE_MEMO.clear()
        again = execute_job(self.JOB)
        assert again["status"] == "ok"
        assert again["cycles"] == record["cycles"]
        assert again["state_digest"] == record["state_digest"]
        assert default_cache().hits >= 1

    def test_compiled_and_fast_jobs_produce_identical_numbers(
            self, isolated_default_cache):
        compiled = execute_job(self.JOB)
        fast = execute_job(SweepJob("bubble_sort", "fast", True,
                                    params=(("length", 8),)))
        assert compiled["cycles"] == fast["cycles"]
        assert compiled["stats"] == fast["stats"]
        assert compiled["state_digest"] == fast["state_digest"]
        assert compiled["translated_instructions"] == fast["translated_instructions"]
