"""Regenerate the golden-trace fixtures from the pipeline reference model.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regenerate.py

Only do this deliberately — e.g. after an *intentional* architectural or
cycle-model change — and review the resulting fixture diffs like any other
behaviour change.  The regression suite (``tests/test_golden_traces.py``)
replays all three executors against these files.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.framework import SoftwareFramework  # noqa: E402
from repro.sim.trace import capture_golden_trace  # noqa: E402

#: (workload name, builder params) instances pinned by the suite.
GOLDEN_INSTANCES = [
    ("bubble_sort", {}),
    ("gemm", {}),
    ("sobel", {}),
    ("dhrystone", {}),
]

FIXTURE_DIR = os.path.dirname(os.path.abspath(__file__))


def fixture_path(name: str, params: dict) -> str:
    suffix = "".join(f"_{key}{value}" for key, value in sorted(params.items()))
    return os.path.join(FIXTURE_DIR, f"{name}{suffix}.json")


def regenerate() -> None:
    software = SoftwareFramework(optimize=True)
    for name, params in GOLDEN_INSTANCES:
        program, _, workload = software.compile_named_workload(name, params)
        trace = capture_golden_trace(program)
        trace["workload"] = name
        trace["params"] = params
        trace["optimize"] = True
        path = fixture_path(name, params)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}: {trace['stats']['cycles']} cycles, "
              f"digest {trace['state_digest'][:12]}…")


if __name__ == "__main__":
    regenerate()
