"""Regenerate the golden-trace fixtures from the pipeline reference model.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regenerate.py

Only do this deliberately — e.g. after an *intentional* architectural or
cycle-model change — and review the resulting fixture diffs like any other
behaviour change.  The regression suite (``tests/test_golden_traces.py``)
replays all three executors against these files.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.framework import SoftwareFramework  # noqa: E402
from repro.sim.machine import DEFAULT_MACHINE_NAME, machine_names  # noqa: E402
from repro.sim.trace import capture_golden_trace  # noqa: E402

#: (workload name, builder params) instances pinned by the suite.
GOLDEN_INSTANCES = [
    ("bubble_sort", {}),
    ("gemm", {}),
    ("sobel", {}),
    ("dhrystone", {}),
]

#: Non-default machine configs with their own fixture subdirectories
#: (``tests/golden/<machine>/``).  The default machine's fixtures live at
#: the top level, unchanged since before the machine axis existed.
GOLDEN_MACHINES = tuple(
    name for name in machine_names() if name != DEFAULT_MACHINE_NAME)

FIXTURE_DIR = os.path.dirname(os.path.abspath(__file__))


def fixture_path(name: str, params: dict, machine: str = DEFAULT_MACHINE_NAME) -> str:
    suffix = "".join(f"_{key}{value}" for key, value in sorted(params.items()))
    directory = (FIXTURE_DIR if machine == DEFAULT_MACHINE_NAME
                 else os.path.join(FIXTURE_DIR, machine))
    return os.path.join(directory, f"{name}{suffix}.json")


def regenerate() -> None:
    software = SoftwareFramework(optimize=True)
    machines = (DEFAULT_MACHINE_NAME,) + GOLDEN_MACHINES
    for name, params in GOLDEN_INSTANCES:
        program, _, workload = software.compile_named_workload(name, params)
        for machine in machines:
            # The default-machine fixtures predate the machine axis and
            # must stay byte-identical, so they carry no machine key.
            if machine == DEFAULT_MACHINE_NAME:
                trace = capture_golden_trace(program)
            else:
                trace = capture_golden_trace(program, machine=machine)
            trace["workload"] = name
            trace["params"] = params
            trace["optimize"] = True
            path = fixture_path(name, params, machine)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(trace, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {path}: {trace['stats']['cycles']} cycles, "
                  f"digest {trace['state_digest'][:12]}…")


if __name__ == "__main__":
    regenerate()
