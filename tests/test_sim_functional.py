"""Tests for the functional (architectural) ART-9 simulator."""

import pytest

from repro.isa import assemble
from repro.sim import FunctionalSimulator, SimulationError


def run(source, **kwargs):
    simulator = FunctionalSimulator(assemble(source), **kwargs)
    result = simulator.run()
    return simulator, result


class TestArithmeticPrograms:
    def test_constant_building_and_addition(self):
        simulator, result = run("""
            LIW T1, 700
            LIW T2, 42
            ADD T1, T2
            HALT
        """)
        assert result.register("T1") == 742

    def test_subtraction_and_negation(self):
        simulator, result = run("""
            LIW T1, 100
            LIW T2, 250
            SUB T1, T2
            STI T3, T1
            HALT
        """)
        assert result.register("T1") == -150
        assert result.register("T3") == 150

    def test_logic_and_shift_instructions(self):
        simulator, result = run("""
            LIW T1, 5
            SLI T1, 2       # 5 * 9 = 45
            LIW T2, 4
            SL  T1, T2      # 45 * 81 = 3645
            SRI T1, 1       # 1215
            HALT
        """)
        assert result.register("T1") == 1215

    def test_comp_and_conditional_branch(self):
        simulator, result = run("""
            LIW T1, 10
            LIW T2, 20
            MV  T3, T1
            COMP T3, T2
            BEQ T3, -1, smaller
            ADDI T4, 1
        smaller:
            ADDI T5, 1
            HALT
        """)
        assert result.register("T4") == 0   # skipped
        assert result.register("T5") == 1


class TestMemoryAndControl:
    def test_load_store_with_offsets(self):
        simulator, result = run("""
            LIW T1, 50
            LIW T2, 5
            STORE T1, T2, 3     # TDM[8] = 50
            LOAD  T3, T2, 3
            LOAD  T4, T0, 8
            HALT
        """)
        assert result.register("T3") == 50
        assert result.register("T4") == 50
        assert simulator.tdm.read_int(8) == 50

    def test_data_segment_is_preloaded(self):
        simulator, result = run("""
            LIW T1, table
            LOAD T2, T1, 1
            HALT
        .data
        table: .word 7, -9, 11
        """)
        assert result.register("T2") == -9

    def test_jal_and_jalr_subroutine(self):
        simulator, result = run("""
            LIW T1, 5
            JAL T8, double
            JAL T8, double
            HALT
        double:
            ADD T1, T1
            JALR T6, T8, 0
        """)
        assert result.register("T1") == 20

    def test_loop_counts_iterations(self):
        simulator, result = run("""
            LIW T1, 0
            LIW T2, 10
        loop:
            ADDI T1, 1
            MV  T3, T1
            COMP T3, T2
            BNE T3, 0, loop
            HALT
        """)
        assert result.register("T1") == 10
        assert result.instruction_mix["ADDI"] == 10

    def test_negative_memory_addresses_wrap(self):
        simulator, result = run("""
            LIW T1, 77
            STORE T1, T0, -1
            LOAD  T2, T0, -1
            HALT
        """)
        assert result.register("T2") == 77
        assert simulator.tdm.read_int(3 ** 9 - 1) == 77


class TestErrorHandling:
    def test_runaway_program_detected(self):
        simulator = FunctionalSimulator(assemble("loop:\nJAL T6, loop"))
        with pytest.raises(SimulationError):
            simulator.run(max_instructions=100)

    def test_pc_out_of_range_detected(self):
        simulator = FunctionalSimulator(assemble("ADDI T1, 1"))  # no HALT
        with pytest.raises(SimulationError):
            simulator.run(max_instructions=10)

    def test_step_after_halt_returns_none(self):
        simulator = FunctionalSimulator(assemble("HALT"))
        simulator.run()
        assert simulator.step() is None
