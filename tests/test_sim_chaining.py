"""Superblock chaining and profile-guided recompilation tests.

The broad bit-identity evidence for the chained-by-default engine lives in
the differential/golden suites (which now execute chained code paths
everywhere); this file pins the chaining-specific machinery:

* the static chain builder (JAL inlining, single-predecessor fall-through,
  join points and ambiguous branches rejected);
* the PGO plan derivation (hot-share gate, dominant-successor extension)
  and its stable digest;
* the two-pass PGO engine's parity with FastEngine — goldens, all machine
  configs, randomized fuzz, and the awkward seams: JALR landing inside a
  chained region, memory faults mid-chain and mid-PGO-trace, cold-path
  bail-outs;
* cache-key isolation between plain / chained / profiled / PGO artifacts
  and the cacheable chain plan;
* ``block_profile()`` accounting summing exactly to the executed
  instruction count under chaining, bail-outs and faults.
"""

import glob
import json
import os

import pytest

from repro.cache import ArtifactCache, cache_key
from repro.framework import SoftwareFramework
from repro.isa.assembler import assemble
from repro.sim import (
    CompiledEngine,
    FastEngine,
    MemoryError_,
    SimulationError,
)
from repro.sim.compiled import (
    _PLAN_MEMO,
    CHAIN_PLAN_VERSION,
    build_chain,
    chain_plan_digest,
    chain_span,
    pgo_chain_plan,
    superblock_leaders,
    superblock_span,
    _static_pred_counts,
)
from repro.sim.machine import machine_names
from repro.sim.trace import state_digest, trace_mismatches
from repro.testing import generate_program
from repro.testing.differential import STATS_FIELDS

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_PATHS = sorted(glob.glob(os.path.join(GOLDEN_DIR, "*.json")))

_software = SoftwareFramework(optimize=True)


def _predecode(program):
    return FastEngine._predecode(program)


def _fixture_id(path):
    return os.path.splitext(os.path.basename(path))[0]


@pytest.fixture(scope="module")
def dhrystone_program():
    program, _, _ = _software.compile_named_workload("dhrystone", {})
    return program


class TestChainPlanMachinery:
    def test_static_chain_inlines_jal_target(self):
        program = assemble(
            "LI T1, 3\nJAL T8, callee\nHALT\ncallee:\nADDI T1, 1\nHALT")
        records = _predecode(program)
        leaders = superblock_leaders(records)
        preds = _static_pred_counts(records, leaders)
        chain = build_chain(records, leaders, preds, 0)
        assert chain == [0, 3]
        assert chain_span(records, leaders, chain) == [0, 1, 3, 4]

    def test_fall_through_join_point_is_not_chained(self):
        # The block after the BNE falls through into `skip`, but `skip`
        # has two static predecessors (the fall-through and the branch),
        # so inlining it would duplicate a join point.
        program = assemble(
            "BNE T1, 0, skip\nADDI T2, 1\nskip:\nHALT")
        records = _predecode(program)
        leaders = superblock_leaders(records)
        preds = _static_pred_counts(records, leaders)
        assert build_chain(records, leaders, preds, 0) == [0]  # ends BNE
        assert build_chain(records, leaders, preds, 1) == [1]  # join ahead

    def test_chain_span_rejects_ambiguous_branch_seam(self):
        # imm == 1: taken and fall-through targets coincide but their
        # redirect costs differ, so no constant seam gap exists.
        program = assemble("BNE T1, 0, next\nnext:\nHALT")
        records = _predecode(program)
        leaders = superblock_leaders(records)
        with pytest.raises(ValueError, match="ambiguous"):
            chain_span(records, leaders, [0, 1])

    def test_chain_span_rejects_non_successor_seam(self):
        program = assemble(
            "LI T1, 3\nJAL T8, callee\nHALT\ncallee:\nADDI T1, 1\nHALT")
        records = _predecode(program)
        leaders = superblock_leaders(records)
        with pytest.raises(ValueError, match="JAL target mismatch"):
            chain_span(records, leaders, [0, 2])

    def test_pgo_plan_extends_through_dominant_branch(self):
        program = assemble(
            "LI T1, 10\nloop:\nADDI T1, -1\nBNE T1, 0, loop\nHALT")
        records = _predecode(program)
        leaders = superblock_leaders(records)
        counts = {0: 1, 1: 10, 3: 1}
        # Fall-through dominant: the loop-exit direction extends the trace.
        # The entry block 0 is hot too and chains through the same seam.
        plan = pgo_chain_plan(records, leaders, counts,
                              {(1, 3): 9, (1, 1): 1})
        assert plan[1] == [1, 3]
        assert plan[0] == [0, 1, 3]
        # No dominant direction: the branch ends the trace.
        plan = pgo_chain_plan(records, leaders, counts,
                              {(1, 3): 5, (1, 1): 5})
        assert 1 not in plan

    def test_pgo_plan_hot_share_gate(self):
        program = assemble(
            "LI T1, 10\nloop:\nADDI T1, -1\nBNE T1, 0, loop\nHALT")
        records = _predecode(program)
        leaders = superblock_leaders(records)
        # Block 1 is cold relative to the total: no trace for it, even
        # though its exit edge is 100% dominant — only the hot entry block
        # earns one.
        plan = pgo_chain_plan(records, leaders, {0: 100_000, 1: 1, 3: 1},
                              {(1, 3): 1})
        assert 1 not in plan
        assert 3 not in plan
        # An empty profile yields an empty plan, never a division error.
        assert pgo_chain_plan(records, leaders, {}, {}) == {}

    def test_chain_plan_digest_is_order_insensitive_and_content_bound(self):
        a = {1: [1, 3], 5: [5, 6]}
        b = {5: [5, 6], 1: [1, 3]}
        assert chain_plan_digest(a) == chain_plan_digest(b)
        assert chain_plan_digest(a) != chain_plan_digest({1: [1, 3]})


class TestPgoParity:
    @pytest.mark.parametrize("machine", machine_names())
    def test_pgo_matches_fast_engine_on_dhrystone(self, dhrystone_program,
                                                  machine):
        fast = FastEngine(dhrystone_program, machine=machine)
        fast_stats = fast.run_with_stats()
        engine = CompiledEngine(dhrystone_program, cache=None,
                                machine=machine, pgo=True)
        stats = engine.run_with_stats()
        for field in STATS_FIELDS:
            assert getattr(stats, field) == getattr(fast_stats, field), field
        assert engine.register_snapshot() == fast.register_snapshot()
        assert engine.tdm.contents() == fast.tdm.contents()

    @pytest.mark.parametrize("path", GOLDEN_PATHS, ids=_fixture_id)
    def test_pgo_engine_matches_golden(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
        program, _, _ = _software.compile_named_workload(
            trace["workload"], trace["params"])
        engine = CompiledEngine(program, cache=None, pgo=True)
        stats = engine.run_with_stats(max_cycles=50_000_000)
        mismatches = trace_mismatches(
            trace, engine.register_snapshot(), engine.tdm.contents(), stats)
        assert not mismatches, "\n".join(mismatches)
        assert state_digest(engine.register_snapshot(),
                            engine.tdm.contents()) == trace["state_digest"]

    @pytest.mark.parametrize("machine", ["paper3stage", "btfn4"])
    def test_pgo_fuzz_parity(self, machine):
        """Randomized programs: PGO engine vs FastEngine, errors included."""
        budget = 20_000
        for seed in range(25):
            program = generate_program(seed)
            fast = FastEngine(program, machine=machine)
            engine = CompiledEngine(program, cache=None, machine=machine,
                                    pgo=True, pgo_budget=2_000)
            fast_error = engine_error = None
            try:
                fast.run(max_instructions=budget)
            except (SimulationError, MemoryError_) as exc:
                fast_error = str(exc)
            try:
                engine.run(max_instructions=budget)
            except (SimulationError, MemoryError_) as exc:
                engine_error = str(exc)
            assert engine_error == fast_error, f"seed {seed}"
            if fast_error is None:
                assert engine.register_snapshot() == \
                    fast.register_snapshot(), f"seed {seed}"
                assert engine.tdm.contents() == fast.tdm.contents(), \
                    f"seed {seed}"
                assert engine.instructions_executed == \
                    fast.instructions_executed, f"seed {seed}"


class TestChainEdgeCases:
    def test_jalr_lands_mid_chained_trace(self):
        # The JAL at 2 chains block [0..2] with block [4..6]; the first
        # JALR then lands at address 5 — *inside* the chained span, at an
        # address that is not a block leader — forcing a lazy suffix
        # compile that must reproduce the fast engine exactly.
        source = (
            "LI T1, 5\n"
            "LI T5, 1\n"
            "JAL T8, tail\n"
            "HALT\n"
            "tail:\n"
            "ADDI T3, 1\n"
            "ADDI T3, 1\n"
            "BNE T5, 0, go\n"
            "LI T1, 3\n"
            "go:\n"
            "LI T5, 0\n"
            "JALR T2, T1, 0\n"
        )
        program = assemble(source, name="jalr-into-chain")
        engine = CompiledEngine(program, cache=None)
        assert any(len(chain) > 1 for chain in engine.chain_map().values())
        fast = FastEngine(program)
        fast_stats = fast.run_with_stats()
        stats = engine.run_with_stats()
        assert stats.cycles == fast_stats.cycles
        assert engine.register_snapshot() == fast.register_snapshot()
        assert 5 in engine._tables[True]  # the lazily compiled suffix

    def test_fault_mid_static_chain(self):
        # The STORE faults in the *second* block of a static JAL chain:
        # the restored architectural state (pc, committed count, register
        # prefix, instruction mix) must match the fast engine's strictly.
        program = assemble(
            "LI T2, 100\nJAL T8, tail\nHALT\n"
            "tail:\nADDI T3, 1\nSTORE T1, T2, 0\nHALT",
            name="fault-mid-chain")
        fast = FastEngine(program, tdm_depth=64)
        engine = CompiledEngine(program, tdm_depth=64, cache=None)
        assert engine.chain_map(), "fault block must be chain-interior"
        with pytest.raises(MemoryError_) as fast_exc:
            fast.run()
        with pytest.raises(MemoryError_) as engine_exc:
            engine.run()
        assert str(engine_exc.value) == str(fast_exc.value)
        assert engine.pc == fast.pc == 4
        assert engine.instructions_executed == fast.instructions_executed == 3
        assert engine.registers_snapshot() == fast.registers_snapshot()
        assert engine.instruction_mix() == fast.instruction_mix()

    def test_fault_mid_pgo_trace(self, tmp_path):
        # A deterministic program that faults cannot finish its own
        # profiling pass, so the trace is injected through the cacheable
        # chain-plan artifact — which also pins the cache-load path.  The
        # plan chains across a conditional seam (something static chaining
        # never does), and the STORE then faults inside the trace's
        # second block.
        program = assemble(
            "LI T2, 100\nLI T5, 0\nBNE T5, 0, alt\n"
            "ADDI T3, 1\nSTORE T1, T2, 0\nHALT\nalt:\nHALT",
            name="fault-mid-pgo-trace")
        cache = ArtifactCache(str(tmp_path / "artifacts"))
        probe = CompiledEngine(program, tdm_depth=64, cache=None)
        _PLAN_MEMO.clear()
        cache.put_json("chainplan", probe._plan_key_material(),
                       {"traces": {"0": [0, 3]}})
        engine = CompiledEngine(program, tdm_depth=64, cache=cache, pgo=True)
        engine.prepare(timing=False)
        assert engine.pgo_trace_map() == {0: [0, 3]}
        fast = FastEngine(program, tdm_depth=64)
        with pytest.raises(MemoryError_) as fast_exc:
            fast.run()
        with pytest.raises(MemoryError_) as engine_exc:
            engine.run()
        assert str(engine_exc.value) == str(fast_exc.value)
        assert engine.pc == fast.pc == 4
        assert engine.instructions_executed == fast.instructions_executed
        assert engine.registers_snapshot() == fast.registers_snapshot()
        assert engine.instruction_mix() == fast.instruction_mix()

    def test_pgo_trace_bailout_and_profile_accounting(self, tmp_path):
        # A loop whose back-edge is dominant (59 of 60 outcomes): the PGO
        # trace chains across the conditional, runs the hot direction
        # inline and bails out to the dispatch table exactly once, on the
        # final iteration.  Timing, architectural state and the profile
        # accounting must all survive the bail-out.
        program = assemble(
            "LI T1, 60\nloop:\nADDI T1, -1\nBNE T1, 0, cont\nHALT\n"
            "cont:\nADDI T3, 1\nJAL T8, loop",
            name="pgo-bailout")
        cache = ArtifactCache(str(tmp_path / "artifacts"))
        _PLAN_MEMO.clear()
        engine = CompiledEngine(program, cache=cache, pgo=True, profile=True)
        stats = engine.run_with_stats()
        assert engine.pgo_trace_map().get(1) == [1, 4]
        assert engine._trace_bails, "the loop exit must bail out"
        fast = FastEngine(program)
        fast_stats = fast.run_with_stats()
        for field in STATS_FIELDS:
            assert getattr(stats, field) == getattr(fast_stats, field), field
        assert engine.register_snapshot() == fast.register_snapshot()
        rows = engine.block_profile()
        assert sum(row["instructions"] for row in rows) == \
            engine.instructions_executed
        # The plan survived as a cache artifact for the next process.
        assert "chainplan" in cache.kinds()

    def test_block_profile_sums_under_static_chaining(self, dhrystone_program):
        engine = CompiledEngine(dhrystone_program, cache=None, profile=True)
        engine.run_with_stats()
        assert engine.chain_map(), "dhrystone must form static chains"
        rows = engine.block_profile()
        assert sum(row["instructions"] for row in rows) == \
            engine.instructions_executed


class TestCacheKeyIsolation:
    def test_plain_chained_profiled_pgo_bundles_never_cross(self, tmp_path):
        # The hot trace crosses the conditional back-to-top seam, which
        # static chaining cannot take — so the PGO overlay survives the
        # identical-to-static filter and gets its own codegen bundle.
        program = assemble(
            "LI T1, 30\nloop:\nADDI T1, -1\nBNE T1, 0, cont\nHALT\n"
            "cont:\nADDI T3, 1\nJAL T8, loop",
            name="key-isolation")
        cache = ArtifactCache(str(tmp_path / "artifacts"))
        _PLAN_MEMO.clear()
        plain = CompiledEngine(program, cache=cache, chain=False)
        chained = CompiledEngine(program, cache=cache)
        profiled = CompiledEngine(program, cache=cache, profile=True,
                                  chain=False)
        for engine in (plain, chained, profiled):
            engine.prepare(timing=True)
        keys = {cache_key(engine._cache_key_material(True))
                for engine in (plain, chained, profiled)}
        assert len(keys) == 3, "plain/chained/profiled share a cache key"
        for key in keys:
            assert os.path.exists(cache.path_for("codegen", key))
        before = cache.entry_count("codegen")
        pgo = CompiledEngine(program, cache=cache, pgo=True)
        pgo.prepare(timing=True)
        assert pgo.pgo_trace_map(), "the hot loop must get a PGO trace"
        # The overlay bundle is keyed separately (variant + plan digest):
        # installing it must add entries, never overwrite the plain ones.
        assert cache.entry_count("codegen") > before
        assert "chainplan" in cache.kinds()
        for key in keys:
            assert os.path.exists(cache.path_for("codegen", key))

    def test_cached_chain_plan_is_revalidated_against_the_program(
            self, tmp_path):
        # A plan whose seams no longer exist (here: pointing a chain at a
        # non-successor) must be discarded, not executed.
        program = assemble(
            "LI T1, 3\nJAL T8, callee\nHALT\ncallee:\nADDI T1, 1\nHALT",
            name="stale-plan")
        cache = ArtifactCache(str(tmp_path / "artifacts"))
        probe = CompiledEngine(program, cache=None)
        _PLAN_MEMO.clear()
        cache.put_json("chainplan", probe._plan_key_material(),
                       {"traces": {"2": [2, 0]}})
        engine = CompiledEngine(program, cache=cache, pgo=True)
        engine.prepare(timing=False)
        assert engine.pgo_trace_map() == {}
        fast = FastEngine(program)
        fast.run()
        engine.run()
        assert engine.register_snapshot() == fast.register_snapshot()
