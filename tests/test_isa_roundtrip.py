"""Property-style round-trip tests over every ART-9 encoding format.

For every mnemonic and a dense grid over its operand space, assert the full
tool-chain cycle is a fixed point::

    Instruction -> render -> assemble -> encode -> decode -> render
                -> re-assemble -> re-encode == original encoding

Example-based tests (test_isa_encoding.py) check known words; this sweep
catches encoder/decoder asymmetries anywhere in the operand space — field
placement errors, sign flips in balanced immediates, register bias mistakes.
"""

import pytest

from repro.isa.assembler import assemble
from repro.isa.decoder import decode_instruction
from repro.isa.disassembler import disassemble_program
from repro.isa.encoder import encode_instruction
from repro.isa.formats import ENCODING_TABLE, imm_range
from repro.isa.instructions import ALL_MNEMONICS, Instruction, spec_for
from repro.testing import generate_program

_REGISTERS = range(9)
_TRITS = (-1, 0, 1)


def _imm_samples(mnemonic: str):
    """The full immediate range for narrow fields, a dense stride for wide ones."""
    lo, hi = imm_range(mnemonic)
    if hi == 0:
        return (None,)
    if hi <= 13:
        return tuple(range(lo, hi + 1))
    values = set(range(lo, hi + 1, 3))
    values.update((lo, -1, 0, 1, hi))
    return tuple(sorted(values))


def _operand_grid(mnemonic: str):
    """Yield one Instruction per point of the operand grid of ``mnemonic``."""
    spec = spec_for(mnemonic)
    tas = _REGISTERS if "ta" in spec.operands else (None,)
    tbs = _REGISTERS if "tb" in spec.operands else (None,)
    trits = _TRITS if "branch_trit" in spec.operands else (None,)
    imms = _imm_samples(mnemonic) if "imm" in spec.operands else (None,)
    for ta in tas:
        for tb in tbs:
            for bt in trits:
                for imm in imms:
                    yield Instruction(mnemonic, ta=ta, tb=tb, imm=imm, branch_trit=bt)


def _fields(instruction: Instruction):
    return (
        instruction.mnemonic,
        instruction.ta,
        instruction.tb,
        instruction.imm if instruction.spec.uses_imm else None,
        instruction.branch_trit,
    )


@pytest.mark.parametrize("mnemonic", sorted(ALL_MNEMONICS))
def test_roundtrip_is_fixed_point_over_operand_grid(mnemonic):
    for original in _operand_grid(mnemonic):
        word = encode_instruction(original)

        # encode -> decode recovers every operand field.
        decoded = decode_instruction(word)
        assert _fields(decoded) == _fields(original), str(original)

        # decode -> disassemble -> re-assemble -> re-encode is a fixed point.
        text = decoded.render()
        reassembled = assemble(text).instructions[0]
        assert _fields(reassembled) == _fields(original), text
        assert encode_instruction(reassembled).trits == word.trits, text


def test_every_mnemonic_has_an_encoding_entry():
    assert set(ENCODING_TABLE) == set(ALL_MNEMONICS)


def test_distinct_instructions_encode_to_distinct_words():
    """The encoding is injective over the whole operand space."""
    seen = {}
    for mnemonic in ALL_MNEMONICS:
        for instruction in _operand_grid(mnemonic):
            key = encode_instruction(instruction).trits
            assert key not in seen, (
                f"{instruction.render()} and {seen[key]} share an encoding"
            )
            seen[key] = instruction.render()


@pytest.mark.parametrize("seed", range(25))
def test_generated_programs_survive_disassembly_roundtrip(seed):
    """Whole random programs survive encode -> disassemble -> re-assemble."""
    program = generate_program(seed)
    listing = disassemble_program(program, with_addresses=False)
    reassembled = assemble(listing, name=program.name)
    assert len(reassembled) == len(program)
    for ours, theirs in zip(program.instructions, reassembled.instructions):
        assert encode_instruction(ours).trits == encode_instruction(theirs).trits
