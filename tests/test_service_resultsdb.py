"""Unit tests for the sqlite results-aggregation layer."""

import os

import pytest

from repro.runner import RunStore, StoreError, SweepSpec, run_sweep
from repro.service import ResultsDB

SPEC = SweepSpec(workloads=("bubble_sort",), engines=("fast",),
                 optimize=(True, False),
                 params={"bubble_sort": [{"length": 8}]})


@pytest.fixture()
def two_identical_runs(tmp_path):
    a, b = str(tmp_path / "a"), str(tmp_path / "b")
    run_sweep(SPEC, a, jobs=1)
    run_sweep(SPEC, b, jobs=1)
    return a, b


class TestIngest:
    def test_ingest_reports_and_lists_runs(self, two_identical_runs):
        a, b = two_identical_runs
        with ResultsDB() as db:
            first = db.ingest(a)
            assert first.records == 2
            assert first.duplicates == 0
            assert not first.replaced
            runs = db.runs()
            assert len(runs) == 1
            assert runs[0]["root"] == os.path.abspath(a)
            assert runs[0]["record_count"] == 2

    def test_identical_content_counts_as_duplicates(self, two_identical_runs):
        a, b = two_identical_runs
        with ResultsDB() as db:
            db.ingest(a)
            second = db.ingest(b)
            # Same code, same spec: every record duplicates run A's content
            # even though wall-clock and PIDs differ.
            assert second.duplicates == second.records == 2

    def test_reingest_replaces_not_duplicates(self, two_identical_runs):
        a, _ = two_identical_runs
        with ResultsDB() as db:
            db.ingest(a)
            again = db.ingest(a)
            assert again.replaced
            assert len(db.runs()) == 1
            assert len(db.query()) == 2

    def test_non_run_directory_is_an_error(self, tmp_path):
        with ResultsDB() as db:
            with pytest.raises(StoreError):
                db.ingest(str(tmp_path / "not-a-run"))

    def test_null_machine_normalizes_to_the_default(self, tmp_path):
        # Records written before the machine axis existed either omit the
        # key or carry an explicit null; both mean the paper machine, and
        # neither may ingest as the literal string "None".
        from repro.sim.machine import DEFAULT_MACHINE_NAME

        store = RunStore(str(tmp_path / "run"))
        store.initialize(SweepSpec(workloads=("bubble_sort",)))
        store.append({"job_id": "aaa", "workload": "bubble_sort",
                      "engine": "fast", "status": "ok", "machine": None})
        store.append({"job_id": "bbb", "workload": "bubble_sort",
                      "engine": "fast", "status": "ok"})
        with ResultsDB() as db:
            db.ingest(str(tmp_path / "run"))
            assert len(db.query(machine=DEFAULT_MACHINE_NAME)) == 2
            assert db.query(machine="None") == []

    def test_file_backed_db_persists(self, two_identical_runs, tmp_path):
        a, _ = two_identical_runs
        path = str(tmp_path / "results.sqlite")
        with ResultsDB(path) as db:
            db.ingest(a)
        with ResultsDB(path) as db:
            assert len(db.runs()) == 1
            assert len(db.query(workload="bubble_sort")) == 2


class TestQuery:
    def test_axis_filters(self, two_identical_runs):
        a, _ = two_identical_runs
        with ResultsDB() as db:
            db.ingest(a)
            assert len(db.query(workload="bubble_sort")) == 2
            assert len(db.query(workload="gemm")) == 0
            assert len(db.query(optimize=True)) == 1
            assert len(db.query(optimize=False)) == 1
            assert len(db.query(engine="fast", params={"length": 8})) == 2
            assert len(db.query(params={})) == 0  # no default-size instances
            assert len(db.query(status="ok")) == 2

    def test_latest_only_collapses_to_one_record_per_job(self, two_identical_runs):
        a, b = two_identical_runs
        with ResultsDB() as db:
            db.ingest(a)
            # Tamper run B so the runs disagree, then check latest wins.
            store = RunStore(b)
            record = store.records()[0]
            record["cycles"] += 7
            store.append(record)
            db.ingest(b)
            assert len(db.query()) == 4
            latest = db.query(latest_only=True)
            assert len(latest) == 2
            tampered = db.latest(record["job_id"])
            assert tampered["cycles"] == record["cycles"]
            history = db.job_history(record["job_id"])
            assert len(history) == 2
            assert history[0]["cycles"] == record["cycles"] - 7

    def test_run_root_filter(self, two_identical_runs):
        a, b = two_identical_runs
        with ResultsDB() as db:
            db.ingest(a)
            db.ingest(b)
            assert len(db.query(run_root=a)) == 2
            assert len(db.query(run_root=b)) == 2

    def test_unknown_run_root_is_an_error_not_empty(self, two_identical_runs):
        a, _ = two_identical_runs
        with ResultsDB() as db:
            db.ingest(a)
            with pytest.raises(StoreError):
                db.query(run_root="/no/such/run")

    def test_latest_of_unknown_job_is_none(self):
        with ResultsDB() as db:
            assert db.latest("feedfacefeed") is None


class TestDeltas:
    def test_identical_runs_have_no_deltas(self, two_identical_runs):
        a, b = two_identical_runs
        with ResultsDB() as db:
            db.ingest(a)
            db.ingest(b)
            report = db.deltas(a, b)
            assert report.ok
            assert report.jobs_compared == 2

    def test_cycle_drift_is_a_delta(self, two_identical_runs):
        a, b = two_identical_runs
        store = RunStore(b)
        record = store.records()[0]
        record["cycles"] += 3
        record["stats"]["cycles"] += 3
        store.append(record)
        with ResultsDB() as db:
            db.ingest(a)
            db.ingest(b)
            report = db.deltas(a, b)
            assert not report.ok
            assert "cycles" in {diff.field for diff in report.diffs}

    def test_unknown_run_is_an_error(self, two_identical_runs):
        a, _ = two_identical_runs
        with ResultsDB() as db:
            db.ingest(a)
            with pytest.raises(StoreError):
                db.deltas(a, "/nonexistent/run")


class TestPhaseTimings:
    def test_timing_columns_ingest_and_aggregate(self, two_identical_runs):
        a, _ = two_identical_runs
        with ResultsDB() as db:
            db.ingest(a)
            rows = {row["engine"]: row for row in db.phase_summary()}
            fast = rows["fast"]
            assert fast["jobs"] == fast["timed_jobs"] == 2
            assert fast["execute_s"] > 0
            assert fast["xlate_s"] >= 0 and fast["codegen_s"] >= 0
            # Two optimize variants of one workload: the second translation
            # at least hits the in-process memo.
            assert fast["cache_known"] == 2
            assert 0 <= fast["cache_hits"] <= 2

    def test_records_without_timings_count_but_contribute_nothing(self, tmp_path):
        store = RunStore(str(tmp_path / "run"))
        store.initialize(SweepSpec(workloads=("bubble_sort",)))
        store.append({"job_id": "aaa", "workload": "bubble_sort",
                      "engine": "fast", "status": "ok"})  # pre-instrumentation
        with ResultsDB() as db:
            db.ingest(str(tmp_path / "run"))
            rows = db.phase_summary()
            assert rows == [{"engine": "fast", "jobs": 1, "timed_jobs": 0,
                             "xlate_s": 0.0, "codegen_s": 0.0,
                             "execute_s": 0.0, "cache_known": 0,
                             "cache_hits": 0}]

    def test_latest_only_excludes_superseded_runs(self, two_identical_runs):
        a, b = two_identical_runs
        with ResultsDB() as db:
            db.ingest(a)
            db.ingest(b)
            latest = {row["engine"]: row for row in db.phase_summary()}
            everything = {row["engine"]: row
                          for row in db.phase_summary(latest_only=False)}
            assert latest["fast"]["jobs"] == 2
            assert everything["fast"]["jobs"] == 4
