"""Unit tests for the observability substrate (:mod:`repro.obs`).

Metrics: handle semantics, snapshot shape, fleet-merge rules (counters
add, gauges last-wins except ``*_max``, histograms bucket-wise).  Trace:
off-by-default, environment-driven enablement, span nesting/parent ids,
torn-line tolerance of the JSONL reader.
"""

import os
import threading

import pytest

from repro.obs import metrics, trace
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def traced(tmp_path):
    """Enable tracing into a temp file for one test, then restore."""
    path = str(tmp_path / "spans.jsonl")
    trace.configure(path)
    yield path
    trace.configure(None)


class TestCounters:
    def test_counter_handle_is_stable_and_accumulates(self, registry):
        handle = registry.counter("cache.program.hits")
        assert registry.counter("cache.program.hits") is handle
        handle.inc()
        handle.inc(41)
        assert registry.to_dict()["counters"]["cache.program.hits"] == 42

    def test_unused_counter_reports_zero(self, registry):
        registry.counter("never.incremented")
        assert registry.to_dict()["counters"]["never.incremented"] == 0


class TestGauges:
    def test_set_is_last_writer_wins(self, registry):
        gauge = registry.gauge("queue.depth")
        gauge.set(7)
        gauge.set(3)
        assert registry.to_dict()["gauges"]["queue.depth"] == 3

    def test_set_max_is_a_high_water_mark(self, registry):
        gauge = registry.gauge("batch.concurrent_groups_max")
        gauge.set_max(4)
        gauge.set_max(2)
        assert registry.to_dict()["gauges"]["batch.concurrent_groups_max"] == 4

    def test_unset_gauge_is_none(self, registry):
        registry.gauge("unset")
        assert registry.to_dict()["gauges"]["unset"] is None


class TestHistograms:
    def test_observations_land_in_the_right_buckets(self, registry):
        histogram = registry.histogram("xlate.seconds")
        histogram.observe(0.0001)   # below the first bound
        histogram.observe(0.02)     # between 0.01 and 0.05
        histogram.observe(120.0)    # beyond the last bound
        data = registry.to_dict()["histograms"]["xlate.seconds"]
        assert data["bounds"] == list(DEFAULT_BUCKETS)
        assert sum(data["bucket_counts"]) == data["count"] == 3
        assert data["bucket_counts"][0] == 1
        assert data["bucket_counts"][-1] == 1
        assert data["min"] == 0.0001 and data["max"] == 120.0
        assert data["sum"] == pytest.approx(120.0201)
        assert histogram.mean == pytest.approx(120.0201 / 3)

    def test_empty_histogram_mean_is_zero(self, registry):
        assert registry.histogram("empty").mean == 0.0


class TestMerge:
    def test_counters_add_across_workers(self, registry):
        worker = MetricsRegistry()
        worker.counter("compiled.blocks_compiled").inc(5)
        registry.counter("compiled.blocks_compiled").inc(2)
        registry.merge(worker.to_dict())
        registry.merge(worker.to_dict())
        assert registry.to_dict()["counters"]["compiled.blocks_compiled"] == 12

    def test_max_gauges_merge_by_max_others_by_last(self, registry):
        first, second = MetricsRegistry(), MetricsRegistry()
        for source, depth, high in ((first, 9, 6), (second, 1, 4)):
            source.gauge("queue.depth").set(depth)
            source.gauge("groups_max").set_max(high)
        registry.merge(first.to_dict())
        registry.merge(second.to_dict())
        gauges = registry.to_dict()["gauges"]
        assert gauges["queue.depth"] == 1      # last writer
        assert gauges["groups_max"] == 6       # high-water mark

    def test_histograms_merge_bucket_wise_when_bounds_agree(self, registry):
        worker = MetricsRegistry()
        worker.histogram("xlate.seconds").observe(0.02)
        registry.histogram("xlate.seconds").observe(0.3)
        registry.merge(worker.to_dict())
        data = registry.to_dict()["histograms"]["xlate.seconds"]
        assert data["count"] == 2
        assert sum(data["bucket_counts"]) == 2
        assert data["min"] == 0.02 and data["max"] == 0.3

    def test_histogram_bound_mismatch_still_accumulates_summaries(self, registry):
        worker = MetricsRegistry()
        worker.histogram("odd", bounds=(1.0, 2.0)).observe(1.5)
        registry.histogram("odd").observe(0.5)
        registry.merge(worker.to_dict())
        data = registry.to_dict()["histograms"]["odd"]
        assert data["count"] == 2          # summary stats still merged
        assert sum(data["bucket_counts"]) == 1  # buckets could not be

    def test_reset_clears_everything(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.histogram("c").observe(1.0)
        registry.reset()
        assert registry.to_dict() == {"counters": {}, "gauges": {},
                                      "histograms": {}}


class TestDefaultRegistry:
    def test_module_helpers_hit_the_shared_registry(self):
        name = "test.obs.module_helper"
        before = metrics.snapshot()["counters"].get(name, 0)
        metrics.counter(name).inc(3)
        assert metrics.snapshot()["counters"][name] == before + 3


class TestTraceSwitch:
    def test_tracing_is_off_by_default_and_spans_yield_none(self):
        assert trace.enabled is False
        with trace.span("job", job_id="x") as record:
            assert record is None

    def test_env_flag_zero_or_empty_disables(self, monkeypatch):
        monkeypatch.setenv(trace.TRACE_ENV, "0")
        assert trace.configure_from_env() is False
        monkeypatch.delenv(trace.TRACE_ENV)
        assert trace.configure_from_env() is False
        assert trace.enabled is False

    def test_env_flag_enables_with_named_file(self, monkeypatch, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        monkeypatch.setenv(trace.TRACE_ENV, "1")
        monkeypatch.setenv(trace.TRACE_FILE_ENV, path)
        try:
            assert trace.configure_from_env() is True
            assert trace.trace_path() == path
        finally:
            trace.configure(None)


class TestSpans:
    def test_span_is_appended_with_timing_and_attrs(self, traced):
        with trace.span("xlate", workload="gemm"):
            pass
        spans = trace.read_spans(traced)
        assert len(spans) == 1
        span = spans[0]
        assert span["name"] == "xlate"
        assert span["attrs"] == {"workload": "gemm"}
        assert span["parent_id"] is None
        assert span["pid"] == os.getpid()
        assert span["duration_s"] >= 0
        assert span["end_s"] >= span["start_s"]

    def test_nested_spans_link_to_their_parent(self, traced):
        with trace.span("job") as outer:
            with trace.span("simulate"):
                pass
        inner, job = trace.read_spans(traced)  # inner finishes first
        assert job["span_id"] == outer["span_id"]
        assert inner["parent_id"] == job["span_id"]
        assert job["parent_id"] is None

    def test_sibling_threads_do_not_nest_under_each_other(self, traced):
        ready = threading.Barrier(2)

        def worker():
            ready.wait()
            with trace.span("thread-span"):
                pass

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = trace.read_spans(traced)
        assert len(spans) == 2
        assert all(span["parent_id"] is None for span in spans)

    def test_late_attributes_attach_through_the_yielded_record(self, traced):
        with trace.span("xlate") as record:
            record["attrs"]["instructions"] = 123
        assert trace.read_spans(traced)[0]["attrs"]["instructions"] == 123

    def test_read_spans_skips_torn_lines(self, traced):
        with trace.span("ok"):
            pass
        with open(traced, "a", encoding="utf-8") as handle:
            handle.write('{"name": "torn", "start')  # worker died mid-write
        spans = trace.read_spans(traced)
        assert [span["name"] for span in spans] == ["ok"]

    def test_emit_failure_never_raises(self, tmp_path):
        trace.configure(str(tmp_path))  # a directory: open() will fail
        try:
            with trace.span("doomed"):
                pass  # must not raise despite the unwritable path
        finally:
            trace.configure(None)

    def test_span_ids_are_unique(self, traced):
        for _ in range(5):
            with trace.span("loop"):
                pass
        spans = trace.read_spans(traced)
        assert len({span["span_id"] for span in spans}) == 5


class TestInstrumentationSurface:
    """The instrumented modules actually record into the registry."""

    def test_cache_records_hits_misses_and_bytes(self, tmp_path):
        from repro.cache import ArtifactCache
        before = metrics.snapshot()["counters"]
        cache = ArtifactCache(str(tmp_path / "cache"))
        material = {"seed": 1}
        assert cache.get_json("program", material) is None       # miss
        cache.put_json("program", material, {"value": 42})       # write
        assert cache.get_json("program", material) == {"value": 42}  # hit
        after = metrics.snapshot()["counters"]

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("cache.program.misses") == 1
        assert delta("cache.program.hits") == 1
        assert delta("cache.program.writes") == 1
        assert delta("cache.program.hits_bytes") > 0
        assert delta("cache.program.writes_bytes") > 0

    def test_corrupt_cache_entry_counts_as_miss_and_corruption(self, tmp_path):
        from repro.cache import ArtifactCache, cache_key
        before = metrics.snapshot()["counters"]
        cache = ArtifactCache(str(tmp_path / "cache"))
        material = {"seed": 2}
        cache.put_json("program", material, {"value": 1})
        path = cache.path_for("program", cache_key(material))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        assert cache.get_json("program", material) is None
        after = metrics.snapshot()["counters"]
        assert after.get("cache.program.corruptions", 0) \
            - before.get("cache.program.corruptions", 0) == 1

    def test_compiled_engine_counts_blocks(self):
        from repro.framework import SoftwareFramework
        from repro.sim.compiled import CompiledEngine
        program, _, _ = SoftwareFramework().compile_named_workload(
            "bubble_sort", {})
        before = metrics.snapshot()["counters"]
        CompiledEngine(program).run_with_stats()
        after = metrics.snapshot()["counters"]
        compiled = after.get("compiled.blocks_compiled", 0) \
            - before.get("compiled.blocks_compiled", 0)
        loaded = after.get("compiled.blocks_loaded", 0) \
            - before.get("compiled.blocks_loaded", 0)
        memo = after.get("compiled.blocks_memo", 0) \
            - before.get("compiled.blocks_memo", 0)
        assert compiled + loaded + memo > 0

    def test_batch_engine_records_group_dynamics(self):
        from repro.framework import SoftwareFramework
        from repro.sim.batch import BatchEngine
        from repro.testing import generate_data_variants
        program, _, _ = SoftwareFramework().compile_named_workload(
            "bubble_sort", {"length": 8})
        programs = generate_data_variants(program, 4, 0)
        before = metrics.snapshot()
        BatchEngine(programs).run_with_stats(include_results=False)
        after = metrics.snapshot()
        assert after["counters"].get("batch.full_group_steps", 0) > \
            before["counters"].get("batch.full_group_steps", 0)
        assert after["gauges"].get("batch.concurrent_groups_max") >= 1
