"""Tests for the cycle-accurate 5-stage pipeline simulator.

Covers the hazard cases the paper describes (load-use stalls, taken-branch
bubbles, forwarding removing ALU-use hazards) and checks architectural
equivalence with the functional simulator on random straight-line and
control-flow-heavy programs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, Program, assemble
from repro.sim import FunctionalSimulator, PipelineSimulator, SimulationError


def run_both(source):
    program = assemble(source)
    functional = FunctionalSimulator(program)
    functional.run()
    pipeline = PipelineSimulator(program)
    stats = pipeline.run()
    assert pipeline.register_snapshot() == functional.registers.snapshot()
    return pipeline, stats


class TestCycleCounts:
    def test_straight_line_fills_and_drains(self):
        # N instructions, no hazards: N + 4 cycles (fill + drain).
        _, stats = run_both("ADDI T1, 1\nADDI T2, 2\nADDI T3, 3\nADDI T4, 4\nHALT")
        assert stats.instructions_committed == 5
        assert stats.cycles == 5 + 4
        assert stats.stall_cycles == 0

    def test_alu_use_hazard_needs_no_stall(self):
        _, stats = run_both("""
            ADDI T1, 5
            ADDI T1, 3
            MV   T2, T1
            ADD  T2, T1
            HALT
        """)
        assert stats.load_use_stalls == 0
        assert stats.ex_forwards > 0

    def test_load_use_hazard_costs_one_cycle(self):
        _, baseline = run_both("""
            LIW T1, 9
            STORE T1, T0, 1
            LOAD T2, T0, 1
            NOP
            ADD T3, T2
            HALT
        """)
        _, hazard = run_both("""
            LIW T1, 9
            STORE T1, T0, 1
            LOAD T2, T0, 1
            ADD T3, T2
            NOP
            HALT
        """)
        assert hazard.load_use_stalls == 1
        assert baseline.load_use_stalls == 0
        # Both programs commit seven instructions; the hazard run pays exactly
        # one extra cycle for the load-use bubble.
        assert hazard.cycles == baseline.cycles + 1

    def test_taken_branch_costs_one_bubble(self):
        _, stats = run_both("""
            ADDI T1, 1
            BEQ  T0, 0, target     # always taken (T0 is zero)
            ADDI T2, 1             # squashed
        target:
            ADDI T3, 1
            HALT
        """)
        assert stats.control_flush_bubbles == 1
        assert stats.taken_branches == 1

    def test_not_taken_branch_is_free(self):
        _, stats = run_both("""
            ADDI T1, 1
            BNE  T0, 0, away
            ADDI T2, 1
        away:
            HALT
        """)
        assert stats.control_flush_bubbles == 0
        assert stats.not_taken_branches == 1

    def test_branch_after_comp_uses_id_forwarding(self):
        pipeline, stats = run_both("""
            LIW T1, 4
            LIW T2, 9
            MV  T3, T1
            COMP T3, T2
            BEQ T3, -1, less
            ADDI T4, 1
        less:
            HALT
        """)
        assert stats.load_use_stalls == 0
        assert pipeline.register_snapshot()["T4"] == 0
        assert stats.id_forwards > 0

    def test_jump_and_link(self):
        pipeline, stats = run_both("""
            LIW T1, 3
            JAL T8, callee
            ADD T1, T1
            HALT
        callee:
            ADDI T1, 4
            JALR T6, T8, 0
        """)
        assert pipeline.register_snapshot()["T1"] == 14
        assert stats.jumps == 2

    def test_cpi_reported(self):
        _, stats = run_both("ADDI T1, 1\nHALT")
        assert stats.cpi == stats.cycles / stats.instructions_committed
        assert 0 < stats.ipc <= 1


class TestErrorHandling:
    def test_empty_program_rejected(self):
        with pytest.raises(SimulationError):
            PipelineSimulator(Program()).run()

    def test_runaway_program_detected(self):
        with pytest.raises(SimulationError):
            PipelineSimulator(assemble("loop:\nJAL T6, loop")).run(max_cycles=200)

    def test_summary_is_printable(self):
        pipeline = PipelineSimulator(assemble("HALT"))
        stats = pipeline.run()
        assert "cycles" in stats.summary()


# ---------------------------------------------------------------------------
# Property-based equivalence: the pipelined core must be architecturally
# identical to the functional reference model for arbitrary hazard patterns.
# ---------------------------------------------------------------------------

_REGS = st.integers(min_value=1, max_value=8)


def _random_body(draw):
    instructions = []
    choice = draw(st.lists(st.integers(min_value=0, max_value=6), min_size=5, max_size=30))
    for kind in choice:
        if kind == 0:
            instructions.append(Instruction("ADDI", ta=draw(_REGS), imm=draw(st.integers(-13, 13))))
        elif kind == 1:
            instructions.append(Instruction("ADD", ta=draw(_REGS), tb=draw(_REGS)))
        elif kind == 2:
            instructions.append(Instruction("SUB", ta=draw(_REGS), tb=draw(_REGS)))
        elif kind == 3:
            instructions.append(Instruction("MV", ta=draw(_REGS), tb=draw(_REGS)))
        elif kind == 4:
            instructions.append(Instruction("STORE", ta=draw(_REGS), tb=0, imm=draw(st.integers(0, 13))))
        elif kind == 5:
            instructions.append(Instruction("LOAD", ta=draw(_REGS), tb=0, imm=draw(st.integers(0, 13))))
        else:
            instructions.append(Instruction("COMP", ta=draw(_REGS), tb=draw(_REGS)))
    return instructions


@st.composite
def random_programs(draw):
    program = Program(name="random")
    for instruction in _random_body(draw):
        program.append(instruction)
    # A short forward branch keeps control flow interesting but always halts.
    program.append(Instruction("BNE", tb=draw(_REGS), branch_trit=0, imm=2))
    program.append(Instruction("ADDI", ta=draw(_REGS), imm=1))
    program.append(Instruction("HALT"))
    return program


class TestPipelineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(random_programs())
    def test_matches_functional_simulator(self, program):
        functional = FunctionalSimulator(program)
        functional.run(max_instructions=10_000)
        pipeline = PipelineSimulator(program)
        stats = pipeline.run(max_cycles=100_000)
        assert pipeline.register_snapshot() == functional.registers.snapshot()
        assert stats.instructions_committed == functional.instructions_executed
        # Cycle count is committed instructions + pipeline fill + hazards.
        assert stats.cycles == stats.instructions_committed + 4 + stats.stall_cycles
