"""Worker-resilience and auth tests: reconnect, budgets, timeouts, tokens.

Same shape as the coordinator fault tests — one asyncio loop, real TCP on
loopback, stub executors — but the faults here target the *worker's*
survival machinery: coordinator restarts it must ride out, retry budgets
it must respect, hung jobs it must cut loose, and handshakes it must pass
(or fail deterministically).
"""

import asyncio
import contextlib
import time

import pytest

from repro.runner.spec import SweepJob
from repro.service.coordinator import Coordinator
from repro.service.protocol import read_message, send_and_drain, token_matches
from repro.service.workerclient import (
    request_status,
    timeout_job_record,
    work_async,
)


def _jobs(count):
    return [
        SweepJob("bubble_sort", "fast", True, params=(("length", 4 + 2 * i),))
        for i in range(count)
    ]


def _stub_executor(job):
    return {"job_id": job.job_id, "label": job.label, "status": "ok",
            "verified": True, "cycles": 1}


async def _wait_until(predicate, timeout=10.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.01)


class TestTokenMatches:
    def test_no_expected_token_admits_everyone(self):
        assert token_matches(None, None)
        assert token_matches(None, "anything")

    def test_comparison_is_exact(self):
        assert token_matches("secret", "secret")
        assert not token_matches("secret", "Secret")
        assert not token_matches("secret", "secret ")

    def test_non_strings_fail_closed(self):
        assert not token_matches("secret", None)
        assert not token_matches("secret", 17)
        assert not token_matches("secret", ["secret"])


class TestReconnect:
    def test_worker_rides_out_a_coordinator_restart(self):
        jobs = _jobs(4)
        records = []

        async def scenario():
            first = Coordinator(jobs, on_result=records.append)
            serve1 = asyncio.create_task(first.serve())
            port = await first.wait_started()

            def slowish(job):
                time.sleep(0.05)
                return _stub_executor(job)

            worker = asyncio.create_task(
                work_async("127.0.0.1", port, name="steady",
                           executor=slowish, max_retries=30,
                           retry_window=30.0))
            await _wait_until(lambda: len(records) >= 2)
            # Crash the first coordinator (no done broadcast: the run is
            # not finished, so the worker must treat this as an outage).
            serve1.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serve1
            done_ids = {record["job_id"] for record in records}
            remaining = [job for job in jobs if job.job_id not in done_ids]
            assert remaining, "restart must happen mid-run"
            second = Coordinator(remaining, on_result=records.append,
                                 port=port)
            serve2 = asyncio.create_task(second.serve())
            await second.wait_started()
            await serve2
            return await worker

        summary = asyncio.run(scenario())
        assert summary.outcome == "done"
        assert summary.reconnects >= 1
        assert {record["job_id"] for record in records} == \
            {job.job_id for job in jobs}
        # The in-flight record may have been re-sent to the restarted
        # coordinator, but never twice into the results.
        assert len(records) == len(jobs)

    def test_retry_budget_exhausts_into_gave_up(self):
        jobs = _jobs(1)

        async def scenario():
            coordinator = Coordinator(jobs)
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()

            def executor(job):
                time.sleep(0.1)
                return _stub_executor(job)

            worker = asyncio.create_task(
                work_async("127.0.0.1", port, name="hopeful",
                           executor=executor, max_retries=2,
                           retry_window=30.0))
            await _wait_until(lambda: coordinator.connected_workers > 0)
            # Kill the coordinator before the run finishes and never bring
            # it back: the worker's budget must bound its patience.
            serve.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serve
            return await worker

        summary = asyncio.run(scenario())
        assert summary.outcome == "gave-up"
        assert "reconnect attempts" in summary.detail or \
            "no coordinator" in summary.detail

    def test_idle_worker_gets_the_shutdown_done_broadcast(self):
        # One job, two workers: the idle worker must be told the run is
        # over instead of seeing a dead socket and burning its backoff
        # budget (which would also make this test take ~30s).
        jobs = _jobs(1)

        async def scenario():
            coordinator = Coordinator(jobs)
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()

            def slow(job):
                time.sleep(0.3)
                return _stub_executor(job)

            start = asyncio.get_running_loop().time()
            summaries = await asyncio.gather(
                work_async("127.0.0.1", port, name="busy", executor=slow),
                work_async("127.0.0.1", port, name="idle",
                           executor=_stub_executor),
            )
            await serve
            return summaries, asyncio.get_running_loop().time() - start

        summaries, elapsed = asyncio.run(scenario())
        assert all(summary.outcome == "done" for summary in summaries)
        assert all(summary.reconnects == 0 for summary in summaries)
        assert elapsed < 5.0


class TestResultRedelivery:
    def test_unacknowledged_record_is_resent_after_reconnect(self):
        # Take the worker's result, never reply, close the connection: the
        # worker must re-deliver it (flagged "resumed") instead of
        # re-running or dropping the job.
        jobs = _jobs(1)
        records = []
        resumed_flags = []

        async def scenario():
            # A hand-rolled coordinator stand-in that dies after reading
            # the first result.
            first_result = asyncio.Event()

            async def flaky_handler(reader, writer):
                while True:
                    message = await read_message(reader)
                    if message is None:
                        break
                    if message["type"] == "hello":
                        continue
                    if message["type"] == "next":
                        await send_and_drain(writer, {
                            "type": "job", "job_id": jobs[0].job_id,
                            "job": jobs[0].to_dict(),
                            "heartbeat_every": 1.0})
                        continue
                    if message["type"] == "result":
                        first_result.set()
                        writer.close()  # crash before acknowledging
                        return

            flaky = await asyncio.start_server(flaky_handler, "127.0.0.1", 0)
            port = flaky.sockets[0].getsockname()[1]
            worker = asyncio.create_task(
                work_async("127.0.0.1", port, name="persistent",
                           executor=_stub_executor, max_retries=20,
                           retry_window=20.0))
            await first_result.wait()
            flaky.close()
            await flaky.wait_closed()

            # The real coordinator takes over the same port and must
            # receive the re-sent record without the job ever running
            # again on its watch.
            async def real_handler(reader, writer):
                while True:
                    message = await read_message(reader)
                    if message is None:
                        break
                    if message["type"] == "result":
                        records.append(message["record"])
                        resumed_flags.append(message.get("resumed", False))
                        await send_and_drain(writer, {"type": "done"})
                        break
            real = await asyncio.start_server(real_handler, "127.0.0.1", port)
            summary = await worker
            real.close()
            await real.wait_closed()
            return summary

        summary = asyncio.run(scenario())
        assert summary.outcome == "done"
        assert len(records) == 1
        assert records[0]["job_id"] == jobs[0].job_id
        assert resumed_flags == [True]
        # The job executed once: the redelivery was a resend, not a rerun.
        assert summary.jobs_completed == 1

    def test_resent_record_for_an_already_done_job_is_refused(self):
        # A worker re-sends a record whose job the (restarted) coordinator
        # never enqueued because results.jsonl already had it: accounting
        # must not budge.
        jobs = _jobs(2)
        records = []
        coordinator = Coordinator(jobs, on_result=records.append)

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await send_and_drain(writer, {"type": "hello",
                                          "worker": "ghost", "pid": 0})
            stale = {"job_id": "0" * 12, "label": "stale", "status": "ok"}
            await send_and_drain(writer, {"type": "result", "record": stale,
                                          "resumed": True})
            reply = await read_message(reader)  # still served an assignment
            assert reply["type"] == "job"
            writer.close()
            await asyncio.gather(
                work_async("127.0.0.1", port, name="real",
                           executor=_stub_executor),
                serve)

        asyncio.run(scenario())
        assert coordinator.stats.unknown_results == 1
        assert coordinator.stats.results_accepted == 2
        assert {record["job_id"] for record in records} == \
            {job.job_id for job in jobs}


class TestJobTimeout:
    def test_hung_job_yields_timeout_record_and_worker_lives_on(self):
        jobs = _jobs(2)
        hang_id = jobs[0].job_id
        records = []
        coordinator = Coordinator(jobs, on_result=records.append)

        def executor(job):
            if job.job_id == hang_id:
                time.sleep(0.8)  # far past the budget
            return _stub_executor(job)

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            summary, stats = await asyncio.gather(
                work_async("127.0.0.1", port, name="bounded",
                           executor=executor, job_timeout=0.15),
                serve)
            return summary

        summary = asyncio.run(scenario())
        assert summary.outcome == "done"
        assert summary.timeouts == 1
        by_id = {record["job_id"]: record for record in records}
        assert len(by_id) == 2
        timed_out = by_id[hang_id]
        assert timed_out["status"] == "error"
        assert "wall-clock execution timeout" in timed_out["error"]
        # The other job completed normally on the same worker.
        assert any(record.get("status") == "ok" for record in records)

    def test_timeout_record_shape_matches_job_identity(self):
        job = _jobs(1)[0]
        record = timeout_job_record(job, 2.5)
        assert record["job_id"] == job.job_id
        assert record["label"] == job.label
        assert record["status"] == "error"
        assert "2.5s" in record["error"]
        assert record["workload"] == job.workload


class TestAuth:
    def test_bad_token_is_rejected_deterministically(self):
        jobs = _jobs(2)
        records = []
        coordinator = Coordinator(jobs, on_result=records.append,
                                  auth_token="sesame")

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            intruder = await work_async("127.0.0.1", port, name="intruder",
                                        executor=_stub_executor,
                                        auth_token="wrong")
            legit, _ = await asyncio.gather(
                work_async("127.0.0.1", port, name="legit",
                           executor=_stub_executor, auth_token="sesame"),
                serve)
            return intruder, legit

        intruder, legit = asyncio.run(scenario())
        assert intruder.outcome == "rejected"
        assert intruder.jobs_completed == 0
        assert "token" in intruder.detail
        assert legit.outcome == "done"
        assert legit.jobs_completed == 2
        assert coordinator.stats.auth_failures >= 1

    def test_unauthenticated_messages_cannot_pull_or_inject(self):
        jobs = _jobs(1)
        records = []
        coordinator = Coordinator(jobs, on_result=records.append,
                                  auth_token="sesame")

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            # No hello at all: a stray client goes straight for a job.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await send_and_drain(writer, {"type": "next"})
            reply = await read_message(reader)
            assert reply["type"] == "error"
            writer.close()
            # And one trying to inject a result.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await send_and_drain(writer, {
                "type": "result",
                "record": {"job_id": jobs[0].job_id, "status": "ok"}})
            reply = await read_message(reader)
            assert reply["type"] == "error"
            writer.close()
            await asyncio.gather(
                work_async("127.0.0.1", port, name="legit",
                           executor=_stub_executor, auth_token="sesame"),
                serve)

        asyncio.run(scenario())
        assert coordinator.stats.results_accepted == 1
        assert records[0]["job_id"] == jobs[0].job_id
        assert records[0].get("verified") is True  # the stub's, not the fake

    def test_too_new_protocol_is_refused(self):
        coordinator = Coordinator(_jobs(1))

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await send_and_drain(writer, {"type": "hello", "worker": "next",
                                          "pid": 0, "protocol": 99})
            reply = await read_message(reader)
            assert reply["type"] == "error"
            assert "protocol" in reply["error"]
            writer.close()
            coordinator.abort("test over")
            with contextlib.suppress(Exception):
                await serve

        asyncio.run(scenario())

    def test_status_probe_needs_the_token_too(self):
        jobs = _jobs(1)
        coordinator = Coordinator(jobs, auth_token="sesame",
                                  on_result=lambda record: None)

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            loop = asyncio.get_running_loop()
            with pytest.raises(ConnectionError):
                await loop.run_in_executor(
                    None, lambda: request_status("127.0.0.1", port))
            status = await loop.run_in_executor(
                None, lambda: request_status("127.0.0.1", port,
                                             token="sesame"))
            assert status["jobs_total"] == 1
            await asyncio.gather(
                work_async("127.0.0.1", port, name="legit",
                           executor=_stub_executor, auth_token="sesame"),
                serve)

        asyncio.run(scenario())


class TestRequeueReasons:
    def test_status_distinguishes_disconnects_from_heartbeat_loss(self):
        jobs = _jobs(2)
        records = []
        coordinator = Coordinator(jobs, on_result=records.append,
                                  heartbeat_timeout=0.3)

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            # Worker 1 takes a job and disconnects.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await send_and_drain(writer, {"type": "hello",
                                          "worker": "flaky-link", "pid": 0})
            await send_and_drain(writer, {"type": "next"})
            assert (await read_message(reader))["type"] == "job"
            writer.close()
            # Worker 2 takes a job and wedges (socket open, no beats).
            reader2, writer2 = await asyncio.open_connection("127.0.0.1",
                                                             port)
            await send_and_drain(writer2, {"type": "hello",
                                           "worker": "wedged", "pid": 0})
            await send_and_drain(writer2, {"type": "next"})
            assert (await read_message(reader2))["type"] == "job"
            await _wait_until(lambda: coordinator.stats.requeues >= 2,
                              timeout=5.0)
            snapshot = coordinator.status_snapshot()
            writer2.close()
            await asyncio.gather(
                work_async("127.0.0.1", port, name="closer",
                           executor=_stub_executor),
                serve)
            return snapshot

        snapshot = asyncio.run(scenario())
        assert snapshot["workers"]["flaky-link"]["requeue_reasons"] == \
            {"disconnect": 1}
        assert snapshot["workers"]["wedged"]["requeue_reasons"] == \
            {"heartbeat-timeout": 1}
