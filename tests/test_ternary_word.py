"""Unit and property tests for TernaryWord."""

import pytest
from hypothesis import given, strategies as st

from repro.ternary import TernaryWord, WORD_TRITS

word_values = st.integers(min_value=-9841, max_value=9841)


class TestConstruction:
    def test_default_is_zero(self):
        assert TernaryWord().value == 0
        assert TernaryWord.zero().value == 0

    def test_from_int_round_trip(self):
        assert TernaryWord(742).value == 742
        assert TernaryWord(-9841).value == -9841

    def test_out_of_range_wraps(self):
        assert TernaryWord(9842).value == -9841

    def test_from_trits_requires_exact_width(self):
        with pytest.raises(ValueError):
            TernaryWord([1, 0], width=9)

    def test_from_trits_classmethod_pads(self):
        word = TernaryWord.from_trits([1, -1])
        assert word.width == WORD_TRITS
        assert word.value == 1 - 3

    def test_from_string(self):
        assert TernaryWord.from_string("1T", width=9).value == 2
        assert str(TernaryWord(2)).endswith("1T")

    def test_invalid_trit_rejected(self):
        with pytest.raises(ValueError):
            TernaryWord([2] + [0] * 8)


class TestAccessors:
    def test_lst_and_trit(self):
        word = TernaryWord(5)  # trits little-endian: -1, -1, 1
        assert word.lst == -1
        assert word.trit(2) == 1

    def test_slice_matches_field_notation(self):
        word = TernaryWord.from_trits([1, 0, -1, 1, 0, 0, 0, 0, 0])
        assert word.slice(2, 0).trits == (1, 0, -1)
        assert word.slice(3, 3).value == 1

    def test_slice_bounds_checked(self):
        with pytest.raises(ValueError):
            TernaryWord(0).slice(9, 0)

    def test_replace_low_implements_li(self):
        original = TernaryWord(9 ** 4)          # some value with high trits set
        low = TernaryWord(7, width=5)
        replaced = original.replace_low(low)
        assert replaced.trits[:5] == low.trits
        assert replaced.trits[5:] == original.trits[5:]

    def test_unsigned_view(self):
        assert TernaryWord(-1).unsigned == 3 ** 9 - 1

    def test_resize(self):
        assert TernaryWord(5).resize(3).value == 5
        assert TernaryWord(14).resize(3).value == to_width3(14)


def to_width3(value):
    modulus = 27
    wrapped = value % modulus
    return wrapped - modulus if wrapped > 13 else wrapped


class TestEqualityHashing:
    def test_equal_to_int(self):
        assert TernaryWord(5) == 5
        assert TernaryWord(5) != 6

    def test_hashable(self):
        assert len({TernaryWord(1), TernaryWord(1), TernaryWord(2)}) == 2

    def test_iteration_and_len(self):
        word = TernaryWord(5)
        assert len(word) == WORD_TRITS
        assert list(word) == list(word.trits)


class TestWordProperties:
    @given(word_values)
    def test_value_round_trip(self, value):
        assert TernaryWord(value).value == value

    @given(word_values)
    def test_str_parse_round_trip(self, value):
        word = TernaryWord(value)
        assert TernaryWord.from_string(str(word)) == word

    @given(word_values, st.integers(min_value=0, max_value=8))
    def test_slice_single_trit_matches_trit(self, value, index):
        word = TernaryWord(value)
        assert word.slice(index, index).value == word.trit(index)
