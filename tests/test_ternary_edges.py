"""Edge-case tests for :mod:`repro.ternary`.

Focus areas the example-based unit tests leave uncovered: wraparound
behaviour exactly at the representable boundary ±(3**9 − 1)/2 = ±9841,
algebraic identities of the word arithmetic (negation is an involution,
addition and subtraction invert each other *through* the wrap), and the
width-validation error paths of :class:`TernaryWord`.
"""

import pytest

from repro.ternary.arithmetic import add_words, mul_words, negate_word, sub_words
from repro.ternary.conversion import balanced_range, to_balanced_range
from repro.ternary.word import WORD_TRITS, TernaryWord

MOD = 3 ** WORD_TRITS
HALF = (MOD - 1) // 2

#: Values at and around every interesting boundary.
_EDGES = (
    0, 1, -1, HALF, -HALF, HALF - 1, -(HALF - 1),
    HALF + 1, -(HALF + 1), MOD, -MOD, MOD + 1, 2 * MOD + 5,
)


class TestWraparound:
    def test_range_boundaries_are_representable(self):
        assert TernaryWord(HALF).value == HALF
        assert TernaryWord(-HALF).value == -HALF
        assert TernaryWord.value_range() == (-HALF, HALF)
        assert balanced_range(WORD_TRITS) == (-HALF, HALF)

    def test_one_past_the_boundary_wraps_to_the_other_end(self):
        assert TernaryWord(HALF + 1).value == -HALF
        assert TernaryWord(-(HALF + 1)).value == HALF

    @pytest.mark.parametrize("value", _EDGES)
    def test_constructor_wrap_matches_to_balanced_range(self, value):
        assert TernaryWord(value).value == to_balanced_range(value, WORD_TRITS)

    def test_adder_wrap_equals_constructor_wrap(self):
        # Adding 1 at the positive extreme lands at the negative extreme,
        # exactly like dropping the carry out of the top trit.
        top = TernaryWord(HALF)
        one = TernaryWord(1)
        assert add_words(top, one).value == -HALF
        assert sub_words(TernaryWord(-HALF), one).value == HALF

    def test_unsigned_view_of_negative_values(self):
        assert TernaryWord(-1).unsigned == MOD - 1
        assert TernaryWord(-HALF).unsigned == HALF + 1
        assert TernaryWord(0).unsigned == 0


class TestArithmeticIdentities:
    @pytest.mark.parametrize("value", _EDGES)
    def test_negate_is_an_involution(self, value):
        word = TernaryWord(value)
        assert negate_word(negate_word(word)) == word
        # Negation never wraps: the balanced range is symmetric.
        assert negate_word(word).value == -word.value

    @pytest.mark.parametrize("a", (0, 1, -40, 4000, HALF, -HALF))
    @pytest.mark.parametrize("b", (0, 1, -1, 121, HALF, -HALF))
    def test_add_then_sub_is_identity_through_the_wrap(self, a, b):
        wa, wb = TernaryWord(a), TernaryWord(b)
        assert sub_words(add_words(wa, wb), wb) == wa
        assert add_words(sub_words(wa, wb), wb) == wa

    @pytest.mark.parametrize("a", (0, 1, -40, 4000, HALF))
    def test_subtracting_self_is_zero(self, a):
        word = TernaryWord(a)
        assert sub_words(word, word).value == 0
        assert add_words(word, negate_word(word)).value == 0

    def test_multiplication_by_negative_one_negates(self):
        for value in (0, 7, -13, 4000, HALF):
            word = TernaryWord(value)
            assert mul_words(word, TernaryWord(-1)) == negate_word(word)
            assert mul_words(word, TernaryWord(1)) == word
            assert mul_words(word, TernaryWord(0)).value == 0


class TestWidthValidation:
    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError):
            TernaryWord(0, width=0)
        with pytest.raises(ValueError):
            TernaryWord(0, width=-3)

    def test_trit_sequence_must_match_width_exactly(self):
        with pytest.raises(ValueError):
            TernaryWord([1, 0, -1], width=9)
        with pytest.raises(ValueError):
            TernaryWord([0] * 10, width=9)

    def test_invalid_trit_values_rejected(self):
        with pytest.raises(ValueError):
            TernaryWord([2] + [0] * 8)
        with pytest.raises(ValueError):
            TernaryWord([0] * 8 + [-2])

    def test_from_trits_rejects_overflow_but_pads_short_input(self):
        with pytest.raises(ValueError):
            TernaryWord.from_trits([0] * 10)
        padded = TernaryWord.from_trits([1, -1])
        assert padded.width == WORD_TRITS
        assert padded.value == 1 - 3

    def test_slice_bounds_checked(self):
        word = TernaryWord(100)
        with pytest.raises(ValueError):
            word.slice(9, 0)
        with pytest.raises(ValueError):
            word.slice(2, 5)
        with pytest.raises(ValueError):
            word.slice(3, -1)

    def test_replace_low_rejects_wider_replacement(self):
        word = TernaryWord(0, width=4)
        with pytest.raises(ValueError):
            TernaryWord(0, width=3).replace_low(word)

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            TernaryWord.from_string("10X")

    def test_resize_rewraps_into_narrower_width(self):
        word = TernaryWord(121)  # needs 5 trits
        narrowed = word.resize(3)
        assert narrowed.width == 3
        assert narrowed.value == to_balanced_range(121, 3)
