"""Tests for the simulator components: memory, register file, TALU."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import MemoryError_, TernaryALU, TernaryMemory, TernaryRegisterFile
from repro.ternary import TernaryWord, to_balanced_range

values = st.integers(min_value=-9841, max_value=9841)


class TestTernaryMemory:
    def test_uninitialised_reads_zero(self):
        memory = TernaryMemory(depth=64)
        assert memory.read_int(10) == 0

    def test_write_read_round_trip(self):
        memory = TernaryMemory(depth=64)
        memory.write_int(5, -321)
        assert memory.read_int(5) == -321

    def test_out_of_range_rejected(self):
        memory = TernaryMemory(depth=8)
        with pytest.raises(MemoryError_):
            memory.read(8)
        with pytest.raises(MemoryError_):
            memory.write_int(-1, 0)

    def test_effective_address_wraps_negative_base(self):
        base = TernaryWord(-1)
        assert TernaryMemory.effective_address(base, 0) == 3 ** 9 - 1
        assert TernaryMemory.effective_address(TernaryWord(10), -3) == 7

    def test_bulk_helpers_and_statistics(self):
        memory = TernaryMemory(depth=32, name="TDM")
        memory.load_words([1, 2, 3], base=4)
        assert memory.dump(4, 3) == [1, 2, 3]
        assert memory.occupied_words() == 3
        assert memory.highest_written() == 6
        assert memory.writes == 3 and memory.reads == 3
        memory.reset_statistics()
        assert memory.reads == 0
        memory.clear()
        assert memory.occupied_words() == 0

    def test_width_mismatch_rejected(self):
        memory = TernaryMemory(depth=8)
        with pytest.raises(ValueError):
            memory.write(0, TernaryWord(0, width=5))


class TestRegisterFile:
    def test_reset_state_is_zero(self):
        trf = TernaryRegisterFile()
        assert all(value == 0 for value in trf.snapshot().values())

    def test_write_read(self):
        trf = TernaryRegisterFile()
        trf.write_int(3, 123)
        assert trf.read_int(3) == 123
        assert trf.snapshot()["T3"] == 123

    def test_bad_index_rejected(self):
        trf = TernaryRegisterFile()
        with pytest.raises(ValueError):
            trf.read(9)

    def test_reset(self):
        trf = TernaryRegisterFile()
        trf.write_int(1, 5)
        trf.reset()
        assert trf.read_int(1) == 0 and trf.writes == 0


class TestTernaryALU:
    def setup_method(self):
        self.alu = TernaryALU()

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            self.alu.execute("BEQ", TernaryWord(0))

    @given(values, values)
    def test_add_sub(self, a, b):
        assert self.alu.execute("ADD", TernaryWord(a), TernaryWord(b)).value.value == \
            to_balanced_range(a + b, 9)
        assert self.alu.execute("SUB", TernaryWord(a), TernaryWord(b)).value.value == \
            to_balanced_range(a - b, 9)

    @given(values, values)
    def test_comp_sets_sign_word(self, a, b):
        result = self.alu.execute("COMP", TernaryWord(a), TernaryWord(b)).value
        expected = 0 if a == b else (1 if a > b else -1)
        assert result.value == expected
        assert result.lst == expected

    def test_mv_and_inverters_use_operand_b(self):
        a, b = TernaryWord(111), TernaryWord(-42)
        assert self.alu.execute("MV", a, b).value.value == -42
        assert self.alu.execute("STI", a, b).value.value == 42

    def test_immediate_operations(self):
        a = TernaryWord(100)
        assert self.alu.execute("ADDI", a, imm=13).value.value == 113
        assert self.alu.execute("SLI", a, imm=1).value.value == 300
        assert self.alu.execute("SRI", a, imm=1).value.value == 33  # nearest

    def test_lui_li_build_constants(self):
        high = self.alu.execute("LUI", TernaryWord(0), imm=3).value
        assert high.value == 3 * 243
        combined = self.alu.execute("LI", high, imm=-7).value
        assert combined.value == 3 * 243 - 7

    def test_shift_by_register_amount(self):
        assert self.alu.execute("SL", TernaryWord(10), TernaryWord(2)).value.value == 90
        assert self.alu.execute("SR", TernaryWord(90), TernaryWord(2)).value.value == 10

    def test_operation_counters(self):
        self.alu.execute("ADD", TernaryWord(1), TernaryWord(2))
        self.alu.execute("ADD", TernaryWord(1), TernaryWord(2))
        assert self.alu.operation_counts["ADD"] == 2
        self.alu.reset_statistics()
        assert self.alu.operation_counts["ADD"] == 0

    def test_effective_address(self):
        assert self.alu.effective_address(TernaryWord(-2), 1) == 3 ** 9 - 1
