"""End-to-end tests of the software-level framework: RV-32 -> ART-9 equivalence.

Every test assembles an RV-32 program, runs it on the RV-32 functional
simulator, translates it, runs the result on both ART-9 simulators and
compares the architectural outcomes (registers located through the
translation report, plus the data memory).
"""

import pytest

from repro.riscv import RVSimulator, assemble_riscv
from repro.sim import FunctionalSimulator, PipelineSimulator
from repro.xlate import translate_program
from repro.xlate.translator import locate_rv_register, read_rv_register_from_simulator


def assert_equivalent(source, check_registers=(10,), check_memory=(), name="test"):
    """Translate ``source`` and compare RV-32 and ART-9 architectural results."""
    rv_program = assemble_riscv(source, name=name)
    rv_sim = RVSimulator(rv_program)
    rv_sim.run()

    art9, report = translate_program(rv_program)
    functional = FunctionalSimulator(art9)
    functional.run(max_instructions=2_000_000)
    pipeline = PipelineSimulator(art9)
    stats = pipeline.run(max_cycles=5_000_000)

    for register in check_registers:
        expected = rv_sim.read_reg(register)
        assert read_rv_register_from_simulator(report, functional, register) == expected
        assert read_rv_register_from_simulator(report, pipeline, register) == expected
    for address in check_memory:
        expected = rv_sim.load_word(address)
        assert functional.tdm.read_int(address) == expected
        assert pipeline.tdm.read_int(address) == expected
    return report, stats


class TestArithmeticEquivalence:
    def test_addition_chain(self):
        assert_equivalent("""
            li a0, 100
            li a1, 250
            add a0, a0, a1
            addi a0, a0, -30
            sub a0, a0, a1
            ecall
        """)

    def test_negative_values(self):
        assert_equivalent("""
            li a0, -1200
            li a1, 345
            add a0, a0, a1
            neg a1, a0
            ecall
        """, check_registers=(10, 11))

    def test_shift_left_by_constant(self):
        assert_equivalent("""
            li a0, 37
            slli a1, a0, 4
            slli a2, a1, 1
            ecall
        """, check_registers=(11, 12))

    def test_shift_right_by_constant_positive(self):
        assert_equivalent("""
            li a0, 1000
            srli a1, a0, 3
            srai a2, a0, 1
            ecall
        """, check_registers=(11, 12))

    def test_multiplication(self):
        assert_equivalent("""
            li a0, 123
            li a1, -45
            mul a2, a0, a1
            mul a3, a1, a1
            ecall
        """, check_registers=(12, 13))

    def test_division_and_remainder(self):
        assert_equivalent("""
            li a0, 1234
            li a1, 7
            div a2, a0, a1
            rem a3, a0, a1
            li a4, -100
            div a5, a4, a1
            rem a6, a4, a1
            ecall
        """, check_registers=(12, 13, 15, 16))

    def test_set_less_than(self):
        assert_equivalent("""
            li a0, 5
            li a1, 9
            slt a2, a0, a1
            slt a3, a1, a0
            slti a4, a0, 5
            ecall
        """, check_registers=(12, 13, 14))


class TestControlFlowEquivalence:
    def test_counting_loop(self):
        assert_equivalent("""
            li a0, 0
            li t0, 1
        loop:
            add a0, a0, t0
            addi t0, t0, 1
            li t1, 30
            ble t0, t1, loop
            ecall
        """)

    def test_nested_branches(self):
        assert_equivalent("""
            li a0, 0
            li t0, -5
        loop:
            bgez t0, positive
            sub a0, a0, t0
            j next
        positive:
            add a0, a0, t0
        next:
            addi t0, t0, 1
            li t1, 5
            blt t0, t1, loop
            ecall
        """)

    def test_function_call_with_stack_frame(self):
        assert_equivalent("""
            li   a0, 6
            jal  ra, triangular
            ecall
        triangular:
            addi sp, sp, -8
            sw   ra, 0(sp)
            sw   a0, 4(sp)
            li   a1, 0
            li   a2, 1
        tri_loop:
            add  a1, a1, a2
            addi a2, a2, 1
            ble  a2, a0, tri_loop
            mv   a0, a1
            lw   ra, 0(sp)
            addi sp, sp, 8
            ret
        """)

    def test_memory_traffic(self):
        assert_equivalent("""
            la   t0, buffer
            li   t1, 0
            li   t2, 11
        fill:
            slli t3, t1, 2
            add  t3, t3, t0
            sw   t1, 0(t3)
            addi t1, t1, 1
            blt  t1, t2, fill
            lw   a0, 20(t0)
            ecall
        .data
        buffer: .zero 12
        """, check_memory=tuple(range(0, 48, 4)))


class TestTranslationReport:
    def test_report_counts_are_consistent(self):
        report, _ = assert_equivalent("""
            li a0, 3
            li a1, 4
            mul a2, a0, a1
            ecall
        """, check_registers=(12,))
        assert report.final_instructions == report.pass_sizes["redundancy_checking"] or \
            report.final_instructions >= report.optimized_instructions
        assert report.helpers_used == ("mul",)
        assert report.rv_instructions == 4
        assert report.instruction_expansion > 1.0
        assert "translation of" in report.summary()

    def test_redundancy_pass_never_grows_code(self):
        report, _ = assert_equivalent("li a0, 700\nadd a0, a0, a0\necall")
        assert report.optimized_instructions <= report.renamed_instructions

    def test_locate_reports_register_or_slot(self):
        report, _ = assert_equivalent("li a0, 1\necall")
        kind, where = locate_rv_register(report, 10)
        assert kind in ("reg", "slot")

    def test_unoptimized_translation_still_correct(self):
        rv_program = assemble_riscv("li a0, 55\nadd a0, a0, a0\necall")
        rv_sim = RVSimulator(rv_program)
        rv_sim.run()
        art9, report = translate_program(rv_program, optimize=False)
        sim = FunctionalSimulator(art9)
        sim.run()
        assert read_rv_register_from_simulator(report, sim, 10) == 110
