"""Fault-injection tests for the distributed sweep coordinator.

Everything runs inside one asyncio event loop with real TCP connections on
loopback, but with an injected stub executor so no simulation cost hides
the protocol behaviour.  The faults injected are the ones the coordinator
promises to survive: workers that vanish mid-job, workers that wedge
without closing their socket (heartbeat loss), poison jobs that kill every
worker they touch, and results arriving after the job was already
completed elsewhere.
"""

import asyncio

import pytest

from repro.runner.spec import SweepJob
from repro.service.coordinator import Coordinator, lost_job_record
from repro.service.protocol import read_message, send_and_drain
from repro.service.workerclient import work_async


def _jobs(count):
    """Distinct, content-addressed jobs (never executed for real here)."""
    return [
        SweepJob("bubble_sort", "fast", True, params=(("length", 4 + 2 * i),))
        for i in range(count)
    ]


def _stub_executor(job):
    return {"job_id": job.job_id, "label": job.label, "status": "ok",
            "verified": True, "cycles": 1}


async def _raw_client(host, port):
    reader, writer = await asyncio.open_connection(host, port)
    await send_and_drain(writer, {"type": "hello", "worker": "faulty", "pid": 0})
    return reader, writer


async def _take_job(reader, writer):
    await send_and_drain(writer, {"type": "next"})
    message = await read_message(reader)
    assert message["type"] == "job"
    return message


class TestHappyPath:
    def test_two_workers_drain_the_queue(self):
        records = []
        coordinator = Coordinator(_jobs(6), on_result=records.append)

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            await asyncio.gather(
                work_async("127.0.0.1", port, name="w1", executor=_stub_executor),
                work_async("127.0.0.1", port, name="w2", executor=_stub_executor),
                serve,
            )

        asyncio.run(scenario())
        assert len(records) == 6
        assert len({record["job_id"] for record in records}) == 6
        assert coordinator.stats.workers_seen == 2
        assert coordinator.stats.results_accepted == 6
        assert coordinator.stats.lost_jobs == 0
        assert sorted(coordinator.stats.worker_names) == ["w1", "w2"]

    def test_empty_job_list_finishes_without_listening(self):
        coordinator = Coordinator([])
        stats = asyncio.run(coordinator.serve())
        assert stats.results_accepted == 0
        assert coordinator.outstanding == 0

    def test_worker_waits_while_last_job_is_in_flight(self):
        """A second worker polls through ``wait`` replies, then gets done."""
        records = []
        coordinator = Coordinator(_jobs(1), on_result=records.append,
                                  heartbeat_timeout=5.0)
        wait_seen = []

        async def slow_executor_client(port):
            def slow(job):
                # Keep the job in flight long enough for the other worker
                # to ask for work and be told to wait (runs in the executor
                # thread, so the blocking sleep is fine).
                import time
                time.sleep(0.3)
                return _stub_executor(job)
            await work_async("127.0.0.1", port, name="slow", executor=slow)

        async def observing_client(port):
            reader, writer = await _raw_client("127.0.0.1", port)
            await send_and_drain(writer, {"type": "next"})
            while True:
                message = await read_message(reader)
                if message is None or message["type"] == "done":
                    break
                assert message["type"] == "wait"
                wait_seen.append(message)
                await asyncio.sleep(message["delay"])
                await send_and_drain(writer, {"type": "next"})
            writer.close()

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            slow = asyncio.create_task(slow_executor_client(port))
            await asyncio.sleep(0.1)  # let the slow worker take the job
            await asyncio.gather(observing_client(port), slow, serve)

        asyncio.run(scenario())
        assert len(records) == 1
        assert wait_seen, "the idle worker should have been told to wait"


class TestFaultInjection:
    def test_disconnect_mid_job_requeues_to_another_worker(self):
        records = []
        coordinator = Coordinator(_jobs(3), on_result=records.append)

        async def faulty_then_good(port):
            reader, writer = await _raw_client("127.0.0.1", port)
            await _take_job(reader, writer)
            writer.close()  # dies mid-job without a result
            await writer.wait_closed()
            await work_async("127.0.0.1", port, name="good",
                             executor=_stub_executor)

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            await asyncio.gather(faulty_then_good(port), serve)

        asyncio.run(scenario())
        assert coordinator.stats.requeues == 1
        assert len(records) == 3
        assert all(record["status"] == "ok" for record in records)

    def test_missed_heartbeats_requeue_while_connection_stays_open(self):
        records = []
        coordinator = Coordinator(_jobs(2), on_result=records.append,
                                  heartbeat_timeout=0.25)

        async def wedged_client(port):
            """Takes a job, then goes silent without closing the socket."""
            reader, writer = await _raw_client("127.0.0.1", port)
            await _take_job(reader, writer)
            try:
                await asyncio.sleep(30)  # cancelled when the test finishes
            finally:
                writer.close()

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            wedged = asyncio.create_task(wedged_client(port))
            await asyncio.sleep(0.05)  # wedged worker grabs the first job
            await work_async("127.0.0.1", port, name="good",
                             executor=_stub_executor)
            await serve
            wedged.cancel()

        asyncio.run(scenario())
        assert coordinator.stats.requeues >= 1
        assert len(records) == 2
        assert all(record["status"] == "ok" for record in records)

    def test_late_result_after_requeue_still_counts_once(self):
        """The wedged worker recovers and reports before anyone else: its
        record is accepted and the requeued duplicate dispatch is dropped."""
        records = []
        coordinator = Coordinator(_jobs(1), on_result=records.append,
                                  heartbeat_timeout=0.2)

        async def recovering_client(port):
            reader, writer = await _raw_client("127.0.0.1", port)
            message = await _take_job(reader, writer)
            await asyncio.sleep(0.5)  # long enough for the watchdog to fire
            record = {"job_id": message["job_id"], "status": "ok",
                      "verified": True, "cycles": 1}
            await send_and_drain(writer, {"type": "result", "record": record})
            reply = await read_message(reader)
            assert reply["type"] == "done"
            writer.close()

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            await asyncio.gather(recovering_client(port), serve)

        asyncio.run(scenario())
        assert coordinator.stats.requeues == 1      # the watchdog did fire
        assert coordinator.stats.results_accepted == 1
        assert len(records) == 1                    # but nothing ran twice

    def test_duplicate_results_are_dropped(self):
        records = []
        job = _jobs(1)[0]
        coordinator = Coordinator([job], on_result=records.append)
        record = _stub_executor(job)
        assert coordinator._accept(dict(record)) is True
        assert coordinator._accept(dict(record)) is False
        assert len(records) == 1
        assert coordinator.stats.duplicate_results == 1

    def test_malformed_results_are_counted_separately(self):
        records = []
        coordinator = Coordinator(_jobs(1), on_result=records.append)
        assert coordinator._accept({"cycles": 5}) is False  # no job_id
        assert records == []
        assert coordinator.stats.malformed_results == 1
        assert coordinator.stats.duplicate_results == 0
        assert "malformed" in coordinator.stats.summary()

    def test_poison_job_is_declared_lost(self):
        records = []
        coordinator = Coordinator(_jobs(1), on_result=records.append,
                                  max_requeues=1)

        async def crash_on_job(port):
            reader, writer = await _raw_client("127.0.0.1", port)
            await _take_job(reader, writer)
            writer.close()
            await writer.wait_closed()

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            # Two dispatch attempts, both "crash" the worker.
            await crash_on_job(port)
            await crash_on_job(port)
            await serve

        asyncio.run(scenario())
        assert coordinator.stats.lost_jobs == 1
        assert len(records) == 1
        assert records[0]["status"] == "error"
        assert "lost after" in records[0]["error"]

    def test_abort_completes_everything_as_lost(self):
        records = []
        coordinator = Coordinator(_jobs(3), on_result=records.append)

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            await coordinator.wait_started()
            coordinator.abort("test abort")
            await serve

        asyncio.run(scenario())
        assert len(records) == 3
        assert all(record["status"] == "error" for record in records)
        assert coordinator.stats.lost_jobs == 3


class TestEmitFailure:
    def test_failing_result_callback_aborts_the_run_loudly(self):
        """A record the callback could not persist must fail the serve call,
        not vanish from an 'OK' run."""
        def exploding_sink(record):
            raise BrokenPipeError("stdout went away")

        coordinator = Coordinator(_jobs(2), on_result=exploding_sink)

        async def scenario():
            import contextlib
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            worker = asyncio.create_task(
                work_async("127.0.0.1", port, executor=_stub_executor))
            with pytest.raises(BrokenPipeError):
                await serve
            # The worker may have exited on its own when the server
            # closed, or still be polling; either way, wind it down.
            worker.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await worker

        asyncio.run(scenario())
        # The record was never marked done, so nothing claims success.
        assert coordinator.stats.results_accepted == 0


class TestHeartbeatHandshake:
    def test_job_message_names_the_required_cadence(self):
        coordinator = Coordinator(_jobs(1), heartbeat_timeout=2.0)
        reply = coordinator._assign(1, "w")
        assert reply["type"] == "job"
        assert reply["heartbeat_every"] == pytest.approx(0.5)

    def test_short_timeout_does_not_kill_a_healthy_slow_job(self):
        """Coordinator timeout far below the worker's default interval: the
        handshake makes the worker beat fast enough anyway."""
        records = []
        coordinator = Coordinator(_jobs(1), on_result=records.append,
                                  heartbeat_timeout=0.4)

        def slow(job):
            import time
            time.sleep(1.2)  # three timeouts long
            return _stub_executor(job)

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            # Default heartbeat_interval is 2.0s — without the handshake
            # this healthy worker would be declared dead.
            await asyncio.gather(
                work_async("127.0.0.1", port, executor=slow), serve)

        asyncio.run(scenario())
        assert coordinator.stats.requeues == 0
        assert coordinator.stats.lost_jobs == 0
        assert len(records) == 1 and records[0]["status"] == "ok"


class TestWorkerMonitor:
    def test_dead_local_workers_do_not_abort_while_external_worker_connected(self):
        """`serve --local-workers N` + external workers: losing every local
        process must not kill jobs an external connection is executing."""
        from repro.service.queue_backend import AsyncQueueBackend

        class DeadProcess:
            @staticmethod
            def is_alive():
                return False

        records = []
        coordinator = Coordinator(_jobs(1), on_result=records.append)

        async def external_worker(port):
            reader, writer = await _raw_client("127.0.0.1", port)
            message = await _take_job(reader, writer)
            await asyncio.sleep(1.2)  # spans two monitor intervals
            record = {"job_id": message["job_id"], "status": "ok",
                      "verified": True, "cycles": 1}
            await send_and_drain(writer, {"type": "result", "record": record})
            assert (await read_message(reader))["type"] == "done"
            writer.close()

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            monitor = asyncio.create_task(
                AsyncQueueBackend._monitor([DeadProcess()], coordinator))
            await asyncio.gather(external_worker(port), serve, monitor)

        asyncio.run(scenario())
        assert coordinator.stats.lost_jobs == 0
        assert len(records) == 1 and records[0]["status"] == "ok"


class TestBindFailure:
    def test_occupied_port_raises_instead_of_hanging(self):
        """A bind failure must unblock wait_started and surface the error."""
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        coordinator = Coordinator(_jobs(1), port=port)

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            assert await coordinator.wait_started() is None
            with pytest.raises(OSError):
                await serve

        try:
            asyncio.run(scenario())
        finally:
            blocker.close()


class TestLostRecord:
    def test_lost_record_is_resume_compatible(self):
        job = _jobs(1)[0]
        record = lost_job_record(job, 3, "worker vanished")
        assert record["job_id"] == job.job_id
        assert record["status"] == "error"
        assert record["workload"] == job.workload
        assert record["engine"] == job.engine
        # An error status means a resumed sweep retries the job.
        assert "lost after 3" in record["error"]


class TestStatusRequests:
    def test_status_probe_answers_without_scheduling(self):
        """An observer sends ``status`` and gets telemetry — never a job,
        never a workers_seen bump, no effect on the run's outcome."""
        records = []
        coordinator = Coordinator(_jobs(2), on_result=records.append)
        snapshots = []

        async def probe(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await send_and_drain(writer, {"type": "status"})
            reply = await read_message(reader)
            assert reply["type"] == "status"
            snapshots.append(reply["status"])
            writer.close()
            await writer.wait_closed()

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            await probe(port)  # before any worker connects
            await asyncio.gather(
                work_async("127.0.0.1", port, name="w1",
                           executor=_stub_executor),
                serve)

        asyncio.run(scenario())
        status = snapshots[0]
        assert status["jobs_total"] == 2
        assert status["queue_depth"] == 2
        assert status["in_flight"] == 0 and status["done"] == 0
        assert status["workers"] == {}
        # The probe never said hello and must not count as a worker.
        assert coordinator.stats.workers_seen == 1
        assert len(records) == 2

    def test_status_snapshot_tracks_worker_progress(self):
        coordinator = Coordinator(_jobs(3), on_result=lambda r: None)

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            await work_async("127.0.0.1", port, name="w1",
                             executor=_stub_executor)
            await serve

        asyncio.run(scenario())
        status = coordinator.status_snapshot()
        assert status["done"] == status["jobs_total"] == 3
        assert status["queue_depth"] == 0 and status["in_flight"] == 0
        assert status["workers"]["w1"]["jobs_done"] == 3
        assert status["workers"]["w1"]["requeues"] == 0
        assert status["workers"]["w1"]["heartbeat_age_s"] >= 0

    def test_request_status_helper_speaks_the_wire_protocol(self):
        """The synchronous ``art9 status --connect`` client against a real
        coordinator, bridged through a thread so the loop keeps serving."""
        from repro.service.workerclient import request_status

        coordinator = Coordinator(_jobs(1), on_result=lambda r: None)
        results = []

        async def scenario():
            loop = asyncio.get_running_loop()
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            results.append(await loop.run_in_executor(
                None, request_status, "127.0.0.1", port))
            await asyncio.gather(
                work_async("127.0.0.1", port, executor=_stub_executor),
                serve)

        asyncio.run(scenario())
        assert results[0]["jobs_total"] == 1
        assert results[0]["outstanding"] == 1


class TestStructuredLogs:
    def test_requeue_log_names_worker_job_and_reason(self, caplog):
        import logging

        records = []
        coordinator = Coordinator(_jobs(1), on_result=records.append)

        async def faulty_then_good(port):
            reader, writer = await _raw_client("127.0.0.1", port)
            message = await _take_job(reader, writer)
            writer.close()
            await writer.wait_closed()
            await work_async("127.0.0.1", port, name="good",
                             executor=_stub_executor)
            return message["job_id"]

        job_ids = []

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            job_ids.append((await asyncio.gather(
                faulty_then_good(port), serve))[0])

        with caplog.at_level(logging.INFO, logger="repro.service.coordinator"):
            asyncio.run(scenario())
        disconnects = [r for r in caplog.records
                       if "disconnected with a job in flight" in r.message]
        requeues = [r for r in caplog.records if "job requeued" in r.message]
        assert disconnects and requeues
        for entry in disconnects + requeues:
            assert entry.worker_id == "faulty"
            assert entry.job_id == job_ids[0]
            assert entry.reason
        assert "faulty disconnected" in requeues[0].reason

    def test_poison_job_log_names_worker_job_and_reason(self, caplog):
        import logging

        records = []
        coordinator = Coordinator(_jobs(1), on_result=records.append,
                                  max_requeues=1)

        async def crash_on_job(port):
            reader, writer = await _raw_client("127.0.0.1", port)
            await _take_job(reader, writer)
            writer.close()
            await writer.wait_closed()

        async def scenario():
            serve = asyncio.create_task(coordinator.serve())
            port = await coordinator.wait_started()
            await crash_on_job(port)
            await crash_on_job(port)
            await serve

        with caplog.at_level(logging.INFO, logger="repro.service.coordinator"):
            asyncio.run(scenario())
        lost = [r for r in caplog.records
                if "poison job declared lost" in r.message]
        assert len(lost) == 1
        assert lost[0].worker_id == "faulty"
        assert lost[0].job_id == records[0]["job_id"]
        assert "disconnected" in lost[0].reason
        # Per-worker requeue attribution survives into the snapshot.
        assert coordinator.status_snapshot()["workers"]["faulty"]["requeues"] == 2
