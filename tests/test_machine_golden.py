"""Per-machine golden-trace regression suite.

``tests/golden/<machine>/`` holds one fixture per workload per non-default
machine config, captured from the stage-by-stage pipeline (the structural
reference) under that config.  Each fixture is replayed here against all
three cycle-accurate engines, so a refactor that drifts *any* engine's
timing at *any* design-space corner fails with a named stats field.

The default machine's fixtures live at the top level of ``tests/golden/``
and are covered by ``test_golden_traces.py``; they predate the machine
axis and must stay byte-identical.  Regenerate everything deliberately
with ``PYTHONPATH=src python tests/golden/regenerate.py``.
"""

import glob
import json
import os

import pytest

from repro.framework import SoftwareFramework
from repro.sim.compiled import CompiledEngine
from repro.sim.engine import FastEngine
from repro.sim.machine import DEFAULT_MACHINE_NAME, MACHINES
from repro.sim.pipeline import PipelineSimulator
from repro.sim.trace import TRACE_FORMAT, state_digest, trace_mismatches

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
FIXTURE_PATHS = sorted(glob.glob(os.path.join(GOLDEN_DIR, "*", "*.json")))
MAX_CYCLES = 50_000_000

_software = SoftwareFramework(optimize=True)


def _load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _program_for(trace):
    program, _, _ = _software.compile_named_workload(
        trace["workload"], trace["params"])
    return program


def _fixture_id(path):
    machine = os.path.basename(os.path.dirname(path))
    return f"{machine}-{os.path.splitext(os.path.basename(path))[0]}"


def test_machine_fixture_matrix_is_complete():
    """Every non-default built-in config pins every bundled workload."""
    from repro.workloads import all_workloads

    expected_machines = set(MACHINES) - {DEFAULT_MACHINE_NAME}
    by_machine = {}
    for path in FIXTURE_PATHS:
        trace = _load(path)
        by_machine.setdefault(trace["machine"], set()).add(trace["workload"])
    assert set(by_machine) == expected_machines
    for machine, workloads in by_machine.items():
        assert workloads == set(all_workloads()), machine


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=_fixture_id)
def test_machine_fixture_is_well_formed(path):
    trace = _load(path)
    assert trace["format"] == TRACE_FORMAT
    assert trace["machine"] == os.path.basename(os.path.dirname(path))
    assert trace["machine"] in MACHINES
    assert trace["stats"]["cycles"] > 0


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=_fixture_id)
def test_pipeline_matches_machine_golden(path):
    trace = _load(path)
    simulator = PipelineSimulator(_program_for(trace), machine=trace["machine"])
    stats = simulator.run(max_cycles=MAX_CYCLES)
    mismatches = trace_mismatches(
        trace, simulator.register_snapshot(), simulator.tdm.contents(), stats)
    assert not mismatches, "\n".join(mismatches)


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=_fixture_id)
def test_fast_engine_matches_machine_golden(path):
    trace = _load(path)
    engine = FastEngine(_program_for(trace), machine=trace["machine"])
    stats = engine.run_with_stats(max_cycles=MAX_CYCLES)
    mismatches = trace_mismatches(
        trace, engine.register_snapshot(), engine.tdm.contents(), stats)
    assert not mismatches, "\n".join(mismatches)
    assert state_digest(engine.register_snapshot(),
                        engine.tdm.contents()) == trace["state_digest"]


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=_fixture_id)
def test_compiled_engine_matches_machine_golden(path):
    trace = _load(path)
    engine = CompiledEngine(_program_for(trace), machine=trace["machine"])
    stats = engine.run_with_stats(max_cycles=MAX_CYCLES)
    mismatches = trace_mismatches(
        trace, engine.register_snapshot(), engine.tdm.contents(), stats)
    assert not mismatches, "\n".join(mismatches)
    assert state_digest(engine.register_snapshot(),
                        engine.tdm.contents()) == trace["state_digest"]


def test_state_digests_agree_with_default_machine_fixtures():
    """Architectural state in every corner fixture matches the default's."""
    default_digests = {}
    for path in sorted(glob.glob(os.path.join(GOLDEN_DIR, "*.json"))):
        trace = _load(path)
        default_digests[(trace["workload"],
                         json.dumps(trace["params"], sort_keys=True))] = \
            trace["state_digest"]
    assert default_digests
    for path in FIXTURE_PATHS:
        trace = _load(path)
        key = (trace["workload"], json.dumps(trace["params"], sort_keys=True))
        assert trace["state_digest"] == default_digests[key], path
