"""Differential test of the translation path: RV-32I vs translated ART-9.

For every bundled workload, the RV-32I program runs on the RISC-V functional
simulator and its translation runs on the ART-9 fast engine; both must agree
on every word of the workload's declared output region (and both must match
the workload's golden expected results).  The translator keeps RV byte
addresses, so result word ``i`` lives at RV address ``result_base + 4*i``
and at the same TDM address on the ternary side.
"""

import pytest

from repro.framework import SoftwareFramework
from repro.riscv.simulator import RVSimulator
from repro.sim import FastEngine
from repro.workloads import all_workloads


@pytest.fixture(scope="module")
def software_framework():
    return SoftwareFramework()


@pytest.mark.parametrize("name", ["bubble_sort", "gemm", "sobel", "dhrystone"])
def test_riscv_and_fast_engine_agree_on_output_locations(name, software_framework):
    workload = all_workloads()[name]

    rv_simulator = RVSimulator(workload.rv_program())
    rv_simulator.run()
    rv_outputs = rv_simulator.memory_words(workload.result_base, workload.result_count)

    program, _ = software_framework.compile_workload(workload)
    engine = FastEngine(program)
    engine.run()
    art9_outputs = [
        engine.tdm.read_int(workload.result_base + 4 * index)
        for index in range(workload.result_count)
    ]

    assert art9_outputs == rv_outputs, (
        f"{name}: translated program diverges from the RV-32I reference "
        f"at {workload.result_count} declared output words"
    )
    assert art9_outputs == workload.expected_results


@pytest.mark.parametrize("name", ["bubble_sort", "sobel"])
def test_translation_without_optimization_also_agrees(name):
    """The redundancy-elimination pass must not be load-bearing for correctness."""
    workload = all_workloads()[name]
    program, _ = SoftwareFramework(optimize=False).compile_workload(workload)
    engine = FastEngine(program)
    engine.run()
    workload.check_ternary_results(engine)
