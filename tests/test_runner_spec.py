"""Unit tests for sweep specifications, job identities and the result store."""

import json
import logging
import os

import pytest

from repro.runner import (
    RunStore,
    SpecError,
    StoreError,
    SweepJob,
    SweepSpec,
    canonical_record,
)
from repro.runner.spec import DEFAULT_MAX_CYCLES


class TestSweepJob:
    def test_job_id_is_deterministic(self):
        job = SweepJob(workload="gemm", engine="fast", optimize=True)
        again = SweepJob(workload="gemm", engine="fast", optimize=True)
        assert job.job_id == again.job_id
        assert len(job.job_id) == 12

    def test_job_id_ignores_param_order(self):
        a = SweepJob("gemm", "fast", True, params=(("n", 8), ("seed", 1)))
        b = SweepJob.from_dict(
            {"workload": "gemm", "engine": "fast", "optimize": True,
             "params": {"seed": 1, "n": 8}})
        assert a.job_id == b.job_id

    def test_job_id_separates_every_axis(self):
        base = SweepJob("gemm", "fast", True)
        assert base.job_id != SweepJob("gemm", "pipeline", True).job_id
        assert base.job_id != SweepJob("gemm", "fast", False).job_id
        assert base.job_id != SweepJob("sobel", "fast", True).job_id
        assert base.job_id != SweepJob("gemm", "fast", True,
                                       params=(("n", 8),)).job_id
        assert base.job_id != SweepJob("gemm", "fast", True,
                                       max_cycles=1000).job_id

    def test_round_trip(self):
        job = SweepJob("sobel", "pipeline", False, params=(("size", 16),),
                       max_cycles=123)
        assert SweepJob.from_dict(job.to_dict()) == job

    def test_label(self):
        job = SweepJob("gemm", "fast", False, params=(("n", 8),))
        assert job.label == "gemm[n=8]/fast/noopt"


class TestSweepSpec:
    def test_default_grid_covers_all_workloads(self):
        jobs = SweepSpec().expand()
        # 4 workloads x 3 engines (fast, pipeline, compiled) x 2 optimize settings
        assert len(jobs) == 24
        assert len({job.job_id for job in jobs}) == 24
        assert {job.workload for job in jobs} == {
            "bubble_sort", "dhrystone", "gemm", "sobel"}

    def test_params_add_variants(self):
        spec = SweepSpec(workloads=("gemm",), engines=("fast",),
                         optimize=(True,),
                         params={"gemm": [{}, {"n": 2}, {"n": 8}]})
        jobs = spec.expand()
        assert len(jobs) == 3
        assert [job.params_dict for job in jobs] == [{}, {"n": 2}, {"n": 8}]

    def test_round_trip(self):
        spec = SweepSpec(workloads=("gemm", "sobel"), engines=("fast",),
                         optimize=(True,), params={"gemm": [{"n": 2}]},
                         max_cycles=777)
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        assert rebuilt.to_dict() == spec.to_dict()
        assert [job.job_id for job in rebuilt.expand()] == \
               [job.job_id for job in spec.expand()]

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"workloads": ["bubble_sort"],
                                    "engines": ["fast"], "optimize": [True]}))
        spec = SweepSpec.from_file(str(path))
        assert [job.label for job in spec.expand()] == ["bubble_sort/fast/opt"]

    @pytest.mark.parametrize("kwargs", [
        {"workloads": ("no_such_workload",)},
        {"engines": ("warp",)},
        {"engines": ()},
        {"optimize": ()},
        {"workloads": ("gemm",), "params": {"sobel": [{}]}},
        {"workloads": ("gemm",), "params": {"gemm": "n=8"}},
        {"workloads": ("gemm",), "params": {"gemm": [{"n": 8}, "oops"]}},
    ])
    def test_validation_errors(self, kwargs):
        with pytest.raises(SpecError):
            SweepSpec(**kwargs).expand()

    def test_single_dict_params_shorthand(self):
        shorthand = SweepSpec(workloads=("gemm",), engines=("fast",),
                              optimize=(True,), params={"gemm": {"n": 8}})
        canonical = SweepSpec(workloads=("gemm",), engines=("fast",),
                              optimize=(True,), params={"gemm": [{"n": 8}]})
        assert [job.job_id for job in shorthand.expand()] == \
               [job.job_id for job in canonical.expand()]
        # to_dict emits the list form either way, so resume identity is
        # stable no matter which spelling the user typed.
        assert shorthand.to_dict() == canonical.to_dict()

    def test_default_max_cycles_matches_framework(self):
        assert SweepSpec().max_cycles == DEFAULT_MAX_CYCLES


class TestRunStore:
    def _record(self, job_id, status="ok", **extra):
        return {"job_id": job_id, "status": status, **extra}

    def test_records_and_completed_ids(self, tmp_path):
        store = RunStore(str(tmp_path / "run"))
        store.initialize(SweepSpec(workloads=("gemm",)))
        store.append(self._record("aaa"))
        store.append(self._record("bbb", status="error", error="boom"))
        assert [r["job_id"] for r in store.records()] == ["aaa", "bbb"]
        # Errors are retried on resume: only ok records count as completed.
        assert store.completed_ids() == {"aaa"}

    def test_latest_record_per_job_wins(self, tmp_path):
        store = RunStore(str(tmp_path / "run"))
        store.initialize(SweepSpec(workloads=("gemm",)))
        store.append(self._record("aaa", status="error", error="boom"))
        store.append(self._record("aaa", cycles=5))
        records = store.records()
        assert len(records) == 1
        assert records[0]["status"] == "ok"
        assert store.completed_ids() == {"aaa"}

    def test_truncated_trailing_line_is_tolerated(self, tmp_path):
        store = RunStore(str(tmp_path / "run"))
        store.initialize(SweepSpec(workloads=("gemm",)))
        store.append(self._record("aaa"))
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write('{"job_id": "bbb", "status": "o')  # killed mid-write
        assert store.completed_ids() == {"aaa"}

    def test_torn_line_skip_is_warned_about(self, tmp_path, caplog):
        store = RunStore(str(tmp_path / "run"))
        store.initialize(SweepSpec(workloads=("gemm",)))
        store.append(self._record("aaa"))
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write('{"job_id": "bbb", "cycles": 12')  # no closing brace
        with caplog.at_level(logging.WARNING, logger="repro.runner.store"):
            records = store.records()
        assert [r["job_id"] for r in records] == ["aaa"]
        assert any("torn record on line 2" in message
                   for message in caplog.messages)

    def test_mid_file_corruption_is_warned_and_skipped(self, tmp_path, caplog):
        store = RunStore(str(tmp_path / "run"))
        store.initialize(SweepSpec(workloads=("gemm",)))
        store.append(self._record("aaa"))
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write("garbage not json\n")
        store.append(self._record("ccc"))
        with caplog.at_level(logging.WARNING, logger="repro.runner.store"):
            records = store.records()
        assert [r["job_id"] for r in records] == ["aaa", "ccc"]
        assert any("line 2" in message for message in caplog.messages)

    def test_non_dict_json_line_is_warned_and_skipped(self, tmp_path, caplog):
        store = RunStore(str(tmp_path / "run"))
        store.initialize(SweepSpec(workloads=("gemm",)))
        with open(store.results_path, "w", encoding="utf-8") as handle:
            handle.write("12345\n")  # valid JSON, but not a record
        with caplog.at_level(logging.WARNING, logger="repro.runner.store"):
            assert store.records() == []
        assert any("non-record JSON" in message for message in caplog.messages)

    def test_missing_job_id_is_warned_and_skipped(self, tmp_path, caplog):
        store = RunStore(str(tmp_path / "run"))
        store.initialize(SweepSpec(workloads=("gemm",)))
        store.append(self._record("aaa"))
        # A record without a job_id can't participate in resume or dedup;
        # dropping it must be as loud as dropping a torn line.
        store.append({"status": "ok", "cycles": 12})
        with caplog.at_level(logging.WARNING, logger="repro.runner.store"):
            records = store.records()
        assert [r["job_id"] for r in records] == ["aaa"]
        assert any("without a job_id on line 2" in message
                   for message in caplog.messages)

    def test_resume_survives_a_torn_final_line(self, tmp_path):
        """The satellite's end-to-end claim: a run killed mid-write resumes
        instead of crashing, recomputing only the torn job."""
        from repro.runner import run_sweep
        spec = SweepSpec(workloads=("bubble_sort",), engines=("fast",),
                         optimize=(True, False),
                         params={"bubble_sort": [{"length": 8}]})
        out = str(tmp_path / "run")
        run_sweep(spec, out, jobs=1)
        store = RunStore(out)
        with open(store.results_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(store.results_path, "w", encoding="utf-8") as handle:
            handle.write(lines[0])
            handle.write(lines[1][:25])  # the kill tore the final record
        resumed = run_sweep(spec, out, jobs=1)
        assert resumed.skipped == 1
        assert resumed.executed == 1
        assert len(RunStore(out).records()) == 2

    def test_resuming_with_a_different_spec_is_refused(self, tmp_path):
        store = RunStore(str(tmp_path / "run"))
        store.initialize(SweepSpec(workloads=("gemm",)))
        with pytest.raises(StoreError):
            store.initialize(SweepSpec(workloads=("sobel",)))

    def test_reset_clears_the_run(self, tmp_path):
        store = RunStore(str(tmp_path / "run"))
        store.initialize(SweepSpec(workloads=("gemm",)))
        store.append(self._record("aaa"))
        store.reset()
        assert not store.exists()
        assert store.records() == []
        store.initialize(SweepSpec(workloads=("sobel",)))  # now allowed
        assert store.load_spec().workloads == ("sobel",)

    def test_summary_table_lists_errors(self, tmp_path):
        store = RunStore(str(tmp_path / "run"))
        os.makedirs(store.root, exist_ok=True)
        table = store.summary_table([
            self._record("aaa", workload="gemm", engine="fast", optimize=True,
                         cycles=100, cpi=1.25, stall_cycles=3, verified=True),
            self._record("bbb", workload="sobel", engine="fast", optimize=False,
                         status="error", error="KeyError: 'x'"),
        ])
        assert "gemm" in table and "1.250" in table
        assert "ERROR: KeyError: 'x'" in table


class TestCanonicalRecord:
    def test_volatile_fields_are_stripped(self):
        record = {"job_id": "aaa", "cycles": 7, "elapsed_s": 0.123,
                  "worker_pid": 4242}
        other = {"job_id": "aaa", "cycles": 7, "elapsed_s": 9.876,
                 "worker_pid": 1}
        assert canonical_record(record) == canonical_record(other)
        assert "4242" not in canonical_record(record)

    def test_meaningful_fields_still_differ(self):
        a = {"job_id": "aaa", "cycles": 7}
        b = {"job_id": "aaa", "cycles": 8}
        assert canonical_record(a) != canonical_record(b)

    def test_key_order_does_not_matter(self):
        assert canonical_record({"a": 1, "b": 2}) == \
            canonical_record({"b": 2, "a": 1})
