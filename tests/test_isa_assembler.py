"""Tests for the ART-9 assembler, disassembler and Program container."""

import pytest

from repro.isa import AssemblerError, Program, assemble, disassemble_program
from repro.isa.assembler import split_constant
from repro.isa.instructions import Instruction
from repro.ternary.word import WORD_TRITS


class TestSplitConstant:
    @pytest.mark.parametrize("value", [0, 1, -1, 121, -121, 242, 743, 9841, -9841, 4567])
    def test_lui_li_reconstruction(self, value):
        high, low = split_constant(value)
        assert high * 243 + low == value
        assert -40 <= high <= 40
        assert -121 <= low <= 121


class TestAssembler:
    def test_basic_program(self):
        program = assemble("""
        .text
            ADDI T1, 5
            ADD  T1, T2
            HALT
        """)
        assert len(program) == 3
        assert program[0].mnemonic == "ADDI"
        assert program[2].mnemonic == "HALT"

    def test_labels_resolve_pc_relative(self):
        program = assemble("""
        loop:
            ADDI T1, 1
            BNE  T1, 0, loop
            HALT
        """)
        branch = program[1]
        assert branch.imm == -1  # one instruction back

    def test_forward_label(self):
        program = assemble("""
            BEQ T1, 0, done
            ADDI T2, 1
        done:
            HALT
        """)
        assert program[0].imm == 2

    def test_liw_expands_to_lui_li(self):
        program = assemble("LIW T3, 743\nHALT")
        assert [i.mnemonic for i in program] == ["LUI", "LI", "HALT"]

    def test_nop_pseudo(self):
        program = assemble("NOP\nHALT")
        assert program[0].is_nop()

    def test_beqz_bnez_pseudo(self):
        program = assemble("""
        start:
            BEQZ T2, start
            BNEZ T3, start
            HALT
        """)
        assert program[0].mnemonic == "BEQ" and program[0].branch_trit == 0
        assert program[1].mnemonic == "BNE" and program[1].branch_trit == 0

    def test_data_section_and_labels(self):
        program = assemble("""
        .text
            LIW T1, table
            LOAD T2, T1, 1
            HALT
        .data
        table: .word 5, -7, 9
               .zero 2
        """)
        assert program.data[0].values == [5, -7, 9, 0, 0]
        assert program.data_labels["table"] == 0
        # LIW of a data label materialises its absolute address (0).
        assert program[0].imm == 0 and program[1].mnemonic == "LI"

    def test_register_aliases(self):
        program = assemble("ADD SP, RA\nHALT")
        assert program[0].ta == 7 and program[0].tb == 8

    def test_comments_and_blank_lines(self):
        program = assemble("""
        # full line comment
            ADDI T1, 1   ; trailing comment
            HALT
        """)
        assert len(program) == 2

    def test_ternary_literal(self):
        program = assemble("ADDI T1, 0t1T\nHALT")
        assert program[0].imm == 2

    def test_errors_have_line_numbers(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("ADDI T1, 99")
        assert "immediate" in str(excinfo.value)
        with pytest.raises(AssemblerError):
            assemble("FROB T1, T2")
        with pytest.raises(AssemblerError):
            assemble("ADD T1")
        with pytest.raises(AssemblerError):
            assemble("BEQ T1, 2, 0\nHALT")  # branch trit must be -1/0/1
        with pytest.raises(AssemblerError):
            assemble("BEQ T1, 0, nowhere")

    def test_undefined_and_duplicate_labels(self):
        with pytest.raises(AssemblerError):
            assemble("JAL T8, missing\nHALT")
        with pytest.raises(ValueError):
            assemble("a:\nADDI T1, 1\na:\nHALT")


class TestProgram:
    def test_memory_footprint(self):
        program = assemble("ADDI T1, 1\nHALT\n.data\nx: .word 1, 2")
        assert program.instruction_memory_trits() == 2 * WORD_TRITS
        assert program.data_memory_trits() == 2 * WORD_TRITS
        assert program.total_memory_trits() == 4 * WORD_TRITS

    def test_encode_produces_9_trit_words(self):
        program = assemble("ADDI T1, 1\nHALT")
        words = program.encode()
        assert all(w.width == 9 for w in words)

    def test_listing_contains_labels(self):
        program = assemble("loop:\nADDI T1, 1\nBNE T1, 0, loop\nHALT")
        listing = program.listing()
        assert "loop:" in listing and "ADDI" in listing

    def test_copy_is_independent(self):
        program = assemble("ADDI T1, 1\nHALT")
        clone = program.copy()
        clone.instructions[0].imm = 2
        assert program[0].imm == 1

    def test_resolve_labels_rejects_undefined(self):
        program = Program()
        program.append(Instruction("JAL", ta=8, label="nowhere"))
        with pytest.raises(ValueError):
            program.resolve_labels()


class TestDisassembler:
    def test_round_trip_listing(self):
        source = """
            LIW T1, 500
            ADDI T1, 3
            STORE T1, T0, 2
            LOAD T2, T0, 2
            COMP T1, T2
            BEQ T1, 0, skip
            ADDI T3, 1
        skip:
            HALT
        """
        program = assemble(source)
        text = disassemble_program(program, with_addresses=False)
        lines = text.splitlines()
        assert lines[1] == "LI T1, 14"       # 500 == 2*243 + 14
        assert lines[0] == "LUI T1, 2"
        assert any(line.startswith("BEQ") for line in lines)
        # Re-assembling the disassembly (plus resolved immediates) succeeds.
        reassembled = assemble("\n".join(lines))
        assert len(reassembled) == len(program)
