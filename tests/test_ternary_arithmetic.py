"""Unit and property tests for word-level balanced ternary arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.ternary import (
    TernaryWord,
    add_words,
    compare_words,
    divmod_by_power_of_three,
    full_adder,
    mul_words,
    negate_word,
    shift_left,
    shift_right,
    sub_words,
    to_balanced_range,
)
from repro.ternary.arithmetic import shift_amount_from_word

values = st.integers(min_value=-9841, max_value=9841)
small_values = st.integers(min_value=-90, max_value=90)


class TestFullAdder:
    def test_all_27_input_combinations(self):
        for a in (-1, 0, 1):
            for b in (-1, 0, 1):
                for carry in (-1, 0, 1):
                    total, carry_out = full_adder(a, b, carry)
                    assert total in (-1, 0, 1)
                    assert carry_out in (-1, 0, 1)
                    assert total + 3 * carry_out == a + b + carry


class TestAddSub:
    def test_simple_addition(self):
        assert add_words(TernaryWord(700), TernaryWord(42)).value == 742

    def test_addition_wraps_at_word_boundary(self):
        assert add_words(TernaryWord(9841), TernaryWord(1)).value == -9841

    def test_subtraction(self):
        assert sub_words(TernaryWord(10), TernaryWord(25)).value == -15

    def test_negation_is_sti_of_every_trit(self):
        word = TernaryWord(1234)
        assert negate_word(word).value == -1234

    @given(values, values)
    def test_add_matches_integer_addition(self, a, b):
        expected = to_balanced_range(a + b, 9)
        assert add_words(TernaryWord(a), TernaryWord(b)).value == expected

    @given(values, values)
    def test_sub_matches_integer_subtraction(self, a, b):
        expected = to_balanced_range(a - b, 9)
        assert sub_words(TernaryWord(a), TernaryWord(b)).value == expected

    @given(values)
    def test_x_minus_x_is_zero(self, a):
        assert sub_words(TernaryWord(a), TernaryWord(a)).value == 0


class TestMultiply:
    @given(small_values, small_values)
    def test_mul_matches_integer_multiplication(self, a, b):
        expected = to_balanced_range(a * b, 9)
        assert mul_words(TernaryWord(a), TernaryWord(b)).value == expected

    def test_mul_by_zero_and_one(self):
        assert mul_words(TernaryWord(1234), TernaryWord(0)).value == 0
        assert mul_words(TernaryWord(1234), TernaryWord(1)).value == 1234
        assert mul_words(TernaryWord(1234), TernaryWord(-1)).value == -1234


class TestShifts:
    def test_shift_left_multiplies_by_three(self):
        assert shift_left(TernaryWord(5), 1).value == 15
        assert shift_left(TernaryWord(5), 2).value == 45

    def test_shift_right_rounds_to_nearest(self):
        # Balanced ternary truncation rounds to the nearest integer.
        assert shift_right(TernaryWord(5), 1).value == 2   # 5/3 = 1.67 -> 2
        assert shift_right(TernaryWord(4), 1).value == 1   # 4/3 = 1.33 -> 1
        assert shift_right(TernaryWord(-5), 1).value == -2

    def test_shift_by_width_clears(self):
        assert shift_left(TernaryWord(5), 9).value == 0
        assert shift_right(TernaryWord(5), 9).value == 0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            shift_left(TernaryWord(1), -1)
        with pytest.raises(ValueError):
            shift_right(TernaryWord(1), -1)

    @given(values, st.integers(min_value=0, max_value=8))
    def test_left_then_right_recovers_value_when_no_overflow(self, value, amount):
        if abs(value) <= 9841 // (3 ** amount):
            word = TernaryWord(value)
            assert shift_right(shift_left(word, amount), amount).value == value

    @given(values, st.integers(min_value=0, max_value=8))
    def test_shift_right_is_nearest_division(self, value, amount):
        shifted = shift_right(TernaryWord(value), amount).value
        exact = value / (3 ** amount)
        assert abs(shifted - exact) <= 0.5

    def test_shift_amount_decoding(self):
        assert shift_amount_from_word(TernaryWord(4)) == 4
        assert shift_amount_from_word(TernaryWord(-4)) == 5   # wraps modulo 9
        assert shift_amount_from_word(TernaryWord(0)) == 0


class TestCompare:
    @given(values, values)
    def test_compare_matches_integer_comparison(self, a, b):
        expected = 0 if a == b else (1 if a > b else -1)
        assert compare_words(TernaryWord(a), TernaryWord(b)) == expected

    def test_divmod_by_power_of_three(self):
        quotient, remainder = divmod_by_power_of_three(TernaryWord(100), 2)
        assert quotient.value == shift_right(TernaryWord(100), 2).value
        assert remainder.value == 100 - quotient.value * 9
