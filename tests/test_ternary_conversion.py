"""Unit and property tests for integer <-> balanced trit conversion."""

import pytest
from hypothesis import given, strategies as st

from repro.ternary.conversion import (
    balanced_range,
    int_to_trits,
    min_trits_for,
    to_balanced_range,
    trits_to_int,
    unsigned_value,
)


class TestRanges:
    def test_balanced_range_width_9(self):
        assert balanced_range(9) == (-9841, 9841)

    def test_balanced_range_width_1(self):
        assert balanced_range(1) == (-1, 1)

    def test_bad_width_raises(self):
        with pytest.raises(ValueError):
            balanced_range(0)

    def test_wrap_positive_overflow(self):
        assert to_balanced_range(9842, 9) == -9841

    def test_wrap_negative_overflow(self):
        assert to_balanced_range(-9842, 9) == 9841

    def test_wrap_identity_inside_range(self):
        for value in (-9841, -1, 0, 1, 9841):
            assert to_balanced_range(value, 9) == value


class TestConversions:
    @pytest.mark.parametrize("value,expected", [
        (0, [0, 0, 0]),
        (1, [1, 0, 0]),
        (-1, [-1, 0, 0]),
        (5, [-1, -1, 1]),      # 5 = 9 - 3 - 1
        (13, [1, 1, 1]),
        (-13, [-1, -1, -1]),
    ])
    def test_known_encodings(self, value, expected):
        assert int_to_trits(value, 3) == expected

    def test_round_trip_full_width9_sample(self):
        for value in range(-9841, 9842, 97):
            assert trits_to_int(int_to_trits(value, 9)) == value

    def test_trits_to_int_rejects_bad_digit(self):
        with pytest.raises(ValueError):
            trits_to_int([0, 2, 0])

    def test_min_trits_for(self):
        assert min_trits_for(0) == 1
        assert min_trits_for(1) == 1
        assert min_trits_for(2) == 2
        assert min_trits_for(13) == 3
        assert min_trits_for(14) == 4
        assert min_trits_for(-121) == 5
        assert min_trits_for(-122) == 6

    def test_unsigned_value_of_negative(self):
        trits = int_to_trits(-1, 9)
        assert unsigned_value(trits) == 3 ** 9 - 1


class TestConversionProperties:
    @given(st.integers(min_value=-9841, max_value=9841))
    def test_round_trip_is_identity(self, value):
        assert trits_to_int(int_to_trits(value, 9)) == value

    @given(st.integers(), st.integers(min_value=1, max_value=12))
    def test_wrap_preserves_congruence_mod_3n(self, value, width):
        wrapped = to_balanced_range(value, width)
        assert (wrapped - value) % (3 ** width) == 0
        lo, hi = balanced_range(width)
        assert lo <= wrapped <= hi

    @given(st.integers(min_value=-9841, max_value=9841))
    def test_digits_are_balanced(self, value):
        assert all(t in (-1, 0, 1) for t in int_to_trits(value, 9))

    @given(st.integers(min_value=-9841, max_value=9841))
    def test_negation_flips_every_trit(self, value):
        positive = int_to_trits(value, 9)
        negative = int_to_trits(-value, 9)
        assert negative == [-t for t in positive]
