"""Unit tests for the individual passes of the software-level framework."""

import pytest

from repro.isa.instructions import Instruction
from repro.riscv import assemble_riscv
from repro.xlate import (
    InstructionMapper,
    RegisterAllocator,
    TranslationError,
    convert_operands,
    remove_redundancies,
)
from repro.xlate.ir import LabelMarker, TranslationUnit, VirtualRegisterFile, V_RA, V_SP, V_ZERO
from repro.xlate.layout import emit_program
from repro.xlate.regalloc import NEAR_SLOTS, PHYS_SCRATCH_A, PHYS_SCRATCH_B


def map_source(source):
    vregs = VirtualRegisterFile()
    mapper = InstructionMapper(vregs)
    unit = mapper.map_program(assemble_riscv(source))
    return unit, vregs


class TestInstructionMapping:
    def test_add_with_distinct_destination_uses_move(self):
        unit, _ = map_source("add a2, a0, a1\necall")
        mnemonics = [i.mnemonic for i in unit.instructions()]
        assert mnemonics[-3:] == ["MV", "ADD", "HALT"]

    def test_add_in_place_needs_no_move(self):
        unit, _ = map_source("add a0, a0, a1\necall")
        mnemonics = [i.mnemonic for i in unit.instructions()]
        assert mnemonics[-2:] == ["ADD", "HALT"]

    def test_slli_becomes_doubling_chain(self):
        unit, _ = map_source("slli a1, a0, 3\necall")
        adds = [i for i in unit.instructions() if i.mnemonic == "ADD"]
        assert len(adds) == 3
        assert all(i.ta == i.tb for i in adds)

    def test_branch_maps_to_comp_plus_branch(self):
        unit, _ = map_source("beq a0, a1, target\ntarget:\necall")
        mnemonics = [i.mnemonic for i in unit.instructions()]
        assert "COMP" in mnemonics and "BEQ" in mnemonics

    def test_blt_uses_negative_branch_trit(self):
        unit, _ = map_source("blt a0, a1, target\ntarget:\necall")
        branch = [i for i in unit.instructions() if i.spec.is_branch][0]
        assert branch.mnemonic == "BEQ" and branch.branch_trit == -1

    def test_mul_requests_runtime_helper(self):
        unit, _ = map_source("mul a0, a0, a1\necall")
        assert "mul" in unit.required_helpers
        assert any(i.mnemonic == "JAL" and i.label == "__t_mul" for i in unit.instructions())

    def test_writes_to_x0_are_dropped(self):
        unit, _ = map_source("addi zero, zero, 0\nadd zero, a0, a1\necall")
        mnemonics = [i.mnemonic for i in unit.instructions()]
        # Only the stack-pointer prologue and the HALT remain.
        assert mnemonics.count("ADD") == 0 and mnemonics.count("ADDI") == 0

    def test_branch_targets_become_generated_labels(self):
        unit, _ = map_source("""
        loop:
            addi a0, a0, 1
            bne a0, a1, loop
            ecall
        """)
        assert ".L0" in unit.labels()

    def test_auipc_rejected(self):
        with pytest.raises(TranslationError):
            map_source("auipc a0, 1\necall")

    def test_oversized_constant_rejected(self):
        with pytest.raises(TranslationError):
            map_source("li a0, 100000\necall")

    def test_ecall_becomes_halt(self):
        unit, _ = map_source("ecall")
        assert [i.mnemonic for i in unit.instructions()][-1] == "HALT"

    def test_data_is_replicated_at_byte_addresses(self):
        unit, _ = map_source("""
            la a0, tab
            lw a1, 4(a0)
            ecall
        .data
        tab: .word 9, 8
        """)
        assert unit.data_words[0] == 9 and unit.data_words[4] == 8


class TestOperandConversion:
    def test_in_range_immediates_untouched(self):
        vregs = VirtualRegisterFile()
        unit = TranslationUnit(items=[Instruction("ADDI", ta=1, imm=13)])
        converted = convert_operands(unit, vregs)
        assert [i.mnemonic for i in converted.instructions()] == ["ADDI"]

    def test_large_addi_materialised(self):
        vregs = VirtualRegisterFile()
        unit = TranslationUnit(items=[Instruction("ADDI", ta=1, imm=500)])
        converted = convert_operands(unit, vregs)
        assert [i.mnemonic for i in converted.instructions()] == ["LUI", "LI", "ADD"]

    def test_large_load_offset_materialised(self):
        vregs = VirtualRegisterFile()
        unit = TranslationUnit(items=[Instruction("LOAD", ta=1, tb=2, imm=100)])
        converted = convert_operands(unit, vregs)
        mnemonics = [i.mnemonic for i in converted.instructions()]
        assert mnemonics == ["LUI", "LI", "ADD", "LOAD"]
        assert list(converted.instructions())[-1].imm == 0

    def test_labels_pass_through(self):
        vregs = VirtualRegisterFile()
        unit = TranslationUnit(items=[Instruction("JAL", ta=1, label="far")])
        converted = convert_operands(unit, vregs)
        assert list(converted.instructions())[0].label == "far"


class TestRegisterAllocation:
    def test_small_programs_avoid_spilling(self):
        unit, vregs = map_source("""
            li a0, 1
            li a1, 2
            add a0, a0, a1
            ecall
        """)
        allocator = RegisterAllocator(vregs)
        allocation = allocator.build_allocation(unit)
        assert not allocation.spilled
        assert not allocation.uses_scratch

    def test_pinned_registers(self):
        unit, vregs = map_source("""
            addi sp, sp, -4
            sw   ra, 0(sp)
            mv   a0, zero
            lw   ra, 0(sp)
            addi sp, sp, 4
            ret
        """)
        allocator = RegisterAllocator(vregs)
        allocation = allocator.build_allocation(unit, force_scratch=True)
        assert allocation.direct[V_SP] == 7
        assert allocation.direct[V_RA] == 8
        assert allocation.direct[V_ZERO] == 0

    def test_spill_slots_live_at_top_of_memory(self):
        unit, vregs = map_source(
            "\n".join(f"li s{i}, {i}" for i in range(12)) + "\necall")
        allocator = RegisterAllocator(vregs)
        allocation = allocator.build_allocation(unit, force_scratch=True)
        assert allocation.spilled
        for virtual, slot in allocation.spilled.items():
            assert allocation.slot_address(slot) == 3 ** 9 - (slot + 1)

    def test_rewrite_inserts_spill_code(self):
        unit, vregs = map_source(
            "\n".join(f"addi s{i}, s{i}, 1" for i in range(12)) + "\necall")
        allocator = RegisterAllocator(vregs)
        rewritten, allocation = allocator.rewrite(unit, force_scratch=True)
        assert allocation.spilled
        mnemonics = [i.mnemonic for i in rewritten.instructions()]
        assert "LOAD" in mnemonics and "STORE" in mnemonics
        loads = [i for i in rewritten.instructions()
                 if i.mnemonic == "LOAD" and i.tb == 0 and (i.imm or 0) < 0]
        assert loads and all(i.ta in (PHYS_SCRATCH_A, PHYS_SCRATCH_B) for i in loads)

    def test_allocation_report_is_printable(self):
        unit, vregs = map_source("add a0, a0, a1\necall")
        allocation = RegisterAllocator(vregs).build_allocation(unit)
        assert "virtual" in allocation.describe()

    def test_near_slot_count_constant(self):
        assert NEAR_SLOTS == 13


class TestRedundancyChecking:
    def test_identity_moves_removed(self):
        unit = TranslationUnit(items=[
            Instruction("MV", ta=1, tb=1),
            Instruction("ADDI", ta=2, imm=0),
            Instruction("HALT"),
        ])
        reduced = remove_redundancies(unit)
        assert [i.mnemonic for i in reduced.instructions()] == ["HALT"]

    def test_store_load_pair_becomes_move(self):
        unit = TranslationUnit(items=[
            Instruction("STORE", ta=1, tb=0, imm=-1),
            Instruction("LOAD", ta=2, tb=0, imm=-1),
            Instruction("HALT"),
        ])
        reduced = remove_redundancies(unit)
        mnemonics = [i.mnemonic for i in reduced.instructions()]
        assert mnemonics == ["STORE", "MV", "HALT"]

    def test_duplicate_load_removed(self):
        unit = TranslationUnit(items=[
            Instruction("LOAD", ta=1, tb=0, imm=2),
            Instruction("LOAD", ta=1, tb=0, imm=2),
            Instruction("HALT"),
        ])
        reduced = remove_redundancies(unit)
        assert [i.mnemonic for i in reduced.instructions()] == ["LOAD", "HALT"]

    def test_dead_write_removed(self):
        unit = TranslationUnit(items=[
            Instruction("MV", ta=1, tb=2),
            Instruction("MV", ta=1, tb=3),
            Instruction("HALT"),
        ])
        reduced = remove_redundancies(unit)
        assert len(list(reduced.instructions())) == 2

    def test_live_write_preserved_across_label(self):
        unit = TranslationUnit(items=[
            Instruction("MV", ta=1, tb=2),
            LabelMarker("entry"),
            Instruction("MV", ta=1, tb=3),
            Instruction("HALT"),
        ])
        reduced = remove_redundancies(unit)
        assert len(list(reduced.instructions())) == 3


class TestLayout:
    def test_branch_relaxation_for_far_targets(self):
        items = [Instruction("BEQ", tb=1, branch_trit=0, label="far")]
        items += [Instruction("ADDI", ta=1, imm=1) for _ in range(60)]
        items += [LabelMarker("far"), Instruction("HALT")]
        program = emit_program(TranslationUnit(items=items))
        # The out-of-range branch was rewritten into an inverted branch over
        # an absolute-jump sequence, and every immediate now fits.
        assert program.encode()
        assert any(i.mnemonic == "JALR" for i in program.instructions)

    def test_in_range_branches_untouched(self):
        items = [
            Instruction("BEQ", tb=1, branch_trit=0, label="next"),
            Instruction("ADDI", ta=1, imm=1),
            LabelMarker("next"),
            Instruction("HALT"),
        ]
        program = emit_program(TranslationUnit(items=items))
        assert program[0].mnemonic == "BEQ" and program[0].imm == 2

    def test_undefined_label_rejected(self):
        with pytest.raises(TranslationError):
            emit_program(TranslationUnit(items=[Instruction("JAL", ta=8, label="missing")]))
