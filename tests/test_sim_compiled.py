"""Unit and contract tests for the compiled superblock-codegen engine.

The broad equivalence evidence lives in the 4-way differential suite and
the golden traces; this file pins the engine-specific machinery — block
partitioning, lazy suffix compilation for computed jump targets, the
FastEngine-compatible error contract, fault-state restoration, and the
codegen artifact-cache integration.
"""

import pytest

from repro.cache import ArtifactCache
from repro.framework import HardwareFramework, SoftwareFramework
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.sim import (
    CompiledEngine,
    FastEngine,
    FunctionalSimulator,
    MemoryError_,
    SimulationError,
    compile_and_run,
)
from repro.sim.compiled import (
    _CODE_MEMO,
    generate_block_source,
    superblock_leaders,
    superblock_span,
)
from repro.testing import generate_program
from repro.testing.differential import STATS_FIELDS
from repro.workloads import all_workloads

DIRECTED_SOURCE = """
LUI T1, 7
LI T1, 13
LUI T2, -3
LI T2, -8
ADD T1, T2
SUB T2, T1
AND T1, T2
OR T2, T1
XOR T1, T2
PTI T3, T1
NTI T4, T2
STI T5, T3
ANDI T4, 5
ADDI T5, -4
COMP T3, T4
SLI T1, 2
SRI T1, 1
MV T6, T1
LI T7, 3
SL T6, T7
SR T6, T7
LI T8, 20
STORE T6, T8, 1
LOAD T7, T8, 1
ADD T7, T7
BNE T7, 0, skip
ADDI T5, 1
skip:
HALT
"""


@pytest.fixture(scope="module")
def translated_workloads():
    software = SoftwareFramework()
    return {
        name: software.compile_workload(workload)[0]
        for name, workload in all_workloads().items()
    }


class TestSuperblockPartition:
    def test_every_address_is_in_exactly_one_leader_block(self, translated_workloads):
        program = translated_workloads["dhrystone"]
        records = FastEngine._predecode(program)
        leaders = superblock_leaders(records)
        covered = []
        for entry in sorted(leaders):
            covered.extend(superblock_span(records, leaders, entry))
        assert sorted(covered) == list(range(len(records)))
        assert len(covered) == len(set(covered))

    def test_blocks_end_only_at_control_or_before_a_leader(self, translated_workloads):
        program = translated_workloads["gemm"]
        records = FastEngine._predecode(program)
        leaders = superblock_leaders(records)
        from repro.sim.compiled import _TERMINALS
        for entry in sorted(leaders):
            span = superblock_span(records, leaders, entry)
            for pc in span[:-1]:  # interior instructions are straight-line
                assert records[pc][0] not in _TERMINALS
            last = span[-1]
            assert (records[last][0] in _TERMINALS
                    or last + 1 >= len(records) or last + 1 in leaders)

    def test_block_map_reports_the_partition(self, translated_workloads):
        engine = CompiledEngine(translated_workloads["bubble_sort"], cache=None)
        block_map = engine.block_map()
        assert sum(block_map.values()) == len(engine.program.instructions)
        assert 0 in block_map

    def test_codegen_is_deterministic(self, translated_workloads):
        program = translated_workloads["sobel"]
        records = FastEngine._predecode(program)
        leaders = superblock_leaders(records)
        entry = sorted(leaders)[1]
        span = superblock_span(records, leaders, entry)
        first = generate_block_source(entry, span, records, True, 3 ** 9)
        second = generate_block_source(entry, span, records, True, 3 ** 9)
        assert first == second


class TestEquivalence:
    @pytest.mark.parametrize("name", sorted(all_workloads()))
    def test_workload_architectural_and_timing_parity(self, name,
                                                      translated_workloads):
        program = translated_workloads[name]
        fast = FastEngine(program).run()
        compiled = CompiledEngine(program, cache=None).run()
        assert compiled.registers == fast.registers
        assert compiled.memory == fast.memory
        assert compiled.pc == fast.pc
        assert compiled.halted and fast.halted
        assert compiled.instructions_executed == fast.instructions_executed
        assert compiled.instruction_mix == fast.instruction_mix
        fast_stats = FastEngine(program).run_with_stats()
        compiled_stats = CompiledEngine(program, cache=None).run_with_stats()
        for field in STATS_FIELDS:
            assert getattr(compiled_stats, field) == getattr(fast_stats, field)

    def test_directed_all_opcode_program(self):
        program = assemble(DIRECTED_SOURCE, name="directed")
        fast = FastEngine(program).run()
        compiled = compile_and_run(program)
        assert compiled.registers == fast.registers
        assert compiled.memory == fast.memory
        assert compiled.instruction_mix == fast.instruction_mix
        reference = FunctionalSimulator(program).run()
        assert compiled.registers == reference.registers

    def test_hardware_framework_compiled_engine(self, translated_workloads):
        program = translated_workloads["bubble_sort"]
        framework = HardwareFramework(engine="compiled")
        stats, registers, memory = framework.simulate_with_state(program)
        fast_stats, fast_regs, fast_mem = framework.simulate_with_state(
            program, engine="fast")
        assert stats.cycles == fast_stats.cycles
        assert registers == fast_regs and memory == fast_mem

    def test_mid_block_jalr_entry_compiles_a_suffix_block(self):
        # The JALR lands at address 5, the middle of the straight-line block
        # that starts at address 2 — only reachable through the lazy
        # suffix-compilation path.
        program = assemble(
            "LI T1, 5\n"
            "JALR T2, T1, 0\n"
            "ADDI T3, 1\n"
            "ADDI T3, 1\n"
            "ADDI T3, 1\n"
            "ADDI T4, 2\n"
            "HALT\n",
            name="midblock",
        )
        engine = CompiledEngine(program, cache=None)
        result = engine.run()
        fast = FastEngine(program).run()
        assert result.registers == fast.registers
        assert result.registers["T3"] == 0 and result.registers["T4"] == 2
        assert 5 in engine._tables[False]  # the suffix entry materialised
        assert 5 not in engine.block_map()  # ...but is not a static leader
        compiled_stats = CompiledEngine(program, cache=None).run_with_stats()
        fast_stats = FastEngine(program).run_with_stats()
        for field in STATS_FIELDS:
            assert getattr(compiled_stats, field) == getattr(fast_stats, field)


class TestEngineContract:
    def test_runaway_program_raises_same_message(self):
        program = assemble("loop:\nJAL T6, loop")
        with pytest.raises(SimulationError) as compiled_exc:
            CompiledEngine(program, cache=None).run(max_instructions=500)
        with pytest.raises(SimulationError) as fast_exc:
            FastEngine(program).run(max_instructions=500)
        assert str(compiled_exc.value) == str(fast_exc.value)

    def test_budget_of_one_matches_fast_engine(self):
        program = generate_program(7)
        with pytest.raises(SimulationError) as compiled_exc:
            CompiledEngine(program, cache=None).run(max_instructions=1)
        with pytest.raises(SimulationError) as fast_exc:
            FastEngine(program).run(max_instructions=1)
        assert str(compiled_exc.value) == str(fast_exc.value)

    def test_exact_budget_still_halts(self):
        program = assemble("ADDI T1, 1\nHALT")
        fast = FastEngine(program).run(max_instructions=2)
        compiled = CompiledEngine(program, cache=None).run(max_instructions=2)
        assert fast.halted and compiled.halted
        assert compiled.instructions_executed == 2

    def test_pc_escape_raises_same_message(self):
        program = assemble("ADDI T1, 1")  # no HALT
        with pytest.raises(SimulationError) as compiled_exc:
            CompiledEngine(program, cache=None).run()
        with pytest.raises(SimulationError) as fast_exc:
            FastEngine(program).run()
        assert str(compiled_exc.value) == str(fast_exc.value)

    def test_empty_program_rejected_by_timing_model(self):
        with pytest.raises(SimulationError):
            CompiledEngine(Program(), cache=None).run_with_stats()

    def test_single_halt_costs_five_cycles(self):
        stats = CompiledEngine(assemble("HALT"), cache=None).run_with_stats()
        assert stats.cycles == 5
        assert stats.instructions_committed == 1

    def test_timing_model_rejects_consumed_engine_state(self):
        engine = CompiledEngine(assemble("ADDI T1, 1\nHALT"), cache=None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run_with_stats()

    def test_reduced_depth_memory_fault_matches_fast_engine(self):
        program = assemble("LI T2, 100\nADDI T3, 1\nSTORE T1, T2, 0\nHALT")
        fast = FastEngine(program, tdm_depth=64)
        compiled = CompiledEngine(program, tdm_depth=64, cache=None)
        with pytest.raises(MemoryError_) as fast_exc:
            fast.run()
        with pytest.raises(MemoryError_) as compiled_exc:
            compiled.run()
        assert str(compiled_exc.value) == str(fast_exc.value)
        assert compiled.instructions_executed == fast.instructions_executed == 2
        assert compiled.pc == fast.pc == 2
        # The prefix state is restored: registers written before the fault
        # stick, the faulting STORE is not in the mix.
        assert compiled.registers_snapshot() == fast.registers_snapshot()
        assert compiled.instruction_mix() == fast.instruction_mix()

    def test_data_segment_out_of_depth_rejected_like_fast_engine(self):
        from repro.isa.program import DataSegment
        program = assemble("HALT")
        program.data.append(DataSegment(base_address=70, values=[1]))
        with pytest.raises(MemoryError_):
            CompiledEngine(program, tdm_depth=64, cache=None)

    def test_memory_view_and_snapshots(self):
        program = assemble(
            "LI T1, 77\nLI T2, 5\nSTORE T1, T2, 0\nSTORE T1, T2, 1\nHALT")
        engine = CompiledEngine(program, cache=None)
        engine.run()
        assert engine.tdm.read_int(5) == 77
        assert engine.tdm.dump(5, 2) == [77, 77]
        assert engine.memory_values(5, 2) == [77, 77]
        assert engine.register_snapshot() == engine.registers_snapshot()


class TestCodegenArtifacts:
    @pytest.fixture(autouse=True)
    def fresh_memo(self):
        # The in-process memo keys on program *records*, which these tests
        # share via DIRECTED_SOURCE; clear it so every test observes the
        # disk-cache path it means to exercise.
        _CODE_MEMO.clear()
        yield
        _CODE_MEMO.clear()

    def test_cache_roundtrip_and_hit(self, tmp_path):
        program = assemble(DIRECTED_SOURCE, name="cache-roundtrip")
        cache = ArtifactCache(str(tmp_path / "artifacts"))
        first = CompiledEngine(program, cache=cache)
        baseline = first.run_with_stats()
        assert cache.entry_count("codegen") == 1
        writes_before = cache.writes
        _CODE_MEMO.clear()  # simulate a fresh process with a warm disk cache
        second = CompiledEngine(program, cache=cache)
        stats = second.run_with_stats()
        assert stats.cycles == baseline.cycles
        assert cache.hits >= 1
        assert cache.writes == writes_before  # nothing regenerated

    def test_corrupted_artifact_is_regenerated(self, tmp_path):
        program = assemble(DIRECTED_SOURCE, name="cache-corrupt")
        cache = ArtifactCache(str(tmp_path / "artifacts"))
        engine = CompiledEngine(program, cache=cache)
        engine.run_with_stats()
        [path] = [
            cache.path_for("codegen", name.split(".")[0])
            for kind in ["codegen"]
            for sub in sorted((tmp_path / "artifacts" / kind).iterdir())
            for name in sorted(entry.name for entry in sub.iterdir())
        ]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"code": "not-base64-marshal"}')
        _CODE_MEMO.clear()
        stats = CompiledEngine(program, cache=cache).run_with_stats()
        fast_stats = FastEngine(program).run_with_stats()
        assert stats.cycles == fast_stats.cycles

    def test_suffix_republish_merges_other_workers_discoveries(self, tmp_path):
        """A suffix publisher must not erase suffixes another worker found."""
        import base64
        import json
        import marshal

        from repro.cache import cache_key
        from repro.sim.compiled import (
            CompiledEngine as CE,
            generate_block_source,
            superblock_span,
        )

        program = assemble(
            "LI T1, 5\nJALR T2, T1, 0\nADDI T3, 1\nADDI T3, 1\nADDI T3, 1\n"
            "ADDI T4, 2\nHALT\n", name="suffix-merge")
        cache = ArtifactCache(str(tmp_path / "artifacts"))
        engine = CE(program, cache=cache)
        engine.run()  # discovers and publishes suffix entry 5
        key_material = engine._cache_key_material(False)
        path = cache.path_for("codegen", cache_key(key_material))
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert "5" in payload["blocks"]

        # Simulate another worker's artifact: suffix 5 missing, but a
        # different (valid) suffix at address 3 present.
        other_source = generate_block_source(
            3, superblock_span(engine._records, engine._leaders, 3),
            engine._records, False, engine.tdm_depth)
        codes = {
            int(entry): code for entry, code in marshal.loads(
                base64.b64decode(payload["code"])).items()
            if int(entry) != 5
        }
        codes[3] = compile(other_source, "<other worker>", "exec")
        blocks = {entry: source for entry, source in payload["blocks"].items()
                  if entry != "5"}
        blocks["3"] = other_source
        cache.put_json("codegen", key_material, {
            "code": base64.b64encode(marshal.dumps(codes)).decode("ascii"),
            "blocks": blocks,
        })

        _CODE_MEMO.clear()  # fresh "process" rediscovers suffix 5...
        CE(program, cache=cache).run()
        with open(path, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
        # ...and its republish keeps the other worker's suffix 3 too.
        assert {"3", "5"} <= set(merged["blocks"])

    def test_in_process_memo_shares_codegen_between_engines(self):
        program = assemble(DIRECTED_SOURCE, name="memo-check")
        _CODE_MEMO.clear()
        CompiledEngine(program, cache=None).run()
        memo_size = len(_CODE_MEMO)
        CompiledEngine(program, cache=None).run()
        assert len(_CODE_MEMO) == memo_size  # second engine reused the entry
