"""Golden-trace regression suite: pin every engine's architectural behaviour.

The fixtures under ``tests/golden/`` record — per workload — the final
register file, a digest of the touched data memory and the full
``PipelineStats`` produced by the stage-by-stage pipeline simulator (the
structural reference).  Each test replays one executor against them:

* the pipeline simulator itself (so the fixtures stay regenerable),
* the fast engine (architectural state *and* its analytic timing model),
* the compiled superblock-codegen engine (architectural state *and* its
  fused timing model, plus the combined state digest),
* the functional simulator (architectural state; it has no cycle model).

Any drift in architectural state or cycle accounting across a refactor
fails here with a named field, not a vague downstream benchmark delta.
Regenerate deliberately with ``PYTHONPATH=src python tests/golden/regenerate.py``.
"""

import glob
import json
import os

import pytest

from repro.framework import SoftwareFramework
from repro.sim.compiled import CompiledEngine
from repro.sim.engine import FastEngine
from repro.sim.functional import FunctionalSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.sim.trace import TRACE_FORMAT, state_digest, trace_mismatches

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
FIXTURE_PATHS = sorted(glob.glob(os.path.join(GOLDEN_DIR, "*.json")))
MAX_CYCLES = 50_000_000

_software = SoftwareFramework(optimize=True)


def _load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _program_for(trace):
    program, _, _ = _software.compile_named_workload(
        trace["workload"], trace["params"])
    return program


def _fixture_id(path):
    return os.path.splitext(os.path.basename(path))[0]


def test_fixture_set_is_complete():
    """Every bundled workload is pinned by at least one fixture."""
    from repro.workloads import all_workloads

    pinned = {_load(path)["workload"] for path in FIXTURE_PATHS}
    assert pinned == set(all_workloads())


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=_fixture_id)
def test_fixture_is_well_formed(path):
    trace = _load(path)
    assert trace["format"] == TRACE_FORMAT
    assert trace["optimize"] is True
    assert set(trace["registers"]) == {f"T{i}" for i in range(9)}
    assert trace["stats"]["cycles"] > 0
    assert trace["stats"]["instructions_committed"] > 0


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=_fixture_id)
def test_pipeline_simulator_matches_golden(path):
    trace = _load(path)
    simulator = PipelineSimulator(_program_for(trace))
    stats = simulator.run(max_cycles=MAX_CYCLES)
    mismatches = trace_mismatches(
        trace, simulator.register_snapshot(), simulator.tdm.contents(), stats)
    assert not mismatches, "\n".join(mismatches)


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=_fixture_id)
def test_fast_engine_matches_golden(path):
    trace = _load(path)
    engine = FastEngine(_program_for(trace))
    stats = engine.run_with_stats(max_cycles=MAX_CYCLES)
    mismatches = trace_mismatches(
        trace, engine.register_snapshot(), engine.tdm.contents(), stats)
    assert not mismatches, "\n".join(mismatches)
    assert state_digest(engine.register_snapshot(),
                        engine.tdm.contents()) == trace["state_digest"]


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=_fixture_id)
def test_compiled_engine_matches_golden(path):
    trace = _load(path)
    engine = CompiledEngine(_program_for(trace))
    stats = engine.run_with_stats(max_cycles=MAX_CYCLES)
    mismatches = trace_mismatches(
        trace, engine.register_snapshot(), engine.tdm.contents(), stats)
    assert not mismatches, "\n".join(mismatches)
    assert state_digest(engine.register_snapshot(),
                        engine.tdm.contents()) == trace["state_digest"]


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=_fixture_id)
def test_functional_simulator_matches_golden(path):
    trace = _load(path)
    simulator = FunctionalSimulator(_program_for(trace))
    result = simulator.run()
    mismatches = trace_mismatches(trace, result.registers, result.memory)
    assert not mismatches, "\n".join(mismatches)


def test_trace_mismatches_flags_drift():
    """The checker itself must catch register, memory and stats drift."""
    trace = _load(FIXTURE_PATHS[0])
    registers = dict(trace["registers"])
    simulator = FunctionalSimulator(_program_for(trace))
    memory = simulator.run().memory

    drifted_regs = dict(registers, T3=registers["T3"] + 1)
    assert any("registers differ" in m
               for m in trace_mismatches(trace, drifted_regs, memory))

    drifted_mem = dict(memory)
    drifted_mem[0] = drifted_mem.get(0, 0) + 1
    assert any("memory digest differs" in m
               for m in trace_mismatches(trace, registers, drifted_mem))

    from repro.sim.pipeline.stats import PipelineStats
    drifted_stats = PipelineStats.from_dict(trace["stats"])
    drifted_stats.cycles += 1
    assert any("stats.cycles differs" in m
               for m in trace_mismatches(trace, registers, memory, drifted_stats))
