"""Acceptance tests for the fault-injection harness.

These run the real thing: coordinator and worker fleets as separate
processes over TCP, killed with real signals mid-run, then recovered and
checked byte-for-byte against an undisturbed serial execution.  They are
the slowest tests in the suite (several seconds each) but they are the
ones that certify the crash-safety claims in the README.
"""

import pytest

from repro.testing.chaos import (
    CHAOS_SCENARIOS,
    ChaosError,
    chaos_spec,
    run_scenario,
)


def test_scenario_catalogue_is_stable():
    # The CI chaos-regression job and the README name these: renaming one
    # is an interface change, not a refactor.
    assert CHAOS_SCENARIOS == (
        "kill-coordinator", "kill-worker", "wedge-worker", "torn-tail")


def test_chaos_spec_is_small_but_not_trivial():
    jobs = chaos_spec().expand()
    # Enough jobs that a mid-run kill leaves work outstanding, few enough
    # that a scenario stays in CI-smoke territory.
    assert 4 <= len(jobs) <= 12


def test_unknown_scenario_is_refused(tmp_path):
    with pytest.raises(ChaosError):
        run_scenario("split-brain", seed=0, out_dir=str(tmp_path))


def test_kill_coordinator_then_resume_is_byte_identical(tmp_path):
    # The headline acceptance criterion: SIGKILL the coordinator mid-run,
    # restart it with --resume, and the surviving workers plus the journal
    # must carry the sweep to records byte-identical (canonical form) with
    # a run nobody shot at.
    result = run_scenario("kill-coordinator", seed=7,
                          out_dir=str(tmp_path / "scratch"))
    assert result.ok, result.detail
    assert "byte-identical" in result.detail


def test_kill_worker_loses_no_jobs(tmp_path):
    # SIGKILL one of two workers mid-job: its lease must be requeued to
    # the survivor and the run must end with zero lost jobs.
    result = run_scenario("kill-worker", seed=7,
                          out_dir=str(tmp_path / "scratch"))
    assert result.ok, result.detail
