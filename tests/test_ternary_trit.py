"""Unit tests for single-trit values and the Fig. 1 logic operations."""

import pytest

from repro.ternary import (
    NEG, POS, ZERO, Trit,
    trit_and, trit_nti, trit_or, trit_pti, trit_sti, trit_xor,
)

ALL = (NEG, ZERO, POS)


class TestTritValidation:
    def test_valid_trits_pass(self):
        for value in ALL:
            assert Trit.validate(value) == value

    @pytest.mark.parametrize("bad", [2, -2, 3, 0.5, "1"])
    def test_invalid_trits_raise(self, bad):
        with pytest.raises(ValueError):
            Trit.validate(bad)

    def test_symbol_round_trip(self):
        for value in ALL:
            assert Trit.from_symbol(Trit.to_symbol(value)) == value

    def test_symbol_aliases(self):
        assert Trit.from_symbol("-") == NEG
        assert Trit.from_symbol("+") == POS
        with pytest.raises(ValueError):
            Trit.from_symbol("2")


class TestDyadicGates:
    def test_and_is_minimum(self):
        for a in ALL:
            for b in ALL:
                assert trit_and(a, b) == min(a, b)

    def test_or_is_maximum(self):
        for a in ALL:
            for b in ALL:
                assert trit_or(a, b) == max(a, b)

    def test_xor_truth_table(self):
        # Carry-free balanced sum: addition modulo 3 mapped to {-1, 0, +1}.
        expected = {
            (NEG, NEG): POS, (NEG, ZERO): NEG, (NEG, POS): ZERO,
            (ZERO, NEG): NEG, (ZERO, ZERO): ZERO, (ZERO, POS): POS,
            (POS, NEG): ZERO, (POS, ZERO): POS, (POS, POS): NEG,
        }
        for (a, b), value in expected.items():
            assert trit_xor(a, b) == value

    def test_gates_are_commutative(self):
        for a in ALL:
            for b in ALL:
                assert trit_and(a, b) == trit_and(b, a)
                assert trit_or(a, b) == trit_or(b, a)
                assert trit_xor(a, b) == trit_xor(b, a)


class TestInverters:
    def test_sti_table(self):
        assert [trit_sti(v) for v in ALL] == [POS, ZERO, NEG]

    def test_nti_table(self):
        assert [trit_nti(v) for v in ALL] == [POS, NEG, NEG]

    def test_pti_table(self):
        assert [trit_pti(v) for v in ALL] == [POS, POS, NEG]

    def test_sti_is_an_involution(self):
        for value in ALL:
            assert trit_sti(trit_sti(value)) == value

    def test_nti_pti_relation(self):
        # NTI(x) == STI(PTI(STI(x))) holds for the conventional tables.
        for value in ALL:
            assert trit_nti(value) == trit_sti(trit_pti(trit_sti(value)))
