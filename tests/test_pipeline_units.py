"""Direct unit tests for the ID-stage branch unit and hazard detection unit.

Both blocks were previously exercised only through whole-program pipeline
runs; these tests pin their contracts in isolation: branch taken/not-taken
decisions against the condition trit, JAL/JALR targets and link values, and
the load-use stall rule (the only stall source of the ART-9 pipeline).
"""

import pytest

from repro.isa.instructions import Instruction
from repro.sim.pipeline.branch import BranchUnit
from repro.sim.pipeline.hazards import HazardDetectionUnit
from repro.sim.pipeline.stages import DecodeLatch
from repro.ternary.word import WORD_TRITS, TernaryWord

MOD = 3 ** WORD_TRITS


def word(value: int) -> TernaryWord:
    return TernaryWord(value)


class TestBranchUnitBranches:
    @pytest.mark.parametrize("value,trit", [(0, 0), (1, 1), (-1, -1),
                                            (3, 0), (4, 1), (-4, -1)])
    def test_beq_taken_when_lst_matches(self, value, trit):
        unit = BranchUnit()
        beq = Instruction("BEQ", tb=2, branch_trit=trit, imm=5)
        outcome = unit.evaluate(beq, pc=10, tb_value=word(value))
        assert outcome.is_control and outcome.taken
        assert outcome.target == 15
        assert outcome.link_value is None
        assert unit.taken_branches == 1 and unit.not_taken_branches == 0

    @pytest.mark.parametrize("value,trit", [(1, 0), (0, 1), (-1, 1), (2, 0)])
    def test_beq_not_taken_when_lst_differs(self, value, trit):
        unit = BranchUnit()
        beq = Instruction("BEQ", tb=2, branch_trit=trit, imm=5)
        outcome = unit.evaluate(beq, pc=10, tb_value=word(value))
        assert outcome.is_control and not outcome.taken
        assert outcome.target is None
        assert unit.not_taken_branches == 1 and unit.taken_branches == 0

    def test_bne_inverts_the_beq_decision(self):
        unit = BranchUnit()
        bne = Instruction("BNE", tb=1, branch_trit=0, imm=-3)
        taken = unit.evaluate(bne, pc=20, tb_value=word(1))
        assert taken.taken and taken.target == 17
        not_taken = unit.evaluate(bne, pc=20, tb_value=word(0))
        assert not not_taken.taken
        assert unit.taken_branches == 1 and unit.not_taken_branches == 1

    def test_backward_branch_target(self):
        unit = BranchUnit()
        beq = Instruction("BEQ", tb=0, branch_trit=0, imm=-8)
        outcome = unit.evaluate(beq, pc=30, tb_value=word(0))
        assert outcome.taken and outcome.target == 22


class TestBranchUnitJumps:
    def test_jal_is_unconditional_with_link(self):
        unit = BranchUnit()
        jal = Instruction("JAL", ta=4, imm=12)
        outcome = unit.evaluate(jal, pc=7, tb_value=None)
        assert outcome.is_control and outcome.taken
        assert outcome.target == 19
        assert outcome.link_value == 8  # PC + 1
        assert unit.jumps == 1

    def test_jalr_targets_register_plus_offset(self):
        unit = BranchUnit()
        jalr = Instruction("JALR", ta=3, tb=5, imm=2)
        outcome = unit.evaluate(jalr, pc=40, tb_value=word(100))
        assert outcome.taken and outcome.target == 102
        assert outcome.link_value == 41

    def test_jalr_wraps_into_the_address_space(self):
        unit = BranchUnit()
        jalr = Instruction("JALR", ta=3, tb=5, imm=1)
        outcome = unit.evaluate(jalr, pc=0, tb_value=word(-1))
        # (-1 + 1) mod 3^9 = 0: negative bases wrap like the datapath does.
        assert outcome.target == 0
        outcome = unit.evaluate(jalr, pc=0, tb_value=word(-2))
        assert outcome.target == (MOD - 2 + 1) % MOD

    def test_non_control_instructions_pass_through(self):
        unit = BranchUnit()
        outcome = unit.evaluate(Instruction("ADD", ta=1, tb=2), pc=5,
                                tb_value=word(0))
        assert not outcome.is_control and not outcome.taken
        assert unit.taken_branches == unit.not_taken_branches == unit.jumps == 0

    def test_reset_statistics(self):
        unit = BranchUnit()
        unit.evaluate(Instruction("JAL", ta=1, imm=1), pc=0, tb_value=None)
        unit.evaluate(Instruction("BEQ", tb=1, branch_trit=0, imm=1), pc=0,
                      tb_value=word(0))
        unit.reset_statistics()
        assert unit.taken_branches == unit.not_taken_branches == unit.jumps == 0


def latch_for(instruction: Instruction) -> DecodeLatch:
    return DecodeLatch(valid=True, pc=0, instruction=instruction)


class TestHazardDetectionUnit:
    def test_load_use_hazard_stalls_one_cycle(self):
        hdu = HazardDetectionUnit()
        load = Instruction("LOAD", ta=3, tb=1, imm=0)
        consumer = Instruction("ADD", ta=2, tb=3)  # reads T3 via tb
        decision = hdu.check(consumer, latch_for(load))
        assert decision.stall
        assert "load-use" in decision.reason
        assert hdu.load_use_stalls == 1

    def test_load_followed_by_independent_instruction(self):
        hdu = HazardDetectionUnit()
        load = Instruction("LOAD", ta=3, tb=1, imm=0)
        independent = Instruction("ADD", ta=2, tb=4)
        assert not hdu.check(independent, latch_for(load)).stall
        assert hdu.load_use_stalls == 0

    def test_non_load_producer_never_stalls(self):
        hdu = HazardDetectionUnit()
        add = Instruction("ADD", ta=3, tb=1)
        consumer = Instruction("ADD", ta=2, tb=3)
        assert not hdu.check(consumer, latch_for(add)).stall

    def test_bubble_latch_never_stalls(self):
        hdu = HazardDetectionUnit()
        consumer = Instruction("ADD", ta=2, tb=3)
        assert not hdu.check(consumer, DecodeLatch.bubble()).stall

    def test_branch_reading_loaded_register_stalls(self):
        # BEQ consumes its Tb condition trit in ID itself, so a LOAD one
        # slot ahead is a load-use hazard for it too.
        hdu = HazardDetectionUnit()
        load = Instruction("LOAD", ta=5, tb=1, imm=0)
        branch = Instruction("BEQ", tb=5, branch_trit=0, imm=2)
        assert hdu.check(branch, latch_for(load)).stall
        assert hdu.load_use_stalls == 1

    def test_store_of_loaded_value_stalls(self):
        hdu = HazardDetectionUnit()
        load = Instruction("LOAD", ta=5, tb=1, imm=0)
        store = Instruction("STORE", ta=5, tb=2, imm=0)  # reads T5 as data
        assert hdu.check(store, latch_for(load)).stall

    def test_reset_statistics(self):
        hdu = HazardDetectionUnit()
        load = Instruction("LOAD", ta=3, tb=1, imm=0)
        hdu.check(Instruction("ADD", ta=2, tb=3), latch_for(load))
        hdu.reset_statistics()
        assert hdu.load_use_stalls == 0
