"""Unit and contract tests for the batched vectorized execution engine.

The broad equivalence evidence lives in the 5-way differential suite; this
file pins the batch-specific machinery — lane/lockstep semantics, path-group
divergence and reconvergence, per-lane error capture with FastEngine's exact
messages, construction-time batch validation, and the stats-only fast path
used by the throughput benchmark.
"""

import pytest

from repro.isa.assembler import assemble
from repro.isa.program import DataSegment, Program
from repro.sim import (
    BatchEngine,
    BatchError,
    FastEngine,
    MemoryError_,
    SimulationError,
    batchable_programs,
)
from repro.sim.machine import machine_names
from repro.testing import generate_program
from repro.testing.differential import STATS_FIELDS
from repro.testing.generator import generate_data_variants

#: A program whose loop trip count is data-dependent: lanes count down from
#: TDM[0] until the low trit clears, so different initial values halt after
#: different instruction counts.
DIVERGENT_SOURCE = """
LOAD T1, T0, 0
loop:
ADDI T1, -1
BNE T1, 0, loop
HALT
"""


def _data_program(name, values, source=DIVERGENT_SOURCE):
    program = assemble(source, name=name)
    program.data.append(DataSegment(base_address=0, values=list(values)))
    return program


def _serial_reference(program, machine=None, max_cycles=50_000_000, **kw):
    result = FastEngine(program, machine=machine, **kw).run()
    stats = FastEngine(program, machine=machine, **kw).run_with_stats(
        max_cycles=max_cycles)
    return result, stats


def _assert_lane_matches(outcome, program, machine=None, **kw):
    result, stats = _serial_reference(program, machine=machine, **kw)
    assert outcome.ok
    assert outcome.result.registers == result.registers
    assert outcome.result.memory == result.memory
    assert outcome.result.pc == result.pc
    assert outcome.result.halted == result.halted
    assert outcome.result.instructions_executed == result.instructions_executed
    assert outcome.result.instruction_mix == result.instruction_mix
    assert outcome.stats.to_dict() == stats.to_dict()


class TestLockstepParity:
    def test_identical_lanes_match_fast_engine(self):
        program = generate_program(11)
        engine = BatchEngine([program] * 5)
        outcomes = engine.run_with_stats()
        for outcome in outcomes:
            _assert_lane_matches(outcome, program)

    def test_data_variant_lanes_match_fast_engine(self):
        for seed in (3, 17, 42):
            variants = generate_data_variants(generate_program(seed), 6, seed)
            outcomes = BatchEngine(variants).run_with_stats()
            for outcome, variant in zip(outcomes, variants):
                _assert_lane_matches(outcome, variant)

    @pytest.mark.parametrize("machine", machine_names())
    def test_divergent_lanes_match_on_every_machine(self, machine):
        programs = [_data_program(f"div-{v}", [v]) for v in (1, 3, 9, 2, 9, 5)]
        outcomes = BatchEngine(programs, machine=machine).run_with_stats()
        for outcome, program in zip(outcomes, programs):
            _assert_lane_matches(outcome, program, machine=machine)
        # Lanes really did take different dynamic paths.
        executed = {o.result.instructions_executed for o in outcomes}
        assert len(executed) > 1

    def test_run_returns_results_without_stats(self):
        program = generate_program(7)
        outcomes = BatchEngine([program, program]).run()
        for outcome in outcomes:
            assert outcome.ok
            assert outcome.result is not None
            assert outcome.stats is None

    def test_stats_only_mode_skips_results(self):
        program = generate_program(7)
        outcomes = BatchEngine([program]).run_with_stats(include_results=False)
        assert outcomes[0].ok
        assert outcomes[0].result is None
        serial_stats = FastEngine(program).run_with_stats()
        assert outcomes[0].stats.to_dict() == serial_stats.to_dict()


class TestErrorParity:
    SPIN_SOURCE = """
    LOAD T1, T0, 0
    loop:
    BEQ T1, 0, loop
    HALT
    """

    def test_instruction_budget_lanes_fail_like_fast_engine(self):
        # TDM[0] = 0 pins the branch trit to zero, so that lane spins
        # forever; the other falls through and must come back intact.
        spinner = _data_program("spin", [0], source=self.SPIN_SOURCE)
        halter = _data_program("halt", [2], source=self.SPIN_SOURCE)
        outcomes = BatchEngine([spinner, halter]).run(max_instructions=500)
        assert not outcomes[0].ok
        assert outcomes[0].error == "program did not halt within 500 instructions"
        assert outcomes[0].error_kind == "SimulationError"
        assert outcomes[1].ok
        with pytest.raises(SimulationError) as excinfo:
            FastEngine(spinner).run(max_instructions=500)
        assert str(excinfo.value) == outcomes[0].error

    def test_cycle_budget_error_matches_fast_engine(self):
        spinner = _data_program("spin", [0], source=self.SPIN_SOURCE)
        outcomes = BatchEngine([spinner]).run_with_stats(max_cycles=300)
        assert outcomes[0].error is not None
        with pytest.raises(SimulationError) as excinfo:
            FastEngine(spinner).run_with_stats(max_cycles=300)
        assert str(excinfo.value) == outcomes[0].error

    def test_pc_escape_matches_fast_engine(self):
        program = assemble("ADDI T1, 1", name="fallthrough")
        outcomes = BatchEngine([program]).run()
        with pytest.raises(SimulationError) as excinfo:
            FastEngine(program).run()
        assert outcomes[0].error == str(excinfo.value)
        assert outcomes[0].error_kind == "SimulationError"

    def test_memory_fault_lane_matches_fast_engine(self):
        source = """
        LI T1, 100
        STORE T1, T1, 0
        HALT
        """
        program = assemble(source, name="fault")
        outcomes = BatchEngine([program], tdm_depth=64).run()
        with pytest.raises(MemoryError_) as excinfo:
            FastEngine(program, tdm_depth=64).run()
        assert outcomes[0].error == str(excinfo.value)
        assert outcomes[0].error_kind == "MemoryError_"

    def test_data_segment_out_of_range_raises_at_construction(self):
        program = _data_program("bigdata", list(range(100)))
        with pytest.raises(MemoryError_) as batch_exc:
            BatchEngine([program], tdm_depth=16)
        with pytest.raises(MemoryError_) as fast_exc:
            FastEngine(program, tdm_depth=16)
        assert str(batch_exc.value) == str(fast_exc.value)

    def test_empty_program_run_with_stats_matches_fast_engine(self):
        program = Program(name="empty")
        with pytest.raises(SimulationError) as excinfo:
            BatchEngine([program]).run_with_stats()
        assert str(excinfo.value) == "cannot simulate an empty program"


class TestBatchValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(BatchError):
            BatchEngine([])

    def test_mismatched_streams_rejected(self):
        with pytest.raises(BatchError) as excinfo:
            BatchEngine([generate_program(1), generate_program(2)])
        assert "lane 1" in str(excinfo.value)

    def test_single_use(self):
        program = generate_program(5)
        engine = BatchEngine([program])
        engine.run()
        with pytest.raises(SimulationError):
            engine.run()

    def test_batchable_programs_predicate(self):
        program = generate_program(9)
        variants = generate_data_variants(program, 3, 9)
        assert batchable_programs(variants)
        assert not batchable_programs([generate_program(1), generate_program(2)])
        assert not batchable_programs([])


class TestStatsFields:
    @pytest.mark.parametrize("machine", machine_names())
    def test_every_stats_field_pinned(self, machine):
        variants = generate_data_variants(generate_program(23), 4, 23)
        outcomes = BatchEngine(variants, machine=machine).run_with_stats()
        for outcome, variant in zip(outcomes, variants):
            serial = FastEngine(variant, machine=machine).run_with_stats()
            for field_name in STATS_FIELDS:
                assert getattr(outcome.stats, field_name) == getattr(
                    serial, field_name), field_name
