"""Tests for the RV-32I substrate: assembler, encoder, simulator."""

import pytest
from hypothesis import given, strategies as st

from repro.riscv import (
    RVAssemblerError,
    RVInstruction,
    RVSimulator,
    assemble_riscv,
    encode_rv_instruction,
    rv_register_index,
    rv_register_name,
)
from repro.riscv.assembler import split_hi_lo
from repro.riscv.encoder import RVEncodeError
from repro.riscv.simulator import to_signed32, to_unsigned32


class TestRegisters:
    def test_abi_names(self):
        assert rv_register_index("zero") == 0
        assert rv_register_index("ra") == 1
        assert rv_register_index("sp") == 2
        assert rv_register_index("a0") == 10
        assert rv_register_index("x17") == 17
        assert rv_register_index("fp") == 8

    def test_round_trip(self):
        for index in range(32):
            assert rv_register_index(rv_register_name(index)) == index

    def test_bad_register(self):
        with pytest.raises(ValueError):
            rv_register_index("x32")


class TestSplitHiLo:
    @pytest.mark.parametrize("value", [0, 1, -1, 0x800, 0xFFF, 0x1000, 123456, -123456, 0x7FFFFFFF])
    def test_reconstruction(self, value):
        hi, lo = split_hi_lo(value)
        assert to_signed32((hi << 12) + lo) == to_signed32(value)
        assert -2048 <= lo <= 2047


class TestAssembler:
    def test_pseudo_instructions(self):
        program = assemble_riscv("""
            li   a0, 5
            li   a1, 123456
            mv   a2, a0
            not  a3, a0
            neg  a4, a0
            nop
            j    end
            addi a5, a5, 1
        end:
            ecall
        """)
        mnemonics = [i.mnemonic for i in program]
        assert mnemonics[0] == "addi"
        assert mnemonics[1] == "lui" and mnemonics[2] == "addi"   # big li
        assert "jal" in mnemonics and "ecall" in mnemonics

    def test_branch_offsets_are_byte_relative(self):
        program = assemble_riscv("""
        loop:
            addi t0, t0, 1
            bne  t0, t1, loop
            ecall
        """)
        assert program[1].imm == -4

    def test_memory_operands(self):
        program = assemble_riscv("lw a0, 8(sp)\nsw a0, -4(s0)\necall")
        assert program[0].imm == 8 and program[0].rs1 == 2
        assert program[1].imm == -4 and program[1].rs2 == 10

    def test_data_section(self):
        program = assemble_riscv("""
        .text
            la a0, table
            lw a1, 4(a0)
            ecall
        .data
        table: .word 3, 5, 7
        """)
        assert program.data[0].values == [3, 5, 7]
        assert program.data_labels["table"] == 0
        assert program[0].imm == 0  # la resolved to the absolute data address

    def test_errors(self):
        with pytest.raises(RVAssemblerError):
            assemble_riscv("frobnicate a0, a1")
        with pytest.raises(RVAssemblerError):
            assemble_riscv("beq a0, a1, nowhere\necall")
        with pytest.raises(RVAssemblerError):
            assemble_riscv("lw a0, banana(sp)")


class TestEncoder:
    def test_known_encodings(self):
        # addi x1, x0, 5  ->  0x00500093 (standard reference encoding)
        assert encode_rv_instruction(RVInstruction("addi", rd=1, rs1=0, imm=5)) == 0x00500093
        # add x3, x1, x2  ->  0x002081B3
        assert encode_rv_instruction(RVInstruction("add", rd=3, rs1=1, rs2=2)) == 0x002081B3
        # sw x2, 8(x1)    ->  0x0020A423
        assert encode_rv_instruction(RVInstruction("sw", rs1=1, rs2=2, imm=8)) == 0x0020A423
        # beq x1, x2, +8  ->  0x00208463
        assert encode_rv_instruction(RVInstruction("beq", rs1=1, rs2=2, imm=8)) == 0x00208463
        # ecall           ->  0x00000073
        assert encode_rv_instruction(RVInstruction("ecall")) == 0x00000073

    def test_all_program_instructions_encode_to_32_bits(self):
        program = assemble_riscv("""
            li a0, 77777
            slli a1, a0, 3
            srai a2, a0, 2
            lw a3, 0(sp)
            sw a3, 4(sp)
            jal ra, next
        next:
            jalr zero, 0(ra)
            lui a4, 0xFF
            mul a5, a0, a1
            ecall
        """)
        for instruction in program:
            word = encode_rv_instruction(instruction)
            assert 0 <= word < 2 ** 32

    def test_out_of_range_rejected(self):
        with pytest.raises(RVEncodeError):
            encode_rv_instruction(RVInstruction("addi", rd=1, rs1=0, imm=5000))
        with pytest.raises(RVEncodeError):
            encode_rv_instruction(RVInstruction("beq", rs1=0, rs2=0, imm=3))


class TestSimulator:
    def test_arithmetic_and_memory(self):
        program = assemble_riscv("""
            li   a0, 1000
            li   a1, -250
            add  a2, a0, a1
            sw   a2, 0(zero)
            lw   a3, 0(zero)
            slli a4, a3, 2
            srai a5, a4, 1
            ecall
        """)
        simulator = RVSimulator(program)
        result = simulator.run()
        assert result.register("a2") == 750
        assert result.register("a3") == 750
        assert result.register("a4") == 3000
        assert result.register("a5") == 1500

    def test_x0_is_hardwired_zero(self):
        program = assemble_riscv("addi zero, zero, 5\nadd a0, zero, zero\necall")
        result = RVSimulator(program).run()
        assert result.register("zero") == 0 and result.register("a0") == 0

    def test_branches_and_loops(self):
        program = assemble_riscv("""
            li t0, 0
            li t1, 0
        loop:
            addi t1, t1, 3
            addi t0, t0, 1
            blt  t0, a0, loop
            ecall
        """)
        simulator = RVSimulator(program)
        simulator.write_reg(10, 7)
        result = simulator.run()
        assert result.register("t1") == 21

    def test_function_call_with_stack(self):
        program = assemble_riscv("""
            li   a0, 4
            jal  ra, square_plus_one
            ecall
        square_plus_one:
            addi sp, sp, -4
            sw   ra, 0(sp)
            mul  a0, a0, a0
            addi a0, a0, 1
            lw   ra, 0(sp)
            addi sp, sp, 4
            ret
        """)
        result = RVSimulator(program).run()
        assert result.register("a0") == 17

    def test_mul_div_rem_conventions(self):
        program = assemble_riscv("""
            li a0, -17
            li a1, 5
            div a2, a0, a1
            rem a3, a0, a1
            li a4, 3
            li a5, 0
            div a6, a4, a5
            rem a7, a4, a5
            ecall
        """)
        result = RVSimulator(program).run()
        assert result.register("a2") == -3       # truncation toward zero
        assert result.register("a3") == -2
        assert result.register("a6") == -1       # divide by zero convention
        assert result.register("a7") == 3

    def test_signed_unsigned_helpers(self):
        assert to_signed32(0xFFFFFFFF) == -1
        assert to_unsigned32(-1) == 0xFFFFFFFF

    def test_class_counts_collected(self):
        program = assemble_riscv("li a0, 1\nlw a1, 0(zero)\nsw a1, 4(zero)\necall")
        simulator = RVSimulator(program)
        simulator.run()
        assert simulator.class_counts["load"] == 1
        assert simulator.class_counts["store"] == 1


values32 = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)


class TestSimulatorProperties:
    @given(values32, values32)
    def test_add_wraps_like_hardware(self, a, b):
        program = assemble_riscv("add a2, a0, a1\necall")
        simulator = RVSimulator(program)
        simulator.write_reg(10, a)
        simulator.write_reg(11, b)
        simulator.run()
        assert simulator.read_reg(12) == to_signed32(a + b)
