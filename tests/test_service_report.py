"""Acceptance tests: distributed execution + report generation end to end.

The PR's acceptance criterion, verbatim: a sweep executed via the
``AsyncQueueBackend`` with >= 2 workers produces a result set
byte-identical (modulo record order and the volatile wall-clock/PID
fields) to the same spec run serially, and ``art9 report`` regenerates
the Table II–V / Fig. 5 numbers from it matching the hweval headline
tests (gates=631, fmax~308.6 MHz, CNTFET ~846 DMIPS, FPGA 801 ALMs /
~411 DMIPS, Fig. 5 dhrystone ratio ~0.70).
"""

import pytest

from repro.cli import main
from repro.runner import canonical_record, compare_runs, preset_spec, run_sweep
from repro.service import (
    AsyncQueueBackend,
    ReportError,
    ResultsDB,
    build_report,
    render_report,
)

REL = 0.02  # same tolerance as tests/test_hweval_headline.py


@pytest.fixture(scope="module")
def paper_runs(tmp_path_factory):
    """The paper-preset grid run serially and via the distributed queue."""
    root = tmp_path_factory.mktemp("paper")
    serial_dir, queue_dir = str(root / "serial"), str(root / "queue")
    spec = preset_spec("paper")
    serial = run_sweep(spec, serial_dir, jobs=1)
    backend = AsyncQueueBackend(workers=2)
    queued = run_sweep(spec, queue_dir, backend=backend)
    return serial_dir, serial, queue_dir, queued, backend


@pytest.fixture(scope="module")
def report_tables(paper_runs):
    _, _, queue_dir, _, _ = paper_runs
    with ResultsDB() as db:
        db.ingest(queue_dir)
        return {table.key: table for table in build_report(db)}


class TestDistributedAcceptance:
    def test_both_runs_complete_and_verify(self, paper_runs):
        _, serial, _, queued, _ = paper_runs
        assert serial.ok and queued.ok
        assert serial.executed == queued.executed == 24

    def test_queue_run_used_at_least_two_workers(self, paper_runs):
        *_, backend = paper_runs
        assert backend.stats is not None
        assert backend.stats.workers_seen >= 2
        assert backend.stats.lost_jobs == 0

    def test_result_sets_byte_identical_modulo_order(self, paper_runs):
        _, serial, _, queued, _ = paper_runs
        serial_set = sorted(canonical_record(r) for r in serial.records)
        queue_set = sorted(canonical_record(r) for r in queued.records)
        assert serial_set == queue_set

    def test_compare_runs_agrees(self, paper_runs):
        serial_dir, _, queue_dir, _, _ = paper_runs
        report = compare_runs(serial_dir, queue_dir)
        assert report.ok, report.summary()
        assert report.jobs_compared == 24


class TestReportHeadlines:
    def test_all_tables_built(self, report_tables):
        assert set(report_tables) == {"table2", "table3", "table4", "table5",
                                      "fig5", "machines", "timings"}
        assert all(table.ok for table in report_tables.values())

    def test_timings_table_accounts_for_every_job(self, report_tables):
        table = report_tables["timings"]
        # Every record the workers wrote carries phase timings, so the
        # "timed" column equals the job count row by row.
        assert table.rows
        for row in table.rows:
            assert row[1] == row[2], row
        assert table.metrics["total_execute_s"] > 0
        # The paper preset reuses each workload across engines, so the
        # translation cache must have hit at least once.
        assert 0 < table.metrics["cache_hit_rate"] <= 1

    def test_table2_dhrystone_ordering_and_density(self, report_tables):
        metrics = report_tables["table2"].metrics
        # Paper ordering: VexRiscv fastest per MHz, ART-9 middle, PicoRV32 last.
        assert metrics["vexriscv_dmips_per_mhz"] > metrics["art9_dmips_per_mhz"] \
            > metrics["picorv32_dmips_per_mhz"]
        assert metrics["art9_dmips_per_mhz"] == pytest.approx(2.742, rel=REL)
        assert metrics["art9_cycles"] == 10380
        assert metrics["art9_cpi"] == pytest.approx(1.229, rel=REL)

    def test_table3_art9_beats_picorv32_where_the_paper_does(self, report_tables):
        metrics = report_tables["table3"].metrics
        for workload in ("bubble_sort", "sobel", "dhrystone"):
            assert metrics[f"{workload}_art9_cycles"] < \
                metrics[f"{workload}_picorv32_cycles"], workload

    def test_table4_matches_the_hweval_headlines(self, report_tables):
        metrics = report_tables["table4"].metrics
        assert metrics["total_gates"] == 631
        assert metrics["max_frequency_mhz"] == pytest.approx(308.6, rel=REL)
        assert metrics["dmips"] == pytest.approx(846.2, rel=REL)
        assert metrics["dmips_per_watt"] == pytest.approx(1.938e7, rel=REL)

    def test_table5_matches_the_hweval_headlines(self, report_tables):
        metrics = report_tables["table5"].metrics
        assert metrics["alms"] == 801
        assert metrics["registers"] == 360
        assert metrics["ram_bits"] == 9216
        assert metrics["dmips"] == pytest.approx(411.2, rel=REL)
        assert metrics["dmips_per_watt"] == pytest.approx(379.3, rel=REL)

    def test_fig5_dhrystone_ratio(self, report_tables):
        metrics = report_tables["fig5"].metrics
        assert metrics["dhrystone_ratio"] == pytest.approx(0.697, rel=REL)
        assert metrics["dhrystone_armv6m_bits"] > 0


class TestReportRendering:
    def test_markdown_document(self, report_tables):
        document = render_report(list(report_tables.values()))
        assert "# ART-9 evaluation report" in document
        assert "## Table II" in document and "## Fig. 5" in document
        assert "| ART-9 (this work) |" in document

    def test_csv_document(self, report_tables):
        document = render_report(list(report_tables.values()), fmt="csv")
        assert "# Table IV" in document
        assert "total ternary gates,631" in document

    def test_unknown_format_raises(self, report_tables):
        with pytest.raises(ValueError):
            render_report(list(report_tables.values()), fmt="xml")


class TestPartialDatabase:
    def test_empty_db_renders_notes_not_crashes(self):
        with ResultsDB() as db:
            tables = build_report(db)
            assert not any(table.ok for table in tables)
            assert all(table.notes for table in tables)

    def test_strict_mode_raises(self):
        with ResultsDB() as db:
            with pytest.raises(ReportError):
                build_report(db, strict=True)

    def test_stale_records_without_iterations_are_an_error(self, tmp_path):
        """Pre-report-era records must fail loudly, not yield DMIPS numbers
        that are silently wrong by the iteration factor."""
        from repro.runner import RunStore, SweepSpec
        run_dir = str(tmp_path / "stale")
        store = RunStore(run_dir)
        store.initialize(SweepSpec(workloads=("dhrystone",),
                                   engines=("fast",), optimize=(True,)))
        record = {"job_id": "feedfacefeed", "label": "dhrystone/fast/opt",
                  "workload": "dhrystone", "engine": "fast", "optimize": True,
                  "params": {}, "status": "ok", "verified": True,
                  "cycles": 10380, "cpi": 1.229, "memory_cells": 1917,
                  "memory_cell_ratio": 0.6966}  # no "iterations" field
        store.append(record)
        with ResultsDB() as db:
            db.ingest(run_dir)
            tables = {table.key: table for table in build_report(db)}
            # Table IV depends only on the dhrystone ART-9 record, so its
            # failure note names the stale field rather than a missing
            # baseline.
            assert not tables["table4"].ok
            assert any("predates" in note for note in tables["table4"].notes)
            assert not tables["table2"].ok

    def test_art9_only_db_still_builds_the_hw_tables(self, tmp_path):
        from repro.runner import SweepSpec
        run_dir = str(tmp_path / "art9-only")
        run_sweep(SweepSpec(workloads=("dhrystone",), engines=("fast",),
                            optimize=(True,)), run_dir, jobs=1)
        with ResultsDB() as db:
            db.ingest(run_dir)
            tables = {table.key: table for table in build_report(db)}
            # No baseline records: Table II is impossible...
            assert not tables["table2"].ok
            # ...but the implementation tables and Fig. 5 (via the embedded
            # trits/bits ratio) still come out.
            assert tables["table4"].ok
            assert tables["table5"].ok
            assert tables["fig5"].ok
            assert tables["fig5"].metrics["dhrystone_ratio"] == \
                pytest.approx(0.697, rel=REL)


class TestReportCLI:
    def test_report_from_run_directory(self, paper_runs, capsys):
        _, _, queue_dir, _, _ = paper_runs
        assert main(["report", queue_dir]) == 0
        captured = capsys.readouterr()
        assert "Table II" in captured.out
        assert "ingested" in captured.err

    def test_report_csv_to_file(self, paper_runs, tmp_path, capsys):
        _, _, queue_dir, _, _ = paper_runs
        out = str(tmp_path / "report.csv")
        assert main(["report", queue_dir, "--format", "csv",
                     "--out", out]) == 0
        with open(out, "r", encoding="utf-8") as handle:
            assert "total ternary gates,631" in handle.read()

    def test_report_with_persistent_db(self, paper_runs, tmp_path, capsys):
        _, _, queue_dir, _, _ = paper_runs
        db_path = str(tmp_path / "agg.sqlite")
        assert main(["report", queue_dir, "--db", db_path]) == 0
        capsys.readouterr()
        # Second invocation needs no run directories: the DB remembers.
        assert main(["report", "--db", db_path]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_report_without_runs_fails_cleanly(self, capsys):
        assert main(["report"]) == 2
        assert "no runs ingested" in capsys.readouterr().err

    def test_report_on_corrupt_spec_fails_cleanly(self, tmp_path, capsys):
        run_dir = tmp_path / "corrupt"
        run_dir.mkdir()
        (run_dir / "spec.json").write_text('{"workloads": [')  # torn write
        assert main(["report", str(run_dir)]) == 2
        assert "art9 report:" in capsys.readouterr().err

    def test_report_on_partial_run_exits_nonzero(self, tmp_path, capsys):
        from repro.runner import SweepSpec
        run_dir = str(tmp_path / "partial")
        run_sweep(SweepSpec(workloads=("bubble_sort",), engines=("fast",),
                            optimize=(True,)), run_dir, jobs=1)
        assert main(["report", run_dir]) == 1  # tables missing -> exit 1
        assert "no verified record" in capsys.readouterr().out


class TestServeWorkCLI:
    def test_serve_with_local_workers_runs_the_grid(self, tmp_path, capsys):
        out = str(tmp_path / "served")
        assert main(["serve", "--workloads", "bubble_sort",
                     "--engines", "fast", "--optimize", "on",
                     "--params", '{"bubble_sort": [{"length": 8}]}',
                     "--port", "0", "--local-workers", "2",
                     "--out", out]) == 0
        captured = capsys.readouterr()
        assert "coordinator listening" in captured.out
        assert "art9 work --connect" in captured.out

    def test_work_rejects_malformed_address(self, capsys):
        assert main(["work", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_work_reports_unreachable_coordinator(self, capsys):
        assert main(["work", "--connect", "127.0.0.1:1",
                     "--retry-seconds", "0"]) == 2
        assert "cannot reach coordinator" in capsys.readouterr().err
