"""Tests for the baseline cycle models and the hardware-level framework."""

import pytest

from repro.baselines import ARMv6MCodeSizeModel, PicoRV32CycleCosts, PicoRV32Model, VexRiscvModel
from repro.hweval import (
    DhrystoneMetrics,
    FPGAEmulationModel,
    GateLevelAnalyzer,
    PerformanceEstimator,
    cntfet_32nm_library,
    stratix_v_model,
)
from repro.hweval.netlist import MemorySizing, art9_datapath_netlist
from repro.hweval.technology import GateKind, GateProperties, TechnologyLibrary
from repro.riscv import assemble_riscv

LOOP = """
    li t0, 0
    li t1, 50
loop:
    lw a0, 0(zero)
    addi a0, a0, 3
    sw a0, 0(zero)
    addi t0, t0, 1
    blt t0, t1, loop
    ecall
.data
x: .word 0
"""


class TestPicoRV32Model:
    def test_cpi_is_in_documented_range(self):
        result = PicoRV32Model().run(assemble_riscv(LOOP, name="loop"))
        assert 3.0 <= result.cpi <= 6.0
        assert result.core == "PicoRV32"
        assert result.cycles > result.instructions

    def test_mul_is_expensive(self):
        base = PicoRV32Model().run(assemble_riscv("li a0, 3\nli a1, 4\nadd a2, a0, a1\necall"))
        mul = PicoRV32Model().run(assemble_riscv("li a0, 3\nli a1, 4\nmul a2, a0, a1\necall"))
        assert mul.cycles - base.cycles >= 30

    def test_shift_cost_scales_with_amount(self):
        short = PicoRV32Model().run(assemble_riscv("li a0, 1\nslli a1, a0, 1\necall"))
        long = PicoRV32Model().run(assemble_riscv("li a0, 1\nslli a1, a0, 20\necall"))
        assert long.cycles > short.cycles

    def test_custom_costs(self):
        costs = PicoRV32CycleCosts(alu=1, load=1, store=1, branch_taken=1,
                                   branch_not_taken=1, jump=1, shift_base=1,
                                   shift_per_bit=0, mul_div=1, system=1)
        result = PicoRV32Model(costs).run(assemble_riscv("li a0, 1\necall"))
        assert result.cycles == result.instructions


class TestVexRiscvModel:
    def test_pipelined_cpi_close_to_one(self):
        result = VexRiscvModel().run(assemble_riscv(LOOP, name="loop"))
        assert 1.0 <= result.cpi <= 2.0

    def test_load_use_detection(self):
        hazard = VexRiscvModel().run(assemble_riscv(
            "lw a0, 0(zero)\naddi a0, a0, 1\necall"))
        assert hazard.detail["load_use_stalls"] == 1

    def test_faster_than_picorv32(self):
        program = assemble_riscv(LOOP, name="loop")
        assert VexRiscvModel().run(program).cycles < PicoRV32Model().run(program).cycles


class TestARMv6MCodeSize:
    def test_thumb_code_smaller_than_rv32_in_bits(self):
        program = assemble_riscv(LOOP, name="loop")
        model = ARMv6MCodeSizeModel()
        estimate = model.estimate(program)
        assert estimate.total_bits < program.instruction_memory_bits()
        assert estimate.thumb_instructions >= len(program.instructions)

    def test_literal_pool_for_large_constants(self):
        program = assemble_riscv("li a0, 1000000\necall")
        estimate = ARMv6MCodeSizeModel().estimate(program)
        assert estimate.literal_pool_words == 1


class TestGateLevelAnalyzer:
    def setup_method(self):
        self.analyzer = GateLevelAnalyzer()
        self.library = cntfet_32nm_library()

    def test_gate_count_matches_paper_scale(self):
        report = self.analyzer.analyze(self.library)
        assert 550 <= report.total_gates <= 750   # Table IV reports 652

    def test_stage_breakdown_covers_all_stages(self):
        by_stage = self.analyzer.gate_counts_by_stage()
        assert set(by_stage) == {"IF", "ID", "EX", "MEM", "WB"}
        assert sum(by_stage.values()) == self.analyzer.total_gates()

    def test_critical_path_is_the_execute_stage(self):
        report = self.analyzer.analyze(self.library)
        assert report.critical_stage == "EX"
        assert report.max_frequency_mhz == pytest.approx(1e6 / report.critical_delay_ps)

    def test_power_in_tens_of_microwatts(self):
        report = self.analyzer.analyze(self.library)
        assert 20.0 <= report.total_power_uw <= 80.0   # Table IV: 42.7 uW
        assert report.power_at(report.max_frequency_mhz) == pytest.approx(report.total_power_uw)
        assert report.power_at(report.max_frequency_mhz / 2) < report.total_power_uw

    def test_missing_characterisation_detected(self):
        incomplete = TechnologyLibrary(name="broken", supply_voltage=1.0)
        incomplete.add_gate(GateKind.STI, GateProperties(1, 1, 1))
        with pytest.raises(ValueError):
            self.analyzer.analyze(incomplete)

    def test_summary_and_describe(self):
        assert "EX" in self.analyzer.analyze(self.library).summary()
        assert "TFA" in self.library.describe()


class TestFPGAModel:
    def test_resources_match_table5_scale(self):
        report = stratix_v_model().estimate()
        assert 700 <= report.alms <= 900          # Table V: 803 ALMs
        assert 300 <= report.registers <= 400     # Table V: 339 registers
        assert report.ram_bits == 9216            # Table V: 9,216 bits
        assert 0.9 <= report.total_power_w <= 1.3  # Table V: 1.09 W

    def test_memory_sizing(self):
        memory = MemorySizing(tim_words=128, tdm_words=128)
        assert memory.total_trits == 256 * 9
        assert memory.binary_encoded_bits() == 2 * 256 * 9

    def test_custom_frequency_scales_dynamic_power(self):
        slow = FPGAEmulationModel(frequency_mhz=75.0).estimate()
        fast = FPGAEmulationModel(frequency_mhz=150.0).estimate()
        assert fast.dynamic_power_w > slow.dynamic_power_w
        assert fast.static_power_w == slow.static_power_w


class TestPerformanceEstimator:
    def test_dmips_per_mhz_formula(self):
        metrics = DhrystoneMetrics(cycles=135_500, iterations=100)
        assert metrics.cycles_per_iteration == pytest.approx(1355.0)
        assert metrics.dmips_per_mhz == pytest.approx(1e6 / (1355 * 1757), rel=1e-6)

    def test_cntfet_report_matches_table4_shape(self):
        estimator = PerformanceEstimator(DhrystoneMetrics(cycles=135_500, iterations=100))
        gate_report = GateLevelAnalyzer().analyze(cntfet_32nm_library())
        report = estimator.for_gate_level(gate_report)
        assert report.dmips_per_watt > 1e6        # Table IV: 3.06e6 DMIPS/W
        assert "DMIPS/W" in report.summary()

    def test_fpga_report_matches_table5_shape(self):
        estimator = PerformanceEstimator(DhrystoneMetrics(cycles=135_500, iterations=100))
        report = estimator.for_fpga(stratix_v_model().estimate())
        assert 20 <= report.dmips_per_watt <= 120  # Table V: 57.8 DMIPS/W
        assert report.frequency_mhz == 150.0

    def test_netlist_is_consistent(self):
        blocks = art9_datapath_netlist()
        assert all(block.gate_count() > 0 for block in blocks)
        names = [block.name for block in blocks]
        assert len(names) == len(set(names))
