"""Property tests for the declarative machine (microarchitecture) model.

Covers the :mod:`repro.sim.machine` schema itself (validation, registry,
digests, branch-prediction semantics) and the timing-model properties the
issue pins:

* a deeper pipeline never makes a branch-heavy trace *faster* (all other
  parameters held);
* the zero-penalty corner (``ideal2``) degenerates to
  ``cycles == instructions + fill``;
* the cycle identity ``cycles == instructions + fill + stalls + flushes``
  holds for every built-in config;
* the codegen artifact cache is keyed by the machine digest, so compiled
  artifacts can never cross configs (the cache-poisoning regression).
"""

import pytest

from repro.cache import ArtifactCache
from repro.framework import SoftwareFramework
from repro.isa.assembler import assemble
from repro.sim.compiled import _CODE_MEMO, CompiledEngine
from repro.sim.engine import FastEngine
from repro.sim.machine import (
    BRANCH_POLICIES,
    DEFAULT_MACHINE_NAME,
    MACHINES,
    MachineConfig,
    MachineError,
    get_machine,
    machine_names,
    resolve_machine,
)
from repro.testing import generate_program
from repro.testing.generator import GeneratorConfig


class TestValidation:
    def test_defaults_are_the_paper_machine(self):
        config = MachineConfig()
        assert config.name == DEFAULT_MACHINE_NAME
        assert config.depth == 5
        assert config.branch_policy == "flush-on-taken"
        assert config.load_use_penalty == 1
        assert config.redirect_penalty == 1
        assert config.fill_cycles == 4

    @pytest.mark.parametrize("depth", [0, 1, 6, 99])
    def test_depth_bounds(self, depth):
        with pytest.raises(MachineError):
            MachineConfig(depth=depth)

    def test_unknown_branch_policy(self):
        with pytest.raises(MachineError, match="branch policy"):
            MachineConfig(branch_policy="oracle")

    @pytest.mark.parametrize("field,value", [
        ("load_use_penalty", -1),
        ("load_use_penalty", 2),
        ("branch_penalty", -1),
        ("branch_penalty", 5),
        ("fetch_latency", -1),
        ("fetch_latency", 3),
    ])
    def test_penalty_bounds(self, field, value):
        with pytest.raises(MachineError):
            MachineConfig(**{field: value})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(MachineError, match="unknown"):
            MachineConfig.from_dict({"depth": 3, "btb_entries": 64})

    def test_round_trips_through_dict(self):
        config = MachineConfig(name="corner", depth=3,
                               branch_policy="static-btfn",
                               load_use_penalty=0, branch_penalty=2,
                               fetch_latency=1)
        assert MachineConfig.from_dict(config.to_dict()) == config


class TestRegistry:
    def test_default_listed_first(self):
        names = machine_names()
        assert names[0] == DEFAULT_MACHINE_NAME
        assert sorted(names[1:]) == list(names[1:])
        assert set(names) == set(MACHINES)

    def test_every_builtin_validates_and_matches_its_key(self):
        for name, config in MACHINES.items():
            assert config.name == name
            assert config.branch_policy in BRANCH_POLICIES

    def test_get_machine_unknown_lists_known(self):
        with pytest.raises(MachineError, match=DEFAULT_MACHINE_NAME):
            get_machine("nonexistent9")

    def test_resolve_machine_forms(self):
        assert resolve_machine(None).name == DEFAULT_MACHINE_NAME
        assert resolve_machine("btfn4") is MACHINES["btfn4"]
        config = MachineConfig(depth=2, load_use_penalty=0, branch_penalty=0)
        assert resolve_machine(config) is config
        with pytest.raises(MachineError):
            resolve_machine(42)


class TestDigest:
    def test_name_is_a_label_not_an_identity(self):
        a = MachineConfig(name="a", depth=3)
        b = MachineConfig(name="b", depth=3)
        assert a.digest() == b.digest()

    def test_every_parameter_changes_the_digest(self):
        base = MachineConfig()
        variants = [
            MachineConfig(depth=4),
            MachineConfig(branch_policy="predict-not-taken"),
            MachineConfig(load_use_penalty=0),
            MachineConfig(branch_penalty=2),
            MachineConfig(fetch_latency=1),
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == 1 + len(variants)

    def test_builtin_digests_are_distinct(self):
        digests = {config.digest() for config in MACHINES.values()}
        assert len(digests) == len(MACHINES)


class TestBranchPrediction:
    def test_flush_on_taken_never_predicts(self):
        config = MACHINES[DEFAULT_MACHINE_NAME]
        assert not config.folds_jal
        for mnemonic in ("BEQ", "BNE", "JAL", "JALR"):
            assert not config.predicts_taken(mnemonic, -4)

    def test_predict_not_taken_folds_jal_only(self):
        config = MACHINES["predictnt"]
        assert config.folds_jal
        assert config.predicts_taken("JAL", 7)
        assert not config.predicts_taken("BEQ", -4)
        assert not config.predicts_taken("JALR", 0)

    def test_btfn_predicts_backward_conditionals(self):
        config = MACHINES["btfn4"]
        assert config.predicts_taken("BEQ", -4)
        assert config.predicts_taken("BNE", 0)
        assert not config.predicts_taken("BEQ", 4)
        assert config.predicts_taken("JAL", 9)  # direct jumps are folded
        assert not config.predicts_taken("JALR", -4)  # indirect never


BRANCH_HEAVY_SEEDS = [2, 5, 11, 17, 23]


def _branch_heavy_program(seed):
    return generate_program(seed, GeneratorConfig())


class TestTimingProperties:
    @pytest.mark.parametrize("seed", BRANCH_HEAVY_SEEDS)
    def test_deeper_pipeline_never_decreases_cycles(self, seed):
        program = _branch_heavy_program(seed)
        previous = None
        for depth in range(2, 6):
            config = MachineConfig(name=f"depth{depth}", depth=depth)
            stats = FastEngine(program, machine=config).run_with_stats()
            if previous is not None:
                assert stats.cycles >= previous, (
                    f"seed {seed}: depth {depth} ran in {stats.cycles} "
                    f"cycles, fewer than depth {depth - 1}'s {previous}")
            previous = stats.cycles

    def test_zero_penalty_machine_is_cycles_equals_instructions_plus_fill(self):
        program, _, _ = SoftwareFramework(optimize=True).compile_named_workload(
            "bubble_sort", {})
        config = MACHINES["ideal2"]
        stats = FastEngine(program, machine=config).run_with_stats()
        assert stats.cycles == (stats.instructions_committed
                                + config.fill_cycles)
        assert stats.load_use_stalls == 0
        assert stats.control_flush_bubbles == 0

    @pytest.mark.parametrize("machine", sorted(MACHINES))
    def test_cycle_identity_holds_for_every_builtin(self, machine):
        program = _branch_heavy_program(seed=7)
        config = MACHINES[machine]
        stats = FastEngine(program, machine=config).run_with_stats()
        assert stats.cycles == (stats.instructions_committed
                                + config.fill_cycles
                                + stats.load_use_stalls
                                + stats.control_flush_bubbles)

    def test_slow_fetch_pays_latency_only_on_redirects(self):
        # A straight-line program redirects zero times, so the only fetch
        # latency it pays is the single fill-time stream start.
        program = assemble("ADDI T1, 1\nADDI T2, 2\nADDI T3, 3\nHALT")
        config = MACHINES["slowfetch5"]
        stats = FastEngine(program, machine=config).run_with_stats()
        assert stats.control_flush_bubbles == 0
        assert stats.cycles == (stats.instructions_committed
                                + config.fill_cycles)


CACHE_POISON_SOURCE = "\n".join(
    ["LI T1, 10", "loop:", "ADDI T2, 3", "ADDI T1, -1", "BNE T1, 0, loop",
     "HALT"]
)


class TestCacheKeying:
    @pytest.fixture(autouse=True)
    def fresh_memo(self):
        _CODE_MEMO.clear()
        yield
        _CODE_MEMO.clear()

    def test_config_change_is_a_cache_miss(self, tmp_path):
        """Artifacts built under one machine must never serve another."""
        program = assemble(CACHE_POISON_SOURCE, name="machine-cache-poison")
        cache = ArtifactCache(str(tmp_path / "artifacts"))
        default_engine = CompiledEngine(program, cache=cache)
        default_engine.run_with_stats()
        assert cache.entry_count("codegen") == 1

        other = CompiledEngine(program, cache=cache, machine="slowfetch5")
        assert cache.get_json(
            "codegen", other._cache_key_material(True)) is None
        _CODE_MEMO.clear()
        other_stats = other.run_with_stats()
        # Both artifacts now coexist; the timings differ, proving the
        # second run did not deserialise the default machine's code.
        assert cache.entry_count("codegen") == 2
        default_stats = FastEngine(program).run_with_stats()
        slow_stats = FastEngine(program, machine="slowfetch5").run_with_stats()
        assert other_stats.cycles == slow_stats.cycles
        assert other_stats.cycles != default_stats.cycles

    def test_same_parameters_share_artifacts_across_names(self, tmp_path):
        """The digest keys on parameters, so a renamed config still hits."""
        program = assemble(CACHE_POISON_SOURCE, name="machine-cache-alias")
        cache = ArtifactCache(str(tmp_path / "artifacts"))
        CompiledEngine(program, cache=cache,
                       machine=MACHINES["btfn4"]).run_with_stats()
        writes_before = cache.writes
        _CODE_MEMO.clear()
        alias = MachineConfig(name="renamed-btfn4", depth=4,
                              branch_policy="static-btfn")
        assert alias.digest() == MACHINES["btfn4"].digest()
        CompiledEngine(program, cache=cache, machine=alias).run_with_stats()
        assert cache.hits >= 1
        assert cache.writes == writes_before
