"""Crash-shaped faults against the RunStore: torn lines, concurrent
appenders, atomic summaries.

``results.jsonl`` is the ground truth every recovery path (resume,
``serve --resume``, the chaos harness) leans on, so this file attacks it
the way real crashes do: a record cut mid-byte by ``kill -9``, two
processes appending into the same file, a summary rewrite dying halfway.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.runner.orchestrator import run_sweep
from repro.runner.spec import SweepSpec
from repro.runner.store import RunStore, SUMMARY_FILENAME


def _small_spec():
    return SweepSpec(
        workloads=("bubble_sort",),
        engines=("fast",),
        optimize=(True, False),
        params={"bubble_sort": [{"length": 4}, {"length": 6}]},
    )


class TestTornFinalLine:
    def test_resume_recomputes_exactly_the_torn_job(self, tmp_path):
        run_dir = str(tmp_path / "run")
        spec = _small_spec()
        outcome = run_sweep(spec, run_dir, jobs=1)
        assert outcome.ok and outcome.executed == 4

        # Tear the final record mid-byte, the way SIGKILL during a write
        # leaves it.
        store = RunStore(run_dir)
        with open(store.results_path, "rb") as handle:
            raw = handle.read()
        torn_id = json.loads(raw.splitlines()[-1])["job_id"]
        with open(store.results_path, "wb") as handle:
            handle.write(raw[:-10])

        survivors = {record["job_id"] for record in store.records()}
        assert torn_id not in survivors
        assert len(survivors) == 3

        resumed = run_sweep(spec, run_dir, jobs=1)
        assert resumed.ok
        assert resumed.executed == 1  # exactly the torn job, nothing else
        assert resumed.skipped == 3
        recomputed = {record["job_id"] for record in resumed.records}
        assert torn_id in recomputed
        assert {record["job_id"] for record in store.records()} == \
            survivors | {torn_id}

    def test_append_after_tear_seals_the_stump(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.append({"job_id": "a", "status": "ok"})
        with open(store.results_path, "ab") as handle:
            handle.write(b'{"job_id":"b","sta')  # torn, no newline
        store.append({"job_id": "c", "status": "ok"})
        ids = [record["job_id"] for record in store.records()]
        assert ids == ["a", "c"]
        # The torn stump occupies its own (skipped) line: the good record
        # after it did not concatenate onto it.
        lines = open(store.results_path, "rb").read().split(b"\n")
        assert json.loads(lines[-2])["job_id"] == "c"


class TestConcurrentAppenders:
    def test_two_processes_appending_lose_nothing(self, tmp_path):
        # Line-buffered O_APPEND writes from two whole processes: every
        # record must survive, whole, no interleaving inside a line.  This
        # is the property that lets coordinator and local workers share
        # one results file.
        run_dir = str(tmp_path)
        per_process = 40
        script = textwrap.dedent("""
            import sys
            from repro.runner.store import RunStore
            store = RunStore(sys.argv[1])
            tag = sys.argv[2]
            for i in range(int(sys.argv[3])):
                store.append({"job_id": f"{tag}-{i}", "status": "ok",
                              "payload": "x" * 256})
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, run_dir, tag,
                 str(per_process)], env=env)
            for tag in ("left", "right")
        ]
        store = RunStore(run_dir)
        # Snapshot while both writers are live: whatever we see must parse.
        mid_flight = store.records()
        assert all(record["status"] == "ok" for record in mid_flight)
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        ids = {record["job_id"] for record in store.records()}
        assert len(ids) == 2 * per_process
        # Every line in the file is complete, parseable JSON.
        with open(store.results_path, "rb") as handle:
            raw = handle.read()
        assert raw.endswith(b"\n")
        for line in raw.splitlines():
            json.loads(line)


class TestAtomicSummary:
    def test_write_leaves_no_temp_droppings(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.append({"job_id": "a", "status": "ok", "workload": "w",
                      "engine": "fast", "optimize": True, "verified": True,
                      "cycles": 10, "cpi": 1.0, "stall_cycles": 0})
        table = store.write_summary()
        assert "w" in table
        assert open(store.summary_path).read() == table + "\n"
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if name.startswith(SUMMARY_FILENAME + ".")]
        assert leftovers == []

    def test_failed_rewrite_keeps_the_previous_summary(self, tmp_path,
                                                       monkeypatch):
        store = RunStore(str(tmp_path))
        store.append({"job_id": "a", "status": "ok", "workload": "w",
                      "engine": "fast", "optimize": True, "verified": True,
                      "cycles": 10, "cpi": 1.0, "stall_cycles": 0})
        original = store.write_summary()

        store.append({"job_id": "b", "status": "ok", "workload": "w2",
                      "engine": "fast", "optimize": False, "verified": True,
                      "cycles": 20, "cpi": 2.0, "stall_cycles": 1})

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            store.write_summary()
        monkeypatch.undo()
        # Old summary intact, no temp files shadowing it.
        assert open(store.summary_path).read() == original + "\n"
        assert [name for name in os.listdir(str(tmp_path))
                if name.endswith(".tmp")] == []
        # And the next attempt succeeds with the new content.
        assert "w2" in store.write_summary()
