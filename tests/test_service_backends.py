"""Backend conformance suite plus baseline-engine and preset coverage.

The central invariant of the execution-backend abstraction: the *same*
spec produces the *same* result set on every backend — serial, the
multiprocessing pool, and the distributed TCP queue — modulo the volatile
wall-clock/PID fields.  Everything the regression gates compare (cycles,
CPI, stats counters, state digests, verification) must be byte-identical.
"""

import pytest

from repro.cli import main
from repro.runner import (
    ALL_ENGINES,
    BASELINE_ENGINES,
    RunStore,
    SpecError,
    SweepJob,
    SweepSpec,
    canonical_record,
    compare_runs,
    execute_job,
    preset_spec,
    run_sweep,
)
from repro.service import (
    AsyncQueueBackend,
    MultiprocessingBackend,
    SerialBackend,
)

#: A cheap cross-ISA grid: one workload, ART-9 fast engine plus all three
#: baseline cores = 4 jobs.
CONFORMANCE_SPEC = SweepSpec(
    workloads=("bubble_sort",),
    engines=("fast", "picorv32", "vexriscv", "armv6m"),
    optimize=(True,),
    params={"bubble_sort": [{"length": 8}]},
)


def _canonical_set(records):
    return sorted(canonical_record(record) for record in records)


class TestBackendConformance:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        """The same spec executed once per backend."""
        root = tmp_path_factory.mktemp("conformance")
        backends = {
            "serial": SerialBackend(),
            "pool": MultiprocessingBackend(processes=2),
            "queue": AsyncQueueBackend(workers=2),
        }
        outcomes = {}
        for name, backend in backends.items():
            out = str(root / name)
            outcomes[name] = (out, run_sweep(CONFORMANCE_SPEC, out,
                                             backend=backend), backend)
        return outcomes

    def test_every_backend_completes_the_grid(self, runs):
        for name, (_, outcome, _) in runs.items():
            assert outcome.ok, f"{name} backend failed: {outcome.summary()}"
            assert outcome.executed == 4

    def test_result_sets_are_identical_across_backends(self, runs):
        reference = _canonical_set(runs["serial"][1].records)
        for name, (_, outcome, _) in runs.items():
            assert _canonical_set(outcome.records) == reference, \
                f"{name} backend diverged from serial"

    def test_compare_runs_reports_zero_diffs(self, runs):
        serial_dir = runs["serial"][0]
        for name, (out, _, _) in runs.items():
            report = compare_runs(serial_dir, out)
            assert report.ok, f"{name}: {report.summary()}"

    def test_queue_backend_used_two_workers(self, runs):
        _, _, backend = runs["queue"]
        assert backend.stats is not None
        assert backend.stats.workers_seen == 2
        assert backend.stats.results_accepted == 4
        assert backend.stats.lost_jobs == 0

    def test_resume_works_after_queue_run(self, runs):
        out, _, _ = runs["queue"]
        again = run_sweep(CONFORMANCE_SPEC, out, backend=SerialBackend())
        assert again.executed == 0
        assert again.skipped == 4


class TestBackendArguments:
    def test_multiprocessing_rejects_zero_processes(self):
        with pytest.raises(ValueError):
            MultiprocessingBackend(processes=0)

    def test_queue_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            AsyncQueueBackend(workers=-1)

    def test_describe_mentions_the_shape(self):
        assert "2" in MultiprocessingBackend(processes=2).describe()
        assert "local workers" in AsyncQueueBackend(workers=2).describe()
        assert "external" in AsyncQueueBackend(workers=0).describe()

    def test_empty_job_list_is_a_no_op(self):
        for backend in (SerialBackend(), MultiprocessingBackend(2),
                        AsyncQueueBackend(workers=2)):
            emitted = []
            backend.execute([], emitted.append)
            assert emitted == []

    def test_occupied_port_errors_instead_of_hanging(self):
        import socket
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        try:
            backend = AsyncQueueBackend(workers=1,
                                        port=blocker.getsockname()[1])
            jobs = CONFORMANCE_SPEC.expand()[:1]
            with pytest.raises(OSError):
                backend.execute(jobs, lambda record: None)
        finally:
            blocker.close()


class TestBaselineEngineJobs:
    def test_engine_axis_includes_the_baseline_cores(self):
        assert set(BASELINE_ENGINES) == {"picorv32", "vexriscv", "armv6m"}
        assert set(BASELINE_ENGINES) < set(ALL_ENGINES)
        assert {"fast", "pipeline"} < set(ALL_ENGINES)

    def test_picorv32_record(self):
        record = execute_job(SweepJob("bubble_sort", "picorv32", True,
                                      params=(("length", 8),)))
        assert record["status"] == "ok"
        assert record["verified"] is True
        assert record["cycles"] > 0
        assert record["cpi"] > 1.0  # non-pipelined core
        assert record["memory_cells"] > 0  # RV-32I instruction bits
        assert record["iterations"] == 1

    def test_vexriscv_beats_picorv32_on_cycles(self):
        pico = execute_job(SweepJob("bubble_sort", "picorv32", True,
                                    params=(("length", 8),)))
        vex = execute_job(SweepJob("bubble_sort", "vexriscv", True,
                                   params=(("length", 8),)))
        assert vex["verified"] and pico["verified"]
        assert vex["cycles"] < pico["cycles"]
        # Both execute the same RV program, hence the same footprint.
        assert vex["memory_cells"] == pico["memory_cells"]

    def test_armv6m_is_a_code_size_point(self):
        record = execute_job(SweepJob("bubble_sort", "armv6m", True,
                                      params=(("length", 8),)))
        assert record["status"] == "ok"
        assert record["cycles"] == 0  # nothing executes
        assert record["verified"] is True
        assert record["thumb_instructions"] > 0
        assert record["memory_cells"] > 0  # estimated Thumb bits

    def test_cycle_budget_means_cycles_on_baseline_engines_too(self):
        record = execute_job(SweepJob("bubble_sort", "picorv32", True,
                                      params=(("length", 8),), max_cycles=50))
        assert record["status"] == "error"
        assert "cycle budget exhausted" in record["error"]

    def test_art9_records_carry_the_report_fields(self):
        record = execute_job(SweepJob("bubble_sort", "fast", True,
                                      params=(("length", 8),)))
        assert record["iterations"] == 1
        assert record["memory_cells"] > 0  # ternary trits
        assert 0 < record["memory_cell_ratio"] < 2

    def test_baseline_engines_collapse_the_optimize_axis(self):
        spec = SweepSpec(workloads=("bubble_sort",),
                         engines=("fast", "picorv32"),
                         optimize=(True, False),
                         params={"bubble_sort": [{"length": 8}]})
        jobs = spec.expand()
        # fast runs once per optimize setting; the baseline ignores the
        # translator entirely and runs exactly once.
        assert len(jobs) == 3
        baseline_jobs = [job for job in jobs if job.engine == "picorv32"]
        assert len(baseline_jobs) == 1
        assert baseline_jobs[0].optimize is True

    def test_baseline_engines_flow_through_a_sweep(self, tmp_path):
        spec = SweepSpec(workloads=("bubble_sort",),
                         engines=("picorv32", "armv6m"), optimize=(True,),
                         params={"bubble_sort": [{"length": 8}]})
        outcome = run_sweep(spec, str(tmp_path / "run"))
        assert outcome.ok
        engines = {record["engine"] for record in outcome.records}
        assert engines == {"picorv32", "armv6m"}


class TestPresets:
    def test_default_preset_grows_the_grid(self):
        spec = preset_spec("default")
        jobs = spec.expand()
        # 7 workload variants x 3 engines x 2 optimize settings.
        assert len(jobs) == 42
        labels = {job.label for job in jobs}
        assert "gemm[n=8]/fast/opt" in labels
        assert "sobel[size=16]/fast/opt" in labels
        assert "dhrystone[iterations=500]/fast/opt" in labels

    def test_paper_preset_covers_all_engines(self):
        spec = preset_spec("paper")
        jobs = spec.expand()
        # 4 workloads x 6 engines (3 ART-9 + 3 baseline cores) x optimize-on.
        assert len(jobs) == 24
        assert {job.engine for job in jobs} == set(ALL_ENGINES)
        assert all(job.optimize for job in jobs)

    def test_smoke_preset_matches_the_ci_grid(self):
        # 2 workloads x 3 ART-9 engines x 2 optimize settings.
        assert len(preset_spec("smoke").expand()) == 12

    def test_unknown_preset_is_an_error(self):
        with pytest.raises(SpecError):
            preset_spec("warp")

    def test_grown_variants_execute_and_verify(self):
        """The satellite sizes really run: gemm n=8 / sobel size=16 /
        dhrystone iterations=500 on the fast engine, results verified."""
        for workload, params in (("gemm", (("n", 8),)),
                                 ("sobel", (("size", 16),)),
                                 ("dhrystone", (("iterations", 500),))):
            record = execute_job(SweepJob(workload, "fast", True, params=params))
            assert record["status"] == "ok", record.get("error")
            assert record["verified"] is True, workload


class TestSweepCLIBackends:
    BASE = ["sweep", "--workloads", "bubble_sort", "--engines", "fast",
            "--optimize", "on", "--params", '{"bubble_sort": [{"length": 8}]}']

    def test_backend_serial_flag(self, tmp_path, capsys):
        out = str(tmp_path / "serial")
        assert main(self.BASE + ["--backend", "serial", "--out", out]) == 0
        assert len(RunStore(out).records()) == 1

    def test_backend_multiprocessing_jobs_zero_runs_inline(self, tmp_path, capsys):
        out = str(tmp_path / "mp0")
        assert main(self.BASE + ["--backend", "multiprocessing",
                                 "--jobs", "0", "--out", out]) == 0
        assert len(RunStore(out).records()) == 1

    def test_backend_queue_flag(self, tmp_path, capsys):
        out = str(tmp_path / "queue")
        assert main(self.BASE + ["--backend", "queue", "--jobs", "2",
                                 "--out", out]) == 0
        records = RunStore(out).records()
        assert len(records) == 1 and records[0]["verified"]

    def test_preset_flag_lists_grown_grid(self, capsys):
        assert main(["sweep", "--preset", "default", "--list"]) == 0
        out = capsys.readouterr().out
        assert "gemm[n=8]" in out and "dhrystone[iterations=500]" in out

    def test_preset_conflicting_with_grid_flags_is_refused(self, capsys):
        assert main(["sweep", "--preset", "paper", "--workloads", "gemm",
                     "--list"]) == 2
        assert "replaces the grid flags" in capsys.readouterr().err
        assert main(["sweep", "--preset", "paper", "--max-cycles", "1000",
                     "--list"]) == 2
        assert "replaces the grid flags" in capsys.readouterr().err
        assert main(["sweep", "--preset", "paper", "--optimize", "on",
                     "--list"]) == 2
        capsys.readouterr()

    def test_spec_conflicting_with_preset_is_refused(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text('{"workloads": ["gemm"]}')
        assert main(["sweep", "--spec", str(spec_path), "--preset", "paper",
                     "--list"]) == 2
        assert "drop one side" in capsys.readouterr().err

    def test_baseline_engines_accepted_on_the_cli(self, tmp_path, capsys):
        out = str(tmp_path / "baseline")
        assert main(["sweep", "--workloads", "bubble_sort",
                     "--engines", "vexriscv", "--optimize", "on",
                     "--params", '{"bubble_sort": [{"length": 8}]}',
                     "--jobs", "1", "--out", out]) == 0
        assert RunStore(out).records()[0]["engine"] == "vexriscv"
