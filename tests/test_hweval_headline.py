"""Headline-number regression tests for the hardware evaluation models.

The gate-level analyzer, the FPGA emulation model and the performance
estimator reproduce the paper's Tables II, IV and V.  These tests pin the
headline quantities of that reproduction — gate count, maximum frequency,
power, FPGA resources, and the Dhrystone-derived DMIPS figures — within
tight tolerances, so a refactor of the netlist inventory, the technology
characterisation or the estimator arithmetic cannot silently shift the
reported results.  Exact-integer quantities (gate and resource counts) are
asserted exactly; derived analog quantities get a small relative tolerance.
"""

import pytest

from repro.framework import HardwareFramework, SoftwareFramework
from repro.hweval import DhrystoneMetrics, PerformanceEstimator
from repro.workloads import get_workload

REL = 0.02  # 2% tolerance on derived analog quantities


@pytest.fixture(scope="module")
def hardware():
    return HardwareFramework()


@pytest.fixture(scope="module")
def gate_report(hardware):
    return hardware.analyze_gates()


@pytest.fixture(scope="module")
def fpga_report(hardware):
    return hardware.analyze_fpga()


@pytest.fixture(scope="module")
def dhrystone_evaluation(hardware):
    workload = get_workload("dhrystone")
    program, report = SoftwareFramework().compile_workload(workload)
    return hardware.evaluate(program, iterations=workload.iterations), report


class TestGateLevelHeadlines:
    def test_total_gate_count(self, gate_report):
        assert gate_report.total_gates == 631

    def test_transistor_count(self, gate_report):
        assert gate_report.transistor_count == 8248

    def test_critical_path_is_the_ex_stage(self, gate_report):
        assert gate_report.critical_stage == "EX"
        assert gate_report.critical_delay_ps == pytest.approx(3240.0, rel=REL)

    def test_cntfet_max_frequency(self, gate_report):
        assert gate_report.max_frequency_mhz == pytest.approx(308.6, rel=REL)

    def test_cntfet_power_budget(self, gate_report):
        assert gate_report.static_power_uw == pytest.approx(31.53, rel=REL)
        assert gate_report.total_power_uw == pytest.approx(43.65, rel=REL)
        # The whole CNTFET core stays well under a milliwatt at fmax.
        assert gate_report.total_power_uw < 1000


class TestFPGAHeadlines:
    def test_resource_counts(self, fpga_report):
        assert fpga_report.alms == 801
        assert fpga_report.registers == 360
        assert fpga_report.ram_bits == 9216

    def test_operating_point(self, fpga_report):
        assert fpga_report.frequency_mhz == pytest.approx(150.0)
        assert fpga_report.total_power_w == pytest.approx(1.084, rel=REL)


class TestDhrystoneHeadlines:
    def test_cycle_count_and_cpi(self, dhrystone_evaluation):
        result, _ = dhrystone_evaluation
        assert result.pipeline_stats.cycles == 10380
        assert result.pipeline_stats.cpi == pytest.approx(1.229, rel=REL)

    def test_dmips_per_mhz_is_implementation_independent(self, dhrystone_evaluation):
        result, _ = dhrystone_evaluation
        assert result.cntfet_performance.dmips_per_mhz == pytest.approx(2.742, rel=REL)
        assert result.fpga_performance.dmips_per_mhz == pytest.approx(
            result.cntfet_performance.dmips_per_mhz)

    def test_cntfet_dmips(self, dhrystone_evaluation):
        result, _ = dhrystone_evaluation
        assert result.cntfet_performance.dmips == pytest.approx(846.2, rel=REL)
        assert result.cntfet_performance.dmips_per_watt == pytest.approx(
            1.938e7, rel=REL)

    def test_fpga_dmips(self, dhrystone_evaluation):
        result, _ = dhrystone_evaluation
        assert result.fpga_performance.dmips == pytest.approx(411.2, rel=REL)
        assert result.fpga_performance.dmips_per_watt == pytest.approx(379.3, rel=REL)

    def test_translation_and_memory_headlines(self, dhrystone_evaluation):
        _, report = dhrystone_evaluation
        assert report.instruction_expansion == pytest.approx(2.477, rel=REL)
        # Fig. 5: the ternary encoding stores the program in ~70% of the
        # binary memory cells.
        assert report.memory_cell_ratio == pytest.approx(0.697, rel=REL)

    def test_memory_cells(self, dhrystone_evaluation):
        result, _ = dhrystone_evaluation
        assert result.memory_cells_trits == 2997


class TestEstimatorArithmetic:
    def test_dmips_conversion_against_the_vax_reference(self):
        # 1757 iterations/second at 1 MHz is exactly 1 DMIPS/MHz.
        metrics = DhrystoneMetrics(cycles=1_000_000, iterations=1757)
        assert metrics.dmips_per_mhz == pytest.approx(1.0)
        assert metrics.dmips_at(100.0) == pytest.approx(100.0)

    def test_gate_level_report_scales_power_with_frequency(self, gate_report):
        estimator = PerformanceEstimator(
            DhrystoneMetrics(cycles=1_000_000, iterations=1757))
        full = estimator.for_gate_level(gate_report)
        half = estimator.for_gate_level(
            gate_report, frequency_mhz=gate_report.max_frequency_mhz / 2)
        assert half.dmips == pytest.approx(full.dmips / 2, rel=1e-6)
        assert half.power_w < full.power_w
