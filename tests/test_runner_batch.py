"""Batched sweep execution: job grouping, the batch worker and fuzz chunks.

The batched execution path is a pure throughput optimization — every test
here ultimately asserts the same invariant from a different angle: grouping
jobs and running them through one multi-lane ``BatchEngine`` produces
exactly the records (and fuzz reports) the one-job-at-a-time path produces.
"""

import pytest

from repro.runner import (
    SweepJob,
    VOLATILE_RECORD_FIELDS,
    batch_group_key,
    batchable_groups,
    execute_job,
    execute_job_batch,
    run_parallel_fuzz,
)
from repro.runner.fuzzpool import _chunks
from repro.service import MultiprocessingBackend, SerialBackend
from repro.testing import fuzz_batched


def seed_jobs(count, workload="bubble_sort", engine="fast", **kwargs):
    params = dict(kwargs.pop("params", {}))
    return [
        SweepJob(workload, engine, True,
                 params=tuple(sorted({**params, "seed": seed}.items())),
                 **kwargs)
        for seed in range(count)
    ]


def stable(record):
    return {key: value for key, value in record.items()
            if key not in VOLATILE_RECORD_FIELDS}


class TestChunkPartition:
    @pytest.mark.parametrize("count,jobs", [
        (1, 1), (3, 2), (7, 2), (8, 3), (10, 4), (100, 7), (5, 16),
    ])
    def test_chunks_exactly_cover_the_seed_range(self, count, jobs):
        chunks = _chunks(count, seed=11, jobs=jobs, max_instructions=1000,
                         check_pipeline=False)
        seeds = []
        for chunk in chunks:
            assert chunk["count"] > 0, "empty chunk handed to a worker"
            seeds.extend(range(chunk["seed"], chunk["seed"] + chunk["count"]))
        assert seeds == list(range(11, 11 + count))

    def test_chunks_are_contiguous_and_ordered(self):
        chunks = _chunks(17, seed=0, jobs=4, max_instructions=1000,
                         check_pipeline=True)
        next_seed = 0
        for chunk in chunks:
            assert chunk["seed"] == next_seed
            next_seed += chunk["count"]
        assert next_seed == 17

    def test_batch_lanes_threads_through_when_meaningful(self):
        with_lanes = _chunks(6, seed=0, jobs=2, max_instructions=1000,
                             check_pipeline=False, batch_lanes=4)
        assert all(chunk["batch_lanes"] == 4 for chunk in with_lanes)
        # 0 and 1 lanes mean "serial" — the key must stay absent so old
        # workers (and the serial fallback) see an unchanged chunk schema.
        for lanes in (0, 1):
            for chunk in _chunks(6, seed=0, jobs=2, max_instructions=1000,
                                 check_pipeline=False, batch_lanes=lanes):
                assert "batch_lanes" not in chunk

    def test_parallel_and_serial_fuzz_reports_match(self):
        serial = run_parallel_fuzz(count=9, seed=2, jobs=1,
                                   check_pipeline=False)
        parallel = run_parallel_fuzz(count=9, seed=2, jobs=3,
                                     check_pipeline=False)
        assert parallel.programs_run == serial.programs_run == 9
        assert parallel.instructions_executed == serial.instructions_executed
        assert parallel.budget_exhausted == serial.budget_exhausted
        assert parallel.failures == serial.failures

    def test_parallel_and_serial_batched_fuzz_reports_match(self):
        serial = fuzz_batched(count=6, seed=0, lanes=3, check_stats=False)
        parallel = run_parallel_fuzz(count=6, seed=0, jobs=2,
                                     check_pipeline=False, batch_lanes=3)
        assert parallel.programs_run == serial.programs_run == 6
        assert parallel.instructions_executed == serial.instructions_executed
        assert parallel.budget_exhausted == serial.budget_exhausted


class TestBatchableGroups:
    def test_seed_only_variation_groups_together(self):
        jobs = seed_jobs(4)
        groups = batchable_groups(jobs)
        assert groups == [jobs]
        assert len({batch_group_key(job) for job in jobs}) == 1

    def test_distinct_grid_points_stay_apart(self):
        jobs = (seed_jobs(2)
                + seed_jobs(2, engine="compiled")
                + seed_jobs(2, machine="btfn4")
                + seed_jobs(2, params={"length": 8}))
        groups = batchable_groups(jobs)
        assert [len(group) for group in groups] == [2, 2, 2, 2]

    def test_baseline_engines_stay_singletons(self):
        jobs = seed_jobs(3, engine="picorv32")
        groups = batchable_groups(jobs)
        assert [len(group) for group in groups] == [1, 1, 1]

    def test_first_appearance_order_is_preserved(self):
        a, b = seed_jobs(2), seed_jobs(2, engine="compiled")
        interleaved = [a[0], b[0], a[1], b[1]]
        groups = batchable_groups(interleaved)
        assert groups == [[a[0], a[1]], [b[0], b[1]]]


class TestExecuteJobBatch:
    def test_records_match_serial_execution(self):
        jobs = seed_jobs(4)
        batched = execute_job_batch(jobs)
        serial = [execute_job(job) for job in jobs]
        assert [stable(r) for r in batched] == [stable(r) for r in serial]
        assert all(record["status"] == "ok" for record in batched)

    def test_compiled_engine_group_on_corner_machine(self):
        jobs = seed_jobs(3, workload="gemm", engine="compiled",
                         machine="btfn4")
        batched = execute_job_batch(jobs)
        serial = [execute_job(job) for job in jobs]
        assert [stable(r) for r in batched] == [stable(r) for r in serial]

    def test_singleton_group_delegates_to_execute_job(self):
        job = seed_jobs(1)[0]
        assert stable(execute_job_batch([job])[0]) == stable(execute_job(job))

    def test_error_jobs_fall_back_to_serial_records(self):
        # gemm n=3 fails at workload-build time (dimension must be a power
        # of two) — the batch path must surface the same error records.
        jobs = [SweepJob("gemm", "fast", True,
                         params=(("n", 3), ("seed", seed)))
                for seed in range(2)]
        batched = execute_job_batch(jobs)
        serial = [execute_job(job) for job in jobs]
        assert [stable(r) for r in batched] == [stable(r) for r in serial]
        assert all(record["status"] == "error" for record in batched)


class TestBatchedBackends:
    GRID = (seed_jobs(3)
            + seed_jobs(2, workload="gemm", engine="compiled")
            + seed_jobs(1, engine="picorv32"))

    def collect(self, backend):
        records = []
        backend.execute(self.GRID, records.append)
        return sorted((stable(r) for r in records),
                      key=lambda record: record["job_id"])

    def test_serial_batched_matches_serial(self):
        assert self.collect(SerialBackend(batch=True)) \
            == self.collect(SerialBackend())

    def test_multiprocessing_batched_matches_serial(self):
        assert self.collect(MultiprocessingBackend(processes=2, batch=True)) \
            == self.collect(SerialBackend())

    def test_describe_mentions_batching(self):
        assert "batched" in SerialBackend(batch=True).describe()
        assert "batched" in MultiprocessingBackend(batch=True).describe()
        assert "batched" not in SerialBackend().describe()
