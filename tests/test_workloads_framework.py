"""Integration tests: workloads, framework facades, baselines and the CLI."""

import pytest

from repro.baselines import PicoRV32Model, VexRiscvModel
from repro.cli import main as cli_main
from repro.framework import HardwareFramework, SoftwareFramework
from repro.sim import FunctionalSimulator, PipelineSimulator
from repro.workloads import all_workloads, get_workload
from repro.workloads.base import WorkloadResultMismatch, lcg_values
from repro.workloads.dhrystone import _reference as dhrystone_reference
from repro.workloads.gemm import _reference as gemm_reference
from repro.workloads.sobel import _reference as sobel_reference


class TestWorkloadDefinitions:
    def test_registry_contains_the_four_paper_benchmarks(self):
        assert set(all_workloads()) == {"bubble_sort", "gemm", "sobel", "dhrystone"}

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            get_workload("fft")

    def test_lcg_is_deterministic(self):
        assert lcg_values(5, seed=3) == lcg_values(5, seed=3)
        assert lcg_values(5, seed=3) != lcg_values(5, seed=4)

    def test_gemm_reference_matches_numpy_style_definition(self):
        a = list(range(16))
        b = list(range(16, 32))
        expected = []
        for i in range(4):
            for j in range(4):
                expected.append(sum(a[i * 4 + k] * b[k * 4 + j] for k in range(4)))
        assert gemm_reference(a, b) == expected

    def test_sobel_reference_flat_image_has_zero_gradient(self):
        assert sobel_reference([7] * 64) == [0] * 36

    def test_dhrystone_reference_scales_with_iterations(self):
        short, _ = dhrystone_reference(5)
        long, _ = dhrystone_reference(25)
        assert short != long

    def test_mismatch_detection(self):
        workload = get_workload("bubble_sort")
        simulator = workload.run_rv_reference()
        simulator.store_word(0, -99999)
        with pytest.raises(WorkloadResultMismatch):
            workload.check_rv_results(simulator)


@pytest.mark.parametrize("name", ["bubble_sort", "gemm", "sobel", "dhrystone"])
class TestWorkloadEquivalence:
    def test_rv_reference_and_translation_agree(self, name):
        workload = get_workload(name)
        workload.run_rv_reference()

        software = SoftwareFramework()
        program, report = software.compile_workload(workload)
        assert report.final_instructions > 0

        functional = FunctionalSimulator(program)
        functional.run(max_instructions=5_000_000)
        workload.check_ternary_results(functional)

        pipeline = PipelineSimulator(program)
        stats = pipeline.run(max_cycles=10_000_000)
        workload.check_ternary_results(pipeline)
        assert stats.instructions_committed == functional.instructions_executed


class TestFrameworkFacades:
    def test_software_framework_accepts_raw_assembly(self):
        software = SoftwareFramework()
        program, report = software.compile_riscv_assembly("li a0, 5\necall", name="inline")
        assert report.rv_instructions == 2
        sim = FunctionalSimulator(program)
        sim.run()

    def test_software_framework_native_assembly(self):
        program = SoftwareFramework.assemble_ternary("ADDI T1, 3\nHALT")
        assert len(program) == 2

    def test_hardware_framework_full_evaluation(self):
        workload = get_workload("bubble_sort")
        software = SoftwareFramework()
        program, _ = software.compile_workload(workload)
        hardware = HardwareFramework()
        evaluation = hardware.evaluate(program, iterations=workload.iterations)
        assert evaluation.pipeline_stats.cycles > 0
        assert evaluation.gate_report.total_gates > 500
        assert evaluation.fpga_report.ram_bits == 9216
        assert evaluation.cntfet_performance.dmips_per_watt > evaluation.fpga_performance.dmips_per_watt
        assert "CNTFET" in evaluation.summary()

    def test_art9_beats_picorv32_on_bubble_sort_cycles(self):
        # The Table III headline: the translated ART-9 code needs fewer
        # cycles than the non-pipelined PicoRV32 baseline.
        workload = get_workload("bubble_sort")
        program, _ = SoftwareFramework().compile_workload(workload)
        art9_cycles = HardwareFramework().simulate(program).cycles
        pico_cycles = PicoRV32Model().run(workload.rv_program()).cycles
        assert art9_cycles < pico_cycles

    def test_vexriscv_beats_art9_in_dmips_per_mhz(self):
        # Table II ordering: VexRiscv > ART-9 in DMIPS/MHz.
        workload = get_workload("dhrystone")
        program, _ = SoftwareFramework().compile_workload(workload)
        art9_cycles = HardwareFramework().simulate(program).cycles
        vex_cycles = VexRiscvModel().run(workload.rv_program()).cycles
        assert vex_cycles < art9_cycles


class TestCLI:
    def test_workloads_listing(self, capsys):
        assert cli_main(["workloads"]) == 0
        captured = capsys.readouterr().out
        assert "dhrystone" in captured

    def test_hw_subcommand(self, capsys):
        assert cli_main(["hw"]) == 0
        captured = capsys.readouterr().out
        assert "ternary gates" in captured and "ALMs" in captured

    def test_translate_and_run_subcommands(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("li a0, 5\nadd a0, a0, a0\necall\n")
        assert cli_main(["translate", str(source), "--listing"]) == 0
        assert "translation of" in capsys.readouterr().out
        assert cli_main(["run", str(source)]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_bench_subcommand_single_workload(self, capsys):
        assert cli_main(["bench", "bubble_sort"]) == 0
        captured = capsys.readouterr().out
        assert "bubble_sort" in captured and "PicoRV32" in captured

    def test_no_command_prints_help(self, capsys):
        assert cli_main([]) == 1
