"""Tests for the ART-9 ISA: registers, instruction specs, encode/decode."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    Instruction,
    decode_instruction,
    encode_instruction,
    spec_for,
    register_index,
    register_name,
    DecodeError,
)
from repro.isa.encoder import EncodeError, check_imm_fits
from repro.isa.formats import ENCODING_TABLE, imm_range
from repro.isa.instructions import ARCHITECTURAL_MNEMONICS, INSTRUCTION_SPECS
from repro.isa.registers import field_to_index, index_to_field
from repro.ternary.word import TernaryWord


class TestRegisters:
    def test_round_trip_names(self):
        for index in range(9):
            assert register_index(register_name(index)) == index

    def test_aliases(self):
        assert register_index("sp") == 7
        assert register_index("ra") == 8
        assert register_index("zero") == 0

    def test_bad_register_rejected(self):
        with pytest.raises(ValueError):
            register_index("T9")
        with pytest.raises(ValueError):
            register_name(9)

    def test_field_encoding_round_trip(self):
        for index in range(9):
            assert field_to_index(index_to_field(index)) == index

    def test_field_range(self):
        assert index_to_field(0) == -4
        assert index_to_field(8) == 4
        with pytest.raises(ValueError):
            field_to_index(5)


class TestInstructionSpecs:
    def test_exactly_24_architectural_instructions(self):
        assert len(ARCHITECTURAL_MNEMONICS) == 24

    def test_table1_categories(self):
        by_category = {}
        for mnemonic in ARCHITECTURAL_MNEMONICS:
            by_category.setdefault(INSTRUCTION_SPECS[mnemonic].category, []).append(mnemonic)
        assert len(by_category["R"]) == 12
        assert len(by_category["I"]) == 6
        assert len(by_category["B"]) == 4
        assert len(by_category["M"]) == 2

    def test_every_mnemonic_has_an_encoding(self):
        for mnemonic in INSTRUCTION_SPECS:
            assert mnemonic in ENCODING_TABLE

    def test_dataflow_flags(self):
        assert spec_for("ADD").reads_ta and spec_for("ADD").reads_tb
        assert not spec_for("MV").reads_ta and spec_for("MV").reads_tb
        assert spec_for("LI").reads_ta          # LI keeps the upper trits
        assert not spec_for("LUI").reads_ta
        assert spec_for("STORE").reads_ta and not spec_for("STORE").writes_ta
        assert spec_for("LOAD").writes_ta

    def test_nop_is_addi_zero(self):
        nop = Instruction.nop()
        assert nop.mnemonic == "ADDI" and nop.is_nop()

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            spec_for("FOO")

    def test_render(self):
        assert Instruction("ADD", ta=1, tb=2).render() == "ADD T1, T2"
        assert Instruction("BEQ", tb=3, branch_trit=-1, imm=5).render() == "BEQ T3, -1, 5"
        assert Instruction("HALT").render() == "HALT"


def _sample_instruction(mnemonic: str) -> Instruction:
    spec = spec_for(mnemonic)
    lo, hi = imm_range(mnemonic)
    fields = {}
    if "ta" in spec.operands:
        fields["ta"] = 3
    if "tb" in spec.operands:
        fields["tb"] = 6
    if "branch_trit" in spec.operands:
        fields["branch_trit"] = -1
    if "imm" in spec.operands:
        fields["imm"] = hi  # extreme value exercises the full field
    return Instruction(mnemonic, **fields)


class TestEncodeDecode:
    @pytest.mark.parametrize("mnemonic", sorted(INSTRUCTION_SPECS))
    def test_round_trip_every_mnemonic(self, mnemonic):
        instruction = _sample_instruction(mnemonic)
        word = encode_instruction(instruction)
        assert word.width == 9
        decoded = decode_instruction(word)
        assert decoded.mnemonic == mnemonic
        assert decoded.ta == instruction.ta
        assert decoded.tb == instruction.tb
        assert decoded.imm == instruction.imm
        assert decoded.branch_trit == instruction.branch_trit

    def test_out_of_range_immediate_rejected(self):
        with pytest.raises(EncodeError):
            encode_instruction(Instruction("ADDI", ta=0, imm=14))
        assert not check_imm_fits("ADDI", 14)
        assert check_imm_fits("ADDI", 13)

    def test_unresolved_label_rejected(self):
        with pytest.raises(EncodeError):
            encode_instruction(Instruction("BEQ", tb=0, branch_trit=0, label="loop"))

    def test_missing_operand_rejected(self):
        with pytest.raises(EncodeError):
            encode_instruction(Instruction("ADD", ta=1))

    def test_decode_rejects_wrong_width(self):
        with pytest.raises(DecodeError):
            decode_instruction(TernaryWord(0, width=5))

    def test_decode_rejects_undefined_pattern(self):
        # EXT0 / R-group-B with an unused funct value has no instruction.
        word = TernaryWord.from_trits([0, 0, 0, 0, -1, -1, 1, 0, 1], width=9)
        with pytest.raises(DecodeError):
            decode_instruction(word)


imm_strategy = st.integers(min_value=-13, max_value=13)


class TestEncodingProperties:
    @given(st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=8))
    def test_r_type_round_trip(self, ta, tb):
        for mnemonic in ("ADD", "SUB", "COMP", "MV"):
            word = encode_instruction(Instruction(mnemonic, ta=ta, tb=tb))
            decoded = decode_instruction(word)
            assert (decoded.mnemonic, decoded.ta, decoded.tb) == (mnemonic, ta, tb)

    @given(st.integers(min_value=0, max_value=8), imm_strategy)
    def test_addi_round_trip(self, ta, imm):
        decoded = decode_instruction(encode_instruction(Instruction("ADDI", ta=ta, imm=imm)))
        assert (decoded.ta, decoded.imm) == (ta, imm)

    @given(st.integers(min_value=0, max_value=8),
           st.sampled_from([-1, 0, 1]),
           st.integers(min_value=-40, max_value=40))
    def test_branch_round_trip(self, tb, trit, imm):
        decoded = decode_instruction(
            encode_instruction(Instruction("BNE", tb=tb, branch_trit=trit, imm=imm)))
        assert (decoded.tb, decoded.branch_trit, decoded.imm) == (tb, trit, imm)

    def test_all_encodings_are_distinct(self):
        words = set()
        for mnemonic in INSTRUCTION_SPECS:
            words.add(str(encode_instruction(_sample_instruction(mnemonic))))
        assert len(words) == len(INSTRUCTION_SPECS)
