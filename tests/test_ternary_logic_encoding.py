"""Tests for word-level logic and the binary-encoded ternary representation."""

import pytest
from hypothesis import given, strategies as st

from repro.ternary import (
    TernaryWord,
    bits_for_word,
    decode_trit,
    decode_word,
    encode_trit,
    encode_word,
    word_and,
    word_nti,
    word_or,
    word_pti,
    word_sti,
    word_xor,
)
from repro.ternary.encoding import EncodingError, bits_for_memory
from repro.ternary.trit import trit_and, trit_or, trit_xor

values = st.integers(min_value=-9841, max_value=9841)


class TestWordLogic:
    @given(values, values)
    def test_and_or_are_tritwise_min_max(self, a, b):
        wa, wb = TernaryWord(a), TernaryWord(b)
        assert word_and(wa, wb).trits == tuple(min(x, y) for x, y in zip(wa.trits, wb.trits))
        assert word_or(wa, wb).trits == tuple(max(x, y) for x, y in zip(wa.trits, wb.trits))

    @given(values, values)
    def test_xor_is_tritwise(self, a, b):
        wa, wb = TernaryWord(a), TernaryWord(b)
        assert word_xor(wa, wb).trits == tuple(trit_xor(x, y) for x, y in zip(wa.trits, wb.trits))

    @given(values)
    def test_sti_negates(self, a):
        assert word_sti(TernaryWord(a)).value == -a

    @given(values)
    def test_de_morgan_style_duality(self, a):
        # STI(AND(x, y)) == OR(STI(x), STI(y)) because min/max are dual under negation.
        other = TernaryWord(1234)
        word = TernaryWord(a)
        assert word_sti(word_and(word, other)) == word_or(word_sti(word), word_sti(other))

    def test_nti_pti_extremes(self):
        word = TernaryWord.from_trits([-1, 0, 1])
        assert word_nti(word).trits[:3] == (1, -1, -1)
        assert word_pti(word).trits[:3] == (1, 1, -1)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            word_and(TernaryWord(0, width=9), TernaryWord(0, width=5))


class TestBinaryEncoding:
    def test_trit_encoding_table(self):
        assert encode_trit(0) == 0b00
        assert encode_trit(1) == 0b01
        assert encode_trit(-1) == 0b10

    def test_illegal_patterns_rejected(self):
        with pytest.raises(EncodingError):
            decode_trit(0b11)
        with pytest.raises(EncodingError):
            encode_trit(2)

    def test_word_occupies_two_bits_per_trit(self):
        encoded = encode_word(TernaryWord(42))
        assert encoded.bit_length == 18
        assert bits_for_word(9) == 18
        assert bits_for_memory(256, 9) == 256 * 18

    @given(values)
    def test_encode_decode_round_trip(self, value):
        word = TernaryWord(value)
        assert decode_word(encode_word(word)) == word
        assert encode_word(word).to_word() == word
