"""Fig. 5 — memory cells needed to store each benchmark program.

The paper compares the number of instruction-memory cells (trits for ART-9,
bits for RV-32I and ARMv6-M) of the four benchmarks, reporting that the
ART-9 code needs fewer cells than both binary ISAs (−54 % vs RV-32I and
−17 % vs ARMv6-M on Dhrystone).  This harness regenerates the same series
from the translated programs and the ARMv6-M code-size model.
"""

import pytest

from conftest import print_table
from repro.baselines import ARMv6MCodeSizeModel


def _memory_cell_rows(workloads, translated):
    model = ARMv6MCodeSizeModel()
    rows = []
    for name, workload in workloads.items():
        rv_program = workload.rv_program()
        art9_program, report = translated[name]
        rows.append((
            name,
            report.ternary_memory_trits,
            rv_program.instruction_memory_bits(),
            model.instruction_memory_bits(rv_program),
            f"{report.memory_saving_percent:.1f}%",
        ))
    return rows


def test_fig5_art9_uses_fewer_cells_than_rv32i(workloads, translated, benchmark):
    """The headline of Fig. 5: fewer ternary cells than RV-32I bits."""
    rows = benchmark(_memory_cell_rows, workloads, translated)
    print_table(
        "Fig. 5 — memory cells per benchmark program",
        ["workload", "ART-9 (trits)", "RV-32I (bits)", "ARMv6-M (bits)", "saving vs RV-32I"],
        rows,
    )
    for name, art9_trits, rv_bits, thumb_bits, _ in rows:
        if name == "gemm":
            # GEMM calls the software multiply runtime; with this repo's
            # simpler register renaming its ternary code ends up larger than
            # the RV-32I original (documented in EXPERIMENTS.md).
            continue
        assert art9_trits < rv_bits, f"{name}: ART-9 should need fewer memory cells"


def test_fig5_translation_expansion_is_bounded(workloads, translated):
    """Instruction-count expansion stays below the 32/9 break-even factor
    for the workloads that do not need the multiply runtime."""
    for name, (program, report) in translated.items():
        if "mul" in report.helpers_used:
            continue
        assert report.instruction_expansion < 32 / 9
