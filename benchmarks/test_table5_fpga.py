"""Table V — FPGA (binary-encoded) implementation of the ART-9 core.

The paper reports 803 ALMs, 339 registers, 9,216 RAM bits, 1.09 W at 150 MHz
and 57.8 DMIPS/W on an Intel Stratix-V.  This harness runs the FPGA resource
model on the same netlist and converts the Dhrystone cycle counts into
DMIPS/W at the 150 MHz operating point.
"""

import pytest

from conftest import print_table
from repro.hweval import DhrystoneMetrics, PerformanceEstimator, stratix_v_model
from repro.sim import PipelineSimulator

PAPER = {
    "voltage": 0.9, "frequency_mhz": 150, "alms": 803, "registers": 339,
    "ram_bits": 9216, "power_w": 1.09, "dmips_per_watt": 57.8,
}


def test_table5_fpga_implementation(workloads, translated, benchmark):
    model = stratix_v_model()
    fpga_report = benchmark(model.estimate)

    program, _ = translated["dhrystone"]
    stats = PipelineSimulator(program).run()
    estimator = PerformanceEstimator(
        DhrystoneMetrics(cycles=stats.cycles, iterations=workloads["dhrystone"].iterations))
    performance = estimator.for_fpga(fpga_report)

    print_table(
        "Table V — FPGA-based ternary-logic emulation",
        ["metric", "measured", "paper"],
        [
            ("frequency (MHz)", fpga_report.frequency_mhz, PAPER["frequency_mhz"]),
            ("ALMs", fpga_report.alms, PAPER["alms"]),
            ("registers", fpga_report.registers, PAPER["registers"]),
            ("RAM bits", fpga_report.ram_bits, PAPER["ram_bits"]),
            ("power (W)", f"{fpga_report.total_power_w:.2f}", PAPER["power_w"]),
            ("DMIPS/W", f"{performance.dmips_per_watt:.1f}", PAPER["dmips_per_watt"]),
        ],
    )

    assert fpga_report.frequency_mhz == PAPER["frequency_mhz"]
    assert abs(fpga_report.alms - PAPER["alms"]) / PAPER["alms"] < 0.15
    assert abs(fpga_report.registers - PAPER["registers"]) / PAPER["registers"] < 0.15
    assert fpga_report.ram_bits == PAPER["ram_bits"]
    assert abs(fpga_report.total_power_w - PAPER["power_w"]) / PAPER["power_w"] < 0.25
    # The efficiency stays in the tens of DMIPS/W (paper: 57.8).
    assert 10 < performance.dmips_per_watt < 1000
