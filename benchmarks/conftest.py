"""Shared fixtures for the table/figure reproduction benchmarks."""

import pytest

from repro.framework import HardwareFramework, SoftwareFramework
from repro.workloads import all_workloads


@pytest.fixture(scope="session")
def software_framework():
    return SoftwareFramework()


@pytest.fixture(scope="session")
def hardware_framework():
    return HardwareFramework()


@pytest.fixture(scope="session")
def workloads():
    """All four paper workloads, built once per session."""
    return all_workloads()


@pytest.fixture(scope="session")
def translated(workloads, software_framework):
    """name -> (art9_program, translation_report) for every workload."""
    return {
        name: software_framework.compile_workload(workload)
        for name, workload in workloads.items()
    }


def print_table(title, headers, rows):
    """Render a small aligned comparison table to stdout (visible with -s)."""
    widths = [max(len(str(cell)) for cell in column) for column in zip(headers, *rows)]
    lines = [title, "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    print("\n" + "\n".join(lines))
