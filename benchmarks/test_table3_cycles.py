"""Table III — processing cycles of the four benchmarks, ART-9 vs PicoRV32.

The paper reports that the pipelined ART-9 core finishes every benchmark in
fewer cycles than the non-pipelined PicoRV32, despite executing more (but
shorter) instructions.  GEMM is the exception in this reproduction: our
software multiply is more expensive than the authors', so PicoRV32's
hardware multiplier wins there (recorded in EXPERIMENTS.md).
"""

import pytest

from conftest import print_table
from repro.baselines import PicoRV32Model, VexRiscvModel
from repro.sim import PipelineSimulator

#: Paper values for reference (ART-9, PicoRV32).
PAPER_CYCLES = {
    "bubble_sort": (2432, 9227),
    "gemm": (10748, 11290),
    "sobel": (7822, 18250),
    "dhrystone": (134200, 186607),
}

#: Workloads where this reproduction preserves the paper's winner.
EXPECT_ART9_WINS = ("bubble_sort", "sobel", "dhrystone")


def _cycles_for(name, workloads, translated):
    program, _ = translated[name]
    stats = PipelineSimulator(program).run()
    pico = PicoRV32Model().run(workloads[name].rv_program())
    vex = VexRiscvModel().run(workloads[name].rv_program())
    return stats.cycles, pico.cycles, vex.cycles


@pytest.mark.parametrize("name", sorted(PAPER_CYCLES))
def test_table3_cycle_counts(name, workloads, translated, benchmark):
    art9, pico, vex = benchmark(_cycles_for, name, workloads, translated)
    paper_art9, paper_pico = PAPER_CYCLES[name]
    print_table(
        f"Table III — processing cycles ({name})",
        ["core", "measured cycles", "paper cycles"],
        [
            ("ART-9 (this work)", art9, paper_art9),
            ("PicoRV32", pico, paper_pico),
            ("VexRiscv (extra)", vex, "-"),
        ],
    )
    if name in EXPECT_ART9_WINS:
        assert art9 < pico, f"{name}: ART-9 should need fewer cycles than PicoRV32"
    # Sanity: every core actually ran the workload.
    assert art9 > 100 and pico > 100 and vex > 100
