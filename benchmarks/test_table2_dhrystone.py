"""Table II — Dhrystone comparison of ART-9, VexRiscv and PicoRV32.

The paper reports DMIPS/MHz and program memory cells for the three cores
running Dhrystone.  The absolute DMIPS figures of this reproduction are
higher than the paper's because the Dhrystone-like kernel iteration is
smaller than a genuine Dhrystone iteration (see DESIGN.md), but the ordering
— VexRiscv fastest per MHz, ART-9 in the middle, PicoRV32 last — and the
memory-cell advantage of the ternary ISA are the reproduced claims.
"""

import pytest

from conftest import print_table
from repro.baselines import PicoRV32Model, VexRiscvModel
from repro.hweval import DhrystoneMetrics


def _dmips_per_mhz(cycles, iterations):
    return DhrystoneMetrics(cycles=cycles, iterations=iterations).dmips_per_mhz


def test_table2_dhrystone_comparison(workloads, translated, hardware_framework, benchmark):
    workload = workloads["dhrystone"]
    program, report = translated["dhrystone"]

    stats = benchmark(hardware_framework.simulate, program)
    pico = PicoRV32Model().run(workload.rv_program())
    vex = VexRiscvModel().run(workload.rv_program())

    art9_dmips = _dmips_per_mhz(stats.cycles, workload.iterations)
    vex_dmips = _dmips_per_mhz(vex.cycles, workload.iterations)
    pico_dmips = _dmips_per_mhz(pico.cycles, workload.iterations)

    rows = [
        ("ART-9 (this work)", 24, 5, "no", f"{art9_dmips:.2f}",
         f"{report.ternary_memory_trits} trits"),
        ("VexRiscv", 40, 5, "yes", f"{vex_dmips:.2f}",
         f"{workload.rv_program().instruction_memory_bits()} bits"),
        ("PicoRV32", 48, 1, "yes", f"{pico_dmips:.2f}",
         f"{workload.rv_program().instruction_memory_bits()} bits"),
    ]
    print_table(
        "Table II — Dhrystone simulation results",
        ["core", "# instructions", "stages", "multiplier", "DMIPS/MHz", "memory cells"],
        rows,
    )

    # Reproduced ordering (paper: 0.65 > 0.42 > 0.31 DMIPS/MHz).
    assert vex_dmips > art9_dmips > pico_dmips
    # Reproduced memory claim: fewer ternary cells than RV-32I bits.
    assert report.ternary_memory_trits < workload.rv_program().instruction_memory_bits()
