"""Table IV — CNTFET implementation of the ART-9 datapath.

The paper reports 652 standard ternary gates, 42.7 uW at 0.9 V and
3.06e6 DMIPS/W for the 32 nm CNTFET realisation.  This harness runs the
gate-level analyzer on the ART-9 netlist with the CNTFET technology library
and combines it with the Dhrystone cycle counts through the performance
estimator.
"""

import pytest

from conftest import print_table
from repro.hweval import (
    DhrystoneMetrics,
    GateLevelAnalyzer,
    PerformanceEstimator,
    cntfet_32nm_library,
)
from repro.sim import PipelineSimulator

PAPER = {"voltage": 0.9, "gates": 652, "power_uw": 42.7, "dmips_per_watt": 3.06e6}


def test_table4_cntfet_implementation(workloads, translated, benchmark):
    analyzer = GateLevelAnalyzer()
    library = cntfet_32nm_library()
    gate_report = benchmark(analyzer.analyze, library)

    program, _ = translated["dhrystone"]
    stats = PipelineSimulator(program).run()
    estimator = PerformanceEstimator(
        DhrystoneMetrics(cycles=stats.cycles, iterations=workloads["dhrystone"].iterations))
    performance = estimator.for_gate_level(gate_report)

    print_table(
        "Table IV — CNTFET ternary-gate implementation",
        ["metric", "measured", "paper"],
        [
            ("supply voltage (V)", gate_report.supply_voltage, PAPER["voltage"]),
            ("total ternary gates", gate_report.total_gates, PAPER["gates"]),
            ("power (uW)", f"{gate_report.total_power_uw:.1f}", PAPER["power_uw"]),
            ("DMIPS/W", f"{performance.dmips_per_watt:.2e}", f"{PAPER['dmips_per_watt']:.2e}"),
        ],
    )

    assert gate_report.supply_voltage == PAPER["voltage"]
    assert abs(gate_report.total_gates - PAPER["gates"]) / PAPER["gates"] < 0.15
    assert abs(gate_report.total_power_uw - PAPER["power_uw"]) / PAPER["power_uw"] < 0.5
    # Order-of-magnitude agreement on the headline efficiency figure.
    assert 1e6 < performance.dmips_per_watt < 1e8
