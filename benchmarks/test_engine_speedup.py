"""Engine speedups: the performance ladder that enables large sweeps.

Three rungs, each asserted with a host-noise-tolerant floor well below the
typically observed ratio (record the real numbers with ``art9 bench
--json`` — see the committed ``BENCH_*.json`` trajectory):

* the fast pre-decoded interpreter vs the stage-by-stage pipeline model
  (historically >10x; floor 3x);
* the compiled superblock-codegen engine vs the fast interpreter
  (historically ~3x on Dhrystone steady state; floor 1.5x);
* the profile-guided (chained-trace) compiled engine vs the plain
  compiled engine on the long Dhrystone (historically ~1.6x, see
  BENCH_9.json; floor: not slower);
* all engines must report *identical* cycle counts — a speedup that
  changes the numbers is a bug, not an optimisation.

The pytest-benchmark cases keep per-engine timing series in the benchmark
JSON for trend tracking; the floor assertions use their own best-of-N
``perf_counter`` loops so they also run (and still guard the ordering)
under ``--benchmark-disable`` in CI.
"""

import time

import pytest

from repro.sim import CompiledEngine, FastEngine, PipelineSimulator


@pytest.fixture(scope="module")
def dhrystone_program(translated):
    program, _ = translated["dhrystone"]
    return program


def _best_seconds(run, repeat=3):
    best = None
    for _ in range(repeat):
        started = time.perf_counter()
        run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_fast_engine_dhrystone(dhrystone_program, benchmark):
    stats = benchmark(lambda: FastEngine(dhrystone_program).run_with_stats())
    reference = PipelineSimulator(dhrystone_program).run()
    assert stats.cycles == reference.cycles
    assert stats.stall_cycles == reference.stall_cycles


def test_compiled_engine_dhrystone(dhrystone_program, benchmark):
    stats = benchmark(
        lambda: CompiledEngine(dhrystone_program).run_with_stats())
    reference = PipelineSimulator(dhrystone_program).run()
    assert stats.cycles == reference.cycles
    assert stats.stall_cycles == reference.stall_cycles


def test_pipeline_engine_dhrystone(dhrystone_program, benchmark):
    stats = benchmark(lambda: PipelineSimulator(dhrystone_program).run())
    assert stats.cycles > 0


def test_speedup_floors(dhrystone_program):
    """fast ≥ 3x pipeline and compiled ≥ 1.5x fast on the same program.

    The floors are deliberately far below the typical ratios so scheduler
    noise on a loaded CI host cannot flake the gate while a genuine
    regression (e.g. the compiled engine silently falling back to
    per-instruction dispatch) still fails it.
    """
    pipeline_s = _best_seconds(
        lambda: PipelineSimulator(dhrystone_program).run())
    fast_s = _best_seconds(
        lambda: FastEngine(dhrystone_program).run_with_stats())
    compiled_s = _best_seconds(
        lambda: CompiledEngine(dhrystone_program).run_with_stats())

    fast_vs_pipeline = pipeline_s / fast_s
    compiled_vs_fast = fast_s / compiled_s
    assert fast_vs_pipeline >= 3.0, (
        f"fast engine only {fast_vs_pipeline:.2f}x over the pipeline model "
        f"(pipeline {pipeline_s * 1e3:.1f} ms, fast {fast_s * 1e3:.1f} ms)")
    assert compiled_vs_fast >= 1.5, (
        f"compiled engine only {compiled_vs_fast:.2f}x over the fast engine "
        f"(fast {fast_s * 1e3:.1f} ms, compiled {compiled_s * 1e3:.1f} ms)")


@pytest.fixture(scope="module")
def dhrystone500_program(software_framework):
    """The grown Dhrystone instance the chained-engine gate tracks."""
    program, _, _ = software_framework.compile_named_workload(
        "dhrystone", {"iterations": 500})
    return program


def test_chained_compiled_floor(dhrystone500_program):
    """PGO-chained compiled ≥ plain compiled on dhrystone iterations=500.

    The profile-guided mode recompiles hot superblocks as traces chained
    across their dominant successors; on the long Dhrystone it has
    measured ~1.6x over the plain compiled engine (BENCH_9.json).  The
    gate floor is parity — chaining must never make the compiled engine
    slower on its headline workload — so host noise cannot flake it while
    a real regression (traces constantly bailing out, plan cache broken)
    still trips it.
    """
    program = dhrystone500_program
    # One untimed pass per side: fills the codegen memos and, for PGO,
    # runs the one-time profiling pass that populates the plan memo.
    plain_stats = CompiledEngine(program).run_with_stats()
    chained_stats = CompiledEngine(program, pgo=True).run_with_stats()
    assert chained_stats.cycles == plain_stats.cycles
    assert chained_stats.stall_cycles == plain_stats.stall_cycles

    plain_s = _best_seconds(
        lambda: CompiledEngine(program).run_with_stats())
    chained_s = _best_seconds(
        lambda: CompiledEngine(program, pgo=True).run_with_stats())
    ratio = plain_s / chained_s
    assert ratio >= 1.0, (
        f"chained compiled engine {ratio:.2f}x vs plain "
        f"(plain {plain_s * 1e3:.1f} ms, chained {chained_s * 1e3:.1f} ms)")
