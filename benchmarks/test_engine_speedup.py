"""Fast engine vs stage-by-stage pipeline: the speedup that enables sweeps.

Both tests simulate the same Dhrystone program and must report identical
cycle counts; pytest-benchmark records how many seconds each engine needs
per run.  The fast engine's time is the number that matters for the ROADMAP
goal of large workload sweeps (compare the two medians in the BENCH json,
or the ``hardware_framework.simulate`` timing in test_table2 against older
runs recorded before the fast path existed).
"""

import pytest

from repro.sim import FastEngine, PipelineSimulator


@pytest.fixture(scope="module")
def dhrystone_program(translated):
    program, _ = translated["dhrystone"]
    return program


def test_fast_engine_dhrystone(dhrystone_program, benchmark):
    stats = benchmark(lambda: FastEngine(dhrystone_program).run_with_stats())
    reference = PipelineSimulator(dhrystone_program).run()
    assert stats.cycles == reference.cycles
    assert stats.stall_cycles == reference.stall_cycles


def test_pipeline_engine_dhrystone(dhrystone_program, benchmark):
    stats = benchmark(lambda: PipelineSimulator(dhrystone_program).run())
    assert stats.cycles > 0
