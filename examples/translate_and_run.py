#!/usr/bin/env python3
"""Software-level framework walk-through: RV-32I assembly to ART-9 execution.

Shows the full translation pipeline of Fig. 2 — instruction mapping, operand
conversion with register renaming, redundancy checking — on a small RV-32I
program, and verifies that the translated ternary code computes exactly the
same results as the original running on the RV-32 reference simulator.

Run with:  python examples/translate_and_run.py
"""

from repro.framework import SoftwareFramework
from repro.riscv import RVSimulator, assemble_riscv
from repro.sim import PipelineSimulator
from repro.xlate.translator import read_rv_register_from_simulator

RV_SOURCE = """
# Compute the dot product of two small vectors and the sum of squares of the
# first one, using the M-extension multiply (lowered to the ternary runtime
# multiply helper by the translation framework).
    la   t0, vec_a
    la   t1, vec_b
    li   t2, 0              # element index
    li   a0, 0              # dot product
    li   a1, 0              # sum of squares
loop:
    slli t3, t2, 2
    add  t4, t0, t3
    lw   t5, 0(t4)
    add  t4, t1, t3
    lw   t6, 0(t4)
    mul  s0, t5, t6
    add  a0, a0, s0
    mul  s0, t5, t5
    add  a1, a1, s0
    addi t2, t2, 1
    li   t3, 6
    blt  t2, t3, loop
    ecall

.data
vec_a: .word 3, -5, 7, 2, 9, -1
vec_b: .word 4,  6, 1, 8, 2,  5
"""


def main() -> None:
    rv_program = assemble_riscv(RV_SOURCE, name="dot_product")

    # Reference run on the RV-32 substrate (stands in for a real RISC-V core).
    rv_sim = RVSimulator(rv_program)
    rv_sim.run()
    rv_dot = rv_sim.read_reg(10)
    rv_squares = rv_sim.read_reg(11)
    print(f"RV-32 reference: dot product = {rv_dot}, sum of squares = {rv_squares}")

    # Translate with the software-level framework and inspect the report.
    framework = SoftwareFramework()
    art9_program, report = framework.compile_riscv_program(rv_program)
    print("\n" + report.summary())
    print("\nregister renaming decided by the framework:")
    print(report.allocation.describe())

    # Execute the ternary program on the cycle-accurate pipeline.
    pipeline = PipelineSimulator(art9_program)
    stats = pipeline.run()
    art9_dot = read_rv_register_from_simulator(report, pipeline, 10)
    art9_squares = read_rv_register_from_simulator(report, pipeline, 11)
    print(f"\nART-9 pipelined run: dot product = {art9_dot}, sum of squares = {art9_squares}")
    print(f"cycles = {stats.cycles}, CPI = {stats.cpi:.2f}, "
          f"stalls = {stats.load_use_stalls}, flushes = {stats.control_flush_bubbles}")

    assert (art9_dot, art9_squares) == (rv_dot, rv_squares)
    print("\ntranslated ternary program reproduces the binary results exactly.")


if __name__ == "__main__":
    main()
