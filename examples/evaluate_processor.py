#!/usr/bin/env python3
"""Hardware-level framework walk-through: Tables II-V in one script.

Runs the bundled Dhrystone-like workload through the complete flow of the
paper — translation, cycle-accurate simulation, gate-level analysis with the
CNTFET technology description, FPGA resource estimation, and the performance
estimator — and prints the resulting Table II/IV/V style metrics alongside
the PicoRV32/VexRiscv baseline cycle models.

Run with:  python examples/evaluate_processor.py
"""

from repro.baselines import PicoRV32Model, VexRiscvModel
from repro.framework import HardwareFramework, SoftwareFramework
from repro.hweval import DhrystoneMetrics
from repro.workloads import build_dhrystone


def main() -> None:
    workload = build_dhrystone()
    software = SoftwareFramework()
    hardware = HardwareFramework()

    program, report = software.compile_workload(workload)
    print(f"translated {report.rv_instructions} RV-32 instructions into "
          f"{report.final_instructions} ART-9 instructions "
          f"({report.ternary_memory_trits} trits vs {report.rv_memory_bits} bits)\n")

    evaluation = hardware.evaluate(program, iterations=workload.iterations)
    print(evaluation.summary())

    # Baseline comparison (Table II / III style).
    rv_program = workload.rv_program()
    pico = PicoRV32Model().run(rv_program)
    vex = VexRiscvModel().run(rv_program)
    art9_cycles = evaluation.pipeline_stats.cycles

    def dmips_per_mhz(cycles):
        return DhrystoneMetrics(cycles=cycles, iterations=workload.iterations).dmips_per_mhz

    print("\nDhrystone comparison against the binary baselines:")
    print(f"  {'core':<18s}{'cycles':>10s}{'DMIPS/MHz':>12s}")
    print(f"  {'ART-9 (this work)':<18s}{art9_cycles:>10d}{dmips_per_mhz(art9_cycles):>12.2f}")
    print(f"  {'VexRiscv':<18s}{vex.cycles:>10d}{dmips_per_mhz(vex.cycles):>12.2f}")
    print(f"  {'PicoRV32':<18s}{pico.cycles:>10d}{dmips_per_mhz(pico.cycles):>12.2f}")


if __name__ == "__main__":
    main()
