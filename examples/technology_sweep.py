#!/usr/bin/env python3
"""Design-space exploration with the hardware-level framework.

The gate-level analyzer is technology-agnostic: it consumes a *technology
property description* (per-gate delay, switching energy, leakage).  This
example sweeps the ternary full-adder characteristics — the dominant cell on
the EX-stage critical path — to show how a designer would explore emerging
ternary device options (faster/slower CNTFET corners) before committing to
an implementation, exactly the "reduce the design efforts" use case of
Sec. III-B.

Run with:  python examples/technology_sweep.py
"""

from dataclasses import replace

from repro.hweval import (
    DhrystoneMetrics,
    GateLevelAnalyzer,
    PerformanceEstimator,
    cntfet_32nm_library,
)
from repro.hweval.technology import GateKind
from repro.framework import SoftwareFramework
from repro.sim import PipelineSimulator
from repro.workloads import build_dhrystone


def main() -> None:
    # One cycle-accurate run gives the workload's cycles-per-iteration;
    # the technology sweep only changes frequency and power.
    workload = build_dhrystone()
    program, _ = SoftwareFramework().compile_workload(workload)
    stats = PipelineSimulator(program).run()
    estimator = PerformanceEstimator(
        DhrystoneMetrics(cycles=stats.cycles, iterations=workload.iterations))

    analyzer = GateLevelAnalyzer()
    print(f"{'FA delay scale':>15s}{'fmax (MHz)':>12s}{'power (uW)':>12s}"
          f"{'DMIPS':>10s}{'DMIPS/W':>14s}")
    for scale in (0.5, 0.75, 1.0, 1.5, 2.0):
        library = cntfet_32nm_library()
        baseline = library.properties(GateKind.FULL_ADDER)
        library.add_gate(GateKind.FULL_ADDER, replace(
            baseline,
            delay_ps=baseline.delay_ps * scale,
            switching_energy_fj=baseline.switching_energy_fj * scale,
        ))
        report = analyzer.analyze(library)
        performance = estimator.for_gate_level(report)
        print(f"{scale:>15.2f}{report.max_frequency_mhz:>12.1f}"
              f"{report.total_power_uw:>12.1f}{performance.dmips:>10.1f}"
              f"{performance.dmips_per_watt:>14.2e}")

    print("\nFaster adder cells raise the clock ceiling roughly linearly;"
          " the DMIPS/W sweet spot depends on how leakage scales with them.")


if __name__ == "__main__":
    main()
