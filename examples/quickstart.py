#!/usr/bin/env python3
"""Quickstart: assemble a native ART-9 program and simulate it.

Demonstrates the lowest layer of the stack: the ART-9 assembler, the
functional (architectural) simulator and the cycle-accurate 5-stage pipeline
simulator, including the hazard statistics the hardware-level framework
feeds into its performance estimates.

Run with:  python examples/quickstart.py
"""

from repro.isa import assemble, disassemble_program
from repro.sim import FunctionalSimulator, PipelineSimulator

SOURCE = """
# Sum the data array and count how many elements exceed a threshold.
    LIW  T1, table          # T1 = base address of the array
    LIW  T2, 0              # T2 = running sum
    LIW  T3, 0              # T3 = count of elements > 50
    LIW  T4, 8              # T4 = number of elements
    LIW  T5, 50             # T5 = threshold
loop:
    LOAD T6, T1, 0          # T6 = *T1
    ADD  T2, T6             # sum += element
    COMP T6, T5             # compare element with the threshold
    BNE  T6, 1, not_above   # skip unless element > threshold
    ADDI T3, 1
not_above:
    ADDI T1, 1              # next element (word addressing)
    ADDI T4, -1
    BNE  T4, 0, loop        # loop while elements remain
    STORE T2, T0, 10        # publish the sum at TDM[10]
    STORE T3, T0, 11        # publish the count at TDM[11]
    HALT

.data
table: .word 12, 99, -30, 47, 81, 5, 63, -7
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")
    print(f"assembled {len(program)} ART-9 instructions "
          f"({program.instruction_memory_trits()} trits of instruction memory)\n")
    print("encoded program (first five words):")
    print("\n".join(disassemble_program(program).splitlines()[:5]))

    # Architectural reference run.
    functional = FunctionalSimulator(program)
    result = functional.run()
    print(f"\nfunctional simulator: {result.instructions_executed} instructions executed")
    print(f"  sum   = {functional.tdm.read_int(10)}")
    print(f"  count = {functional.tdm.read_int(11)}")

    # Cycle-accurate run on the 5-stage pipeline of Fig. 4.
    pipeline = PipelineSimulator(program)
    stats = pipeline.run()
    print("\npipeline simulator:")
    print(stats.summary())

    assert pipeline.register_snapshot() == functional.registers.snapshot()
    print("\nfunctional and pipelined architectural state match.")


if __name__ == "__main__":
    main()
