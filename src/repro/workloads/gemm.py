"""General matrix multiplication (GEMM) workload, 4x4 x 4x4.

GEMM exercises the multiply path: the ART-9 core has no hardware multiplier
(Table II), so every ``mul`` of the RV-32 source is lowered by the software
framework into a call of the ternary runtime multiply helper, while the
PicoRV32 baseline (RV-32IM) charges its documented PCPI multiplier latency.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload, lcg_values, register_workload

#: Matrix dimension (N x N).
N = 4


def _reference(a: List[int], b: List[int]) -> List[int]:
    """Row-major C = A * B."""
    c = [0] * (N * N)
    for i in range(N):
        for j in range(N):
            total = 0
            for k in range(N):
                total += a[i * N + k] * b[k * N + j]
            c[i * N + j] = total
    return c


def _source(a: List[int], b: List[int]) -> str:
    mat_a = ", ".join(str(v) for v in a)
    mat_b = ", ".join(str(v) for v in b)
    zeros = ", ".join("0" for _ in range(N * N))
    return f"""
# C = A * B for {N}x{N} row-major word matrices.
# s0 = i, s1 = j, s2 = k, s3 = accumulator; t0/t1/t2/t3 = address/element temps.
.text
    li   s0, 0
loop_i:
    li   s1, 0
loop_j:
    li   s2, 0
    li   s3, 0
loop_k:
    # t2 = A[i][k]
    slli t0, s0, 2
    add  t0, t0, s2
    slli t0, t0, 2
    la   t1, mat_a
    add  t0, t0, t1
    lw   t2, 0(t0)
    # t3 = B[k][j]
    slli t0, s2, 2
    add  t0, t0, s1
    slli t0, t0, 2
    la   t1, mat_b
    add  t0, t0, t1
    lw   t3, 0(t0)
    mul  t2, t2, t3
    add  s3, s3, t2
    addi s2, s2, 1
    li   t0, {N}
    blt  s2, t0, loop_k
    # C[i][j] = s3
    slli t0, s0, 2
    add  t0, t0, s1
    slli t0, t0, 2
    la   t1, mat_c
    add  t0, t0, t1
    sw   s3, 0(t0)
    addi s1, s1, 1
    li   t0, {N}
    blt  s1, t0, loop_j
    addi s0, s0, 1
    li   t0, {N}
    blt  s0, t0, loop_i
    ecall

.data
mat_c: .word {zeros}
mat_a: .word {mat_a}
mat_b: .word {mat_b}
"""


@register_workload("gemm")
def build_gemm() -> Workload:
    """Build the GEMM workload with deterministic small-valued matrices."""
    a = lcg_values(N * N, seed=11, modulus=9)
    b = lcg_values(N * N, seed=23, modulus=9)
    return Workload(
        name="gemm",
        rv_source=_source(a, b),
        result_base=0,
        expected_results=_reference(a, b),
        description=f"{N}x{N} integer matrix multiplication (software multiply on ART-9)",
    )
