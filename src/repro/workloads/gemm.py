"""General matrix multiplication (GEMM) workload, 4x4 x 4x4.

GEMM exercises the multiply path: the ART-9 core has no hardware multiplier
(Table II), so every ``mul`` of the RV-32 source is lowered by the software
framework into a call of the ternary runtime multiply helper, while the
PicoRV32 baseline (RV-32IM) charges its documented PCPI multiplier latency.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload, lcg_values, register_workload

#: Matrix dimension (N x N).
N = 4


def _reference(a: List[int], b: List[int], n: int = N) -> List[int]:
    """Row-major C = A * B."""
    c = [0] * (n * n)
    for i in range(n):
        for j in range(n):
            total = 0
            for k in range(n):
                total += a[i * n + k] * b[k * n + j]
            c[i * n + j] = total
    return c


def _source(a: List[int], b: List[int], n: int = N) -> str:
    # The address arithmetic doubles as an index-to-offset shifter, so the
    # row stride must be a power of two: ``slli rd, rs, log2(n)`` computes
    # ``i * n`` and the second ``slli`` by 2 converts words to bytes.
    log2n = n.bit_length() - 1
    mat_a = ", ".join(str(v) for v in a)
    mat_b = ", ".join(str(v) for v in b)
    zeros = ", ".join("0" for _ in range(n * n))
    return f"""
# C = A * B for {n}x{n} row-major word matrices.
# s0 = i, s1 = j, s2 = k, s3 = accumulator; t0/t1/t2/t3 = address/element temps.
.text
    li   s0, 0
loop_i:
    li   s1, 0
loop_j:
    li   s2, 0
    li   s3, 0
loop_k:
    # t2 = A[i][k]
    slli t0, s0, {log2n}
    add  t0, t0, s2
    slli t0, t0, 2
    la   t1, mat_a
    add  t0, t0, t1
    lw   t2, 0(t0)
    # t3 = B[k][j]
    slli t0, s2, {log2n}
    add  t0, t0, s1
    slli t0, t0, 2
    la   t1, mat_b
    add  t0, t0, t1
    lw   t3, 0(t0)
    mul  t2, t2, t3
    add  s3, s3, t2
    addi s2, s2, 1
    li   t0, {n}
    blt  s2, t0, loop_k
    # C[i][j] = s3
    slli t0, s0, {log2n}
    add  t0, t0, s1
    slli t0, t0, 2
    la   t1, mat_c
    add  t0, t0, t1
    sw   s3, 0(t0)
    addi s1, s1, 1
    li   t0, {n}
    blt  s1, t0, loop_j
    addi s0, s0, 1
    li   t0, {n}
    blt  s0, t0, loop_i
    ecall

.data
mat_c: .word {zeros}
mat_a: .word {mat_a}
mat_b: .word {mat_b}
"""


@register_workload("gemm")
def build_gemm(n: int = N, seed: int = 11) -> Workload:
    """Build the GEMM workload with deterministic small-valued matrices.

    ``n`` is the matrix dimension (a power of two, so the index arithmetic
    stays shift-based); the default reproduces the 4x4 instance of
    Table III.  ``seed`` varies the input matrices.
    """
    if n < 2 or n & (n - 1):
        raise ValueError(f"gemm dimension must be a power of two >= 2, got {n}")
    a = lcg_values(n * n, seed=seed, modulus=9)
    b = lcg_values(n * n, seed=seed + 12, modulus=9)
    return Workload(
        name="gemm",
        rv_source=_source(a, b, n),
        result_base=0,
        expected_results=_reference(a, b, n),
        description=f"{n}x{n} integer matrix multiplication (software multiply on ART-9)",
    )
