"""Bubble sort workload (16 elements), as in Table III of the paper.

The kernel is written with a small live-register footprint (seven registers
plus ``x0``) so that the register-renaming pass of the software framework
can map every value directly onto the nine ternary registers — the regime in
which the translated code stays close to the RV-32I instruction count and
the memory-cell savings of Fig. 5 are most visible.
"""

from __future__ import annotations

from repro.workloads.base import Workload, lcg_values, register_workload

#: Number of elements sorted.
ARRAY_LENGTH = 16


def _source(values) -> str:
    data = ", ".join(str(v) for v in values)
    length = len(values)
    last_index = length - 1
    return f"""
# Bubble sort of {length} words, in place.
# Registers: a0 = array base, t0 = outer index, t1 = inner index,
#            a2 = remaining passes, a3 = element pointer, t2/t3 = elements.
.text
    la   a0, array
    li   t0, 0              # i = 0
outer:
    li   t1, 0              # j = 0
    li   a2, {last_index}
    sub  a2, a2, t0         # inner limit = n-1-i
    mv   a3, a0
inner:
    lw   t2, 0(a3)
    lw   t3, 4(a3)
    ble  t2, t3, no_swap
    sw   t3, 0(a3)
    sw   t2, 4(a3)
no_swap:
    addi a3, a3, 4
    addi t1, t1, 1
    blt  t1, a2, inner
    addi t0, t0, 1
    addi a2, a2, -1
    bgtz a2, outer
    ecall

.data
array: .word {data}
"""


@register_workload("bubble_sort")
def build_bubble_sort(length: int = ARRAY_LENGTH, seed: int = 3) -> Workload:
    """Build the bubble-sort workload with its deterministic input array.

    ``length`` and ``seed`` size the input array; the defaults reproduce the
    16-element instance of Table III.
    """
    if length < 2:
        raise ValueError(f"bubble_sort needs at least 2 elements, got {length}")
    values = lcg_values(length, seed=seed, modulus=500)
    return Workload(
        name="bubble_sort",
        rv_source=_source(values),
        result_base=0,
        expected_results=sorted(values),
        description=f"in-place bubble sort of {length} words",
    )
