"""Sobel edge-detection filter workload on an 8x8 image.

The 3x3 Sobel kernels only need coefficients of +-1 and +-2, so the kernel
is written multiplication-free (doubling by addition); the gradient
magnitude is approximated, as is common on integer hardware, by
``|Gx| + |Gy|``.  The filter is evaluated on the interior pixels (6x6 by
default) and the results are written to the output region.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload, lcg_values, register_workload

#: Image side length (pixels).
SIZE = 8
#: Interior size actually filtered.
INNER = SIZE - 2
#: Byte stride of one image row.
ROW_BYTES = 4 * SIZE


def _reference(image: List[int], size: int = SIZE) -> List[int]:
    """|Gx| + |Gy| over the interior pixels, row-major."""
    out = []
    for row in range(1, size - 1):
        for col in range(1, size - 1):
            def pixel(dr, dc):
                return image[(row + dr) * size + (col + dc)]

            gx = (pixel(-1, 1) + 2 * pixel(0, 1) + pixel(1, 1)) - (
                pixel(-1, -1) + 2 * pixel(0, -1) + pixel(1, -1))
            gy = (pixel(1, -1) + 2 * pixel(1, 0) + pixel(1, 1)) - (
                pixel(-1, -1) + 2 * pixel(-1, 0) + pixel(-1, 1))
            out.append(abs(gx) + abs(gy))
    return out


def _source(image: List[int], size: int = SIZE) -> str:
    # The centre-pixel address is computed as ``(row << log2(size) + col) * 4``,
    # so the image side must be a power of two; the eight neighbour loads are
    # then fixed byte offsets around the centre.
    log2size = size.bit_length() - 1
    row_bytes = 4 * size
    inner = size - 2
    pixels = ", ".join(str(v) for v in image)
    zeros = ", ".join("0" for _ in range(inner * inner))
    ne, nw = 4 - row_bytes, -row_bytes - 4
    se, sw = row_bytes + 4, row_bytes - 4
    n_off, s_off = -row_bytes, row_bytes
    return f"""
# Sobel filter (|Gx| + |Gy|) over the interior of an {size}x{size} image.
# s0 = row, s1 = column, t0 = centre-pixel address, a5 = output pointer,
# a3 = Gx accumulator, a4 = Gy accumulator, t2 = loaded pixel.
.text
    la   a5, output
    li   s0, 1
row_loop:
    li   s1, 1
col_loop:
    # t0 = &image[row][col]
    slli t0, s0, {log2size}
    add  t0, t0, s1
    slli t0, t0, 2
    la   t1, image
    add  t0, t0, t1

    # Gx = (NE + 2E + SE) - (NW + 2W + SW)
    lw   t2, {ne}(t0)        # NE
    mv   a3, t2
    lw   t2, 4(t0)          # E
    add  a3, a3, t2
    add  a3, a3, t2
    lw   t2, {se}(t0)        # SE
    add  a3, a3, t2
    lw   t2, {nw}(t0)        # NW
    sub  a3, a3, t2
    lw   t2, -4(t0)         # W
    sub  a3, a3, t2
    sub  a3, a3, t2
    lw   t2, {sw}(t0)        # SW
    sub  a3, a3, t2

    # Gy = (SW + 2S + SE) - (NW + 2N + NE)
    lw   t2, {sw}(t0)        # SW
    mv   a4, t2
    lw   t2, {s_off}(t0)        # S
    add  a4, a4, t2
    add  a4, a4, t2
    lw   t2, {se}(t0)        # SE
    add  a4, a4, t2
    lw   t2, {nw}(t0)        # NW
    sub  a4, a4, t2
    lw   t2, {n_off}(t0)        # N
    sub  a4, a4, t2
    sub  a4, a4, t2
    lw   t2, {ne}(t0)        # NE
    sub  a4, a4, t2

    # magnitude = |Gx| + |Gy|
    bgez a3, gx_positive
    neg  a3, a3
gx_positive:
    bgez a4, gy_positive
    neg  a4, a4
gy_positive:
    add  a3, a3, a4
    sw   a3, 0(a5)
    addi a5, a5, 4

    addi s1, s1, 1
    li   t1, {size - 1}
    blt  s1, t1, col_loop
    addi s0, s0, 1
    li   t1, {size - 1}
    blt  s0, t1, row_loop
    ecall

.data
output: .word {zeros}
image:  .word {pixels}
"""


@register_workload("sobel")
def build_sobel(size: int = SIZE, seed: int = 41) -> Workload:
    """Build the Sobel workload with a deterministic test image.

    ``size`` is the image side length (a power of two >= 4, so the row
    addressing stays shift-based); the default reproduces the 8x8 instance
    of Table III.  ``seed`` varies the image contents.
    """
    if size < 4 or size & (size - 1):
        raise ValueError(f"sobel image size must be a power of two >= 4, got {size}")
    image = lcg_values(size * size, seed=seed, modulus=256)
    return Workload(
        name="sobel",
        rv_source=_source(image, size),
        result_base=0,
        expected_results=_reference(image, size),
        description=f"Sobel edge filter over an {size}x{size} image (multiplication-free)",
    )
