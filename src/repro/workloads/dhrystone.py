"""Dhrystone-like synthetic integer benchmark.

The original Dhrystone 2.1 cannot run on a 9-trit datapath (it needs 32-bit
integers, C strings and a libc), so — per the substitution rule documented
in DESIGN.md — this workload keeps Dhrystone's *statement mix* at a scale the
ART-9 core can execute: every iteration performs

* global variable updates (``Int_Glob`` / ``Bool_Glob`` stand-ins),
* a record assignment through a helper procedure (``proc_copy``),
* a call chain with stack save/restore and a nested call
  (``func_max`` calling ``func_inc``),
* array element updates with a data-dependent conditional (``proc_array``),
* and loop-carried index arithmetic with wrap-around.

The per-iteration cycle count of this kernel is what the performance
estimator converts into DMIPS/MHz and DMIPS/W for Tables II, IV and V.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.base import Workload, register_workload

#: Number of benchmark iterations executed by the default build.
DEFAULT_ITERATIONS = 50

#: Data-memory byte addresses of the benchmark's globals.
RESULT_BASE = 0
INT_GLOB_ADDR = 16
BOOL_GLOB_ADDR = 20
ARR1_ADDR = 24
REC_A_ADDR = 88
REC_B_ADDR = 104

#: Length of the global array.
ARR1_LENGTH = 16
#: Wrap-around limit of the array index walked by the benchmark.
INDEX_WRAP = 14


def _reference(iterations: int) -> Tuple[List[int], dict]:
    """Pure-Python model of the kernel; returns (results, final state)."""
    int_glob = 0
    bool_glob = 0
    arr1 = [0] * ARR1_LENGTH
    rec_a = [0] * 4
    rec_b = [0] * 4
    index = 0

    for i in range(1, iterations + 1):
        int_glob = 5
        bool_glob = 0
        rec_a = [i, i + 1, 40 + i, 7]
        rec_b = list(rec_a)
        incremented = i + 1                     # func_inc
        maximum = max(incremented, i + 3)       # func_max
        int_glob += maximum
        arr1[index] = int_glob + index          # proc_array
        arr1[index + 1] = arr1[index] + 2
        if arr1[index + 1] > 50:
            bool_glob = 1
        index = index + 1 if index + 1 < INDEX_WRAP else 0

    results = [int_glob, arr1[3], rec_b[2], bool_glob]
    state = {
        "int_glob": int_glob, "bool_glob": bool_glob,
        "arr1": arr1, "rec_a": rec_a, "rec_b": rec_b, "index": index,
    }
    return results, state


def _source(iterations: int) -> str:
    arr_zeros = ", ".join("0" for _ in range(ARR1_LENGTH))
    return f"""
# Dhrystone-like synthetic integer benchmark, {iterations} iterations.
.text
main:
    li   sp, 8000
    li   s0, 1               # iteration counter
    li   s1, 0               # walking array index
main_loop:
    # --- global updates (Proc_5 style) ---
    la   t0, int_glob
    li   t1, 5
    sw   t1, 0(t0)
    la   t0, bool_glob
    sw   zero, 0(t0)
    # --- record initialisation and assignment (Proc_1 style) ---
    la   t0, rec_a
    sw   s0, 0(t0)
    addi t1, s0, 1
    sw   t1, 4(t0)
    addi t1, s0, 40
    sw   t1, 8(t0)
    li   t1, 7
    sw   t1, 12(t0)
    la   a0, rec_b
    la   a1, rec_a
    jal  ra, proc_copy
    # --- call chain with nested call (Func_1/Func_2 style) ---
    mv   a0, s0
    addi a1, s0, 3
    jal  ra, func_max
    la   t0, int_glob
    lw   t1, 0(t0)
    add  t1, t1, a0
    sw   t1, 0(t0)
    # --- array update with conditional (Proc_8 style) ---
    mv   a0, s1
    jal  ra, proc_array
    # --- walking index with wrap-around ---
    addi s1, s1, 1
    li   t1, {INDEX_WRAP}
    blt  s1, t1, no_wrap
    li   s1, 0
no_wrap:
    addi s0, s0, 1
    li   t1, {iterations + 1}
    blt  s0, t1, main_loop

    # --- publish the results ---
    la   t0, int_glob
    lw   t1, 0(t0)
    la   t0, result
    sw   t1, 0(t0)
    la   t1, arr1
    lw   t1, 12(t1)
    sw   t1, 4(t0)
    la   t1, rec_b
    lw   t1, 8(t1)
    sw   t1, 8(t0)
    la   t1, bool_glob
    lw   t1, 0(t1)
    sw   t1, 12(t0)
    ecall

proc_copy:
    # copy the four-word record at a1 into a0
    lw   t0, 0(a1)
    sw   t0, 0(a0)
    lw   t0, 4(a1)
    sw   t0, 4(a0)
    lw   t0, 8(a1)
    sw   t0, 8(a0)
    lw   t0, 12(a1)
    sw   t0, 12(a0)
    ret

func_max:
    # a0 = max(func_inc(a0), a1)
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   a1, 4(sp)
    jal  ra, func_inc
    lw   a1, 4(sp)
    bge  a0, a1, func_max_done
    mv   a0, a1
func_max_done:
    lw   ra, 0(sp)
    addi sp, sp, 8
    ret

func_inc:
    addi a0, a0, 1
    ret

proc_array:
    # arr1[a0] = int_glob + a0; arr1[a0+1] = arr1[a0] + 2;
    # bool_glob = 1 when the new element exceeds 50
    la   t0, arr1
    slli t1, a0, 2
    add  t0, t0, t1
    la   t2, int_glob
    lw   t2, 0(t2)
    add  t2, t2, a0
    sw   t2, 0(t0)
    addi t2, t2, 2
    sw   t2, 4(t0)
    li   t1, 50
    ble  t2, t1, proc_array_done
    la   t1, bool_glob
    li   t2, 1
    sw   t2, 0(t1)
proc_array_done:
    ret

.data
result:    .word 0, 0, 0, 0
int_glob:  .word 0
bool_glob: .word 0
arr1:      .word {arr_zeros}
rec_a:     .word 0, 0, 0, 0
rec_b:     .word 0, 0, 0, 0
"""


@register_workload("dhrystone")
def build_dhrystone(iterations: int = DEFAULT_ITERATIONS) -> Workload:
    """Build the Dhrystone-like workload (``iterations`` main-loop passes)."""
    results, _ = _reference(iterations)
    return Workload(
        name="dhrystone",
        rv_source=_source(iterations),
        result_base=RESULT_BASE,
        expected_results=results,
        iterations=iterations,
        description=f"Dhrystone-like synthetic integer kernel, {iterations} iterations",
    )
