"""Benchmark workloads used throughout the evaluation (Sec. V-A).

Each workload provides

* the RV-32I assembly source (the input of the software-level framework,
  standing in for compiler output),
* a pure-Python reference model of the computation, and
* the location of the results in data memory, so both the RV-32 baseline
  runs and the translated ART-9 runs can be checked against the reference.

The four workloads mirror the paper: bubble sort, general matrix
multiplication (GEMM), a Sobel edge filter and a Dhrystone-like synthetic
integer benchmark (the original Dhrystone needs 32-bit data and a C string
library; the kernel here keeps its statement mix — record copies, function
calls, conditionals, array traffic — scaled to the 9-trit datapath).
"""

from repro.workloads.base import Workload, WorkloadResultMismatch, all_workloads, get_workload
from repro.workloads.bubble_sort import build_bubble_sort
from repro.workloads.gemm import build_gemm
from repro.workloads.sobel import build_sobel
from repro.workloads.dhrystone import build_dhrystone

__all__ = [
    "Workload",
    "WorkloadResultMismatch",
    "build_bubble_sort",
    "build_gemm",
    "build_sobel",
    "build_dhrystone",
    "all_workloads",
    "get_workload",
]
