"""Common infrastructure for the benchmark workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.riscv.assembler import assemble_riscv
from repro.riscv.program import RVProgram
from repro.riscv.simulator import RVSimulator


class WorkloadResultMismatch(AssertionError):
    """Raised when a simulated run does not reproduce the reference results."""


def lcg_values(count: int, seed: int = 7, modulus: int = 97) -> List[int]:
    """Deterministic pseudo-random values in ``[0, modulus)``.

    A tiny linear congruential generator keeps the workloads reproducible
    without importing :mod:`random` (the same sequence is embedded in the
    assembly data sections and in the Python reference models).
    """
    values = []
    state = seed
    for _ in range(count):
        state = (state * 48271 + 11) % 2147483647
        values.append(state % modulus)
    return values


@dataclass
class Workload:
    """One benchmark: its RV-32 source, reference results and metadata.

    Attributes
    ----------
    name:
        Short identifier used in tables ("bubble_sort", "dhrystone", ...).
    rv_source:
        RV-32I assembly text, the input of the software-level framework.
    result_base:
        Byte address of the first result word in data memory.
    expected_results:
        The values the result region must hold after a correct run.
    iterations:
        Number of benchmark iterations executed (used by the DMIPS
        calculation for the Dhrystone workload; 1 for the others).
    description:
        One-line description for reports.
    """

    name: str
    rv_source: str
    result_base: int
    expected_results: List[int]
    iterations: int = 1
    description: str = ""
    _rv_program: Optional[RVProgram] = field(default=None, repr=False)

    @property
    def result_count(self) -> int:
        """Number of result words."""
        return len(self.expected_results)

    def rv_program(self) -> RVProgram:
        """Assemble (and cache) the RV-32 program."""
        if self._rv_program is None:
            self._rv_program = assemble_riscv(self.rv_source, name=self.name)
        return self._rv_program

    # -- verification helpers -----------------------------------------------------

    def check_rv_results(self, simulator: RVSimulator) -> None:
        """Verify a finished RV-32 simulation against the reference results."""
        actual = simulator.memory_words(self.result_base, self.result_count)
        if actual != self.expected_results:
            raise WorkloadResultMismatch(
                f"{self.name}: RV-32 run produced {actual}, expected {self.expected_results}"
            )

    def check_ternary_results(self, simulator) -> None:
        """Verify a finished ART-9 simulation (functional or pipelined).

        The translated program keeps the RV byte addresses, so result word
        ``i`` lives at TDM address ``result_base + 4 * i``.
        """
        actual = [
            simulator.tdm.read_int(self.result_base + 4 * index)
            for index in range(self.result_count)
        ]
        if actual != self.expected_results:
            raise WorkloadResultMismatch(
                f"{self.name}: ART-9 run produced {actual}, expected {self.expected_results}"
            )

    def run_rv_reference(self) -> RVSimulator:
        """Run the RV-32 functional simulator and verify the results."""
        simulator = RVSimulator(self.rv_program())
        simulator.run()
        self.check_rv_results(simulator)
        return simulator


_BUILDERS: Dict[str, Callable[[], Workload]] = {}


def register_workload(name: str):
    """Decorator registering a workload builder under ``name``."""

    def decorator(builder: Callable[[], Workload]):
        _BUILDERS[name] = builder
        return builder

    return decorator


def get_workload(name: str, **params) -> Workload:
    """Build the workload registered under ``name``.

    Keyword ``params`` are forwarded to the workload builder, so callers can
    size a benchmark instance declaratively (e.g. ``get_workload("gemm",
    n=8)`` or ``get_workload("dhrystone", iterations=200)``).  Unknown
    parameters raise ``TypeError`` from the builder itself.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(_BUILDERS)}") from None
    return builder(**params)


def all_workloads() -> Dict[str, Workload]:
    """Build every registered workload (name → workload)."""
    return {name: builder() for name, builder in sorted(_BUILDERS.items())}
