"""The ternary register file name space.

The ART-9 core has nine general-purposed ternary registers (T0..T8), each
addressed by a 2-trit balanced value (Sec. IV-A).  The encoding used here
maps register index ``i`` (0..8) to the balanced field value ``i - 4``
(-4..+4), so all nine registers are reachable from the 2-trit field.

The hardware treats every register identically; the *software* framework
adopts an ABI convention (documented in :mod:`repro.xlate.regalloc`):

======  =========================================
T0      always-zero by convention (translator-maintained)
T1-T5   allocatable general registers
T6      assembler/translator scratch register
T7      stack pointer
T8      link register / secondary scratch
======  =========================================
"""

from __future__ import annotations

#: Number of general-purposed ternary registers in the TRF.
NUM_REGISTERS = 9

#: Canonical register names, index 0..8.
REGISTER_NAMES = tuple(f"T{i}" for i in range(NUM_REGISTERS))

#: ABI aliases accepted by the assembler.
REGISTER_ALIASES = {
    "ZERO": 0,
    "SCRATCH": 6,
    "SP": 7,
    "LINK": 8,
    "RA": 8,
}

#: Offset between the register index and its balanced 2-trit field value.
FIELD_BIAS = 4


def register_index(name: str) -> int:
    """Parse a register name (``T0``..``T8`` or an ABI alias) to its index."""
    key = name.strip().upper()
    if key in REGISTER_ALIASES:
        return REGISTER_ALIASES[key]
    if key.startswith("T") and key[1:].isdigit():
        index = int(key[1:])
        if 0 <= index < NUM_REGISTERS:
            return index
    raise ValueError(f"unknown ternary register: {name!r}")


def register_name(index: int) -> str:
    """Return the canonical name of register ``index``."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range 0..8: {index}")
    return REGISTER_NAMES[index]


def index_to_field(index: int) -> int:
    """Map a register index 0..8 to its balanced 2-trit field value -4..+4."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range 0..8: {index}")
    return index - FIELD_BIAS


def field_to_index(field_value: int) -> int:
    """Map a balanced 2-trit field value -4..+4 back to a register index."""
    index = field_value + FIELD_BIAS
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register field value out of range -4..+4: {field_value}")
    return index
