"""A two-pass assembler for the ART-9 assembly language.

Syntax
------

::

    # full-line comment
    .text                     ; switch to the instruction section (default)
    .data                     ; switch to the data section
    loop:                     ; label definition
        ADDI  T1, 5           ; instruction, operands comma separated
        COMP  T1, T2
        BEQ   T1, 0, done     ; branch target may be a label or an immediate
        JAL   T8, subroutine
        LOAD  T2, T7, -1
        HALT
    .data
    array:  .word 5, -3, 8    ; initialised words
    buffer: .zero 16          ; sixteen zero-initialised words

Pseudo-instructions
-------------------

``NOP``
    Expands to ``ADDI T0, 0`` (the paper's NOP convention, Sec. IV-B).
``LIW Ta, value``
    Load a full 9-trit constant; expands to a ``LUI``/``LI`` pair.
``BEQZ Tb, target`` / ``BNEZ Tb, target``
    Branch when the least significant trit of ``Tb`` is (not) zero.

Labels used as branch/JAL targets resolve to PC-relative immediates; labels
used in any other immediate position (``LIW``, ``LI``, ``LUI``, ``JALR``)
resolve to the absolute instruction or data address.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.isa.encoder import check_imm_fits
from repro.isa.instructions import Instruction, spec_for
from repro.isa.program import DataSegment, Program
from repro.isa.registers import register_index
from repro.ternary.conversion import trits_to_int
from repro.ternary.word import WORD_TRITS, TernaryWord

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_COMMENT_RE = re.compile(r"[#;].*$")


class AssemblerError(ValueError):
    """Raised for any syntax or range error, with file/line context."""

    def __init__(self, message: str, line_number: Optional[int] = None, line: str = ""):
        location = f"line {line_number}: " if line_number is not None else ""
        suffix = f"  [{line.strip()}]" if line else ""
        super().__init__(f"{location}{message}{suffix}")
        self.line_number = line_number


def split_constant(value: int) -> tuple:
    """Split a 9-trit constant into its (LUI, LI) immediates.

    Returns ``(high, low)`` where ``high`` is the balanced value of trits
    [8:5] and ``low`` the balanced value of trits [4:0]; executing
    ``LUI Ta, high`` followed by ``LI Ta, low`` reconstructs ``value``.
    """
    word = TernaryWord(value, WORD_TRITS)
    high = trits_to_int(word.trits[5:])
    low = trits_to_int(word.trits[:5])
    return high, low


def _parse_int(token: str, line_number: int, line: str) -> int:
    token = token.strip()
    try:
        if token.lower().startswith("0t"):
            # Balanced ternary literal, most significant trit first (e.g. 0t1T0).
            trits = [
                {"T": -1, "t": -1, "-": -1, "0": 0, "1": 1, "+": 1}[ch]
                for ch in reversed(token[2:])
            ]
            return trits_to_int(trits)
        return int(token, 0)
    except (ValueError, KeyError):
        raise AssemblerError(f"bad integer literal {token!r}", line_number, line) from None


class _Assembler:
    """Internal single-use assembler state."""

    def __init__(self, name: str):
        self.program = Program(name=name)
        self.section = ".text"
        self.data_values: List[int] = []
        self.pending_data_labels: List[str] = []

    # -- data section -----------------------------------------------------

    def _define_data_label(self, label: str) -> None:
        self.program.data_labels[label] = len(self.data_values)

    def _handle_data_directive(self, directive: str, rest: str, line_number: int, line: str) -> None:
        if directive == ".word":
            values = [
                _parse_int(tok, line_number, line)
                for tok in rest.split(",")
                if tok.strip()
            ]
            if not values:
                raise AssemblerError(".word needs at least one value", line_number, line)
            self.data_values.extend(values)
        elif directive == ".zero":
            count = _parse_int(rest, line_number, line)
            if count < 0:
                raise AssemblerError(".zero count must be non-negative", line_number, line)
            self.data_values.extend([0] * count)
        else:
            raise AssemblerError(f"unknown data directive {directive!r}", line_number, line)

    # -- text section -----------------------------------------------------

    def _operand_register(self, token: str, line_number: int, line: str) -> int:
        try:
            return register_index(token)
        except ValueError as exc:
            raise AssemblerError(str(exc), line_number, line) from None

    def _operand_imm_or_label(self, token: str, line_number: int, line: str):
        token = token.strip()
        if re.match(r"^-?(0[xXbBoOtT])?[\w]+$", token) and re.match(r"^-?\d|^-?0[xXbBoOtT]", token):
            return _parse_int(token, line_number, line), None
        return None, token

    def _emit(self, instruction: Instruction) -> None:
        self.program.append(instruction)

    def _handle_instruction(self, mnemonic: str, operand_text: str, line_number: int, line: str) -> None:
        operands = [tok.strip() for tok in operand_text.split(",") if tok.strip()] if operand_text else []
        mnemonic = mnemonic.upper()

        # Pseudo-instructions expand here, before label addresses are fixed.
        if mnemonic == "NOP":
            if operands:
                raise AssemblerError("NOP takes no operands", line_number, line)
            self._emit(Instruction.nop())
            return
        if mnemonic == "LIW":
            if len(operands) != 2:
                raise AssemblerError("LIW takes a register and a value", line_number, line)
            ta = self._operand_register(operands[0], line_number, line)
            imm, label = self._operand_imm_or_label(operands[1], line_number, line)
            if label is not None:
                # Absolute address of a label; resolved after the first pass.
                self._emit(Instruction("LUI", ta=ta, imm=None, label=f"%hi:{label}"))
                self._emit(Instruction("LI", ta=ta, imm=None, label=f"%lo:{label}"))
            else:
                high, low = split_constant(imm)
                self._emit(Instruction("LUI", ta=ta, imm=high))
                self._emit(Instruction("LI", ta=ta, imm=low))
            return
        if mnemonic in ("BEQZ", "BNEZ"):
            if len(operands) != 2:
                raise AssemblerError(f"{mnemonic} takes a register and a target", line_number, line)
            tb = self._operand_register(operands[0], line_number, line)
            imm, label = self._operand_imm_or_label(operands[1], line_number, line)
            real = "BEQ" if mnemonic == "BEQZ" else "BNE"
            self._emit(Instruction(real, tb=tb, branch_trit=0, imm=imm, label=label))
            return

        try:
            spec = spec_for(mnemonic)
        except ValueError as exc:
            raise AssemblerError(str(exc), line_number, line) from None

        if len(operands) != len(spec.operands):
            raise AssemblerError(
                f"{mnemonic} expects {len(spec.operands)} operands, got {len(operands)}",
                line_number,
                line,
            )

        fields = {}
        for kind, token in zip(spec.operands, operands):
            if kind in ("ta", "tb"):
                fields[kind] = self._operand_register(token, line_number, line)
            elif kind == "branch_trit":
                value = _parse_int(token, line_number, line)
                if value not in (-1, 0, 1):
                    raise AssemblerError("branch trit must be -1, 0 or 1", line_number, line)
                fields[kind] = value
            elif kind == "imm":
                imm, label = self._operand_imm_or_label(token, line_number, line)
                if label is not None:
                    fields["label"] = label
                else:
                    if not check_imm_fits(mnemonic, imm):
                        raise AssemblerError(
                            f"immediate {imm} out of range for {mnemonic}", line_number, line
                        )
                    fields[kind] = imm
        self._emit(Instruction(mnemonic, **fields))

    # -- driver -------------------------------------------------------------

    def run(self, text: str) -> Program:
        for line_number, raw_line in enumerate(text.splitlines(), start=1):
            line = _COMMENT_RE.sub("", raw_line).strip()
            if not line:
                continue

            match = _LABEL_RE.match(line)
            while match:
                label, line = match.group(1), match.group(2).strip()
                if self.section == ".text":
                    self.program.add_label(label)
                else:
                    self._define_data_label(label)
                match = _LABEL_RE.match(line) if line else None
            if not line:
                continue

            if line.startswith("."):
                parts = line.split(None, 1)
                directive = parts[0].lower()
                rest = parts[1] if len(parts) > 1 else ""
                if directive in (".text", ".data"):
                    self.section = directive
                elif self.section == ".data":
                    self._handle_data_directive(directive, rest, line_number, raw_line)
                else:
                    raise AssemblerError(
                        f"directive {directive!r} is only valid in .data", line_number, raw_line
                    )
                continue

            if self.section == ".data":
                raise AssemblerError(
                    "instructions are not allowed in the .data section", line_number, raw_line
                )

            parts = line.split(None, 1)
            mnemonic = parts[0]
            operand_text = parts[1] if len(parts) > 1 else ""
            self._handle_instruction(mnemonic, operand_text, line_number, raw_line)

        if self.data_values:
            self.program.data.append(DataSegment(base_address=0, values=list(self.data_values)))
        self._resolve()
        return self.program

    def _resolve(self) -> None:
        """Resolve labels, including the %hi/%lo references of LIW."""
        program = self.program
        for address, instruction in enumerate(program.instructions):
            label = instruction.label
            if label is None:
                continue
            if label.startswith("%hi:") or label.startswith("%lo:"):
                kind, _, target_name = label.partition(":")
                if target_name in program.labels:
                    target = program.labels[target_name]
                elif target_name in program.data_labels:
                    target = program.data_labels[target_name]
                else:
                    raise AssemblerError(f"undefined label {target_name!r}")
                high, low = split_constant(target)
                instruction.imm = high if kind == "%hi" else low
                instruction.label = None
        try:
            program.resolve_labels()
        except ValueError as exc:
            raise AssemblerError(str(exc)) from None
        for address, instruction in enumerate(program.instructions):
            if instruction.imm is not None and not check_imm_fits(instruction.mnemonic, instruction.imm):
                raise AssemblerError(
                    f"resolved immediate {instruction.imm} of {instruction.mnemonic} at address "
                    f"{address} does not fit its field (branch target too far?)"
                )


def assemble(text: str, name: str = "program") -> Program:
    """Assemble ART-9 assembly ``text`` into a :class:`Program`."""
    return _Assembler(name).run(text)


def assemble_file(path: str, name: Optional[str] = None) -> Program:
    """Assemble the file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return assemble(text, name=name or path)
