"""The Program container: instructions + data segment + symbols.

A :class:`Program` is what the assembler and the translation framework
produce and what the simulators and the memory-footprint analyses consume.
Instruction memory (TIM) addresses are word addresses: instruction ``i``
lives at TIM address ``i``.  The data segment describes the initial contents
of the ternary data memory (TDM).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

from repro.isa.encoder import encode_instruction
from repro.isa.instructions import Instruction
from repro.ternary.word import WORD_TRITS, TernaryWord


@dataclass
class DataSegment:
    """Initial TDM contents: a list of words placed at a base address."""

    base_address: int = 0
    values: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    def words(self) -> List[TernaryWord]:
        """The segment contents as ternary words."""
        return [TernaryWord(v, WORD_TRITS) for v in self.values]


@dataclass
class Program:
    """An assembled (or translated) ART-9 program.

    Attributes
    ----------
    instructions:
        The instruction sequence; index equals TIM word address.
    labels:
        Symbol table mapping label name to instruction address.
    data:
        Initial data-memory segments.
    data_labels:
        Symbol table for data labels (name → TDM word address).
    name:
        Human-readable program name, used in reports and benchmark tables.
    """

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    data: List[DataSegment] = field(default_factory=list)
    data_labels: Dict[str, int] = field(default_factory=dict)
    name: str = "program"

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    # -- building --------------------------------------------------------------

    def append(self, instruction: Instruction) -> None:
        """Append one instruction at the next TIM address."""
        self.instructions.append(instruction)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        """Append several instructions."""
        self.instructions.extend(instructions)

    def add_label(self, name: str, address: Optional[int] = None) -> None:
        """Define ``name`` at ``address`` (default: the next instruction)."""
        if address is None:
            address = len(self.instructions)
        if name in self.labels and self.labels[name] != address:
            raise ValueError(f"label {name!r} redefined")
        self.labels[name] = address

    # -- encoding / footprint --------------------------------------------------

    def encode(self) -> List[TernaryWord]:
        """Encode every instruction into its 9-trit word."""
        return [encode_instruction(instruction) for instruction in self.instructions]

    def instruction_memory_trits(self) -> int:
        """Memory cells (trits) needed to store the program's instructions.

        This is the quantity plotted in Fig. 5 of the paper: the number of
        ternary memory cells holding the benchmark's code.
        """
        return len(self.instructions) * WORD_TRITS

    def data_memory_trits(self) -> int:
        """Memory cells (trits) needed for the statically initialised data."""
        return sum(len(segment) for segment in self.data) * WORD_TRITS

    def total_memory_trits(self) -> int:
        """Total ternary memory cells for code plus initialised data."""
        return self.instruction_memory_trits() + self.data_memory_trits()

    # -- label resolution --------------------------------------------------------

    def resolve_labels(self) -> None:
        """Resolve symbolic branch/jump targets into concrete immediates.

        Branch and JAL targets are PC-relative (``target - branch_address``);
        JALR and LI/LUI label references resolve to absolute addresses.
        Instructions whose immediate is already numeric are left untouched.
        """
        for address, instruction in enumerate(self.instructions):
            if instruction.label is None:
                continue
            if instruction.label not in self.labels and instruction.label not in self.data_labels:
                raise ValueError(
                    f"undefined label {instruction.label!r} at address {address}"
                )
            if instruction.label in self.labels:
                target = self.labels[instruction.label]
            else:
                target = self.data_labels[instruction.label]
            spec = instruction.spec
            if spec.is_branch or instruction.mnemonic == "JAL":
                instruction.imm = target - address
            else:
                instruction.imm = target
        # labels stay attached for provenance; encode() uses imm only.

    def listing(self) -> str:
        """Render an address-annotated assembly listing."""
        address_to_labels: Dict[int, List[str]] = {}
        for name, address in self.labels.items():
            address_to_labels.setdefault(address, []).append(name)
        lines: List[str] = []
        for address, instruction in enumerate(self.instructions):
            for label in sorted(address_to_labels.get(address, [])):
                lines.append(f"{label}:")
            lines.append(f"  {address:4d}: {instruction.render()}")
        return "\n".join(lines)

    def copy(self) -> "Program":
        """Deep-enough copy for pass pipelines (instructions are copied)."""
        return Program(
            instructions=[instr.copy() for instr in self.instructions],
            labels=dict(self.labels),
            data=[DataSegment(seg.base_address, list(seg.values)) for seg in self.data],
            data_labels=dict(self.data_labels),
            name=self.name,
        )

    # -- serialisation / identity ----------------------------------------------

    def to_dict(self) -> dict:
        """Pure-data form of the program (JSON-safe, round-trips exactly).

        This is what the cross-process artifact cache stores: a translated
        program survives as data and is rebuilt with :meth:`from_dict` in
        another worker process without re-running the translator.
        """
        return {
            "name": self.name,
            "instructions": [
                [i.mnemonic, i.ta, i.tb, i.imm, i.branch_trit, i.label, i.source]
                for i in self.instructions
            ],
            "labels": dict(self.labels),
            "data": [
                {"base_address": segment.base_address,
                 "values": list(segment.values)}
                for segment in self.data
            ],
            "data_labels": dict(self.data_labels),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Program":
        """Rebuild a program from :meth:`to_dict` output."""
        return cls(
            instructions=[
                Instruction(mnemonic=row[0], ta=row[1], tb=row[2], imm=row[3],
                            branch_trit=row[4], label=row[5], source=row[6])
                for row in data.get("instructions", ())
            ],
            labels={str(k): int(v) for k, v in dict(data.get("labels", {})).items()},
            data=[
                DataSegment(base_address=int(seg["base_address"]),
                            values=[int(v) for v in seg["values"]])
                for seg in data.get("data", ())
            ],
            data_labels={str(k): int(v)
                         for k, v in dict(data.get("data_labels", {})).items()},
            name=str(data.get("name", "program")),
        )

    def content_digest(self) -> str:
        """SHA-256 over the canonical serialised form.

        Two programs with identical instructions, data and symbols digest
        identically regardless of how they were produced, which is what
        keys the compiled-engine codegen artifacts.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()
