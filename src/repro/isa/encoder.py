"""Encoding of :class:`~repro.isa.instructions.Instruction` to 9-trit words."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.formats import INSTRUCTION_TRITS, encoding_for, imm_range
from repro.isa.instructions import Instruction
from repro.isa.registers import index_to_field
from repro.ternary.conversion import int_to_trits
from repro.ternary.word import TernaryWord


class EncodeError(ValueError):
    """Raised when an instruction cannot be encoded (operand out of range)."""


def _place(trits: List[int], field: Optional[Tuple[int, int]], value: int, what: str) -> None:
    """Write ``value`` as balanced trits into ``trits[lo..hi]``."""
    if field is None:
        raise EncodeError(f"instruction has no {what} field")
    hi, lo = field
    width = hi - lo + 1
    half = (3 ** width - 1) // 2
    if not -half <= value <= half:
        raise EncodeError(f"{what} value {value} does not fit a {width}-trit field")
    for offset, trit in enumerate(int_to_trits(value, width)):
        trits[lo + offset] = trit


def encode_instruction(instruction: Instruction) -> TernaryWord:
    """Encode ``instruction`` into its 9-trit instruction word.

    Raises :class:`EncodeError` when a register index or immediate does not
    fit its field, or when a branch/jump still carries an unresolved label.
    """
    spec = instruction.spec
    entry = encoding_for(instruction.mnemonic)
    trits = [0] * INSTRUCTION_TRITS

    # Major opcode in trits [8:7].
    _place(trits, (8, 7), entry.major, "major opcode")
    if entry.sub is not None:
        _place(trits, entry.layout.sub, entry.sub, "sub opcode")
    if entry.funct is not None:
        _place(trits, entry.layout.funct, entry.funct, "funct")

    if "ta" in spec.operands:
        if instruction.ta is None:
            raise EncodeError(f"{instruction.mnemonic} requires a Ta operand")
        _place(trits, entry.layout.ta, index_to_field(instruction.ta), "Ta register")
    if "tb" in spec.operands:
        if instruction.tb is None:
            raise EncodeError(f"{instruction.mnemonic} requires a Tb operand")
        _place(trits, entry.layout.tb, index_to_field(instruction.tb), "Tb register")
    if "branch_trit" in spec.operands:
        if instruction.branch_trit is None:
            raise EncodeError(f"{instruction.mnemonic} requires a branch trit operand")
        if instruction.branch_trit not in (-1, 0, 1):
            raise EncodeError(
                f"branch trit must be -1, 0 or +1, got {instruction.branch_trit}"
            )
        _place(trits, entry.layout.branch_trit, instruction.branch_trit, "branch trit")
    if "imm" in spec.operands:
        if instruction.imm is None:
            if instruction.label is not None:
                raise EncodeError(
                    f"unresolved label {instruction.label!r} in {instruction.mnemonic}"
                )
            raise EncodeError(f"{instruction.mnemonic} requires an immediate operand")
        _place(trits, entry.layout.imm, instruction.imm, "immediate")

    return TernaryWord(trits, INSTRUCTION_TRITS)


def check_imm_fits(mnemonic: str, value: int) -> bool:
    """True when ``value`` fits the immediate field of ``mnemonic``."""
    lo, hi = imm_range(mnemonic)
    return lo <= value <= hi
