"""ART-9 instruction set architecture.

This package defines the 24 ternary instructions of Table I of the paper
(plus the HALT framework extension used to terminate simulation), their
trit-level encodings, an assembler/disassembler for a small textual assembly
language, and the :class:`~repro.isa.program.Program` container that the
simulators and the hardware-level evaluation framework consume.
"""

from repro.isa.registers import NUM_REGISTERS, REGISTER_NAMES, register_index, register_name
from repro.isa.instructions import (
    ALL_MNEMONICS,
    B_TYPE,
    I_TYPE,
    INSTRUCTION_SPECS,
    M_TYPE,
    R_TYPE,
    SYS_TYPE,
    Instruction,
    InstructionSpec,
    spec_for,
)
from repro.isa.encoder import encode_instruction
from repro.isa.decoder import DecodeError, decode_instruction
from repro.isa.program import DataSegment, Program
from repro.isa.assembler import AssemblerError, assemble, assemble_file
from repro.isa.disassembler import disassemble, disassemble_program

__all__ = [
    "NUM_REGISTERS",
    "REGISTER_NAMES",
    "register_index",
    "register_name",
    "Instruction",
    "InstructionSpec",
    "INSTRUCTION_SPECS",
    "ALL_MNEMONICS",
    "R_TYPE",
    "I_TYPE",
    "B_TYPE",
    "M_TYPE",
    "SYS_TYPE",
    "spec_for",
    "encode_instruction",
    "decode_instruction",
    "DecodeError",
    "Program",
    "DataSegment",
    "assemble",
    "assemble_file",
    "AssemblerError",
    "disassemble",
    "disassemble_program",
]
