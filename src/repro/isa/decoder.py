"""Decoding of 9-trit instruction words back into :class:`Instruction`.

The decoder mirrors the main decoder of the ID pipeline stage: it inspects
the major opcode in trits [8:7], then the sub/funct fields where applicable,
and extracts the operand fields.  It is used by the disassembler, by both
simulators (which execute decoded instructions) and by round-trip encoding
tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.isa.formats import ENCODING_TABLE, EncodingEntry
from repro.isa.instructions import Instruction, spec_for
from repro.isa.registers import field_to_index
from repro.ternary.word import TernaryWord


class DecodeError(ValueError):
    """Raised when a trit pattern does not correspond to a legal instruction."""


def _field_value(word: TernaryWord, field: Optional[Tuple[int, int]]) -> Optional[int]:
    if field is None:
        return None
    hi, lo = field
    return word.slice(hi, lo).value


def _build_decode_index() -> Dict[Tuple[int, Optional[int], Optional[int]], EncodingEntry]:
    """Index encoding entries by (major, sub, funct) for fast lookup."""
    index: Dict[Tuple[int, Optional[int], Optional[int]], EncodingEntry] = {}
    for entry in ENCODING_TABLE.values():
        key = (entry.major, entry.sub, entry.funct)
        if key in index:
            raise RuntimeError(f"ambiguous encoding: {key} used twice")
        index[key] = entry
    return index


_DECODE_INDEX = _build_decode_index()


def decode_instruction(word: TernaryWord) -> Instruction:
    """Decode a 9-trit instruction word into an :class:`Instruction`.

    Raises :class:`DecodeError` for patterns whose major/sub/funct fields do
    not name any defined instruction.
    """
    if word.width != 9:
        raise DecodeError(f"instruction words are 9 trits wide, got {word.width}")

    major = word.slice(8, 7).value

    # Probe the candidate entries for this major opcode.  Majors without
    # sub/funct fields resolve immediately; EXT0/EXT1 need the sub and
    # (usually) funct trits, whose positions depend on the sub-group, so the
    # lookup walks every entry of the major and checks its own fields.
    candidates = [e for e in ENCODING_TABLE.values() if e.major == major]
    if not candidates:
        raise DecodeError(f"unknown major opcode {major}")

    entry = None
    for candidate in candidates:
        if candidate.sub is not None:
            if _field_value(word, candidate.layout.sub) != candidate.sub:
                continue
        if candidate.funct is not None:
            if _field_value(word, candidate.layout.funct) != candidate.funct:
                continue
        entry = candidate
        break
    if entry is None:
        raise DecodeError(
            f"no instruction matches major={major}, word={word} "
            "(undefined sub/funct pattern)"
        )

    spec = spec_for(entry.mnemonic)
    ta = tb = imm = branch_trit = None
    if "ta" in spec.operands:
        field = _field_value(word, entry.layout.ta)
        try:
            ta = field_to_index(field)
        except ValueError as exc:
            raise DecodeError(str(exc)) from None
    if "tb" in spec.operands:
        field = _field_value(word, entry.layout.tb)
        try:
            tb = field_to_index(field)
        except ValueError as exc:
            raise DecodeError(str(exc)) from None
    if "imm" in spec.operands:
        imm = _field_value(word, entry.layout.imm)
    if "branch_trit" in spec.operands:
        branch_trit = _field_value(word, entry.layout.branch_trit)

    return Instruction(entry.mnemonic, ta=ta, tb=tb, imm=imm, branch_trit=branch_trit)
