"""ART-9 instruction definitions (Table I of the paper).

Every instruction is described by an :class:`InstructionSpec` that records
its category (R/I/B/M/SYS), the operand fields it uses, the width of its
immediate field (in trits) and a short description of its operation.  The
:class:`Instruction` dataclass is the in-memory representation used by the
assembler, the translation framework and both simulators; the trit-level
encoding lives in :mod:`repro.isa.formats`.

The 24 instructions of Table I are all present.  One extension, ``HALT``, is
added by the evaluation framework to terminate simulation runs; it is not
counted as part of the 24-instruction ISA when reproducing Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.isa.registers import register_name

# Instruction categories, matching the "Type" column of Table I.
R_TYPE = "R"
I_TYPE = "I"
B_TYPE = "B"
M_TYPE = "M"
SYS_TYPE = "SYS"


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one ART-9 instruction.

    Attributes
    ----------
    mnemonic:
        Upper-case assembly mnemonic (``ADD``, ``BEQ``, ...).
    category:
        One of ``R``, ``I``, ``B``, ``M`` or ``SYS``.
    operands:
        Tuple naming the operand fields in assembly order.  Entries are
        ``"ta"``, ``"tb"``, ``"imm"`` or ``"branch_trit"``.
    imm_trits:
        Width of the immediate field in trits (0 when there is none).
    reads_ta / reads_tb / writes_ta:
        Register-file dataflow, used by the hazard detection unit, the
        forwarding logic and the redundancy checker.
    is_branch / is_jump / is_load / is_store:
        Control/memory classification used by the pipeline model.
    description:
        The "Operation" column of Table I, for documentation and tracing.
    """

    mnemonic: str
    category: str
    operands: Tuple[str, ...]
    imm_trits: int = 0
    reads_ta: bool = False
    reads_tb: bool = False
    writes_ta: bool = False
    is_branch: bool = False
    is_jump: bool = False
    is_load: bool = False
    is_store: bool = False
    description: str = ""

    @property
    def uses_imm(self) -> bool:
        """True when the instruction carries an immediate field."""
        return self.imm_trits > 0

    @property
    def is_control(self) -> bool:
        """True for instructions that may redirect the program counter."""
        return self.is_branch or self.is_jump


def _spec(mnemonic, category, operands, **kwargs) -> InstructionSpec:
    return InstructionSpec(mnemonic=mnemonic, category=category, operands=tuple(operands), **kwargs)


#: The complete instruction registry, keyed by mnemonic.
INSTRUCTION_SPECS: Dict[str, InstructionSpec] = {}


def _register(spec: InstructionSpec) -> InstructionSpec:
    INSTRUCTION_SPECS[spec.mnemonic] = spec
    return spec


# --- R-type -----------------------------------------------------------------
_register(_spec("MV", R_TYPE, ("ta", "tb"), reads_tb=True, writes_ta=True,
                description="TRF[Ta] = TRF[Tb]"))
_register(_spec("PTI", R_TYPE, ("ta", "tb"), reads_tb=True, writes_ta=True,
                description="TRF[Ta] = PTI(TRF[Tb])"))
_register(_spec("NTI", R_TYPE, ("ta", "tb"), reads_tb=True, writes_ta=True,
                description="TRF[Ta] = NTI(TRF[Tb])"))
_register(_spec("STI", R_TYPE, ("ta", "tb"), reads_tb=True, writes_ta=True,
                description="TRF[Ta] = STI(TRF[Tb])"))
_register(_spec("AND", R_TYPE, ("ta", "tb"), reads_ta=True, reads_tb=True, writes_ta=True,
                description="TRF[Ta] = TRF[Ta] & TRF[Tb]"))
_register(_spec("OR", R_TYPE, ("ta", "tb"), reads_ta=True, reads_tb=True, writes_ta=True,
                description="TRF[Ta] = TRF[Ta] | TRF[Tb]"))
_register(_spec("XOR", R_TYPE, ("ta", "tb"), reads_ta=True, reads_tb=True, writes_ta=True,
                description="TRF[Ta] = TRF[Ta] ^ TRF[Tb]"))
_register(_spec("ADD", R_TYPE, ("ta", "tb"), reads_ta=True, reads_tb=True, writes_ta=True,
                description="TRF[Ta] = TRF[Ta] + TRF[Tb]"))
_register(_spec("SUB", R_TYPE, ("ta", "tb"), reads_ta=True, reads_tb=True, writes_ta=True,
                description="TRF[Ta] = TRF[Ta] - TRF[Tb]"))
_register(_spec("SR", R_TYPE, ("ta", "tb"), reads_ta=True, reads_tb=True, writes_ta=True,
                description="TRF[Ta] = TRF[Ta] >> TRF[Tb][1:0]"))
_register(_spec("SL", R_TYPE, ("ta", "tb"), reads_ta=True, reads_tb=True, writes_ta=True,
                description="TRF[Ta] = TRF[Ta] << TRF[Tb][1:0]"))
_register(_spec("COMP", R_TYPE, ("ta", "tb"), reads_ta=True, reads_tb=True, writes_ta=True,
                description="TRF[Ta] = compare(TRF[Ta], TRF[Tb])"))

# --- I-type -----------------------------------------------------------------
_register(_spec("ANDI", I_TYPE, ("ta", "imm"), imm_trits=3, reads_ta=True, writes_ta=True,
                description="TRF[Ta] = TRF[Ta] & imm[2:0]"))
_register(_spec("ADDI", I_TYPE, ("ta", "imm"), imm_trits=3, reads_ta=True, writes_ta=True,
                description="TRF[Ta] = TRF[Ta] + imm[2:0]"))
_register(_spec("SRI", I_TYPE, ("ta", "imm"), imm_trits=2, reads_ta=True, writes_ta=True,
                description="TRF[Ta] = TRF[Ta] >> imm[1:0]"))
_register(_spec("SLI", I_TYPE, ("ta", "imm"), imm_trits=2, reads_ta=True, writes_ta=True,
                description="TRF[Ta] = TRF[Ta] << imm[1:0]"))
_register(_spec("LUI", I_TYPE, ("ta", "imm"), imm_trits=4, writes_ta=True,
                description="TRF[Ta] = {imm[3:0], 00000}"))
_register(_spec("LI", I_TYPE, ("ta", "imm"), imm_trits=5, reads_ta=True, writes_ta=True,
                description="TRF[Ta] = {TRF[Ta][8:5], imm[4:0]}"))

# --- B-type -----------------------------------------------------------------
_register(_spec("BEQ", B_TYPE, ("tb", "branch_trit", "imm"), imm_trits=4, reads_tb=True,
                is_branch=True,
                description="PC = PC + imm[3:0] if TRF[Tb][0] == B"))
_register(_spec("BNE", B_TYPE, ("tb", "branch_trit", "imm"), imm_trits=4, reads_tb=True,
                is_branch=True,
                description="PC = PC + imm[3:0] if TRF[Tb][0] != B"))
_register(_spec("JAL", B_TYPE, ("ta", "imm"), imm_trits=5, writes_ta=True, is_jump=True,
                description="TRF[Ta] = PC + 1, PC = PC + imm[4:0]"))
_register(_spec("JALR", B_TYPE, ("ta", "tb", "imm"), imm_trits=3, reads_tb=True,
                writes_ta=True, is_jump=True,
                description="TRF[Ta] = PC + 1, PC = TRF[Tb] + imm[2:0]"))

# --- M-type -----------------------------------------------------------------
_register(_spec("LOAD", M_TYPE, ("ta", "tb", "imm"), imm_trits=3, reads_tb=True,
                writes_ta=True, is_load=True,
                description="TRF[Ta] = TDM[TRF[Tb] + imm[2:0]]"))
_register(_spec("STORE", M_TYPE, ("ta", "tb", "imm"), imm_trits=3, reads_ta=True,
                reads_tb=True, is_store=True,
                description="TDM[TRF[Tb] + imm[2:0]] = TRF[Ta]"))

# --- Framework extension ------------------------------------------------------
_register(_spec("HALT", SYS_TYPE, (),
                description="Stop simulation (framework extension, not part of the 24-instruction ISA)"))

#: Mnemonics of the 24 architecturally defined instructions (Table I).
ARCHITECTURAL_MNEMONICS = tuple(
    m for m, s in INSTRUCTION_SPECS.items() if s.category != SYS_TYPE
)

#: All mnemonics understood by the tool chain, including extensions.
ALL_MNEMONICS = tuple(INSTRUCTION_SPECS)


def spec_for(mnemonic: str) -> InstructionSpec:
    """Look up the :class:`InstructionSpec` for ``mnemonic`` (case-insensitive)."""
    try:
        return INSTRUCTION_SPECS[mnemonic.upper()]
    except KeyError:
        raise ValueError(f"unknown ART-9 instruction: {mnemonic!r}") from None


@dataclass
class Instruction:
    """One ART-9 instruction instance.

    ``ta`` and ``tb`` are register indices 0..8, ``imm`` is a signed balanced
    immediate that must fit the spec's ``imm_trits`` field, ``branch_trit``
    is the 1-trit comparison constant B of the BEQ/BNE instructions.

    ``label`` optionally names a symbolic branch/jump target; the assembler
    and the translation framework resolve labels to concrete immediates
    before encoding.  ``source`` carries provenance (e.g. the original
    RV-32I instruction) for traceability through the translation passes.
    """

    mnemonic: str
    ta: Optional[int] = None
    tb: Optional[int] = None
    imm: Optional[int] = None
    branch_trit: Optional[int] = None
    label: Optional[str] = None
    source: Optional[str] = None

    def __post_init__(self):
        self.mnemonic = self.mnemonic.upper()
        self.spec  # validates the mnemonic

    @property
    def spec(self) -> InstructionSpec:
        """The static spec of this instruction's mnemonic."""
        return spec_for(self.mnemonic)

    # -- dataflow helpers (used by HDU / forwarding / redundancy passes) ----

    def destination(self) -> Optional[int]:
        """Register index written by this instruction, or None."""
        return self.ta if self.spec.writes_ta else None

    def sources(self) -> Tuple[int, ...]:
        """Register indices read by this instruction."""
        spec = self.spec
        sources = []
        if spec.reads_ta and self.ta is not None:
            sources.append(self.ta)
        if spec.reads_tb and self.tb is not None:
            sources.append(self.tb)
        return tuple(sources)

    def is_nop(self) -> bool:
        """True for the canonical NOP encoding ``ADDI T0, 0`` (Sec. IV-B)."""
        return self.mnemonic == "ADDI" and self.ta == 0 and (self.imm or 0) == 0

    @classmethod
    def nop(cls) -> "Instruction":
        """The canonical NOP: an ADDI with a zero-valued immediate."""
        return cls("ADDI", ta=0, imm=0)

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        """Render back to assembly text."""
        spec = self.spec
        parts = []
        for operand in spec.operands:
            if operand == "ta":
                parts.append(register_name(self.ta))
            elif operand == "tb":
                parts.append(register_name(self.tb))
            elif operand == "branch_trit":
                parts.append(str(self.branch_trit))
            elif operand == "imm":
                if self.label is not None:
                    parts.append(self.label)
                else:
                    parts.append(str(self.imm))
        if parts:
            return f"{self.mnemonic} " + ", ".join(parts)
        return self.mnemonic

    def __str__(self) -> str:
        return self.render()

    def copy(self, **overrides) -> "Instruction":
        """Return a copy with selected fields replaced."""
        values = dict(
            mnemonic=self.mnemonic,
            ta=self.ta,
            tb=self.tb,
            imm=self.imm,
            branch_trit=self.branch_trit,
            label=self.label,
            source=self.source,
        )
        values.update(overrides)
        return Instruction(**values)
