"""Disassembly of encoded ART-9 instruction words back to assembly text."""

from __future__ import annotations

from typing import Iterable, List

from repro.isa.decoder import decode_instruction
from repro.isa.program import Program
from repro.ternary.word import TernaryWord


def disassemble(words: Iterable[TernaryWord]) -> List[str]:
    """Disassemble a sequence of 9-trit instruction words to text lines."""
    return [decode_instruction(word).render() for word in words]


def disassemble_program(program: Program, with_addresses: bool = True) -> str:
    """Round-trip a :class:`Program` through its encoding and render text.

    Useful for verifying that encode/decode preserve every instruction and
    for producing listings of translated programs.
    """
    lines = []
    for address, word in enumerate(program.encode()):
        text = decode_instruction(word).render()
        if with_addresses:
            lines.append(f"{address:4d}: {text}   ; {word}")
        else:
            lines.append(text)
    return "\n".join(lines)
