"""Trit-level encoding formats of the ART-9 ISA.

The paper fixes the instruction set (Table I) but not the trit-level
encoding; this module documents and implements the encoding used throughout
this repository.  Every instruction is 9 trits, numbered 8 (most
significant) down to 0.

Major opcode — trits [8:7] (balanced pair, value = 3*t8 + t7):

=========  =====  =============================================================
major      value  layout of trits [6:0]
=========  =====  =============================================================
LI          -4    Ta[6:5]  imm[4:0]
JAL         -3    Ta[6:5]  imm[4:0]
JALR        -2    Ta[6:5]  Tb[4:3]  imm[2:0]
BEQ         -1    Tb[6:5]  B[4]     imm[3:0]
BNE          0    Tb[6:5]  B[4]     imm[3:0]
LOAD        +1    Ta[6:5]  Tb[4:3]  imm[2:0]
STORE       +2    Ta[6:5]  Tb[4:3]  imm[2:0]
EXT0        +3    sub[6] selects LUI / R-group-A / R-group-B (below)
EXT1        +4    sub[6] selects SYS / IMM group / shift-IMM group (below)
=========  =====  =============================================================

EXT0 sub-groups (sub = trit [6]):

* ``sub = -1`` → LUI:  Ta[5:4]  imm[3:0]
* ``sub =  0`` → R-group-A: funct[5:4] ∈ {MV:-4, PTI:-3, NTI:-2, STI:-1,
  AND:0, OR:+1, XOR:+2, ADD:+3, SUB:+4}, Ta[3:2], Tb[1:0]
* ``sub = +1`` → R-group-B: funct[5:4] ∈ {SR:-1, SL:0, COMP:+1},
  Ta[3:2], Tb[1:0]

EXT1 sub-groups:

* ``sub = -1`` → SYS: funct[5] ∈ {HALT:0}; remaining trits are zero
* ``sub =  0`` → IMM group: funct[5] ∈ {ADDI:0, ANDI:+1}, Ta[4:3], imm[2:0]
* ``sub = +1`` → shift-IMM group: funct[5] ∈ {SRI:0, SLI:+1}, Ta[4:3],
  imm[2:0] (the architectural shift amount uses the low two trits)

Register fields hold the balanced value ``index - 4`` so all nine registers
T0..T8 are addressable from a 2-trit field.  Immediate fields hold signed
balanced values of the stated width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Instruction word width in trits.
INSTRUCTION_TRITS = 9

# Major opcode values (balanced value of trits [8:7]).
MAJOR_LI = -4
MAJOR_JAL = -3
MAJOR_JALR = -2
MAJOR_BEQ = -1
MAJOR_BNE = 0
MAJOR_LOAD = 1
MAJOR_STORE = 2
MAJOR_EXT0 = 3
MAJOR_EXT1 = 4

# EXT0 sub-opcode (trit [6]).
EXT0_SUB_LUI = -1
EXT0_SUB_RGROUP_A = 0
EXT0_SUB_RGROUP_B = 1

# EXT1 sub-opcode (trit [6]).
EXT1_SUB_SYS = -1
EXT1_SUB_IMM = 0
EXT1_SUB_SHIFT_IMM = 1

# funct values inside R-group-A (trits [5:4]).
RGROUP_A_FUNCT = {
    "MV": -4,
    "PTI": -3,
    "NTI": -2,
    "STI": -1,
    "AND": 0,
    "OR": 1,
    "XOR": 2,
    "ADD": 3,
    "SUB": 4,
}

# funct values inside R-group-B (trits [5:4]).
RGROUP_B_FUNCT = {
    "SR": -1,
    "SL": 0,
    "COMP": 1,
}

# funct values inside the EXT1 immediate group (trit [5]).
IMM_GROUP_FUNCT = {
    "ADDI": 0,
    "ANDI": 1,
}

# funct values inside the EXT1 shift-immediate group (trit [5]).
SHIFT_IMM_GROUP_FUNCT = {
    "SRI": 0,
    "SLI": 1,
}

# funct values inside the EXT1 system group (trit [5]).
SYS_GROUP_FUNCT = {
    "HALT": 0,
}


@dataclass(frozen=True)
class FieldLayout:
    """Positions of the operand fields of one encoding format.

    Each entry is an inclusive ``(hi, lo)`` trit range, or ``None`` when the
    instruction has no such field.
    """

    ta: Optional[Tuple[int, int]] = None
    tb: Optional[Tuple[int, int]] = None
    imm: Optional[Tuple[int, int]] = None
    branch_trit: Optional[Tuple[int, int]] = None
    funct: Optional[Tuple[int, int]] = None
    sub: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class EncodingEntry:
    """The complete encoding recipe for one mnemonic."""

    mnemonic: str
    major: int
    layout: FieldLayout
    sub: Optional[int] = None
    funct: Optional[int] = None


def _entry(mnemonic, major, layout, sub=None, funct=None) -> EncodingEntry:
    return EncodingEntry(mnemonic=mnemonic, major=major, layout=layout, sub=sub, funct=funct)


_LONG_IMM_LAYOUT = FieldLayout(ta=(6, 5), imm=(4, 0))
_REG_REG_IMM_LAYOUT = FieldLayout(ta=(6, 5), tb=(4, 3), imm=(2, 0))
_BRANCH_LAYOUT = FieldLayout(tb=(6, 5), branch_trit=(4, 4), imm=(3, 0))
_LUI_LAYOUT = FieldLayout(sub=(6, 6), ta=(5, 4), imm=(3, 0))
_RGROUP_LAYOUT = FieldLayout(sub=(6, 6), funct=(5, 4), ta=(3, 2), tb=(1, 0))
_EXT1_IMM_LAYOUT = FieldLayout(sub=(6, 6), funct=(5, 5), ta=(4, 3), imm=(2, 0))
_SYS_LAYOUT = FieldLayout(sub=(6, 6), funct=(5, 5))


def _build_encoding_table() -> Dict[str, EncodingEntry]:
    table: Dict[str, EncodingEntry] = {}

    def add(entry: EncodingEntry) -> None:
        table[entry.mnemonic] = entry

    add(_entry("LI", MAJOR_LI, _LONG_IMM_LAYOUT))
    add(_entry("JAL", MAJOR_JAL, _LONG_IMM_LAYOUT))
    add(_entry("JALR", MAJOR_JALR, _REG_REG_IMM_LAYOUT))
    add(_entry("BEQ", MAJOR_BEQ, _BRANCH_LAYOUT))
    add(_entry("BNE", MAJOR_BNE, _BRANCH_LAYOUT))
    add(_entry("LOAD", MAJOR_LOAD, _REG_REG_IMM_LAYOUT))
    add(_entry("STORE", MAJOR_STORE, _REG_REG_IMM_LAYOUT))
    add(_entry("LUI", MAJOR_EXT0, _LUI_LAYOUT, sub=EXT0_SUB_LUI))

    for mnemonic, funct in RGROUP_A_FUNCT.items():
        add(_entry(mnemonic, MAJOR_EXT0, _RGROUP_LAYOUT, sub=EXT0_SUB_RGROUP_A, funct=funct))
    for mnemonic, funct in RGROUP_B_FUNCT.items():
        add(_entry(mnemonic, MAJOR_EXT0, _RGROUP_LAYOUT, sub=EXT0_SUB_RGROUP_B, funct=funct))
    for mnemonic, funct in IMM_GROUP_FUNCT.items():
        add(_entry(mnemonic, MAJOR_EXT1, _EXT1_IMM_LAYOUT, sub=EXT1_SUB_IMM, funct=funct))
    for mnemonic, funct in SHIFT_IMM_GROUP_FUNCT.items():
        add(_entry(mnemonic, MAJOR_EXT1, _EXT1_IMM_LAYOUT, sub=EXT1_SUB_SHIFT_IMM, funct=funct))
    for mnemonic, funct in SYS_GROUP_FUNCT.items():
        add(_entry(mnemonic, MAJOR_EXT1, _SYS_LAYOUT, sub=EXT1_SUB_SYS, funct=funct))

    return table


#: Encoding recipes keyed by mnemonic.
ENCODING_TABLE: Dict[str, EncodingEntry] = _build_encoding_table()


def encoding_for(mnemonic: str) -> EncodingEntry:
    """Return the encoding recipe for ``mnemonic``."""
    try:
        return ENCODING_TABLE[mnemonic.upper()]
    except KeyError:
        raise ValueError(f"no encoding defined for mnemonic {mnemonic!r}") from None


def imm_field_width(mnemonic: str) -> int:
    """Width in trits of the immediate field of ``mnemonic`` (0 if none)."""
    layout = encoding_for(mnemonic).layout
    if layout.imm is None:
        return 0
    hi, lo = layout.imm
    return hi - lo + 1


def imm_range(mnemonic: str) -> Tuple[int, int]:
    """Inclusive (lo, hi) range of the immediate field of ``mnemonic``."""
    width = imm_field_width(mnemonic)
    if width == 0:
        return 0, 0
    half = (3 ** width - 1) // 2
    return -half, half
