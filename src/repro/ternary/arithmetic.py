"""Word-level balanced ternary arithmetic.

The functions here model what the ternary ALU (TALU) of the ART-9 core
computes: addition and subtraction through a ripple of ternary full adders,
negation through the conversion-based property of balanced ternary (STI of
every trit), multiplication by repeated shift-and-add, trit shifts (which
multiply/divide by powers of three) and three-way comparison.

They are written trit-by-trit rather than as integer arithmetic so that the
gate-level analyzer can count the exact number of full adders / gates that a
hardware implementation needs, and so unit tests can cross-check the digit
algorithms against plain integer arithmetic.
"""

from __future__ import annotations

from typing import Tuple

from repro.ternary.trit import trit_sti
from repro.ternary.word import TernaryWord


def full_adder(a: int, b: int, carry_in: int) -> Tuple[int, int]:
    """One balanced ternary full adder: returns ``(sum, carry_out)``.

    The three inputs are balanced trits; their arithmetic sum lies in
    [-3, +3] and is decomposed as ``sum + 3 * carry`` with ``sum`` in
    {-1, 0, +1} and ``carry`` in {-1, 0, +1}.
    """
    total = a + b + carry_in
    carry = 0
    if total > 1:
        carry = 1
    elif total < -1:
        carry = -1
    return total - 3 * carry, carry


def add_trits(a_trits, b_trits, carry_in: int = 0) -> Tuple[list, int]:
    """Ripple-add two equal-length trit sequences, returning (trits, carry)."""
    if len(a_trits) != len(b_trits):
        raise ValueError("operands must have the same width")
    result = []
    carry = carry_in
    for a, b in zip(a_trits, b_trits):
        s, carry = full_adder(a, b, carry)
        result.append(s)
    return result, carry


def add_words(a: TernaryWord, b: TernaryWord) -> TernaryWord:
    """Fixed-width addition; the carry out of the top trit is discarded."""
    trits, _ = add_trits(a.trits, b.trits)
    return TernaryWord(trits, a.width)


def negate_word(a: TernaryWord) -> TernaryWord:
    """Negation by per-trit standard inversion (the conversion property)."""
    return TernaryWord([trit_sti(t) for t in a.trits], a.width)


def sub_words(a: TernaryWord, b: TernaryWord) -> TernaryWord:
    """Fixed-width subtraction implemented as ``a + STI(b)``.

    Balanced ternary needs no "+1" correction term (unlike two's complement),
    which is exactly why the paper adopts the balanced system: the
    pre-designed adder plus one inverter stage realises subtraction.
    """
    return add_words(a, negate_word(b))


def mul_words(a: TernaryWord, b: TernaryWord) -> TernaryWord:
    """Fixed-width multiplication by shift-and-add over the trits of ``b``.

    ART-9 has no hardware multiplier (Table II: "Multiplier: X"); this
    routine exists for the functional reference model and for building the
    software multiply sequences emitted by the translation framework.
    """
    width = a.width
    accumulator = TernaryWord.zero(width)
    partial = a
    for trit in b.trits:
        if trit == 1:
            accumulator = add_words(accumulator, partial)
        elif trit == -1:
            accumulator = sub_words(accumulator, partial)
        partial = shift_left(partial, 1)
    return accumulator


def shift_left(a: TernaryWord, amount: int) -> TernaryWord:
    """Shift towards the most significant trit (multiply by ``3**amount``)."""
    if amount < 0:
        raise ValueError(f"shift amount must be non-negative, got {amount}")
    if amount >= a.width:
        return TernaryWord.zero(a.width)
    trits = [0] * amount + list(a.trits[: a.width - amount])
    return TernaryWord(trits, a.width)


def shift_right(a: TernaryWord, amount: int) -> TernaryWord:
    """Shift towards the least significant trit (divide by ``3**amount``).

    Dropping low trits of a balanced ternary number rounds the quotient to
    the *nearest* integer (ties impossible), a well-known advantage of the
    balanced representation over truncating binary shifts.
    """
    if amount < 0:
        raise ValueError(f"shift amount must be non-negative, got {amount}")
    if amount >= a.width:
        return TernaryWord.zero(a.width)
    trits = list(a.trits[amount:]) + [0] * amount
    return TernaryWord(trits, a.width)


def compare_words(a: TernaryWord, b: TernaryWord) -> int:
    """Three-way comparison: -1 if a < b, 0 if equal, +1 if a > b.

    This is the ``compare()`` function of the COMP instruction (Table I).
    The comparison is computed most-significant-trit first, the way a
    hardware ternary comparator cascades.
    """
    for index in range(a.width - 1, -1, -1):
        ta = a.trit(index)
        tb = b.trit(index)
        if ta != tb:
            return 1 if ta > tb else -1
    return 0


def divmod_by_power_of_three(a: TernaryWord, power: int) -> Tuple[TernaryWord, TernaryWord]:
    """Return ``(a >> power, low trits)`` — quotient and dropped remainder part.

    The remainder word contains the ``power`` dropped trits (zero-extended),
    so ``quotient * 3**power + remainder_as_balanced == a`` holds in the
    nearest-rounding sense of balanced ternary shifts.
    """
    if power < 0:
        raise ValueError(f"power must be non-negative, got {power}")
    quotient = shift_right(a, power)
    if power == 0:
        remainder = TernaryWord.zero(a.width)
    else:
        low = list(a.trits[: min(power, a.width)])
        remainder = TernaryWord.from_trits(low, a.width)
    return quotient, remainder


def shift_amount_from_word(word: TernaryWord, field_width: int = 2) -> int:
    """Decode a shift amount from the low ``field_width`` trits of ``word``.

    The SR/SL instructions take their shift count from ``TRF[Tb][1:0]``
    (Table I).  The 2-trit field is interpreted modulo 9 so the full range of
    useful shift distances 0..8 on a 9-trit word is reachable; negative
    balanced field values simply wrap (e.g. the field value -4 encodes a
    shift by 5).
    """
    field = word.slice(field_width - 1, 0)
    return field.value % (3 ** field_width)
