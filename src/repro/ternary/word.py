"""Fixed-width balanced ternary words.

``TernaryWord`` is the value type flowing through every datapath model in
this repository: register file entries, memory words, pipeline latches and
ALU operands are all 9-trit ``TernaryWord`` instances.  The class is
immutable and hashable so words can be stored in sets/dicts (the redundancy
checker of the software framework relies on this).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

from repro.ternary.conversion import (
    balanced_range,
    int_to_trits,
    to_balanced_range,
    trits_to_int,
)
from repro.ternary.trit import Trit

#: Native word width of the ART-9 datapath.
WORD_TRITS = 9


class TernaryWord:
    """An immutable balanced ternary word of fixed width.

    Parameters
    ----------
    value:
        Either a Python integer (wrapped into the representable range) or a
        little-endian sequence of balanced trits of exactly ``width``
        elements.
    width:
        Word width in trits; defaults to the ART-9 datapath width of 9.
    """

    __slots__ = ("_trits", "_width")

    def __init__(self, value: Union[int, Sequence[int]] = 0, width: int = WORD_TRITS):
        if width < 1:
            raise ValueError(f"word width must be positive, got {width}")
        self._width = width
        if isinstance(value, int):
            self._trits = tuple(int_to_trits(value, width))
        else:
            trits = tuple(value)
            if len(trits) != width:
                raise ValueError(
                    f"expected {width} trits, got {len(trits)}: {trits!r}"
                )
            self._trits = Trit.validate_all(trits)

    # -- constructors -----------------------------------------------------

    @classmethod
    def zero(cls, width: int = WORD_TRITS) -> "TernaryWord":
        """The all-zero word."""
        return cls(0, width)

    @classmethod
    def from_trits(cls, trits: Sequence[int], width: int = WORD_TRITS) -> "TernaryWord":
        """Build a word from a little-endian trit sequence, zero-padding it."""
        trits = list(trits)
        if len(trits) > width:
            raise ValueError(f"{len(trits)} trits do not fit in a {width}-trit word")
        trits = trits + [0] * (width - len(trits))
        return cls(trits, width)

    @classmethod
    def from_string(cls, text: str, width: int = WORD_TRITS) -> "TernaryWord":
        """Parse a most-significant-first trit string such as ``"10T00101T"``."""
        trits = [Trit.from_symbol(ch) for ch in reversed(text.strip())]
        return cls.from_trits(trits, width)

    # -- accessors ---------------------------------------------------------

    @property
    def width(self) -> int:
        """Word width in trits."""
        return self._width

    @property
    def trits(self) -> tuple:
        """The trits as a little-endian tuple (index 0 = least significant)."""
        return self._trits

    @property
    def value(self) -> int:
        """The signed integer value of the word."""
        return trits_to_int(self._trits)

    @property
    def unsigned(self) -> int:
        """The word reinterpreted as a non-negative memory address."""
        return self.value % (3 ** self._width)

    @property
    def lst(self) -> int:
        """The least significant trit (``X[0]`` in the paper's notation)."""
        return self._trits[0]

    def trit(self, index: int) -> int:
        """Return trit ``index`` (0 = least significant)."""
        return self._trits[index]

    def slice(self, hi: int, lo: int) -> "TernaryWord":
        """Return trits ``[hi:lo]`` inclusive as a new word of that width.

        Mirrors the paper's field notation, e.g. ``imm[4:0]`` is
        ``word.slice(4, 0)``.
        """
        if not 0 <= lo <= hi < self._width:
            raise ValueError(f"bad slice [{hi}:{lo}] of a {self._width}-trit word")
        return TernaryWord(self._trits[lo : hi + 1], hi - lo + 1)

    def replace_low(self, low: "TernaryWord") -> "TernaryWord":
        """Return a copy whose lowest ``low.width`` trits come from ``low``.

        This is the datapath operation behind the LI instruction:
        ``{TRF[Ta][8:5], imm[4:0]}``.
        """
        if low.width > self._width:
            raise ValueError("replacement is wider than the word")
        trits = low.trits + self._trits[low.width :]
        return TernaryWord(trits, self._width)

    def resize(self, width: int) -> "TernaryWord":
        """Return the same value re-wrapped into a ``width``-trit word."""
        return TernaryWord(to_balanced_range(self.value, width), width)

    # -- dunder protocol ---------------------------------------------------

    def __int__(self) -> int:
        return self.value

    def __iter__(self) -> Iterator[int]:
        return iter(self._trits)

    def __len__(self) -> int:
        return self._width

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TernaryWord):
            return self._trits == other._trits
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._trits, self._width))

    def __repr__(self) -> str:
        return f"TernaryWord({self.value}, width={self._width})"

    def __str__(self) -> str:
        return "".join(Trit.to_symbol(t) for t in reversed(self._trits))

    # -- range helpers -----------------------------------------------------

    @classmethod
    def value_range(cls, width: int = WORD_TRITS) -> tuple:
        """Inclusive (lo, hi) value range of a ``width``-trit word."""
        return balanced_range(width)
