"""Single balanced trit values and the logic operations of Fig. 1.

A balanced trit takes one of the three values -1, 0 or +1.  Following the
paper we adopt the balanced representation (rather than the unbalanced
{0, 1, 2} set) because negation becomes a per-trit inversion and signed
arithmetic needs no separate sign handling.

The two-input logic operations AND, OR and XOR, and the three one-input
inverters STI (standard ternary inverter), NTI (negative ternary inverter)
and PTI (positive ternary inverter) implement exactly the truth tables shown
in Fig. 1 of the paper:

* ``AND`` is the minimum of the two trits.
* ``OR`` is the maximum of the two trits.
* ``XOR`` is the *negated product*-style exclusive function used by balanced
  ternary logic families: the sum of the two trits saturated to the balanced
  set when both inputs are non-zero with equal sign, i.e.
  ``xor(a, b) = clamp(a + b)`` when ``a*b <= 0`` and ``-sign(a)`` otherwise.
  Concretely this is the antisymmetric table
  ``xor(+,+) = -, xor(+,0) = +, xor(+,-) = 0`` (and symmetric cases), which
  equals addition modulo 3 mapped back onto the balanced set.  This is the
  standard balanced ternary "sum without carry" gate.
* ``STI(x) = -x``; ``NTI`` maps +1 to -1 and everything else to +1's
  complement extreme (-1 -> +1, 0 -> -1, +1 -> -1)... see the table below;
  ``PTI`` is the positive counterpart.

The NTI/PTI tables used here are the conventional ones from the ternary
logic literature (and from Fig. 1):

====== ===== ===== =====
input    -1     0    +1
====== ===== ===== =====
STI      +1     0    -1
NTI      +1    -1    -1
PTI      +1    +1    -1
====== ===== ===== =====
"""

from __future__ import annotations

from typing import Iterable

# Canonical trit values.  Plain integers are used (rather than an enum) so
# that arithmetic on trits stays cheap inside the simulators.
NEG = -1
ZERO = 0
POS = 1

VALID_TRITS = (NEG, ZERO, POS)


class Trit:
    """Namespace of trit constants and validation helpers.

    ``Trit`` is intentionally *not* instantiated; trits are plain ints in
    {-1, 0, +1} throughout the code base, which keeps the inner loops of the
    cycle-accurate simulator fast.  This class groups the validation and
    pretty-printing helpers.
    """

    NEG = NEG
    ZERO = ZERO
    POS = POS

    #: Symbols used when printing trit sequences: 'T' is the conventional
    #: glyph for -1 in balanced ternary literature.
    SYMBOLS = {NEG: "T", ZERO: "0", POS: "1"}
    FROM_SYMBOL = {"T": NEG, "-": NEG, "t": NEG, "0": ZERO, "1": POS, "+": POS}

    @staticmethod
    def validate(value: int) -> int:
        """Return ``value`` if it is a legal balanced trit, else raise."""
        if value not in VALID_TRITS:
            raise ValueError(f"not a balanced trit: {value!r}")
        return value

    @staticmethod
    def validate_all(values: Iterable[int]) -> tuple:
        """Validate every element of ``values`` and return them as a tuple."""
        return tuple(Trit.validate(v) for v in values)

    @staticmethod
    def to_symbol(value: int) -> str:
        """Render a single trit as one of ``T``, ``0``, ``1``."""
        return Trit.SYMBOLS[Trit.validate(value)]

    @staticmethod
    def from_symbol(symbol: str) -> int:
        """Parse one of ``T/t/-``, ``0``, ``1/+`` back into a trit."""
        try:
            return Trit.FROM_SYMBOL[symbol]
        except KeyError:
            raise ValueError(f"not a trit symbol: {symbol!r}") from None


def trit_and(a: int, b: int) -> int:
    """Ternary AND: the minimum of the two trits (Fig. 1)."""
    return a if a < b else b


def trit_or(a: int, b: int) -> int:
    """Ternary OR: the maximum of the two trits (Fig. 1)."""
    return a if a > b else b


def trit_xor(a: int, b: int) -> int:
    """Ternary XOR: the carry-free balanced sum of the two trits.

    This is addition modulo 3 remapped onto {-1, 0, +1}; it is the function a
    ternary half adder produces on its sum output and the conventional
    "exclusive" gate of balanced ternary logic families.
    """
    s = a + b
    if s == 2:
        return NEG
    if s == -2:
        return POS
    return s


def trit_sti(a: int) -> int:
    """Standard ternary inverter: simple negation."""
    return -a


def trit_nti(a: int) -> int:
    """Negative ternary inverter: -1 -> +1, 0 -> -1, +1 -> -1."""
    return POS if a == NEG else NEG


def trit_pti(a: int) -> int:
    """Positive ternary inverter: -1 -> +1, 0 -> +1, +1 -> -1."""
    return NEG if a == POS else POS


#: Mapping from mnemonic inverter names to their implementations, used by the
#: TALU and by the gate-level analyzer when enumerating logic resources.
INVERTERS = {
    "STI": trit_sti,
    "NTI": trit_nti,
    "PTI": trit_pti,
}

#: Two-input trit gates by mnemonic name.
DYADIC_GATES = {
    "AND": trit_and,
    "OR": trit_or,
    "XOR": trit_xor,
}
