"""Trit-wise word logic operations (AND, OR, XOR, STI, NTI, PTI).

These are the word-level counterparts of the single-trit gates in
:mod:`repro.ternary.trit`; each applies the gate independently to every trit
of the operand word(s), exactly as a row of ternary gates would in the TALU.
"""

from __future__ import annotations

from repro.ternary.trit import (
    trit_and,
    trit_nti,
    trit_or,
    trit_pti,
    trit_sti,
    trit_xor,
)
from repro.ternary.word import TernaryWord


def _dyadic(a: TernaryWord, b: TernaryWord, gate) -> TernaryWord:
    if a.width != b.width:
        raise ValueError("operands must have the same width")
    return TernaryWord([gate(x, y) for x, y in zip(a.trits, b.trits)], a.width)


def word_and(a: TernaryWord, b: TernaryWord) -> TernaryWord:
    """Trit-wise ternary AND (minimum)."""
    return _dyadic(a, b, trit_and)


def word_or(a: TernaryWord, b: TernaryWord) -> TernaryWord:
    """Trit-wise ternary OR (maximum)."""
    return _dyadic(a, b, trit_or)


def word_xor(a: TernaryWord, b: TernaryWord) -> TernaryWord:
    """Trit-wise ternary XOR (carry-free balanced sum)."""
    return _dyadic(a, b, trit_xor)


def word_sti(a: TernaryWord) -> TernaryWord:
    """Trit-wise standard ternary inversion (negation of every trit)."""
    return TernaryWord([trit_sti(t) for t in a.trits], a.width)


def word_nti(a: TernaryWord) -> TernaryWord:
    """Trit-wise negative ternary inversion."""
    return TernaryWord([trit_nti(t) for t in a.trits], a.width)


def word_pti(a: TernaryWord) -> TernaryWord:
    """Trit-wise positive ternary inversion."""
    return TernaryWord([trit_pti(t) for t in a.trits], a.width)
