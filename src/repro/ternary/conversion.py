"""Conversions between Python integers and balanced trit sequences.

Balanced ternary represents an integer as ``sum(t_k * 3**k)`` with each digit
``t_k`` in {-1, 0, +1}.  A width-``n`` word therefore covers the symmetric
range ``[-(3**n - 1) / 2, +(3**n - 1) / 2]``; for the 9-trit ART-9 datapath
that is -9841 .. +9841.

Values outside the representable range wrap around modulo ``3**n`` back into
the balanced window, which mirrors what a fixed-width ternary adder does when
its carry out of the most significant trit is dropped.
"""

from __future__ import annotations

from typing import List, Sequence


def balanced_range(width: int) -> tuple:
    """Return ``(lo, hi)``, the inclusive value range of a width-trit word."""
    if width < 1:
        raise ValueError(f"word width must be positive, got {width}")
    half = (3 ** width - 1) // 2
    return -half, half


def to_balanced_range(value: int, width: int) -> int:
    """Wrap ``value`` into the balanced range of a ``width``-trit word.

    The wrap is modulo ``3**width`` followed by a shift into the symmetric
    window, exactly the behaviour of discarding the carry out of the most
    significant trit of a fixed-width balanced adder.
    """
    modulus = 3 ** width
    half = (modulus - 1) // 2
    wrapped = value % modulus
    if wrapped > half:
        wrapped -= modulus
    return wrapped


def int_to_trits(value: int, width: int) -> List[int]:
    """Convert ``value`` to a little-endian list of ``width`` balanced trits.

    ``value`` is first wrapped into the representable range (see
    :func:`to_balanced_range`).  Index 0 of the returned list is the least
    significant trit, matching the ``X[k]`` notation of the paper where
    ``X[0]`` is the least significant trit (LST).
    """
    value = to_balanced_range(value, width)
    trits: List[int] = []
    remaining = value
    for _ in range(width):
        digit = remaining % 3
        if digit == 2:
            digit = -1
        remaining = (remaining - digit) // 3
        trits.append(digit)
    return trits


def trits_to_int(trits: Sequence[int]) -> int:
    """Convert a little-endian balanced trit sequence to a Python integer."""
    value = 0
    for k in range(len(trits) - 1, -1, -1):
        trit = trits[k]
        if trit not in (-1, 0, 1):
            raise ValueError(f"not a balanced trit at index {k}: {trit!r}")
        value = value * 3 + trit
    return value


def min_trits_for(value: int) -> int:
    """Return the minimum number of balanced trits able to represent ``value``.

    Useful for the operand-conversion pass of the software framework, which
    must decide whether an immediate fits a 3-, 4- or 5-trit field or has to
    be materialised through a LUI/LI pair.
    """
    width = 1
    while True:
        lo, hi = balanced_range(width)
        if lo <= value <= hi:
            return width
        width += 1


def unsigned_value(trits: Sequence[int]) -> int:
    """Interpret a balanced trit sequence as a non-negative address.

    Registers hold balanced values, but ternary instruction/data memories are
    indexed with non-negative addresses (Sec. II-A of the paper).  The
    mapping used throughout this code base is value modulo ``3**n``, the
    ternary analogue of reinterpreting a two's-complement word as unsigned.
    """
    return trits_to_int(trits) % (3 ** len(trits))
