"""Balanced ternary number system substrate.

This package implements the arithmetic and logic substrate of the ART-9
processor: individual balanced trits, fixed-width trit words, the logic
operations of Fig. 1 of the paper (AND, OR, XOR, STI, NTI, PTI), ternary
addition/subtraction/multiplication, trit shifts, comparison, and the
binary-encoded ternary representation used by the FPGA emulation platform.

The public entry points are:

``Trit``
    The three balanced trit values (-1, 0, +1) with single-trit logic.
``TernaryWord``
    An immutable fixed-width balanced ternary word (9 trits for ART-9).
``int_to_trits`` / ``trits_to_int``
    Conversions between Python integers and balanced trit sequences.
``add_words`` / ``sub_words`` / ``mul_words`` / ``negate_word``
    Word-level arithmetic with carry propagation, as a ternary ALU would
    compute them.
``BinaryEncodedTrit`` / ``encode_word`` / ``decode_word``
    The 2-bit-per-trit binary encoding used for FPGA-level emulation
    (ref. [27] of the paper).
"""

from repro.ternary.trit import (
    NEG,
    POS,
    ZERO,
    Trit,
    trit_and,
    trit_nti,
    trit_or,
    trit_pti,
    trit_sti,
    trit_xor,
)
from repro.ternary.conversion import (
    int_to_trits,
    min_trits_for,
    trits_to_int,
    to_balanced_range,
)
from repro.ternary.word import TernaryWord, WORD_TRITS
from repro.ternary.arithmetic import (
    add_trits,
    add_words,
    compare_words,
    divmod_by_power_of_three,
    full_adder,
    mul_words,
    negate_word,
    shift_left,
    shift_right,
    sub_words,
)
from repro.ternary.logic import (
    word_and,
    word_nti,
    word_or,
    word_pti,
    word_sti,
    word_xor,
)
from repro.ternary.encoding import (
    BinaryEncodedWord,
    bits_for_word,
    decode_word,
    encode_trit,
    encode_word,
    decode_trit,
)

__all__ = [
    "NEG",
    "ZERO",
    "POS",
    "Trit",
    "trit_and",
    "trit_or",
    "trit_xor",
    "trit_sti",
    "trit_nti",
    "trit_pti",
    "int_to_trits",
    "trits_to_int",
    "min_trits_for",
    "to_balanced_range",
    "TernaryWord",
    "WORD_TRITS",
    "full_adder",
    "add_trits",
    "add_words",
    "sub_words",
    "mul_words",
    "negate_word",
    "shift_left",
    "shift_right",
    "compare_words",
    "divmod_by_power_of_three",
    "word_and",
    "word_or",
    "word_xor",
    "word_sti",
    "word_nti",
    "word_pti",
    "BinaryEncodedWord",
    "encode_trit",
    "decode_trit",
    "encode_word",
    "decode_word",
    "bits_for_word",
]
