"""Binary-encoded balanced ternary, as used by the FPGA emulation platform.

The paper's FPGA prototype (Table V) emulates every ternary building block
with binary modules by adopting the binary-encoded ternary number system of
Frieder & Luk (ref. [27]).  Each balanced trit is stored in two bits:

======  =========
trit    bit pair
======  =========
 0      ``00``
+1      ``01``
-1      ``10``
======  =========

The pair ``11`` is unused and treated as an encoding error.  A 9-trit word
therefore occupies 18 bits of FPGA memory / registers, which is where the
"9,216 bits" of block RAM and the register counts of Table V come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ternary.word import TernaryWord

#: Bits per binary-encoded trit.
BITS_PER_TRIT = 2

_TRIT_TO_BITS = {0: 0b00, 1: 0b01, -1: 0b10}
_BITS_TO_TRIT = {0b00: 0, 0b01: 1, 0b10: -1}


class EncodingError(ValueError):
    """Raised when a bit pattern is not a legal binary-encoded trit."""


def encode_trit(trit: int) -> int:
    """Encode one balanced trit into its 2-bit pattern."""
    try:
        return _TRIT_TO_BITS[trit]
    except KeyError:
        raise EncodingError(f"not a balanced trit: {trit!r}") from None


def decode_trit(bits: int) -> int:
    """Decode one 2-bit pattern back into a balanced trit."""
    try:
        return _BITS_TO_TRIT[bits]
    except KeyError:
        raise EncodingError(f"illegal binary-encoded trit pattern: {bits:#04b}") from None


@dataclass(frozen=True)
class BinaryEncodedWord:
    """A ternary word packed into an integer of ``2 * width`` bits.

    The least significant bit pair holds trit 0 (the LST), matching how the
    FPGA emulation packs words into block RAM.
    """

    bits: int
    width: int

    @property
    def bit_length(self) -> int:
        """Number of storage bits occupied by the encoded word."""
        return self.width * BITS_PER_TRIT

    def to_word(self) -> TernaryWord:
        """Decode back into a :class:`TernaryWord`."""
        return decode_word(self)


def encode_word(word: TernaryWord) -> BinaryEncodedWord:
    """Pack a ternary word into its binary-encoded form."""
    bits = 0
    for index, trit in enumerate(word.trits):
        bits |= encode_trit(trit) << (BITS_PER_TRIT * index)
    return BinaryEncodedWord(bits=bits, width=word.width)


def decode_word(encoded: BinaryEncodedWord) -> TernaryWord:
    """Unpack a binary-encoded word back into a :class:`TernaryWord`."""
    trits: List[int] = []
    for index in range(encoded.width):
        pair = (encoded.bits >> (BITS_PER_TRIT * index)) & 0b11
        trits.append(decode_trit(pair))
    return TernaryWord(trits, encoded.width)


def bits_for_word(width: int) -> int:
    """Storage bits needed to hold one ``width``-trit word on the FPGA."""
    return width * BITS_PER_TRIT


def bits_for_memory(words: int, width: int) -> int:
    """Storage bits needed for a ``words``-deep binary-encoded ternary memory."""
    return words * bits_for_word(width)
