"""Command-line interface for the ART-9 frameworks.

Subcommands::

    art9 translate <file.s>        translate an RV-32I assembly file to ART-9
    art9 run <file.s>              translate and run a cycle-accurate simulation
    art9 bench [workload ...]      run the bundled benchmarks (cycle counts)
    art9 sweep                     run/resume/compare/list evaluation sweeps
    art9 serve                     coordinate a sweep for remote workers (TCP)
    art9 work                      execute jobs for a remote coordinator
    art9 report                    paper tables (II-V, Fig. 5) from sweep runs
    art9 status                    sweep telemetry (live coordinator or run dir)
    art9 profile <workload>        hot-block execution profile (compiled engine)
    art9 cache                     artifact-cache stats / LRU prune
    art9 fuzz                      differential-fuzz the five ART-9 executors
    art9 hw                        print the gate-level / FPGA analysis
    art9 workloads                 list the bundled benchmark workloads

``run`` and ``bench`` accept ``--engine {fast,pipeline,compiled}`` to choose
between the pre-decoded integer engine (default), the stage-by-stage
pipeline model and the superblock code-generating engine; all three produce
identical cycle statistics.  ``run --engine compiled --pgo`` turns on the
profile-guided recompilation mode (profile pass, then hot blocks recompiled
as chained traces) — bit-identical results, higher throughput on loop-heavy
programs.  ``run``, ``bench``, ``fuzz``, ``sweep`` and
``serve`` additionally accept ``--machine`` / ``--machines`` to select a
built-in microarchitecture description (pipeline depth, branch policy,
load-use penalty, fetch latency — see :mod:`repro.sim.machine`); the
default is the paper's machine.  ``bench --json PATH`` additionally writes a
machine-readable perf record (fast vs compiled timings per workload plus
cold/warm sweep wall time) for the benchmark trajectory committed as
``BENCH_*.json``.  ``sweep`` shards its grid
across an execution backend (``--backend {serial,multiprocessing,queue}``),
and ``serve``/``work`` split the queue backend across machines: the
coordinator hands jobs to any number of connected workers and streams
their records into the usual JSONL run directory (see
:mod:`repro.service`).

The CLI is a thin wrapper over :mod:`repro.framework`; anything it prints can
also be obtained programmatically.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import socket
import subprocess
import sys
import tempfile
import time
from typing import List, Optional

from repro.baselines import PicoRV32Model, VexRiscvModel
from repro.framework import HardwareFramework, SoftwareFramework
from repro.obs import trace
from repro.framework.hwflow import SIMULATION_ENGINES
from repro.runner import (
    ALL_ENGINES,
    DEFAULT_MAX_CYCLES,
    RunStore,
    SWEEP_PRESETS,
    SpecError,
    StoreError,
    SweepSpec,
    compare_runs,
    list_jobs,
    preset_spec,
    run_parallel_fuzz,
    run_sweep,
)
from repro.service import (
    AsyncQueueBackend,
    CoordinatorBindError,
    MultiprocessingBackend,
    ResultsDB,
    SerialBackend,
    build_report,
    render_report,
    request_status,
    work,
)
from repro.service.journal import RunJournal, journal_path, recover_run
from repro.service.protocol import AUTH_TOKEN_ENV, DEFAULT_PORT
from repro.sim.machine import DEFAULT_MACHINE_NAME, machine_names
from repro.testing.chaos import CHAOS_SCENARIOS
from repro.workloads import all_workloads, get_workload


def _cmd_translate(args: argparse.Namespace) -> int:
    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    framework = SoftwareFramework(optimize=not args.no_optimize)
    program, report = framework.compile_riscv_assembly(source, name=args.source)
    print(report.summary())
    if args.listing:
        print()
        print(program.listing())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.pgo and args.engine != "compiled":
        print("art9 run: --pgo is a compiled-engine mode; pass "
              "--engine compiled", file=sys.stderr)
        return 2
    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    software = SoftwareFramework()
    program, report = software.compile_riscv_assembly(source, name=args.source)
    hardware = HardwareFramework(engine=args.engine, machine=args.machine,
                                 pgo=args.pgo)
    stats = hardware.simulate(program)
    print(report.summary())
    print()
    print(stats.summary())
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name, workload in all_workloads().items():
        print(f"{name:14s} {workload.description}")
    return 0


#: Workload variants timed by ``art9 bench --json``: every bundled workload
#: at paper-default size plus the grown Dhrystone instance the ≥3x
#: compiled-vs-fast acceptance gate tracks.
BENCH_JSON_VARIANTS = (
    ("bubble_sort", {}),
    ("gemm", {}),
    ("sobel", {}),
    ("dhrystone", {}),
    ("dhrystone", {"iterations": 500}),
)

#: Schema version of the ``bench --json`` record (the BENCH_*.json files).
#: Format 2 adds the per-machine-config Dhrystone rows (``machines`` key).
#: Format 3 adds the batched-engine throughput rows (``batch`` key) with the
#: ``jobs_per_second`` metric.
#: Format 4 adds the chained (profile-guided) compiled-engine timings:
#: ``compiled_chained_seconds`` / ``chained_speedup_vs_plain`` per workload
#: row, with ``engines_agree`` widened to cover the PGO engine everywhere
#: (workload, machine and batch rows alike).
BENCH_RECORD_FORMAT = 4

#: Workloads timed by the batched-throughput section: the two seed-variant
#: sweep workloads whose grid points the batched backends actually group.
BENCH_BATCH_VARIANTS = (
    ("bubble_sort", {}),
    ("gemm", {}),
)


def _bench_engine_seconds(engine_factories, program, repeat: int):
    """Best-of-``repeat`` wall seconds per engine, interleaved.

    One untimed warm-up run per engine first (fills the codegen memo and
    the artifact cache), then the engines alternate within every timing
    round so CPU frequency drift between phases cannot skew their ratio.
    """
    timings = {name: None for name, _ in engine_factories}
    stats = {}
    for name, factory in engine_factories:
        stats[name] = factory(program).run_with_stats()  # warm-up
    for _ in range(max(1, repeat)):
        for name, factory in engine_factories:
            started = time.perf_counter()
            factory(program).run_with_stats()
            elapsed = time.perf_counter() - started
            if timings[name] is None or elapsed < timings[name]:
                timings[name] = elapsed
    return timings, stats


def _bench_sweep_timing(preset: str) -> dict:
    """Cold vs warm artifact-cache wall time of one preset sweep.

    Each run happens in a *fresh interpreter* (subprocess) against a
    private cache directory, so the cold run pays translation + codegen
    for every grid point and the warm run demonstrates exactly what the
    cross-process artifact cache saves a new worker fleet.
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    with tempfile.TemporaryDirectory(prefix="art9-bench-") as tmp:
        env = dict(os.environ)
        env["ART9_CACHE_DIR"] = os.path.join(tmp, "artifacts")
        env.pop("ART9_CACHE_DISABLE", None)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")

        def one_run(out_name: str):
            command = [sys.executable, "-m", "repro.cli", "sweep",
                       "--preset", preset, "--jobs", "1",
                       "--out", os.path.join(tmp, out_name)]
            started = time.perf_counter()
            proc = subprocess.run(command, env=env, capture_output=True,
                                  text=True)
            elapsed = round(time.perf_counter() - started, 6)
            if proc.returncode != 0:
                # The timing is now meaningless; surface why the sweep died.
                tail = (proc.stderr or proc.stdout or "").splitlines()[-15:]
                print(f"art9 bench: {out_name} smoke sweep exited "
                      f"{proc.returncode}:\n" + "\n".join(tail),
                      file=sys.stderr)
            return elapsed, proc.returncode

        cold_seconds, cold_rc = one_run("cold")
        warm_seconds, warm_rc = one_run("warm")
    return {
        "preset": preset,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": round(cold_seconds / warm_seconds, 6)
        if warm_seconds else None,
        "ok": cold_rc == 0 and warm_rc == 0,
    }


def _bench_batch_throughput(software, lanes: int, repeat: int) -> list:
    """Jobs-per-second of the batched engine vs one-at-a-time compiled runs.

    Each workload is expanded into ``lanes`` data-variant programs — the
    same shape a seed-style sweep grid produces — and both sides execute
    the identical program list: the serial side as ``lanes`` independent
    compiled-engine runs, the batch side as one ``BatchEngine`` pass in
    stats-only mode.  Best-of-``repeat`` seconds, cycle counts
    cross-checked lane by lane.
    """
    from repro.sim.batch import BatchEngine
    from repro.sim.compiled import CompiledEngine
    from repro.testing import generate_data_variants

    rows = []
    for name, params in BENCH_BATCH_VARIANTS:
        program, _, _ = software.compile_named_workload(name, params)
        programs = generate_data_variants(program, lanes, 0)
        CompiledEngine(programs[0]).run_with_stats()  # warm codegen memo
        BatchEngine(programs).run_with_stats(include_results=False)
        serial_seconds = batch_seconds = None
        serial_cycles = batch_cycles = None
        for _ in range(max(1, repeat)):
            started = time.perf_counter()
            serial_stats = [CompiledEngine(p).run_with_stats()
                            for p in programs]
            elapsed = time.perf_counter() - started
            if serial_seconds is None or elapsed < serial_seconds:
                serial_seconds = elapsed
                serial_cycles = [stats.cycles for stats in serial_stats]
            started = time.perf_counter()
            outcomes = BatchEngine(programs).run_with_stats(
                include_results=False)
            elapsed = time.perf_counter() - started
            if batch_seconds is None or elapsed < batch_seconds:
                batch_seconds = elapsed
                batch_cycles = [lane.stats.cycles if lane.stats else None
                                for lane in outcomes]
        rows.append({
            "workload": name,
            "params": dict(params),
            "lanes": lanes,
            "serial_seconds": round(serial_seconds, 6),
            "batch_seconds": round(batch_seconds, 6),
            "serial_jobs_per_second": round(lanes / serial_seconds, 3),
            "jobs_per_second": round(lanes / batch_seconds, 3),
            "batch_speedup": round(serial_seconds / batch_seconds, 6),
            "engines_agree": batch_cycles == serial_cycles,
        })
        print(f"{name + f'@{lanes} lanes':32s} "
              f"serial {lanes / serial_seconds:8.1f} jobs/s   "
              f"batch {lanes / batch_seconds:8.1f} jobs/s   "
              f"{serial_seconds / batch_seconds:5.2f}x")
    return rows


def _cmd_bench_json(args: argparse.Namespace) -> int:
    from repro.sim.compiled import CompiledEngine
    from repro.sim.engine import FastEngine

    software = SoftwareFramework()
    rows = []
    # "chained" is the profile-guided engine: bench is the two-pass PGO
    # mode's automatic home (the profiling pass amortises across the
    # repeat rounds through the process-wide chain-plan memo).
    engine_factories = (
        ("fast", FastEngine),
        ("compiled", CompiledEngine),
        ("chained", lambda program: CompiledEngine(program, pgo=True)),
    )
    for name, params in BENCH_JSON_VARIANTS:
        program, _, workload = software.compile_named_workload(name, params)
        timings, stats = _bench_engine_seconds(
            engine_factories, program, args.repeat)
        fast_seconds = timings["fast"]
        compiled_seconds = timings["compiled"]
        chained_seconds = timings["chained"]
        label = name + ("[" + ",".join(f"{k}={v}" for k, v in sorted(params.items()))
                        + "]" if params else "")
        rows.append({
            "workload": name,
            "params": dict(params),
            "label": label,
            "iterations": workload.iterations,
            "cycles": stats["fast"].cycles,
            "instructions": stats["fast"].instructions_committed,
            "engines_agree": stats["fast"].cycles == stats["compiled"].cycles
            == stats["chained"].cycles,
            "fast_seconds": round(fast_seconds, 6),
            "compiled_seconds": round(compiled_seconds, 6),
            "compiled_chained_seconds": round(chained_seconds, 6),
            "compiled_speedup_vs_fast": round(fast_seconds / compiled_seconds, 6),
            "chained_speedup_vs_fast": round(fast_seconds / chained_seconds, 6),
            "chained_speedup_vs_plain": round(
                compiled_seconds / chained_seconds, 6),
        })
        print(f"{label:32s} fast {fast_seconds * 1e3:8.2f} ms   "
              f"compiled {compiled_seconds * 1e3:8.2f} ms   "
              f"chained {chained_seconds * 1e3:8.2f} ms   "
              f"{compiled_seconds / chained_seconds:5.2f}x pgo")
    # Per-machine-config Dhrystone rows: the design-space sensitivity of the
    # headline benchmark, cross-checked fast vs compiled vs PGO per corner.
    machine_rows = []
    program, _, workload = software.compile_named_workload("dhrystone", {})
    for machine in machine_names():
        fast_stats = FastEngine(program, machine=machine).run_with_stats()
        compiled_stats = CompiledEngine(
            program, machine=machine).run_with_stats()
        pgo_stats = CompiledEngine(
            program, machine=machine, pgo=True).run_with_stats()
        machine_rows.append({
            "machine": machine,
            "workload": "dhrystone",
            "iterations": workload.iterations,
            "cycles": fast_stats.cycles,
            "cpi": round(fast_stats.cpi, 6),
            "engines_agree": fast_stats.cycles == compiled_stats.cycles
            == pgo_stats.cycles,
        })
        print(f"dhrystone@{machine:22s} {fast_stats.cycles:>10d} cycles   "
              f"CPI {fast_stats.cpi:5.3f}   "
              f"{'ok' if machine_rows[-1]['engines_agree'] else 'DISAGREE'}")
    batch_rows = _bench_batch_throughput(software, max(2, args.batch_lanes),
                                         args.repeat)
    record = {
        "format": BENCH_RECORD_FORMAT,
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeat": args.repeat,
        "timing_mode": "run_with_stats (architectural execution + fused "
                       "pipeline timing model), best-of-repeat seconds",
        "workloads": rows,
        "machines": machine_rows,
        "batch": batch_rows,
    }
    sweep_ok = True
    if not args.no_sweep_timing:
        record["sweep"] = _bench_sweep_timing("smoke")
        sweep = record["sweep"]
        sweep_ok = sweep["ok"]
        if sweep_ok:
            print(f"{'sweep --preset smoke':32s} cold {sweep['cold_seconds']:8.2f} s"
                  f"    warm {sweep['warm_seconds']:8.2f} s   "
                  f"{sweep['warm_speedup']:5.2f}x (artifact cache)")
        else:
            # A failed sweep subprocess times the crash, not the sweep; the
            # record must not enter the trajectory looking healthy.
            print("art9 bench: smoke-preset sweep subprocess failed; "
                  "wall-time numbers are invalid", file=sys.stderr)
    with open(args.json_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"bench record written to {args.json_path}")
    engines_agree = all(row["engines_agree"]
                        for row in rows + machine_rows + batch_rows)
    if not engines_agree:
        print("art9 bench: the engines disagree on cycle counts — the "
              "record above documents a correctness bug",
              file=sys.stderr)
    return 0 if sweep_ok and engines_agree else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.json_path:
        if os.path.exists(args.json_path) and not args.force:
            # BENCH_*.json files are committed trajectory points; clobbering
            # one by rerunning the same command must be a deliberate act.
            print(f"art9 bench: {args.json_path} already exists; pass "
                  "--force to overwrite it", file=sys.stderr)
            return 2
        if args.workloads or args.engine != "fast" \
                or args.machine != DEFAULT_MACHINE_NAME:
            # --json times a fixed fast-vs-compiled variant set (and already
            # covers every machine config); silently dropping an explicit
            # workload/engine/machine selection would hand the user a record
            # for measurements they did not ask for.
            print("art9 bench: --json measures the fixed benchmark set on "
                  "the fast and compiled engines across all machine configs; "
                  "drop the workload names, --engine and --machine",
                  file=sys.stderr)
            return 2
        return _cmd_bench_json(args)
    names = args.workloads or sorted(all_workloads())
    software = SoftwareFramework()
    hardware = HardwareFramework(engine=args.engine, machine=args.machine)
    header = f"{'workload':14s} {'ART-9 cycles':>14s} {'PicoRV32 cycles':>16s} {'VexRiscv cycles':>16s}"
    print(header)
    print("-" * len(header))
    for name in names:
        workload = get_workload(name)
        rv_program = workload.rv_program()
        program, _ = software.compile_workload(workload)
        stats = hardware.simulate(program)
        pico = PicoRV32Model().run(rv_program)
        vex = VexRiscvModel().run(rv_program)
        print(f"{name:14s} {stats.cycles:>14d} {pico.cycles:>16d} {vex.cycles:>16d}")
    return 0


def _sweep_spec_from_args(args: argparse.Namespace) -> SweepSpec:
    grid_flags_used = (args.workloads or args.engines or args.params
                       or args.machines or args.optimize is not None
                       or args.max_cycles is not None)
    if args.spec:
        if getattr(args, "preset", None) or grid_flags_used:
            raise SpecError(
                "--spec replaces the grid flags and --preset; drop one side")
        return SweepSpec.from_file(args.spec)
    if getattr(args, "preset", None):
        if grid_flags_used:
            raise SpecError(
                "--preset replaces the grid flags; drop --workloads/"
                "--engines/--params/--optimize/--max-cycles or the preset")
        return preset_spec(args.preset)
    optimize = {None: (True, False), "both": (True, False),
                "on": (True,), "off": (False,)}[args.optimize]
    params = {}
    if args.params:
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as exc:
            raise SpecError(
                f"--params is not valid JSON ({exc}): {args.params!r}"
            ) from None
        if not isinstance(params, dict):
            raise SpecError(
                "--params must be a JSON object mapping workload names to "
                f"variant lists, got {args.params!r}"
            )
    return SweepSpec(
        workloads=tuple(args.workloads or ()),
        engines=tuple(args.engines or SIMULATION_ENGINES),
        optimize=optimize,
        params=params,
        max_cycles=(DEFAULT_MAX_CYCLES if args.max_cycles is None
                    else args.max_cycles),
        machines=tuple(args.machines or (DEFAULT_MACHINE_NAME,)),
    )


def _sweep_progress(record: dict) -> None:
    if record.get("status") == "ok":
        print(
            f"[{record['job_id']}] {record['label']:40s} "
            f"{record['cycles']:>12d} cycles  CPI {record['cpi']:.3f}  "
            f"{'ok' if record.get('verified') else 'RESULT MISMATCH'}"
        )
    else:
        print(f"[{record['job_id']}] {record['label']:40s} {record.get('error')}")


def _finish_sweep(args: argparse.Namespace, outcome) -> int:
    print()
    print(RunStore(args.out).summary_table(outcome.records))
    print()
    print(outcome.summary())
    return 0 if outcome.ok else 1


def _enable_trace(out_dir: str) -> None:
    """Turn span tracing on for this process and every spawned worker.

    The switch travels as environment variables because worker processes
    (multiprocessing pool, local queue workers) inherit the environment on
    spawn and ``repro.runner.worker`` re-reads it at import time.
    """
    os.makedirs(out_dir, exist_ok=True)
    os.environ[trace.TRACE_ENV] = "1"
    os.environ[trace.TRACE_FILE_ENV] = os.path.join(out_dir, "spans.jsonl")
    trace.configure_from_env()


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        return _run_sweep_command(args)
    except (SpecError, StoreError, json.JSONDecodeError) as exc:
        print(f"art9 sweep: {exc}", file=sys.stderr)
        return 2


def _run_sweep_command(args: argparse.Namespace) -> int:
    if args.compare:
        report = compare_runs(args.compare[0], args.compare[1])
        print(report.summary())
        return 0 if report.ok else 1

    spec = _sweep_spec_from_args(args)
    if args.list_jobs:
        out_dir = args.out if args.out else None
        for row in list_jobs(spec, out_dir):
            print(f"{row['job_id']}  {row['status']:8s} {row['label']}")
        return 0

    if args.trace:
        _enable_trace(args.out)
    if args.batch and args.backend == "queue":
        raise SpecError(
            "--batch groups jobs inside a local worker; the queue backend "
            "dispatches single jobs to remote workers — drop one flag")
    backend = None
    if args.backend == "serial":
        backend = SerialBackend(batch=args.batch)
    elif args.backend == "multiprocessing":
        backend = MultiprocessingBackend(processes=max(1, args.jobs),
                                         batch=args.batch)
    elif args.backend == "queue":
        backend = AsyncQueueBackend(workers=max(1, args.jobs))
    elif args.batch:
        # auto + --batch: same serial/pool choice run_sweep would make,
        # with the batched job-group execution path enabled.
        if args.jobs > 1:
            backend = MultiprocessingBackend(processes=args.jobs, batch=True)
        else:
            backend = SerialBackend(batch=True)
    outcome = run_sweep(spec, args.out, jobs=args.jobs,
                        resume=not args.no_resume, progress=_sweep_progress,
                        backend=backend)
    return _finish_sweep(args, outcome)


def _auth_token_from(args: argparse.Namespace) -> Optional[str]:
    """Shared worker-auth token: flag first, then ``ART9_AUTH_TOKEN``."""
    token = getattr(args, "auth_token", None)
    if token is None:
        token = os.environ.get(AUTH_TOKEN_ENV)
    return token or None


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        if args.resume_dir:
            if args.no_resume:
                raise SpecError("--resume RUN_DIR and --no-resume contradict "
                                "each other; drop one")
            store = RunStore(args.resume_dir)
            if not store.exists():
                raise SpecError(
                    f"--resume: {args.resume_dir!r} is not a sweep run "
                    "directory (no spec.json)")
            spec = store.load_spec()
            args.out = args.resume_dir
        else:
            spec = _sweep_spec_from_args(args)
    except (SpecError, StoreError, json.JSONDecodeError) as exc:
        print(f"art9 serve: {exc}", file=sys.stderr)
        return 2

    def announce(host: str, port: int) -> None:
        # A wildcard bind is not a dialable address; suggest something a
        # remote worker can actually connect to.
        reachable = socket.gethostname() if host in ("0.0.0.0", "::") else host
        print(f"coordinator listening on {host}:{port}; start workers with:")
        print(f"    art9 work --connect {reachable}:{port}")
        sys.stdout.flush()

    if args.trace:
        _enable_trace(args.out)
    os.makedirs(args.out, exist_ok=True)
    if args.no_resume and os.path.exists(journal_path(args.out)):
        # --no-resume recomputes from scratch: the old run's lifecycle
        # history must not leak dispatch counts into the fresh one.
        os.remove(journal_path(args.out))
    dispatch_counts = {}
    recovered = 0
    journal = RunJournal(journal_path(args.out))
    if not args.no_resume:
        recovery = recover_run(args.out,
                               completed_ids=RunStore(args.out).completed_ids())
        if recovery.events_replayed:
            print(recovery.summary())
        for job_id, worker in sorted(recovery.leased.items()):
            # Make the crash explicit in the journal: these jobs were in a
            # worker's hands when the previous coordinator died.
            journal.append("requeued", job_id=job_id,
                           reason="coordinator restart", worker=worker,
                           kind="restart")
        dispatch_counts = recovery.dispatch_counts
        recovered = len(recovery.leased)
        if recovered:
            from repro.obs import metrics
            metrics.counter("coordinator.recovered_jobs").inc(recovered)
    backend = AsyncQueueBackend(
        workers=args.local_workers,
        host=args.host,
        port=args.port,
        heartbeat_timeout=args.heartbeat_timeout,
        max_requeues=args.max_requeues,
        on_started=announce,
        journal=journal,
        auth_token=_auth_token_from(args),
        job_timeout=args.job_timeout,
        dispatch_counts=dispatch_counts,
        recovered_jobs=recovered,
    )
    try:
        outcome = run_sweep(spec, args.out, resume=not args.no_resume,
                            progress=_sweep_progress, backend=backend)
    except (CoordinatorBindError, SpecError, StoreError) as exc:
        print(f"art9 serve: {exc}", file=sys.stderr)
        return 2
    finally:
        journal.close()
    if backend.stats is not None:
        print()
        print(backend.stats.summary())
    return _finish_sweep(args, outcome)


def _cmd_work(args: argparse.Namespace) -> int:
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"art9 work: --connect expects HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    try:
        summary = work(host, int(port), name=args.name,
                       heartbeat_interval=args.heartbeat_interval,
                       retry_seconds=args.retry_seconds,
                       auth_token=_auth_token_from(args),
                       job_timeout=args.job_timeout,
                       max_retries=args.max_retries,
                       retry_window=args.retry_window)
    except OSError as exc:
        print(f"art9 work: cannot reach coordinator at {args.connect}: {exc}",
              file=sys.stderr)
        return 2
    print(summary.summary())
    if summary.outcome == "done":
        return 0
    if summary.outcome == "gave-up":
        # Transient: the coordinator may come back; a supervisor can
        # restart the worker.
        return 1
    return 2  # rejected: deterministic (bad token / protocol), do not retry


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        with ResultsDB(args.db) as db:
            for run_dir in args.runs:
                ingest = db.ingest(run_dir)
                print(ingest.summary(), file=sys.stderr)
            if not db.runs():
                print("art9 report: no runs ingested (pass run directories, "
                      "or --db with previously ingested runs)", file=sys.stderr)
                return 2
            tables = build_report(db)
    except (StoreError, SpecError, json.JSONDecodeError) as exc:
        print(f"art9 report: {exc}", file=sys.stderr)
        return 2
    document = render_report(tables, fmt=args.format)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(document, end="")
    return 0 if all(table.ok for table in tables) else 1


def _split_address(command: str, address: str):
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        print(f"art9 {command}: --connect expects HOST:PORT, got {address!r}",
              file=sys.stderr)
        return None
    return host, int(port)


def _status_live(address: str, token: Optional[str] = None) -> int:
    parsed = _split_address("status", address)
    if parsed is None:
        return 2
    host, port = parsed
    try:
        status = request_status(host, port, token=token)
    except (OSError, ConnectionError, json.JSONDecodeError) as exc:
        print(f"art9 status: cannot query coordinator at {address}: {exc}",
              file=sys.stderr)
        return 2
    print(f"jobs      {status['done']}/{status['jobs_total']} done, "
          f"{status['in_flight']} in flight, {status['queue_depth']} queued")
    health = (f"health    {status['requeues']} requeues, "
              f"{status['lost_jobs']} lost, "
              f"{status['duplicate_results']} duplicate results")
    for key, label in (("unknown_results", "unknown results"),
                       ("reconnects", "reconnects"),
                       ("auth_failures", "auth failures"),
                       ("recovered_jobs", "recovered jobs")):
        if status.get(key):
            health += f", {status[key]} {label}"
    print(health)
    workers = status.get("workers", {})
    print(f"workers   {status['connected_workers']} connected, "
          f"{len(workers)} seen")
    for name in sorted(workers):
        stats = workers[name]
        # The reason histogram tells a flaky link (disconnects) from a
        # slow or wedged worker (heartbeat timeouts) at a glance.
        reasons = stats.get("requeue_reasons") or {}
        why = ("" if not reasons else
               " (" + ", ".join(f"{kind} {count}"
                                for kind, count in sorted(reasons.items()))
               + ")")
        print(f"  {name:28s} {stats['jobs_done']:>4d} done  "
              f"{stats['requeues']:>3d} requeued{why}  "
              f"heartbeat {stats['heartbeat_age_s']:6.1f}s ago")
    return 0


def _record_phase_seconds(record: dict) -> Optional[float]:
    timings = record.get("timings")
    if not isinstance(timings, dict):
        return None
    return sum(float(timings.get(key) or 0.0)
               for key in ("xlate_s", "codegen_s", "execute_s"))


def _status_run_dir(run_dir: str) -> int:
    store = RunStore(run_dir)
    if not store.exists():
        print(f"art9 status: {run_dir!r} is not a sweep run directory "
              "(no spec.json)", file=sys.stderr)
        return 2
    records = store.records()
    try:
        total_jobs = len(store.load_spec().expand())
    except (SpecError, json.JSONDecodeError):
        total_jobs = len(records)
    ok = [r for r in records if r.get("status") == "ok"]
    print(f"run       {run_dir}")
    print(f"jobs      {len(ok)}/{total_jobs} ok, "
          f"{len(records) - len(ok)} failed")
    phases = {"xlate_s": 0.0, "codegen_s": 0.0, "execute_s": 0.0}
    timed = 0
    for record in records:
        timings = record.get("timings")
        if isinstance(timings, dict):
            timed += 1
            for key in phases:
                phases[key] += float(timings.get(key) or 0.0)
    if timed:
        print(f"phases    xlate {phases['xlate_s']:.3f} s   "
              f"codegen {phases['codegen_s']:.3f} s   "
              f"execute {phases['execute_s']:.3f} s   "
              f"({timed}/{len(records)} records timed)")
    else:
        print("phases    no records carry phase timings (written before the "
              "instrumentation existed)")
    known = [r for r in records if r.get("cache_hit") is not None]
    if known:
        hits = sum(1 for r in known if r["cache_hit"])
        print(f"cache     {hits}/{len(known)} translation cache hits "
              f"({hits / len(known):.0%})")
    slow = [(seconds, record) for record in records
            for seconds in [_record_phase_seconds(record)
                            or record.get("elapsed_s")]
            if seconds is not None]
    slow.sort(key=lambda pair: pair[0], reverse=True)
    if slow:
        print("slowest jobs:")
        for seconds, record in slow[:5]:
            print(f"  {record.get('label', record.get('job_id')):42s} "
                  f"{seconds:9.3f} s")
    spans_path = os.path.join(run_dir, "spans.jsonl")
    if os.path.exists(spans_path):
        spans = trace.read_spans(spans_path)
        print(f"trace     {len(spans)} spans in {spans_path}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    if bool(args.connect) == bool(args.run_dir):
        print("art9 status: pass exactly one of RUN_DIR or --connect "
              "HOST:PORT", file=sys.stderr)
        return 2
    if args.connect:
        return _status_live(args.connect, token=_auth_token_from(args))
    return _status_run_dir(args.run_dir)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.testing.chaos import ChaosError, run_scenario
    try:
        result = run_scenario(args.scenario, seed=args.seed,
                              out_dir=args.out, keep=args.keep)
    except ChaosError as exc:
        print(f"art9 chaos: {exc}", file=sys.stderr)
        return 2
    for line in result.events:
        print(line)
    print()
    print(result.summary())
    if not result.ok:
        print(f"artifacts kept in {os.path.dirname(result.run_dir)}",
              file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.sim.compiled import CHAIN_PLAN_VERSION, CompiledEngine, \
        chain_plan_digest

    params = {}
    if args.params:
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as exc:
            print(f"art9 profile: --params is not valid JSON ({exc})",
                  file=sys.stderr)
            return 2
        if not isinstance(params, dict):
            print("art9 profile: --params must be a JSON object of workload "
                  "parameters", file=sys.stderr)
            return 2
    software = SoftwareFramework(optimize=not args.no_optimize)
    try:
        program, _, _ = software.compile_named_workload(args.workload, params)
    except (KeyError, TypeError) as exc:
        print(f"art9 profile: {exc}", file=sys.stderr)
        return 2
    # Profiles run on the unchained static partition — the same per-
    # superblock rows PR 8 pinned, and exactly the probe pass the PGO mode
    # derives its plan from (so --pgo-plan dumps what pgo=True would pick).
    engine = CompiledEngine(program, machine=args.machine, profile=True,
                            chain=False,
                            record_edges=args.pgo_plan is not None)
    stats = engine.run_with_stats(max_cycles=args.max_cycles)
    rows = engine.block_profile()
    rows.sort(key=lambda row: (-row["instructions"], row["pc"]))
    executed = engine.instructions_executed
    accounted = sum(row["instructions"] for row in rows)
    if args.pgo_plan:
        plan = engine.pgo_plan_from_profile()
        payload = {
            "version": CHAIN_PLAN_VERSION,
            "workload": args.workload,
            "params": params,
            "machine": args.machine,
            "program_digest": engine.content_digest(),
            "digest": chain_plan_digest(plan),
            "traces": {str(head): members
                       for head, members in sorted(plan.items())},
        }
        with open(args.pgo_plan, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"pgo chain plan ({len(plan)} traces) written to "
              f"{args.pgo_plan}", file=sys.stderr)
    if args.json_out:
        document = {
            "workload": args.workload,
            "params": params,
            "machine": args.machine,
            "optimize": not args.no_optimize,
            "cycles": stats.cycles,
            "instructions": executed,
            "cpi": round(stats.cpi, 6),
            "superblocks": len(rows),
            "accounted": accounted == executed,
            "blocks": rows,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(f"{args.workload}: {stats.cycles} cycles, "
              f"{executed} instructions, CPI {stats.cpi:.3f}, "
              f"{len(rows)} superblocks executed")
        print()
        header = (f"{'PC':>6s} {'executions':>12s} {'length':>7s} "
                  f"{'instructions':>13s} {'share':>7s}  cumulative")
        print(header)
        print("-" * len(header))
        cumulative = 0
        for row in rows[:args.top]:
            cumulative += row["instructions"]
            print(f"{row['pc']:>6d} {row['executions']:>12d} "
                  f"{row['length']:>7d} {row['instructions']:>13d} "
                  f"{row['instructions'] / executed:>6.1%}  "
                  f"{cumulative / executed:>6.1%}")
        if len(rows) > args.top:
            rest = sum(row["instructions"] for row in rows[args.top:])
            print(f"... {len(rows) - args.top} more blocks accounting for "
                  f"{rest} instructions ({rest / executed:.1%})")
    if accounted != executed:
        print(f"art9 profile: block counters account for {accounted} "
              f"instructions but the engine executed {executed} — "
              "profile instrumentation bug", file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import ArtifactCache, default_cache_root

    if args.cache_command is None:
        print("art9 cache: pass a subcommand (stats | prune)",
              file=sys.stderr)
        return 2
    root = args.dir or default_cache_root()
    cache = ArtifactCache(root)
    if args.cache_command == "stats":
        stats = cache.disk_stats()
        if args.json_out:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"artifact cache {stats['root']}")
        print(f"{'kind':12s} {'entries':>8s} {'bytes':>12s}")
        for kind, row in sorted(stats["kinds"].items()):
            print(f"{kind:12s} {row['entries']:>8d} {row['bytes']:>12d}")
        print(f"{'total':12s} {stats['entries']:>8d} {stats['bytes']:>12d}")
        return 0
    if args.cache_command == "prune":
        try:
            result = cache.prune(args.max_bytes)
        except ValueError as exc:
            print(f"art9 cache: {exc}", file=sys.stderr)
            return 2
        print(f"pruned {result['removed']} entries "
              f"({result['removed_bytes']} bytes); "
              f"{result['kept']} kept ({result['kept_bytes']} bytes) "
              f"in {root}")
        return 0
    print("art9 cache: pass a subcommand (stats | prune)", file=sys.stderr)
    return 2


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if args.batch_lanes < 0:
        print(f"art9 fuzz: --batch-lanes must be >= 0, got {args.batch_lanes}",
              file=sys.stderr)
        return 2
    report = run_parallel_fuzz(
        count=args.count,
        seed=args.seed,
        jobs=args.jobs,
        max_instructions=args.max_instructions,
        check_pipeline=not args.no_pipeline,
        machine=args.machine,
        batch_lanes=args.batch_lanes,
    )
    print(report.summary())
    for failure in report.failures:
        print(f"\n{failure.program_name}:")
        for mismatch in failure.mismatches:
            print(f"  - {mismatch}")
    if report.failures:
        print(
            "\nreproduce with: repro.testing.run_differential("
            "generate_program(<seed from the program name>))"
        )
    return 0 if report.ok else 1


def _cmd_hw(args: argparse.Namespace) -> int:
    hardware = HardwareFramework()
    print(hardware.analyze_gates().summary())
    print()
    print(hardware.analyze_fpga().summary())
    return 0


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """Sweep-grid flags shared by ``art9 sweep`` and ``art9 serve``."""
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="workload names (default: all registered)")
    parser.add_argument("--engines", nargs="*", choices=ALL_ENGINES,
                        default=None,
                        help="engines (default: fast pipeline; baseline cores: "
                             "picorv32 vexriscv armv6m)")
    parser.add_argument("--optimize", choices=("both", "on", "off"),
                        default=None,
                        help="translator optimize axis (default: both)")
    parser.add_argument("--params", default=None,
                        help='JSON workload variants, e.g. '
                             '\'{"gemm": [{}, {"n": 8}]}\'')
    parser.add_argument("--machines", nargs="*", choices=machine_names(),
                        default=None,
                        help="machine (microarchitecture) configs axis "
                             f"(default: {DEFAULT_MACHINE_NAME}; baseline "
                             "cores always run the default)")
    parser.add_argument("--preset", choices=SWEEP_PRESETS, default=None,
                        help="named grid, replacing the other grid flags: "
                             "default (grown size variants), paper (all "
                             "engines incl. baselines), smoke, machines "
                             "(design-space corners)")
    parser.add_argument("--spec", default=None,
                        help="JSON sweep spec file, replacing the grid flags "
                             "and --preset")
    parser.add_argument("--max-cycles", type=int, default=None,
                        help=f"per-job cycle budget (default: {DEFAULT_MAX_CYCLES})")


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(prog="art9", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command")

    translate = subparsers.add_parser("translate", help="translate RV-32I assembly to ART-9")
    translate.add_argument("source", help="RV-32I assembly file")
    translate.add_argument("--listing", action="store_true", help="print the ART-9 listing")
    translate.add_argument("--no-optimize", action="store_true",
                           help="skip the redundancy-checking pass")
    translate.set_defaults(func=_cmd_translate)

    run = subparsers.add_parser("run", help="translate and run a cycle-accurate simulation")
    run.add_argument("source", help="RV-32I assembly file")
    run.add_argument("--engine", choices=SIMULATION_ENGINES, default="fast",
                     help="execution engine (default: fast)")
    run.add_argument("--machine", choices=machine_names(),
                     default=DEFAULT_MACHINE_NAME,
                     help="machine (microarchitecture) config "
                          f"(default: {DEFAULT_MACHINE_NAME})")
    run.add_argument("--pgo", action="store_true",
                     help="profile-guided recompilation (compiled engine "
                          "only): profile one architectural pass, then "
                          "recompile hot superblocks as chained traces; "
                          "results are bit-identical")
    run.set_defaults(func=_cmd_run)

    bench = subparsers.add_parser("bench", help="run the bundled benchmarks")
    bench.add_argument("workloads", nargs="*", help="workload names (default: all)")
    bench.add_argument("--engine", choices=SIMULATION_ENGINES, default="fast",
                       help="execution engine (default: fast)")
    bench.add_argument("--machine", choices=machine_names(),
                       default=DEFAULT_MACHINE_NAME,
                       help="machine (microarchitecture) config "
                            f"(default: {DEFAULT_MACHINE_NAME})")
    bench.add_argument("--json", dest="json_path", metavar="PATH", default=None,
                       help="write a machine-readable perf record to PATH "
                            "(fast vs compiled per workload plus cold/warm "
                            "smoke-sweep wall time); seeds the BENCH_*.json "
                            "trajectory")
    bench.add_argument("--force", action="store_true",
                       help="overwrite an existing --json PATH (refused "
                            "otherwise: the BENCH_*.json records are "
                            "committed measurement points)")
    bench.add_argument("--repeat", type=int, default=3,
                       help="timing repetitions per engine in --json mode "
                            "(best-of; default: 3)")
    bench.add_argument("--no-sweep-timing", action="store_true",
                       help="skip the cold/warm sweep wall-time measurement "
                            "in --json mode")
    bench.add_argument("--batch-lanes", type=int, default=2048,
                       help="lane count for the batched-engine throughput "
                            "rows in --json mode (default: 2048 — wide "
                            "enough to amortise divergence-driven group "
                            "splits on every bundled workload)")
    bench.set_defaults(func=_cmd_bench)

    sweep = subparsers.add_parser(
        "sweep",
        help="run workload x engine x optimize sweeps across worker processes")
    sweep.add_argument("--out", default="sweeps/latest",
                       help="run directory (default: sweeps/latest); rerunning "
                            "the same directory resumes it")
    sweep.add_argument("--jobs", type=int, default=2,
                       help="worker processes (default: 2; 1 runs inline)")
    _add_grid_arguments(sweep)
    sweep.add_argument("--backend",
                       choices=("auto", "serial", "multiprocessing", "queue"),
                       default="auto",
                       help="execution backend (default: auto — inline for "
                            "--jobs 1, multiprocessing pool otherwise; queue "
                            "runs a TCP coordinator with --jobs local workers)")
    sweep.add_argument("--batch", action="store_true",
                       help="execute same-grid-point job groups (identical "
                            "except for a seed-style param) through one "
                            "multi-lane BatchEngine per group; record "
                            "content is unchanged (serial and "
                            "multiprocessing backends only)")
    sweep.add_argument("--no-resume", action="store_true",
                       help="discard existing results in --out and recompute")
    sweep.add_argument("--trace", action="store_true",
                       help="record execution spans (translation, simulation, "
                            "per-job) to <out>/spans.jsonl; off by default "
                            "and free when off")
    sweep.add_argument("--list", action="store_true", dest="list_jobs",
                       help="list the expanded jobs and their status, then exit")
    sweep.add_argument("--compare", nargs=2, metavar=("RUN_A", "RUN_B"),
                       help="diff two run directories instead of sweeping")
    sweep.set_defaults(func=_cmd_sweep)

    serve = subparsers.add_parser(
        "serve",
        help="coordinate a sweep over TCP for art9 work clients")
    serve.add_argument("--out", default="sweeps/latest",
                       help="run directory (default: sweeps/latest); rerunning "
                            "the same directory resumes it")
    _add_grid_arguments(serve)
    serve.add_argument("--host", default="0.0.0.0",
                       help="address to listen on (default: 0.0.0.0)")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port (default: {DEFAULT_PORT}; 0 picks a free one)")
    serve.add_argument("--local-workers", type=int, default=0,
                       help="also spawn N worker processes on this machine "
                            "(default: 0 — wait for external workers)")
    serve.add_argument("--heartbeat-timeout", type=float, default=15.0,
                       help="seconds of worker silence before a job is requeued")
    serve.add_argument("--max-requeues", type=int, default=3,
                       help="dispatch retries before a job is declared lost")
    serve.add_argument("--no-resume", action="store_true",
                       help="discard existing results in --out and recompute")
    serve.add_argument("--resume", metavar="RUN_DIR", dest="resume_dir",
                       default=None,
                       help="restart a killed coordinator: load the spec "
                            "from RUN_DIR, replay its journal, requeue "
                            "formerly-leased jobs and keep going (replaces "
                            "--out and the grid flags)")
    serve.add_argument("--auth-token", default=None,
                       help="shared worker-auth token (default: "
                            f"${AUTH_TOKEN_ENV}); connections without it "
                            "are refused")
    serve.add_argument("--job-timeout", type=float, default=None,
                       help="wall-clock seconds a local worker may spend on "
                            "one job before reporting a timeout record "
                            "(default: unlimited)")
    serve.add_argument("--trace", action="store_true",
                       help="record execution spans to <out>/spans.jsonl "
                            "(local workers only; remote workers trace into "
                            "their own ART9_TRACE_FILE if set)")
    serve.set_defaults(func=_cmd_serve)

    work_cmd = subparsers.add_parser(
        "work", help="execute sweep jobs for a remote art9 serve coordinator")
    work_cmd.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="coordinator address, e.g. 192.168.1.10:7929")
    work_cmd.add_argument("--name", default=None,
                          help="worker name shown in coordinator stats "
                               "(default: hostname-pid)")
    work_cmd.add_argument("--heartbeat-interval", type=float, default=2.0,
                          help="seconds between heartbeats while executing")
    work_cmd.add_argument("--retry-seconds", type=float, default=10.0,
                          help="keep retrying the first connection this long "
                               "(default: 10; lets workers start first)")
    work_cmd.add_argument("--auth-token", default=None,
                          help="shared worker-auth token (default: "
                               f"${AUTH_TOKEN_ENV})")
    work_cmd.add_argument("--job-timeout", type=float, default=None,
                          help="wall-clock seconds per job before reporting "
                               "a timeout record (default: unlimited)")
    work_cmd.add_argument("--max-retries", type=int, default=8,
                          help="consecutive reconnect attempts before "
                               "giving up (default: 8)")
    work_cmd.add_argument("--retry-window", type=float, default=120.0,
                          help="wall-clock seconds of consecutive reconnect "
                               "failure before giving up (default: 120)")
    work_cmd.set_defaults(func=_cmd_work)

    report = subparsers.add_parser(
        "report",
        help="regenerate the paper's Tables II-V and Fig. 5 from sweep runs")
    report.add_argument("runs", nargs="*", metavar="RUN_DIR",
                        help="sweep run directories to ingest")
    report.add_argument("--db", default=":memory:",
                        help="results database file (default: in-memory; a "
                             "file accumulates runs across invocations)")
    report.add_argument("--format", choices=("markdown", "csv"),
                        default="markdown", help="output format")
    report.add_argument("--out", default=None,
                        help="write the report here instead of stdout")
    report.set_defaults(func=_cmd_report)

    status = subparsers.add_parser(
        "status",
        help="sweep telemetry: live coordinator snapshot or run-dir summary")
    status.add_argument("run_dir", nargs="?", metavar="RUN_DIR", default=None,
                        help="finished/in-progress run directory to summarise "
                             "(phase timings, cache hit rate, slowest jobs)")
    status.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="query a live art9 serve coordinator instead "
                             "(queue depth, in-flight jobs, per-worker stats); "
                             "safe against a running sweep")
    status.add_argument("--auth-token", default=None,
                        help="token for a token-guarded coordinator "
                             f"(default: ${AUTH_TOKEN_ENV})")
    status.set_defaults(func=_cmd_status)

    chaos = subparsers.add_parser(
        "chaos",
        help="fault-injection harness: kill sweep participants mid-run and "
             "assert the finished run is byte-identical to a clean one")
    chaos.add_argument("--scenario", required=True,
                       choices=CHAOS_SCENARIOS,
                       help="which participant to kill and how")
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed for kill timing jitter (default: 0)")
    chaos.add_argument("--out", default=None,
                       help="scratch directory for the disturbed + reference "
                            "runs (default: a fresh temp dir, removed on "
                            "success)")
    chaos.add_argument("--keep", action="store_true",
                       help="keep the scratch directory even on success")
    chaos.set_defaults(func=_cmd_chaos)

    profile = subparsers.add_parser(
        "profile",
        help="hot-block execution profile of one workload (compiled engine)")
    profile.add_argument("workload", help="workload name (see `art9 workloads`)")
    profile.add_argument("--params", default=None,
                         help='JSON workload parameters, e.g. \'{"n": 8}\'')
    profile.add_argument("--machine", choices=machine_names(),
                         default=DEFAULT_MACHINE_NAME,
                         help="machine (microarchitecture) config "
                              f"(default: {DEFAULT_MACHINE_NAME})")
    profile.add_argument("--top", type=int, default=20,
                         help="rows to print (default: 20)")
    profile.add_argument("--no-optimize", action="store_true",
                         help="profile the unoptimized translation")
    profile.add_argument("--max-cycles", type=int, default=DEFAULT_MAX_CYCLES,
                         help="cycle budget (default: "
                              f"{DEFAULT_MAX_CYCLES})")
    profile.add_argument("--json", action="store_true", dest="json_out",
                         help="emit the full profile as JSON on stdout "
                              "instead of the table")
    profile.add_argument("--pgo-plan", metavar="PATH", default=None,
                         help="also write the chain plan the PGO mode would "
                              "derive from this profile (trace heads -> "
                              "chained block lists, with the plan digest "
                              "that joins the codegen cache key)")
    profile.set_defaults(func=_cmd_profile)

    cache_cmd = subparsers.add_parser(
        "cache",
        help="artifact-cache maintenance: disk stats and LRU pruning")
    cache_sub = cache_cmd.add_subparsers(dest="cache_command")
    cache_stats = cache_sub.add_parser(
        "stats", help="per-kind entry counts and byte totals")
    cache_stats.add_argument("--dir", default=None,
                             help="cache root (default: $ART9_CACHE_DIR or "
                                  "~/.cache/art9)")
    cache_stats.add_argument("--json", action="store_true", dest="json_out",
                             help="emit the stats as JSON")
    cache_prune = cache_sub.add_parser(
        "prune", help="evict least-recently-written artifacts down to a "
                      "byte budget (atomic per entry; a pruned entry is "
                      "at worst a later cache miss)")
    cache_prune.add_argument("--max-bytes", type=int, required=True,
                             help="target total size in bytes")
    cache_prune.add_argument("--dir", default=None,
                             help="cache root (default: $ART9_CACHE_DIR or "
                                  "~/.cache/art9)")
    cache_cmd.set_defaults(func=_cmd_cache, cache_command=None)

    fuzz_cmd = subparsers.add_parser(
        "fuzz", help="differential-fuzz all five executors (functional, "
                     "pipeline, fast, compiled, batch) against each other")
    fuzz_cmd.add_argument("--count", type=int, default=100,
                          help="number of random programs (default: 100)")
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="first generator seed (default: 0)")
    fuzz_cmd.add_argument("--max-instructions", type=int, default=200_000,
                          help="per-program instruction budget")
    fuzz_cmd.add_argument("--no-pipeline", action="store_true",
                          help="skip the (slower) cycle-accurate pipeline cross-check")
    fuzz_cmd.add_argument("--jobs", type=int, default=1,
                          help="worker processes sharing the seed range (default: 1)")
    fuzz_cmd.add_argument("--machine", choices=machine_names(),
                          default=DEFAULT_MACHINE_NAME,
                          help="machine (microarchitecture) config all "
                               "cycle-accurate executors run under "
                               f"(default: {DEFAULT_MACHINE_NAME})")
    fuzz_cmd.add_argument("--batch-lanes", type=int, default=0,
                          help="run each seed as N data-variant lanes through "
                               "one multi-lane BatchEngine, pinning every "
                               "lane to the serial engines (default: 0 — "
                               "serial five-way differential)")
    fuzz_cmd.set_defaults(func=_cmd_fuzz)

    hw = subparsers.add_parser("hw", help="gate-level / FPGA implementation analysis")
    hw.set_defaults(func=_cmd_hw)

    workloads = subparsers.add_parser("workloads", help="list the bundled workloads")
    workloads.set_defaults(func=_cmd_workloads)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 1
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
