"""Command-line interface for the ART-9 frameworks.

Subcommands::

    art9 translate <file.s>        translate an RV-32I assembly file to ART-9
    art9 run <file.s>              translate and run a cycle-accurate simulation
    art9 bench [workload ...]      run the bundled benchmarks (cycle counts)
    art9 sweep                     run/resume/compare/list evaluation sweeps
    art9 fuzz                      differential-fuzz the three ART-9 executors
    art9 hw                        print the gate-level / FPGA analysis
    art9 workloads                 list the bundled benchmark workloads

``run`` and ``bench`` accept ``--engine {fast,pipeline}`` to choose between
the pre-decoded integer engine (default) and the stage-by-stage pipeline
model; both produce identical cycle statistics.  ``sweep`` and ``fuzz
--jobs N`` shard their work across a pool of persistent worker processes
(see :mod:`repro.runner`).

The CLI is a thin wrapper over :mod:`repro.framework`; anything it prints can
also be obtained programmatically.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.baselines import PicoRV32Model, VexRiscvModel
from repro.framework import HardwareFramework, SoftwareFramework
from repro.framework.hwflow import SIMULATION_ENGINES
from repro.runner import (
    DEFAULT_MAX_CYCLES,
    RunStore,
    SpecError,
    StoreError,
    SweepSpec,
    compare_runs,
    list_jobs,
    run_parallel_fuzz,
    run_sweep,
)
from repro.workloads import all_workloads, get_workload


def _cmd_translate(args: argparse.Namespace) -> int:
    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    framework = SoftwareFramework(optimize=not args.no_optimize)
    program, report = framework.compile_riscv_assembly(source, name=args.source)
    print(report.summary())
    if args.listing:
        print()
        print(program.listing())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    software = SoftwareFramework()
    program, report = software.compile_riscv_assembly(source, name=args.source)
    hardware = HardwareFramework(engine=args.engine)
    stats = hardware.simulate(program)
    print(report.summary())
    print()
    print(stats.summary())
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name, workload in all_workloads().items():
        print(f"{name:14s} {workload.description}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    names = args.workloads or sorted(all_workloads())
    software = SoftwareFramework()
    hardware = HardwareFramework(engine=args.engine)
    header = f"{'workload':14s} {'ART-9 cycles':>14s} {'PicoRV32 cycles':>16s} {'VexRiscv cycles':>16s}"
    print(header)
    print("-" * len(header))
    for name in names:
        workload = get_workload(name)
        rv_program = workload.rv_program()
        program, _ = software.compile_workload(workload)
        stats = hardware.simulate(program)
        pico = PicoRV32Model().run(rv_program)
        vex = VexRiscvModel().run(rv_program)
        print(f"{name:14s} {stats.cycles:>14d} {pico.cycles:>16d} {vex.cycles:>16d}")
    return 0


def _sweep_spec_from_args(args: argparse.Namespace) -> SweepSpec:
    if args.spec:
        return SweepSpec.from_file(args.spec)
    optimize = {"both": (True, False), "on": (True,), "off": (False,)}[args.optimize]
    params = json.loads(args.params) if args.params else {}
    return SweepSpec(
        workloads=tuple(args.workloads or ()),
        engines=tuple(args.engines or SIMULATION_ENGINES),
        optimize=optimize,
        params=params,
        max_cycles=args.max_cycles,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        return _run_sweep_command(args)
    except (SpecError, StoreError, json.JSONDecodeError) as exc:
        print(f"art9 sweep: {exc}", file=sys.stderr)
        return 2


def _run_sweep_command(args: argparse.Namespace) -> int:
    if args.compare:
        report = compare_runs(args.compare[0], args.compare[1])
        print(report.summary())
        return 0 if report.ok else 1

    spec = _sweep_spec_from_args(args)
    if args.list_jobs:
        out_dir = args.out if args.out else None
        for row in list_jobs(spec, out_dir):
            print(f"{row['job_id']}  {row['status']:8s} {row['label']}")
        return 0

    def progress(record: dict) -> None:
        if record.get("status") == "ok":
            print(
                f"[{record['job_id']}] {record['label']:40s} "
                f"{record['cycles']:>12d} cycles  CPI {record['cpi']:.3f}  "
                f"{'ok' if record.get('verified') else 'RESULT MISMATCH'}"
            )
        else:
            print(f"[{record['job_id']}] {record['label']:40s} {record.get('error')}")

    outcome = run_sweep(spec, args.out, jobs=args.jobs,
                        resume=not args.no_resume, progress=progress)
    print()
    print(RunStore(args.out).summary_table(outcome.records))
    print()
    print(outcome.summary())
    return 0 if outcome.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    report = run_parallel_fuzz(
        count=args.count,
        seed=args.seed,
        jobs=args.jobs,
        max_instructions=args.max_instructions,
        check_pipeline=not args.no_pipeline,
    )
    print(report.summary())
    for failure in report.failures:
        print(f"\n{failure.program_name}:")
        for mismatch in failure.mismatches:
            print(f"  - {mismatch}")
    if report.failures:
        print(
            "\nreproduce with: repro.testing.run_differential("
            "generate_program(<seed from the program name>))"
        )
    return 0 if report.ok else 1


def _cmd_hw(args: argparse.Namespace) -> int:
    hardware = HardwareFramework()
    print(hardware.analyze_gates().summary())
    print()
    print(hardware.analyze_fpga().summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(prog="art9", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command")

    translate = subparsers.add_parser("translate", help="translate RV-32I assembly to ART-9")
    translate.add_argument("source", help="RV-32I assembly file")
    translate.add_argument("--listing", action="store_true", help="print the ART-9 listing")
    translate.add_argument("--no-optimize", action="store_true",
                           help="skip the redundancy-checking pass")
    translate.set_defaults(func=_cmd_translate)

    run = subparsers.add_parser("run", help="translate and run a cycle-accurate simulation")
    run.add_argument("source", help="RV-32I assembly file")
    run.add_argument("--engine", choices=SIMULATION_ENGINES, default="fast",
                     help="execution engine (default: fast)")
    run.set_defaults(func=_cmd_run)

    bench = subparsers.add_parser("bench", help="run the bundled benchmarks")
    bench.add_argument("workloads", nargs="*", help="workload names (default: all)")
    bench.add_argument("--engine", choices=SIMULATION_ENGINES, default="fast",
                       help="execution engine (default: fast)")
    bench.set_defaults(func=_cmd_bench)

    sweep = subparsers.add_parser(
        "sweep",
        help="run workload x engine x optimize sweeps across worker processes")
    sweep.add_argument("--out", default="sweeps/latest",
                       help="run directory (default: sweeps/latest); rerunning "
                            "the same directory resumes it")
    sweep.add_argument("--jobs", type=int, default=2,
                       help="worker processes (default: 2; 1 runs inline)")
    sweep.add_argument("--workloads", nargs="*", default=None,
                       help="workload names (default: all registered)")
    sweep.add_argument("--engines", nargs="*", choices=SIMULATION_ENGINES,
                       default=None, help="engines (default: fast pipeline)")
    sweep.add_argument("--optimize", choices=("both", "on", "off"), default="both",
                       help="translator optimize axis (default: both)")
    sweep.add_argument("--params", default=None,
                       help='JSON workload variants, e.g. \'{"gemm": [{}, {"n": 8}]}\'')
    sweep.add_argument("--spec", default=None,
                       help="JSON sweep spec file (overrides the grid flags)")
    sweep.add_argument("--max-cycles", type=int, default=DEFAULT_MAX_CYCLES,
                       help="per-job cycle budget")
    sweep.add_argument("--no-resume", action="store_true",
                       help="discard existing results in --out and recompute")
    sweep.add_argument("--list", action="store_true", dest="list_jobs",
                       help="list the expanded jobs and their status, then exit")
    sweep.add_argument("--compare", nargs=2, metavar=("RUN_A", "RUN_B"),
                       help="diff two run directories instead of sweeping")
    sweep.set_defaults(func=_cmd_sweep)

    fuzz_cmd = subparsers.add_parser(
        "fuzz", help="differential-fuzz the fast engine against both simulators")
    fuzz_cmd.add_argument("--count", type=int, default=100,
                          help="number of random programs (default: 100)")
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="first generator seed (default: 0)")
    fuzz_cmd.add_argument("--max-instructions", type=int, default=200_000,
                          help="per-program instruction budget")
    fuzz_cmd.add_argument("--no-pipeline", action="store_true",
                          help="skip the (slower) cycle-accurate pipeline cross-check")
    fuzz_cmd.add_argument("--jobs", type=int, default=1,
                          help="worker processes sharing the seed range (default: 1)")
    fuzz_cmd.set_defaults(func=_cmd_fuzz)

    hw = subparsers.add_parser("hw", help="gate-level / FPGA implementation analysis")
    hw.set_defaults(func=_cmd_hw)

    workloads = subparsers.add_parser("workloads", help="list the bundled workloads")
    workloads.set_defaults(func=_cmd_workloads)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 1
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
