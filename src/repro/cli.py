"""Command-line interface for the ART-9 frameworks.

Subcommands::

    art9 translate <file.s>        translate an RV-32I assembly file to ART-9
    art9 run <file.s>              translate and run a cycle-accurate simulation
    art9 bench [workload ...]      run the bundled benchmarks (cycle counts)
    art9 sweep                     run/resume/compare/list evaluation sweeps
    art9 serve                     coordinate a sweep for remote workers (TCP)
    art9 work                      execute jobs for a remote coordinator
    art9 report                    paper tables (II-V, Fig. 5) from sweep runs
    art9 fuzz                      differential-fuzz the three ART-9 executors
    art9 hw                        print the gate-level / FPGA analysis
    art9 workloads                 list the bundled benchmark workloads

``run`` and ``bench`` accept ``--engine {fast,pipeline}`` to choose between
the pre-decoded integer engine (default) and the stage-by-stage pipeline
model; both produce identical cycle statistics.  ``sweep`` shards its grid
across an execution backend (``--backend {serial,multiprocessing,queue}``),
and ``serve``/``work`` split the queue backend across machines: the
coordinator hands jobs to any number of connected workers and streams
their records into the usual JSONL run directory (see
:mod:`repro.service`).

The CLI is a thin wrapper over :mod:`repro.framework`; anything it prints can
also be obtained programmatically.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import List, Optional

from repro.baselines import PicoRV32Model, VexRiscvModel
from repro.framework import HardwareFramework, SoftwareFramework
from repro.framework.hwflow import SIMULATION_ENGINES
from repro.runner import (
    ALL_ENGINES,
    DEFAULT_MAX_CYCLES,
    RunStore,
    SWEEP_PRESETS,
    SpecError,
    StoreError,
    SweepSpec,
    compare_runs,
    list_jobs,
    preset_spec,
    run_parallel_fuzz,
    run_sweep,
)
from repro.service import (
    AsyncQueueBackend,
    CoordinatorBindError,
    MultiprocessingBackend,
    ResultsDB,
    SerialBackend,
    build_report,
    render_report,
    work,
)
from repro.service.protocol import DEFAULT_PORT
from repro.workloads import all_workloads, get_workload


def _cmd_translate(args: argparse.Namespace) -> int:
    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    framework = SoftwareFramework(optimize=not args.no_optimize)
    program, report = framework.compile_riscv_assembly(source, name=args.source)
    print(report.summary())
    if args.listing:
        print()
        print(program.listing())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    software = SoftwareFramework()
    program, report = software.compile_riscv_assembly(source, name=args.source)
    hardware = HardwareFramework(engine=args.engine)
    stats = hardware.simulate(program)
    print(report.summary())
    print()
    print(stats.summary())
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name, workload in all_workloads().items():
        print(f"{name:14s} {workload.description}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    names = args.workloads or sorted(all_workloads())
    software = SoftwareFramework()
    hardware = HardwareFramework(engine=args.engine)
    header = f"{'workload':14s} {'ART-9 cycles':>14s} {'PicoRV32 cycles':>16s} {'VexRiscv cycles':>16s}"
    print(header)
    print("-" * len(header))
    for name in names:
        workload = get_workload(name)
        rv_program = workload.rv_program()
        program, _ = software.compile_workload(workload)
        stats = hardware.simulate(program)
        pico = PicoRV32Model().run(rv_program)
        vex = VexRiscvModel().run(rv_program)
        print(f"{name:14s} {stats.cycles:>14d} {pico.cycles:>16d} {vex.cycles:>16d}")
    return 0


def _sweep_spec_from_args(args: argparse.Namespace) -> SweepSpec:
    grid_flags_used = (args.workloads or args.engines or args.params
                       or args.optimize is not None
                       or args.max_cycles is not None)
    if args.spec:
        if getattr(args, "preset", None) or grid_flags_used:
            raise SpecError(
                "--spec replaces the grid flags and --preset; drop one side")
        return SweepSpec.from_file(args.spec)
    if getattr(args, "preset", None):
        if grid_flags_used:
            raise SpecError(
                "--preset replaces the grid flags; drop --workloads/"
                "--engines/--params/--optimize/--max-cycles or the preset")
        return preset_spec(args.preset)
    optimize = {None: (True, False), "both": (True, False),
                "on": (True,), "off": (False,)}[args.optimize]
    params = json.loads(args.params) if args.params else {}
    return SweepSpec(
        workloads=tuple(args.workloads or ()),
        engines=tuple(args.engines or SIMULATION_ENGINES),
        optimize=optimize,
        params=params,
        max_cycles=(DEFAULT_MAX_CYCLES if args.max_cycles is None
                    else args.max_cycles),
    )


def _sweep_progress(record: dict) -> None:
    if record.get("status") == "ok":
        print(
            f"[{record['job_id']}] {record['label']:40s} "
            f"{record['cycles']:>12d} cycles  CPI {record['cpi']:.3f}  "
            f"{'ok' if record.get('verified') else 'RESULT MISMATCH'}"
        )
    else:
        print(f"[{record['job_id']}] {record['label']:40s} {record.get('error')}")


def _finish_sweep(args: argparse.Namespace, outcome) -> int:
    print()
    print(RunStore(args.out).summary_table(outcome.records))
    print()
    print(outcome.summary())
    return 0 if outcome.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        return _run_sweep_command(args)
    except (SpecError, StoreError, json.JSONDecodeError) as exc:
        print(f"art9 sweep: {exc}", file=sys.stderr)
        return 2


def _run_sweep_command(args: argparse.Namespace) -> int:
    if args.compare:
        report = compare_runs(args.compare[0], args.compare[1])
        print(report.summary())
        return 0 if report.ok else 1

    spec = _sweep_spec_from_args(args)
    if args.list_jobs:
        out_dir = args.out if args.out else None
        for row in list_jobs(spec, out_dir):
            print(f"{row['job_id']}  {row['status']:8s} {row['label']}")
        return 0

    backend = None
    if args.backend == "serial":
        backend = SerialBackend()
    elif args.backend == "multiprocessing":
        backend = MultiprocessingBackend(processes=max(1, args.jobs))
    elif args.backend == "queue":
        backend = AsyncQueueBackend(workers=max(1, args.jobs))
    outcome = run_sweep(spec, args.out, jobs=args.jobs,
                        resume=not args.no_resume, progress=_sweep_progress,
                        backend=backend)
    return _finish_sweep(args, outcome)


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        spec = _sweep_spec_from_args(args)
    except (SpecError, StoreError, json.JSONDecodeError) as exc:
        print(f"art9 serve: {exc}", file=sys.stderr)
        return 2

    def announce(host: str, port: int) -> None:
        # A wildcard bind is not a dialable address; suggest something a
        # remote worker can actually connect to.
        reachable = socket.gethostname() if host in ("0.0.0.0", "::") else host
        print(f"coordinator listening on {host}:{port}; start workers with:")
        print(f"    art9 work --connect {reachable}:{port}")
        sys.stdout.flush()

    backend = AsyncQueueBackend(
        workers=args.local_workers,
        host=args.host,
        port=args.port,
        heartbeat_timeout=args.heartbeat_timeout,
        max_requeues=args.max_requeues,
        on_started=announce,
    )
    try:
        outcome = run_sweep(spec, args.out, resume=not args.no_resume,
                            progress=_sweep_progress, backend=backend)
    except (CoordinatorBindError, SpecError, StoreError) as exc:
        print(f"art9 serve: {exc}", file=sys.stderr)
        return 2
    if backend.stats is not None:
        print()
        print(backend.stats.summary())
    return _finish_sweep(args, outcome)


def _cmd_work(args: argparse.Namespace) -> int:
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"art9 work: --connect expects HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    try:
        summary = work(host, int(port), name=args.name,
                       heartbeat_interval=args.heartbeat_interval,
                       retry_seconds=args.retry_seconds)
    except OSError as exc:
        print(f"art9 work: cannot reach coordinator at {args.connect}: {exc}",
              file=sys.stderr)
        return 2
    print(summary.summary())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        with ResultsDB(args.db) as db:
            for run_dir in args.runs:
                ingest = db.ingest(run_dir)
                print(ingest.summary(), file=sys.stderr)
            if not db.runs():
                print("art9 report: no runs ingested (pass run directories, "
                      "or --db with previously ingested runs)", file=sys.stderr)
                return 2
            tables = build_report(db)
    except (StoreError, SpecError, json.JSONDecodeError) as exc:
        print(f"art9 report: {exc}", file=sys.stderr)
        return 2
    document = render_report(tables, fmt=args.format)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(document, end="")
    return 0 if all(table.ok for table in tables) else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    report = run_parallel_fuzz(
        count=args.count,
        seed=args.seed,
        jobs=args.jobs,
        max_instructions=args.max_instructions,
        check_pipeline=not args.no_pipeline,
    )
    print(report.summary())
    for failure in report.failures:
        print(f"\n{failure.program_name}:")
        for mismatch in failure.mismatches:
            print(f"  - {mismatch}")
    if report.failures:
        print(
            "\nreproduce with: repro.testing.run_differential("
            "generate_program(<seed from the program name>))"
        )
    return 0 if report.ok else 1


def _cmd_hw(args: argparse.Namespace) -> int:
    hardware = HardwareFramework()
    print(hardware.analyze_gates().summary())
    print()
    print(hardware.analyze_fpga().summary())
    return 0


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """Sweep-grid flags shared by ``art9 sweep`` and ``art9 serve``."""
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="workload names (default: all registered)")
    parser.add_argument("--engines", nargs="*", choices=ALL_ENGINES,
                        default=None,
                        help="engines (default: fast pipeline; baseline cores: "
                             "picorv32 vexriscv armv6m)")
    parser.add_argument("--optimize", choices=("both", "on", "off"),
                        default=None,
                        help="translator optimize axis (default: both)")
    parser.add_argument("--params", default=None,
                        help='JSON workload variants, e.g. '
                             '\'{"gemm": [{}, {"n": 8}]}\'')
    parser.add_argument("--preset", choices=SWEEP_PRESETS, default=None,
                        help="named grid, replacing the other grid flags: "
                             "default (grown size variants), paper (all "
                             "engines incl. baselines), smoke")
    parser.add_argument("--spec", default=None,
                        help="JSON sweep spec file, replacing the grid flags "
                             "and --preset")
    parser.add_argument("--max-cycles", type=int, default=None,
                        help=f"per-job cycle budget (default: {DEFAULT_MAX_CYCLES})")


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(prog="art9", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command")

    translate = subparsers.add_parser("translate", help="translate RV-32I assembly to ART-9")
    translate.add_argument("source", help="RV-32I assembly file")
    translate.add_argument("--listing", action="store_true", help="print the ART-9 listing")
    translate.add_argument("--no-optimize", action="store_true",
                           help="skip the redundancy-checking pass")
    translate.set_defaults(func=_cmd_translate)

    run = subparsers.add_parser("run", help="translate and run a cycle-accurate simulation")
    run.add_argument("source", help="RV-32I assembly file")
    run.add_argument("--engine", choices=SIMULATION_ENGINES, default="fast",
                     help="execution engine (default: fast)")
    run.set_defaults(func=_cmd_run)

    bench = subparsers.add_parser("bench", help="run the bundled benchmarks")
    bench.add_argument("workloads", nargs="*", help="workload names (default: all)")
    bench.add_argument("--engine", choices=SIMULATION_ENGINES, default="fast",
                       help="execution engine (default: fast)")
    bench.set_defaults(func=_cmd_bench)

    sweep = subparsers.add_parser(
        "sweep",
        help="run workload x engine x optimize sweeps across worker processes")
    sweep.add_argument("--out", default="sweeps/latest",
                       help="run directory (default: sweeps/latest); rerunning "
                            "the same directory resumes it")
    sweep.add_argument("--jobs", type=int, default=2,
                       help="worker processes (default: 2; 1 runs inline)")
    _add_grid_arguments(sweep)
    sweep.add_argument("--backend",
                       choices=("auto", "serial", "multiprocessing", "queue"),
                       default="auto",
                       help="execution backend (default: auto — inline for "
                            "--jobs 1, multiprocessing pool otherwise; queue "
                            "runs a TCP coordinator with --jobs local workers)")
    sweep.add_argument("--no-resume", action="store_true",
                       help="discard existing results in --out and recompute")
    sweep.add_argument("--list", action="store_true", dest="list_jobs",
                       help="list the expanded jobs and their status, then exit")
    sweep.add_argument("--compare", nargs=2, metavar=("RUN_A", "RUN_B"),
                       help="diff two run directories instead of sweeping")
    sweep.set_defaults(func=_cmd_sweep)

    serve = subparsers.add_parser(
        "serve",
        help="coordinate a sweep over TCP for art9 work clients")
    serve.add_argument("--out", default="sweeps/latest",
                       help="run directory (default: sweeps/latest); rerunning "
                            "the same directory resumes it")
    _add_grid_arguments(serve)
    serve.add_argument("--host", default="0.0.0.0",
                       help="address to listen on (default: 0.0.0.0)")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port (default: {DEFAULT_PORT}; 0 picks a free one)")
    serve.add_argument("--local-workers", type=int, default=0,
                       help="also spawn N worker processes on this machine "
                            "(default: 0 — wait for external workers)")
    serve.add_argument("--heartbeat-timeout", type=float, default=15.0,
                       help="seconds of worker silence before a job is requeued")
    serve.add_argument("--max-requeues", type=int, default=3,
                       help="dispatch retries before a job is declared lost")
    serve.add_argument("--no-resume", action="store_true",
                       help="discard existing results in --out and recompute")
    serve.set_defaults(func=_cmd_serve)

    work_cmd = subparsers.add_parser(
        "work", help="execute sweep jobs for a remote art9 serve coordinator")
    work_cmd.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="coordinator address, e.g. 192.168.1.10:7929")
    work_cmd.add_argument("--name", default=None,
                          help="worker name shown in coordinator stats "
                               "(default: hostname-pid)")
    work_cmd.add_argument("--heartbeat-interval", type=float, default=2.0,
                          help="seconds between heartbeats while executing")
    work_cmd.add_argument("--retry-seconds", type=float, default=10.0,
                          help="keep retrying the connection this long "
                               "(default: 10; lets workers start first)")
    work_cmd.set_defaults(func=_cmd_work)

    report = subparsers.add_parser(
        "report",
        help="regenerate the paper's Tables II-V and Fig. 5 from sweep runs")
    report.add_argument("runs", nargs="*", metavar="RUN_DIR",
                        help="sweep run directories to ingest")
    report.add_argument("--db", default=":memory:",
                        help="results database file (default: in-memory; a "
                             "file accumulates runs across invocations)")
    report.add_argument("--format", choices=("markdown", "csv"),
                        default="markdown", help="output format")
    report.add_argument("--out", default=None,
                        help="write the report here instead of stdout")
    report.set_defaults(func=_cmd_report)

    fuzz_cmd = subparsers.add_parser(
        "fuzz", help="differential-fuzz the fast engine against both simulators")
    fuzz_cmd.add_argument("--count", type=int, default=100,
                          help="number of random programs (default: 100)")
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="first generator seed (default: 0)")
    fuzz_cmd.add_argument("--max-instructions", type=int, default=200_000,
                          help="per-program instruction budget")
    fuzz_cmd.add_argument("--no-pipeline", action="store_true",
                          help="skip the (slower) cycle-accurate pipeline cross-check")
    fuzz_cmd.add_argument("--jobs", type=int, default=1,
                          help="worker processes sharing the seed range (default: 1)")
    fuzz_cmd.set_defaults(func=_cmd_fuzz)

    hw = subparsers.add_parser("hw", help="gate-level / FPGA implementation analysis")
    hw.set_defaults(func=_cmd_hw)

    workloads = subparsers.add_parser("workloads", help="list the bundled workloads")
    workloads.set_defaults(func=_cmd_workloads)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 1
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
