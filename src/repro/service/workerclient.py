"""Worker side of the distributed sweep service (``art9 work``).

A worker is a loop: connect, say hello, pull a job, execute it, stream the
record back (which doubles as the pull for the next job), repeat until the
coordinator says ``done``.  Execution happens in a thread-pool executor so
the asyncio side stays responsive; while a job runs, a side task sends
``heartbeat`` messages so the coordinator can tell a long simulation from a
dead worker.

The job executor is the exact same :func:`repro.runner.worker.execute_job`
the in-process backends use — including its per-process translation caches
— so a worker that receives both the fast-engine and pipeline jobs of a
workload still assembles and translates it only once, and a distributed
run produces records identical (modulo wall-clock and PIDs) to a serial
one.

Resilience (all of it lives on this side of the wire):

* **Reconnect with backoff.**  A lost connection no longer ends the
  worker: it reconnects with exponential backoff plus jitter, bounded by a
  ``max_retries`` attempt budget *and* a ``retry_window`` wall-clock
  budget (whichever trips first), both of which reset as soon as a
  connection makes progress.  This is what lets a worker fleet ride out a
  coordinator ``kill -9`` + ``art9 serve --resume`` restart.
* **At-least-once result delivery.**  The last result record is kept until
  the coordinator replies to it (the protocol is request-reply, so any
  reply acknowledges the preceding send); if the connection dies in
  between, the record is re-sent after reconnect with ``"resumed": true``.
  The coordinator deduplicates, so a crash between "job finished" and
  "record persisted" costs re-sending one line, never re-running the job.
* **Job wall-clock timeouts.**  With ``job_timeout`` set, a simulation
  that hangs past the budget yields a structured ``status="error"``
  timeout record and the worker moves on — the executor thread cannot be
  killed, so its eventual result is discarded, but the worker (and the
  run) no longer wedges with it.
* **Auth.**  The hello carries the shared token (``--auth-token`` /
  ``ART9_AUTH_TOKEN``) and the protocol version; a deterministic ``error``
  reply (bad token, too-new protocol) ends the worker immediately — no
  retry, the rejection will not change.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import random
import socket
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs import metrics
from repro.runner.spec import SweepJob
from repro.runner.worker import execute_job
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    read_message,
    send_and_drain,
)

logger = logging.getLogger(__name__)

#: Default seconds between heartbeats while a job is executing.
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: Seconds to wait for a coordinator reply before giving the connection up.
#: The protocol is request-reply from the worker's side — every read
#: follows a write and the coordinator answers immediately — so a long
#: silence means the coordinator host died without closing the socket
#: (power loss, network partition); the connection is abandoned and the
#: reconnect budget takes over.
DEFAULT_REPLY_TIMEOUT = 60.0

#: Default consecutive reconnect attempts before the worker gives up.
DEFAULT_MAX_RETRIES = 8

#: Default wall-clock seconds of consecutive failed reconnecting before
#: the worker gives up (whichever budget trips first wins).
DEFAULT_RETRY_WINDOW = 120.0

#: First reconnect delay; doubles per consecutive failure up to the cap.
BACKOFF_BASE_SECONDS = 0.25
BACKOFF_CAP_SECONDS = 10.0


@dataclass
class WorkerSummary:
    """What one worker session did."""

    worker: str
    jobs_completed: int = 0
    reconnects: int = 0
    timeouts: int = 0
    #: "done" (coordinator finished the run), "gave-up" (reconnect budget
    #: exhausted), or "rejected" (deterministic refusal: bad token or
    #: protocol).
    outcome: str = "done"
    detail: str = ""

    def summary(self) -> str:
        extras = []
        if self.reconnects:
            extras.append(f"{self.reconnects} reconnects")
        if self.timeouts:
            extras.append(f"{self.timeouts} job timeouts")
        if self.outcome != "done":
            extras.append(self.outcome if not self.detail
                          else f"{self.outcome}: {self.detail}")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return (f"worker {self.worker}: {self.jobs_completed} jobs "
                f"completed{suffix}")


def default_worker_name() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def timeout_job_record(job: SweepJob, seconds: float) -> dict:
    """Structured record for a job whose execution blew its time budget.

    ``status="error"`` like a lost-job record, so ``--resume`` retries the
    job and a summary table shows the failure instead of a silent gap.
    """
    return {
        "job_id": job.job_id,
        "label": job.label,
        **job.to_dict(),
        "status": "error",
        "error": f"job exceeded {seconds:g}s wall-clock execution timeout",
    }


def request_status(host: str, port: int, timeout: float = 5.0,
                   token: Optional[str] = None) -> dict:
    """Fetch a live coordinator status snapshot (``art9 status --connect``).

    Speaks the observer side of the protocol: one ``status`` request, one
    reply, disconnect.  Synchronous on purpose — a probe has no business
    inside the worker event loop — and safe against a running sweep: the
    coordinator answers from its own state without touching the queue.
    ``token`` authenticates the probe against a token-guarded coordinator.
    """
    request: dict = {"type": "status"}
    if token is not None:
        request["token"] = token
    payload = json.dumps(request, sort_keys=True,
                         separators=(",", ":")).encode("utf-8") + b"\n"
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(payload)
        with sock.makefile("r", encoding="utf-8") as stream:
            line = stream.readline()
    if not line:
        raise ConnectionError(
            f"coordinator at {host}:{port} closed the connection "
            "without answering the status request")
    reply = json.loads(line)
    if isinstance(reply, dict) and reply.get("type") == "error":
        raise ConnectionError(
            f"coordinator at {host}:{port} refused the status request: "
            f"{reply.get('error')}")
    if not isinstance(reply, dict) or reply.get("type") != "status" \
            or not isinstance(reply.get("status"), dict):
        raise ConnectionError(
            f"unexpected status reply from {host}:{port}: {reply!r}")
    return reply["status"]


async def _heartbeat_loop(writer: asyncio.StreamWriter, job_id: str,
                          interval: float) -> None:
    while True:
        await asyncio.sleep(interval)
        await send_and_drain(writer, {"type": "heartbeat", "job_id": job_id})


async def _connect(host: str, port: int, retry_seconds: float):
    """Open the coordinator connection, retrying while it boots."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + retry_seconds
    while True:
        try:
            return await asyncio.open_connection(host, port,
                                                 limit=MAX_MESSAGE_BYTES)
        except OSError:
            if loop.time() >= deadline:
                raise
            await asyncio.sleep(0.25)


async def _execute_with_timeout(loop, executor, job: SweepJob,
                                job_timeout: Optional[float],
                                summary: WorkerSummary) -> dict:
    """Run one job in the thread pool, bounded by the wall-clock budget."""
    future = loop.run_in_executor(None, executor, job)
    if not job_timeout or job_timeout <= 0:
        return await future
    try:
        # shield() keeps the executor future alive past the timeout — the
        # thread cannot be interrupted, so let it finish in the background
        # and discard whatever it produces.
        return await asyncio.wait_for(asyncio.shield(future), job_timeout)
    except asyncio.TimeoutError:
        summary.timeouts += 1
        metrics.counter("worker.job_timeouts").inc()
        logger.warning(
            "job execution timed out after %.1fs: job_id=%s (abandoning "
            "the executor thread, reporting a timeout record)",
            job_timeout, job.job_id,
            extra={"job_id": job.job_id})
        future.add_done_callback(lambda f: f.exception())
        return timeout_job_record(job, job_timeout)


class _Session:
    """Mutable state a worker carries across reconnects."""

    __slots__ = ("pending_record", "made_progress")

    def __init__(self):
        #: The last result sent but not yet acknowledged by any reply.
        self.pending_record: Optional[dict] = None
        #: Whether the current connection read at least one message
        #: (resets the reconnect budget).
        self.made_progress = False


async def _serve_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    name: str,
    session: _Session,
    summary: WorkerSummary,
    heartbeat_interval: float,
    executor: Callable[[SweepJob], dict],
    reply_timeout: float,
    auth_token: Optional[str],
    job_timeout: Optional[float],
) -> str:
    """One connection's lifetime; returns "done", "rejected", or "lost"."""
    loop = asyncio.get_running_loop()
    session.made_progress = False
    hello: dict = {"type": "hello", "worker": name, "pid": os.getpid(),
                   "protocol": PROTOCOL_VERSION}
    if auth_token is not None:
        hello["token"] = auth_token
    await send_and_drain(writer, hello)
    if session.pending_record is not None:
        # Re-deliver the record the previous connection died on; the
        # coordinator drops it as a duplicate if the original arrived.
        await send_and_drain(writer, {"type": "result",
                                      "record": session.pending_record,
                                      "resumed": True})
    else:
        await send_and_drain(writer, {"type": "next"})
    while True:
        try:
            message = await asyncio.wait_for(read_message(reader),
                                             timeout=reply_timeout)
        except asyncio.TimeoutError:
            return "lost"  # coordinator vanished without closing the socket
        if message is None:
            return "lost"
        session.made_progress = True
        mtype = message.get("type")
        if mtype == "error":
            summary.detail = str(message.get("error") or "refused")
            return "rejected"
        # Any reply acknowledges whatever we sent last — including a
        # pending re-sent record — because the coordinator processes one
        # message at a time per connection.
        session.pending_record = None
        if mtype == "done":
            return "done"
        if mtype == "wait":
            await asyncio.sleep(float(message.get("delay", 0.2)))
            await send_and_drain(writer, {"type": "next"})
            continue
        if mtype != "job":
            await send_and_drain(writer, {"type": "next"})
            continue
        job = SweepJob.from_dict(message["job"])
        # The coordinator names the cadence its timeout needs; beat at
        # whichever is faster so configuration mismatches cannot make
        # a healthy job look dead.
        interval = min(heartbeat_interval,
                       float(message.get("heartbeat_every",
                                         heartbeat_interval)))
        heartbeat = asyncio.create_task(
            _heartbeat_loop(writer, job.job_id, interval))
        try:
            record = await _execute_with_timeout(loop, executor, job,
                                                 job_timeout, summary)
        finally:
            heartbeat.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await heartbeat
        summary.jobs_completed += 1
        session.pending_record = record
        await send_and_drain(writer, {"type": "result", "record": record})


async def work_async(
    host: str,
    port: int,
    name: Optional[str] = None,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    executor: Callable[[SweepJob], dict] = execute_job,
    retry_seconds: float = 0.0,
    reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
    auth_token: Optional[str] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    retry_window: float = DEFAULT_RETRY_WINDOW,
) -> WorkerSummary:
    """Serve one coordinator until it reports the run complete.

    ``executor`` is injectable for tests (fault-injection workers execute a
    stub instead of a real simulation); production callers leave it alone.
    ``retry_seconds`` bounds the *initial* connection (the coordinator may
    still be booting; failure raises as before); once connected, lost
    connections are retried with exponential backoff + jitter under the
    ``max_retries`` / ``retry_window`` budget, which resets whenever a
    connection reads at least one reply.
    """
    name = name or default_worker_name()
    summary = WorkerSummary(worker=name)
    session = _Session()
    # Deterministic per-worker jitter: workers desynchronize their
    # reconnect stampede without the test suite losing reproducibility.
    rng = random.Random(name)
    loop = asyncio.get_running_loop()
    reader, writer = await _connect(host, port, retry_seconds)
    consecutive_failures = 0
    window_start: Optional[float] = None
    while True:
        reason = "lost"
        if writer is not None:
            try:
                reason = await _serve_connection(
                    reader, writer, name, session, summary,
                    heartbeat_interval, executor, reply_timeout,
                    auth_token, job_timeout)
            except ConnectionError:
                reason = "lost"
            finally:
                writer.close()
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.wait_closed()
                reader = writer = None
            if reason in ("done", "rejected"):
                summary.outcome = reason
                return summary
            if session.made_progress:
                consecutive_failures = 0
                window_start = None
        # The connection died (or the reconnect attempt below failed):
        # spend one unit of the retry budget and back off.
        now = loop.time()
        if window_start is None:
            window_start = now
        consecutive_failures += 1
        if consecutive_failures > max_retries:
            summary.outcome = "gave-up"
            summary.detail = (f"no coordinator after {max_retries} "
                              "reconnect attempts")
            return summary
        if now - window_start > retry_window:
            summary.outcome = "gave-up"
            summary.detail = (f"no coordinator for {retry_window:g}s")
            return summary
        delay = min(BACKOFF_CAP_SECONDS,
                    BACKOFF_BASE_SECONDS * (2 ** (consecutive_failures - 1)))
        await asyncio.sleep(delay * (0.5 + rng.random()))
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=MAX_MESSAGE_BYTES)
        except OSError:
            continue  # next lap spends another unit of the budget
        summary.reconnects += 1
        metrics.counter("worker.reconnects").inc()
        logger.info("worker reconnected to %s:%d (attempt %d)",
                    host, port, consecutive_failures,
                    extra={"worker_id": name})


def work(host: str, port: int, name: Optional[str] = None,
         heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
         retry_seconds: float = 0.0,
         reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
         auth_token: Optional[str] = None,
         job_timeout: Optional[float] = None,
         max_retries: int = DEFAULT_MAX_RETRIES,
         retry_window: float = DEFAULT_RETRY_WINDOW) -> WorkerSummary:
    """Synchronous front end of :func:`work_async` (the ``art9 work`` body)."""
    return asyncio.run(work_async(host, port, name=name,
                                  heartbeat_interval=heartbeat_interval,
                                  retry_seconds=retry_seconds,
                                  reply_timeout=reply_timeout,
                                  auth_token=auth_token,
                                  job_timeout=job_timeout,
                                  max_retries=max_retries,
                                  retry_window=retry_window))


def run_worker_process(host: str, port: int,
                       heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                       retry_seconds: float = 30.0,
                       auth_token: Optional[str] = None,
                       job_timeout: Optional[float] = None) -> None:
    """Entry point for locally spawned worker processes (picklable)."""
    work(host, port, heartbeat_interval=heartbeat_interval,
         retry_seconds=retry_seconds, auth_token=auth_token,
         job_timeout=job_timeout)
