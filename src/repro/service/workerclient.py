"""Worker side of the distributed sweep service (``art9 work``).

A worker is a loop: connect, say hello, pull a job, execute it, stream the
record back (which doubles as the pull for the next job), repeat until the
coordinator says ``done``.  Execution happens in a thread-pool executor so
the asyncio side stays responsive; while a job runs, a side task sends
``heartbeat`` messages so the coordinator can tell a long simulation from a
dead worker.

The job executor is the exact same :func:`repro.runner.worker.execute_job`
the in-process backends use — including its per-process translation caches
— so a worker that receives both the fast-engine and pipeline jobs of a
workload still assembles and translates it only once, and a distributed
run produces records identical (modulo wall-clock and PIDs) to a serial
one.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import socket
from dataclasses import dataclass
from typing import Callable, Optional

from repro.runner.spec import SweepJob
from repro.runner.worker import execute_job
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    read_message,
    send_and_drain,
)

#: Default seconds between heartbeats while a job is executing.
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: Seconds to wait for a coordinator reply before giving the connection up.
#: The protocol is request-reply from the worker's side — every read
#: follows a write and the coordinator answers immediately — so a long
#: silence means the coordinator host died without closing the socket
#: (power loss, network partition); without this cap the worker would
#: block in readline() forever.
DEFAULT_REPLY_TIMEOUT = 60.0


@dataclass
class WorkerSummary:
    """What one worker session did."""

    worker: str
    jobs_completed: int = 0

    def summary(self) -> str:
        return f"worker {self.worker}: {self.jobs_completed} jobs completed"


def default_worker_name() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def request_status(host: str, port: int, timeout: float = 5.0) -> dict:
    """Fetch a live coordinator status snapshot (``art9 status --connect``).

    Speaks the observer side of the protocol: one ``status`` request, one
    reply, disconnect.  Synchronous on purpose — a probe has no business
    inside the worker event loop — and safe against a running sweep: the
    coordinator answers from its own state without touching the queue.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(b'{"type":"status"}\n')
        with sock.makefile("r", encoding="utf-8") as stream:
            line = stream.readline()
    if not line:
        raise ConnectionError(
            f"coordinator at {host}:{port} closed the connection "
            "without answering the status request")
    reply = json.loads(line)
    if not isinstance(reply, dict) or reply.get("type") != "status" \
            or not isinstance(reply.get("status"), dict):
        raise ConnectionError(
            f"unexpected status reply from {host}:{port}: {reply!r}")
    return reply["status"]


async def _heartbeat_loop(writer: asyncio.StreamWriter, job_id: str,
                          interval: float) -> None:
    while True:
        await asyncio.sleep(interval)
        await send_and_drain(writer, {"type": "heartbeat", "job_id": job_id})


async def _connect(host: str, port: int, retry_seconds: float):
    """Open the coordinator connection, retrying while it boots."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + retry_seconds
    while True:
        try:
            return await asyncio.open_connection(host, port,
                                                 limit=MAX_MESSAGE_BYTES)
        except OSError:
            if loop.time() >= deadline:
                raise
            await asyncio.sleep(0.25)


async def work_async(
    host: str,
    port: int,
    name: Optional[str] = None,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    executor: Callable[[SweepJob], dict] = execute_job,
    retry_seconds: float = 0.0,
    reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
) -> WorkerSummary:
    """Serve one coordinator until it reports the run complete.

    ``executor`` is injectable for tests (fault-injection workers execute a
    stub instead of a real simulation); production callers leave it alone.
    A coordinator that stays silent for ``reply_timeout`` seconds after a
    request is treated as dead and the worker exits instead of hanging.
    """
    name = name or default_worker_name()
    summary = WorkerSummary(worker=name)
    reader, writer = await _connect(host, port, retry_seconds)
    loop = asyncio.get_running_loop()
    try:
        await send_and_drain(writer, {"type": "hello", "worker": name,
                                      "pid": os.getpid()})
        await send_and_drain(writer, {"type": "next"})
        while True:
            try:
                message = await asyncio.wait_for(read_message(reader),
                                                 timeout=reply_timeout)
            except asyncio.TimeoutError:
                break  # coordinator vanished without closing the socket
            if message is None or message.get("type") == "done":
                break
            if message.get("type") == "wait":
                await asyncio.sleep(float(message.get("delay", 0.2)))
                await send_and_drain(writer, {"type": "next"})
                continue
            if message.get("type") != "job":
                await send_and_drain(writer, {"type": "next"})
                continue
            job = SweepJob.from_dict(message["job"])
            # The coordinator names the cadence its timeout needs; beat at
            # whichever is faster so configuration mismatches cannot make
            # a healthy job look dead.
            interval = min(heartbeat_interval,
                           float(message.get("heartbeat_every",
                                             heartbeat_interval)))
            heartbeat = asyncio.create_task(
                _heartbeat_loop(writer, job.job_id, interval))
            try:
                record = await loop.run_in_executor(None, executor, job)
            finally:
                heartbeat.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await heartbeat
            summary.jobs_completed += 1
            await send_and_drain(writer, {"type": "result", "record": record})
    except ConnectionError:
        pass  # the coordinator shut down; whatever we held gets requeued
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await writer.wait_closed()
    return summary


def work(host: str, port: int, name: Optional[str] = None,
         heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
         retry_seconds: float = 0.0,
         reply_timeout: float = DEFAULT_REPLY_TIMEOUT) -> WorkerSummary:
    """Synchronous front end of :func:`work_async` (the ``art9 work`` body)."""
    return asyncio.run(work_async(host, port, name=name,
                                  heartbeat_interval=heartbeat_interval,
                                  retry_seconds=retry_seconds,
                                  reply_timeout=reply_timeout))


def run_worker_process(host: str, port: int,
                       heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                       retry_seconds: float = 30.0) -> None:
    """Entry point for locally spawned worker processes (picklable)."""
    work(host, port, heartbeat_interval=heartbeat_interval,
         retry_seconds=retry_seconds)
