"""Pluggable execution backends for the sweep orchestrator.

``run_sweep`` used to hard-code one execution strategy (inline loop or a
``multiprocessing`` pool); this module extracts that choice behind the
:class:`ExecutionBackend` interface so the same expansion/resume/store
machinery can run jobs in-process, across a local worker pool, or across a
TCP coordinator with remote workers (:class:`~repro.service.queue_backend.
AsyncQueueBackend`).

A backend's contract is deliberately minimal: ``execute(jobs, emit)`` runs
every job exactly once (or emits an error record for it) and calls ``emit``
with each finished record as it arrives, from the calling thread.  Record
*content* must be backend-independent — the conformance suite asserts that
every backend produces the same result set for the same jobs, modulo the
volatile wall-clock/PID fields listed in
:data:`repro.runner.store.VOLATILE_RECORD_FIELDS`.
"""

from __future__ import annotations

import abc
import multiprocessing
from typing import Callable, Sequence

from repro.runner.spec import SweepJob
from repro.runner.worker import batchable_groups, execute_job, execute_job_batch

#: Callback receiving each finished record.
EmitFn = Callable[[dict], None]


class ExecutionBackend(abc.ABC):
    """Strategy for executing a batch of sweep jobs."""

    #: Stable identifier used by the CLI and logs.
    name: str = "backend"

    @abc.abstractmethod
    def execute(self, jobs: Sequence[SweepJob], emit: EmitFn) -> None:
        """Run every job, calling ``emit(record)`` as each one finishes."""

    def describe(self) -> str:
        """One-line human description for progress output."""
        return self.name


class SerialBackend(ExecutionBackend):
    """Run jobs inline in the calling process.

    Shares the module-level framework caches of
    :mod:`repro.runner.worker`, so a serial sweep still translates each
    distinct workload instance exactly once.  ``batch=True`` groups
    same-grid-point jobs (identical workload/engine/optimize/machine and
    params apart from ``seed``) through one multi-lane
    :class:`~repro.sim.batch.BatchEngine` execution; record content is
    unchanged — the conformance suite holds batched backends to the same
    byte-identical contract.
    """

    name = "serial"

    def __init__(self, batch: bool = False):
        self.batch = batch

    def describe(self) -> str:
        return f"{self.name} (batched)" if self.batch else self.name

    def execute(self, jobs: Sequence[SweepJob], emit: EmitFn) -> None:
        if self.batch:
            for group in batchable_groups(list(jobs)):
                for record in execute_job_batch(group):
                    emit(record)
            return
        for job in jobs:
            emit(execute_job(job))


class MultiprocessingBackend(ExecutionBackend):
    """Shard jobs across a pool of persistent local worker processes.

    ``batch=True`` ships whole same-grid-point groups to the pool so each
    worker executes its group through one multi-lane batch engine; group
    boundaries (not single jobs) become the load-balancing unit.
    """

    name = "multiprocessing"

    def __init__(self, processes: int = 2, batch: bool = False):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.processes = processes
        self.batch = batch

    def describe(self) -> str:
        suffix = ", batched" if self.batch else ""
        return f"{self.name} ({self.processes} processes{suffix})"

    def execute(self, jobs: Sequence[SweepJob], emit: EmitFn) -> None:
        if not jobs:
            return
        if self.processes == 1 or len(jobs) == 1:
            SerialBackend(batch=self.batch).execute(jobs, emit)
            return
        if self.batch:
            groups = batchable_groups(list(jobs))
            with multiprocessing.Pool(processes=self.processes) as pool:
                for records in pool.imap_unordered(execute_job_batch, groups,
                                                   chunksize=1):
                    for record in records:
                        emit(record)
            return
        # Workers stay warm across all the jobs of this run, which is where
        # the per-process translation cache pays off.  chunksize=1 keeps the
        # shards balanced — job costs vary by orders of magnitude across the
        # grid (fast vs pipeline engine, small vs grown workload variants).
        with multiprocessing.Pool(processes=self.processes) as pool:
            for record in pool.imap_unordered(execute_job, list(jobs),
                                              chunksize=1):
                emit(record)


def default_backend(jobs: int) -> ExecutionBackend:
    """The orchestrator's historical behaviour as a backend choice."""
    if jobs > 1:
        return MultiprocessingBackend(processes=jobs)
    return SerialBackend()
