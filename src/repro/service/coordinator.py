"""Asyncio TCP coordinator: hands sweep jobs to pulling workers.

The coordinator owns the job queue of one sweep run.  Workers connect over
TCP, pull a job whenever they are idle (so a fast worker naturally steals
the load a slow one would otherwise sit on), execute it on their side and
stream the result record back; the coordinator forwards every accepted
record to its ``on_result`` callback — in practice the orchestrator's
store-append — so a run killed at any point loses at most the jobs that
were in flight.

Crash tolerance is entirely the coordinator's job:

* a **dropped connection** requeues whatever job that worker was holding;
* a **missed heartbeat** (no message about the job for ``heartbeat_timeout``
  seconds) requeues the job even though the connection still looks open —
  the watchdog assumes the worker process wedged or died without closing
  its socket;
* a **late result** from a worker whose job was already requeued and
  finished elsewhere is counted and dropped — the first accepted record
  wins, so duplicated execution can never duplicate records;
* a job requeued more than ``max_requeues`` times is declared **lost** and
  completed with a synthetic ``status="error"`` record (resume retries it,
  and one poison job cannot wedge the whole run);
* a **result for a job the coordinator never enqueued** is refused and
  counted — after a ``--resume`` restart a reconnecting worker may re-send
  a record whose job already completed in the previous incarnation, and a
  stray client can fabricate records; neither may disturb accounting;
* the **coordinator's own death** is covered by the write-ahead journal
  (:mod:`repro.service.journal`, wired in by the caller): every enqueue /
  lease / accept / requeue is an fsync'd event next to ``results.jsonl``,
  so ``art9 serve --resume`` rebuilds the pending set, requeues formerly
  leased jobs, and keeps the poison budget counting across the crash.

When constructed with an ``auth_token``, every connection must present it
in its first message (constant-time compare) or it is refused with a
deterministic ``error`` reply — stray or malicious clients can neither
receive jobs nor inject results.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import logging
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Mapping, Optional, Sequence

from repro.obs import metrics
from repro.runner.spec import SweepJob
from repro.service.journal import RunJournal
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    read_message,
    send_and_drain,
    send_message,
    token_matches,
)

logger = logging.getLogger(__name__)

#: Default seconds without any message about a job before it is requeued.
DEFAULT_HEARTBEAT_TIMEOUT = 15.0

#: Default number of requeues before a job is declared lost.
DEFAULT_MAX_REQUEUES = 3


@dataclass
class _InFlight:
    """One job currently assigned to one worker connection."""

    job: SweepJob
    connection_id: int
    worker: str
    last_seen: float


@dataclass
class CoordinatorStats:
    """Counters describing what one coordinator run did."""

    jobs_total: int = 0
    results_accepted: int = 0
    duplicate_results: int = 0
    malformed_results: int = 0
    unknown_results: int = 0
    requeues: int = 0
    lost_jobs: int = 0
    workers_seen: int = 0
    reconnects: int = 0
    auth_failures: int = 0
    recovered_jobs: int = 0
    worker_names: list = field(default_factory=list)

    def summary(self) -> str:
        extras = []
        if self.malformed_results:
            extras.append(f"{self.malformed_results} malformed results")
        if self.unknown_results:
            extras.append(f"{self.unknown_results} unknown results")
        if self.reconnects:
            extras.append(f"{self.reconnects} reconnects")
        if self.auth_failures:
            extras.append(f"{self.auth_failures} auth failures")
        if self.recovered_jobs:
            extras.append(f"{self.recovered_jobs} recovered jobs")
        suffix = (", " + ", ".join(extras)) if extras else ""
        return (
            f"coordinator: {self.results_accepted}/{self.jobs_total} jobs from "
            f"{self.workers_seen} workers ({self.requeues} requeued, "
            f"{self.lost_jobs} lost, {self.duplicate_results} duplicate "
            f"results{suffix})"
        )


class CoordinatorBindError(OSError):
    """The coordinator could not listen on the requested address."""


def lost_job_record(job: SweepJob, attempts: int, reason: str) -> dict:
    """Synthetic error record for a job no worker managed to finish."""
    return {
        "job_id": job.job_id,
        "label": job.label,
        **job.to_dict(),
        "status": "error",
        "error": f"lost after {attempts} dispatch attempts ({reason})",
    }


class Coordinator:
    """TCP job server for one batch of sweep jobs.

    ``serve()`` runs until every job has exactly one accepted record (real
    or synthetic-lost), then closes the listener.  The bound port is
    available as :attr:`port` once :meth:`wait_started` returns, which is
    what lets callers bind port 0 and spawn workers against the real port.

    ``journal`` (a :class:`~repro.service.journal.RunJournal`) makes the
    scheduler's state machine durable; ``dispatch_counts`` seeds the
    poison-job budget from a journal replay so a ``--resume`` restart does
    not hand a crashing job a fresh set of attempts; ``auth_token``
    requires every connection to authenticate its first message.
    """

    def __init__(
        self,
        jobs: Sequence[SweepJob],
        on_result: Optional[Callable[[dict], None]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        journal: Optional[RunJournal] = None,
        auth_token: Optional[str] = None,
        dispatch_counts: Optional[Mapping[str, int]] = None,
        recovered_jobs: int = 0,
    ):
        self._pending: Deque[SweepJob] = deque(jobs)
        self._on_result = on_result
        self._host = host
        self._requested_port = port
        self._heartbeat_timeout = heartbeat_timeout
        self._max_requeues = max_requeues
        self._journal = journal
        self._auth_token = auth_token

        self._in_flight: Dict[str, _InFlight] = {}
        self._done: Dict[str, dict] = {}
        self._dispatch_counts: Dict[str, int] = dict(dispatch_counts or {})
        # Results are only accepted for jobs this run actually owns; a
        # reconnecting worker re-sending a record its previous coordinator
        # already persisted (and this --resume run therefore never
        # enqueued) must not inflate the done count past jobs_total.
        self._known_jobs = {job.job_id for job in self._pending}
        # worker name -> {"jobs_done", "requeues", "requeue_reasons",
        # "last_seen"} for the live status snapshot; purely observational.
        self._worker_stats: Dict[str, dict] = {}
        self._seen_worker_names: set = set()
        self._connection_ids = itertools.count(1)
        self._handler_tasks: set = set()
        self._writers: set = set()

        self.stats = CoordinatorStats(jobs_total=len(self._pending),
                                      recovered_jobs=recovered_jobs)
        self.port: Optional[int] = None
        self._started = asyncio.Event()
        self._all_done = asyncio.Event()
        self._fatal: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------

    async def wait_started(self) -> Optional[int]:
        """Block until the listener is up (or failed to bind).

        Returns the bound port, or ``None`` when :meth:`serve` could not
        listen — in that case awaiting the serve task yields the bind
        error.
        """
        await self._started.wait()
        return self.port

    @property
    def connected_workers(self) -> int:
        """Worker connections currently open."""
        return len(self._handler_tasks)

    def _journal_event(self, event: str, **fields) -> None:
        if self._journal is None:
            return
        try:
            self._journal.append(event, **fields)
        except OSError as exc:
            # Journal writes are advisory durability, results.jsonl is the
            # source of truth; a full disk here should surface as the
            # store-append failure it is about to become, not kill the
            # handler mid-protocol.
            logger.error("journal append failed (%s); continuing without "
                         "durability for this event", exc)

    async def serve(self) -> CoordinatorStats:
        """Listen, dispatch, and return once every job has a record."""
        if not self._pending:
            self._all_done.set()
            self._started.set()
            return self.stats
        if self._journal is not None:
            try:
                self._journal.append_many(
                    {"event": "enqueued", "job_id": job.job_id}
                    for job in self._pending)
            except OSError as exc:
                logger.error("journal enqueue batch failed (%s)", exc)
        try:
            server = await asyncio.start_server(
                self._handle_connection, self._host, self._requested_port,
                limit=MAX_MESSAGE_BYTES)
        except OSError as exc:
            # Port in use / unbindable address: unblock wait_started()
            # (port stays None) so callers see the error instead of
            # waiting forever.
            self._started.set()
            raise CoordinatorBindError(
                f"cannot listen on {self._host}:{self._requested_port}: {exc}"
            ) from exc
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        watchdog = asyncio.create_task(self._watchdog())
        try:
            await self._all_done.wait()
        finally:
            watchdog.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await watchdog
            server.close()
            if self._fatal is None and self.outstanding <= 0:
                # The run completed: tell every still-connected worker so
                # idle ones exit cleanly instead of mistaking the closed
                # socket for a crash and burning their reconnect budget.
                for writer in list(self._writers):
                    with contextlib.suppress(Exception):
                        send_message(writer, {"type": "done"})
                    with contextlib.suppress(Exception):
                        await asyncio.wait_for(writer.drain(), timeout=1.0)
            # Workers that were waiting for more work may still hold open
            # connections; cancel their handlers so shutdown is quiet.
            for task in list(self._handler_tasks):
                task.cancel()
            if self._handler_tasks:
                await asyncio.gather(*self._handler_tasks,
                                     return_exceptions=True)
            await server.wait_closed()
        if self._fatal is not None:
            # A result callback (store append, progress print) failed; the
            # records it would have persisted are NOT in the store, so the
            # run must fail loudly instead of reporting success.
            raise self._fatal
        return self.stats

    # -- queue bookkeeping --------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Jobs that do not have an accepted record yet."""
        return self.stats.jobs_total - len(self._done)

    def _worker_entry(self, worker: str) -> dict:
        entry = self._worker_stats.get(worker)
        if entry is None:
            entry = self._worker_stats[worker] = {
                "jobs_done": 0, "requeues": 0, "requeue_reasons": {},
                "last_seen": time.monotonic(),
            }
        return entry

    def status_snapshot(self) -> dict:
        """Point-in-time view of the queue and the worker fleet.

        Served over the wire for ``status`` requests (``art9 status
        --connect``); reads coordinator state only — no scheduling
        decision is taken or deferred on its behalf.
        """
        now = time.monotonic()
        return {
            "jobs_total": self.stats.jobs_total,
            "queue_depth": len(self._pending),
            "in_flight": len(self._in_flight),
            "done": len(self._done),
            "outstanding": self.outstanding,
            "requeues": self.stats.requeues,
            "lost_jobs": self.stats.lost_jobs,
            "duplicate_results": self.stats.duplicate_results,
            "unknown_results": self.stats.unknown_results,
            "reconnects": self.stats.reconnects,
            "auth_failures": self.stats.auth_failures,
            "recovered_jobs": self.stats.recovered_jobs,
            "connected_workers": self.connected_workers,
            "workers": {
                name: {
                    "jobs_done": entry["jobs_done"],
                    "requeues": entry["requeues"],
                    # Requeue cause histogram ({"disconnect": 2, ...}) so a
                    # status probe can tell a flaky link (disconnects) from
                    # a slow or wedged worker (heartbeat timeouts) — a bare
                    # requeue count blames the worker either way.
                    "requeue_reasons": dict(entry["requeue_reasons"]),
                    "heartbeat_age_s": round(now - entry["last_seen"], 3),
                }
                for name, entry in sorted(self._worker_stats.items())
            },
        }

    def _accept(self, record: dict) -> bool:
        """Take one result record; returns False for duplicates."""
        job_id = record.get("job_id")
        if self._fatal is not None:
            return False
        if not isinstance(job_id, str):
            # A record without a job identity cannot complete anything; the
            # job it was meant for stays in flight until the watchdog
            # requeues it, so leave a trace of what actually happened.
            self.stats.malformed_results += 1
            logger.warning("dropping result record without a job_id "
                           "(keys: %s)", sorted(record))
            return False
        if job_id not in self._known_jobs:
            self.stats.unknown_results += 1
            metrics.counter("coordinator.unknown_results").inc()
            logger.warning("dropping result for job this run never enqueued: "
                           "job_id=%s", job_id,
                           extra={"job_id": job_id})
            return False
        if job_id in self._done:
            self.stats.duplicate_results += 1
            return False
        if self._on_result is not None:
            try:
                self._on_result(record)
            except BaseException as exc:
                # The callback persists records (store append, progress
                # print); if it fails the record is lost, so abort the run
                # with the real error rather than completing "OK" with
                # results silently missing.
                self._fatal = exc
                self._all_done.set()
                return False
        self._done[job_id] = record
        self._in_flight.pop(job_id, None)
        if any(job.job_id == job_id for job in self._pending):
            # The job was requeued after a timeout but the original worker
            # finished after all; drop the queued duplicate dispatch.
            self._pending = deque(
                job for job in self._pending if job.job_id != job_id)
        self.stats.results_accepted += 1
        self._journal_event("result-accepted", job_id=job_id,
                            status=str(record.get("status") or "?"))
        if self.outstanding <= 0:
            self._all_done.set()
        return True

    def abort(self, reason: str) -> None:
        """Complete every unfinished job as lost and stop serving.

        Used by the local-worker backend when all of its worker processes
        exited with work still outstanding — the run finishes with error
        records (which resume retries) instead of hanging forever.
        """
        for job_id, entry in list(self._in_flight.items()):
            del self._in_flight[job_id]
            self.stats.lost_jobs += 1
            attempts = self._dispatch_counts.get(job_id, 1)
            self._journal_event("lost", job_id=job_id, reason=reason,
                                attempts=attempts)
            self._accept(lost_job_record(entry.job, attempts, reason))
        while self._pending:
            job = self._pending.popleft()
            self.stats.lost_jobs += 1
            attempts = self._dispatch_counts.get(job.job_id, 0)
            self._journal_event("lost", job_id=job.job_id, reason=reason,
                                attempts=attempts)
            self._accept(lost_job_record(job, attempts, reason))
        self._all_done.set()

    def _requeue(self, entry: _InFlight, reason: str,
                 kind: str = "disconnect") -> None:
        attempts = self._dispatch_counts.get(entry.job.job_id, 1)
        worker_entry = self._worker_entry(entry.worker)
        worker_entry["requeues"] += 1
        reasons = worker_entry["requeue_reasons"]
        reasons[kind] = reasons.get(kind, 0) + 1
        if attempts > self._max_requeues:
            self.stats.lost_jobs += 1
            metrics.counter("coordinator.lost_jobs").inc()
            logger.info(
                "poison job declared lost: worker=%s job_id=%s attempts=%d "
                "reason=%s", entry.worker, entry.job.job_id, attempts, reason,
                extra={"worker_id": entry.worker,
                       "job_id": entry.job.job_id,
                       "reason": reason})
            self._journal_event("lost", job_id=entry.job.job_id,
                                reason=reason, attempts=attempts)
            self._accept(lost_job_record(entry.job, attempts, reason))
            return
        self.stats.requeues += 1
        metrics.counter("coordinator.requeues").inc()
        logger.info(
            "job requeued: worker=%s job_id=%s attempt=%d reason=%s",
            entry.worker, entry.job.job_id, attempts, reason,
            extra={"worker_id": entry.worker,
                   "job_id": entry.job.job_id,
                   "reason": reason})
        self._journal_event("requeued", job_id=entry.job.job_id,
                            reason=reason, worker=entry.worker, kind=kind)
        self._pending.append(entry.job)

    def _assign(self, connection_id: int, worker: str) -> dict:
        """Next reply for an idle worker: a job, a wait, or done."""
        if self._pending:
            job = self._pending.popleft()
            now = time.monotonic()
            self._in_flight[job.job_id] = _InFlight(
                job=job, connection_id=connection_id, worker=worker,
                last_seen=now)
            attempt = self._dispatch_counts.get(job.job_id, 0) + 1
            self._dispatch_counts[job.job_id] = attempt
            self._journal_event("leased", job_id=job.job_id, worker=worker,
                                attempt=attempt)
            return {
                "type": "job", "job_id": job.job_id, "job": job.to_dict(),
                # Workers beat well inside the timeout no matter how the
                # two sides were configured — a timeout shorter than the
                # worker's default interval must not declare healthy
                # long-running jobs dead.
                "heartbeat_every": max(0.05, self._heartbeat_timeout / 4),
            }
        if self.outstanding <= 0:
            return {"type": "done"}
        # Jobs are in flight on other connections; poll back soon in case
        # one of them is requeued.
        return {"type": "wait",
                "delay": max(0.05, min(0.5, self._heartbeat_timeout / 8))}

    # -- connection handling ------------------------------------------------

    async def _refuse(self, writer: asyncio.StreamWriter,
                      error: str) -> None:
        """Send a deterministic rejection; the client must not retry."""
        self.stats.auth_failures += 1
        metrics.counter("coordinator.auth_failures").inc()
        with contextlib.suppress(ConnectionError, OSError):
            await send_and_drain(writer, {"type": "error", "error": error})

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._writers.add(writer)
        connection_id = next(self._connection_ids)
        worker = f"conn-{connection_id}"
        assigned: Optional[str] = None
        authenticated = self._auth_token is None
        try:
            while True:
                message = await read_message(reader)
                if message is None:
                    break
                mtype = message.get("type")
                if mtype == "hello":
                    protocol = message.get("protocol", 1)
                    if not isinstance(protocol, int) or \
                            protocol > PROTOCOL_VERSION:
                        await self._refuse(
                            writer,
                            f"unsupported protocol {protocol!r} "
                            f"(coordinator speaks {PROTOCOL_VERSION})")
                        break
                    if not token_matches(self._auth_token,
                                         message.get("token")):
                        logger.warning("refusing worker with bad auth "
                                       "token: %s",
                                       message.get("worker") or worker)
                        await self._refuse(writer, "auth token mismatch")
                        break
                    authenticated = True
                    worker = str(message.get("worker") or worker)
                    self.stats.workers_seen += 1
                    self.stats.worker_names.append(worker)
                    if worker in self._seen_worker_names:
                        # Same name, new connection: the worker survived a
                        # socket loss (or the coordinator a restart) and
                        # rejoined.
                        self.stats.reconnects += 1
                        metrics.counter("coordinator.reconnects").inc()
                        logger.info("worker reconnected: worker=%s", worker,
                                    extra={"worker_id": worker})
                    self._seen_worker_names.add(worker)
                    self._worker_entry(worker)["last_seen"] = time.monotonic()
                    continue
                if mtype == "status":
                    # Observational request (art9 status --connect):
                    # answered inline from coordinator state, never routed
                    # through _assign, so probing a live run can neither
                    # receive a job nor perturb scheduling.  It carries its
                    # own token — a probe never sends a hello.
                    if not authenticated and not token_matches(
                            self._auth_token, message.get("token")):
                        await self._refuse(writer, "auth token mismatch")
                        break
                    await send_and_drain(writer, {
                        "type": "status", "status": self.status_snapshot()})
                    continue
                if not authenticated:
                    # No valid hello yet on a token-guarded coordinator:
                    # nothing else is allowed — a stray client can neither
                    # pull jobs nor inject results.
                    await self._refuse(writer, "authentication required")
                    break
                if mtype == "heartbeat":
                    entry = self._in_flight.get(str(message.get("job_id")))
                    if entry is not None and entry.connection_id == connection_id:
                        entry.last_seen = time.monotonic()
                        self._worker_entry(entry.worker)["last_seen"] = \
                            entry.last_seen
                    continue
                if mtype == "result":
                    record = message.get("record")
                    if isinstance(record, dict) and self._accept(record):
                        stats = self._worker_entry(worker)
                        stats["jobs_done"] += 1
                        stats["last_seen"] = time.monotonic()
                    assigned = None
                elif mtype != "next":
                    continue  # unknown message types are ignored, not fatal
                reply = self._assign(connection_id, worker)
                if reply["type"] == "job":
                    assigned = reply["job_id"]
                await send_and_drain(writer, reply)
                if reply["type"] == "done":
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # shutdown or a vanished worker; cleanup happens below
        finally:
            if task is not None:
                self._handler_tasks.discard(task)
            self._writers.discard(writer)
            if assigned is not None:
                entry = self._in_flight.get(assigned)
                if entry is not None and entry.connection_id == connection_id:
                    del self._in_flight[assigned]
                    logger.info(
                        "worker disconnected with a job in flight: worker=%s "
                        "job_id=%s reason=connection closed", worker, assigned,
                        extra={"worker_id": worker, "job_id": assigned,
                               "reason": "connection closed"})
                    self._requeue(entry, f"worker {worker} disconnected",
                                  kind="disconnect")
                    if self.outstanding <= 0:
                        self._all_done.set()
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    # -- liveness -----------------------------------------------------------

    async def _watchdog(self) -> None:
        """Requeue in-flight jobs whose workers stopped heartbeating."""
        interval = max(0.05, self._heartbeat_timeout / 4)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for job_id, entry in list(self._in_flight.items()):
                if now - entry.last_seen > self._heartbeat_timeout:
                    del self._in_flight[job_id]
                    self._requeue(
                        entry,
                        f"worker {entry.worker} missed heartbeats for "
                        f"{self._heartbeat_timeout:.1f}s",
                        kind="heartbeat-timeout")
            if self.outstanding <= 0:
                self._all_done.set()
                return
