"""Wire protocol between the sweep coordinator and its workers.

Messages are newline-delimited JSON objects over a plain TCP stream — one
object per line, UTF-8, no framing beyond the newline.  The vocabulary is
deliberately tiny:

worker → coordinator
    ``{"type": "hello", "worker": <name>, "pid": <int>}``
        sent once after connecting, names the worker for logs and stats;
    ``{"type": "next"}``
        the worker is idle and wants a job (the pull is what makes the
        dispatch work-stealing: fast workers come back sooner and drain
        the shared queue);
    ``{"type": "result", "record": {...}}``
        a finished job record; doubles as a request for the next job;
    ``{"type": "heartbeat", "job_id": <id>}``
        liveness while executing a job (sent from a side task so a long
        simulation does not look like a dead worker).

observer → coordinator
    ``{"type": "status"}``
        a live telemetry probe (``art9 status --connect``): answered with
        a ``status`` reply built from coordinator state and nothing else —
        the probe never receives a job and never disturbs scheduling, so
        connecting one to a running sweep is always safe.

coordinator → worker
    ``{"type": "job", "job_id": <id>, "job": {...}}``
        one :class:`~repro.runner.spec.SweepJob` as pure data;
    ``{"type": "wait", "delay": <seconds>}``
        nothing to hand out right now but the run is not finished (jobs
        are in flight elsewhere and may yet be requeued);
    ``{"type": "done"}``
        every job has an accepted result — disconnect and exit;
    ``{"type": "status", "status": {...}}``
        reply to a ``status`` request: queue depth, in-flight/done counts,
        and per-worker jobs-done/heartbeat-age/requeue stats.

A malformed line or a closed connection reads as ``None``, which both ends
treat as a disconnect; the coordinator requeues whatever the lost worker
was holding, so the protocol needs no explicit error vocabulary.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

#: Default TCP port of ``art9 serve`` (any free port when 0).
DEFAULT_PORT = 7929

#: Per-line read limit: a record is a few KB, so this is generous headroom.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024


async def read_message(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one message; ``None`` means disconnect (EOF or a garbled line)."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError, ValueError):
        return None
    if not line:
        return None
    try:
        message = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(message, dict):
        return None
    return message


def send_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Queue one message on ``writer`` (callers drain when they need order)."""
    payload = json.dumps(message, sort_keys=True, separators=(",", ":"))
    writer.write(payload.encode("utf-8") + b"\n")


async def send_and_drain(writer: asyncio.StreamWriter, message: dict) -> None:
    """Send one message and wait for the transport buffer to flush."""
    send_message(writer, message)
    await writer.drain()
