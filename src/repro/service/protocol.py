"""Wire protocol between the sweep coordinator and its workers.

Messages are newline-delimited JSON objects over a plain TCP stream — one
object per line, UTF-8, no framing beyond the newline.  The vocabulary is
deliberately tiny:

worker → coordinator
    ``{"type": "hello", "worker": <name>, "pid": <int>, "protocol": <int>,
    "token": <str, optional>}``
        sent once after (re)connecting, names the worker for logs and
        stats.  ``protocol`` is the worker's :data:`PROTOCOL_VERSION`
        (absent means version 1); the coordinator rejects versions newer
        than its own with an ``error`` reply.  When the coordinator was
        started with an auth token (``art9 serve --auth-token`` /
        ``ART9_AUTH_TOKEN``), ``token`` must match it — the comparison is
        constant-time, and every non-``hello`` message on an
        unauthenticated connection is refused, so a stray or malicious
        client can neither receive jobs nor inject results;
    ``{"type": "next"}``
        the worker is idle and wants a job (the pull is what makes the
        dispatch work-stealing: fast workers come back sooner and drain
        the shared queue);
    ``{"type": "result", "record": {...}, "resumed": <bool, optional>}``
        a finished job record; doubles as a request for the next job.
        ``resumed`` marks a re-send after a reconnect: the worker holds on
        to an unacknowledged record across connection loss and delivers it
        to whichever coordinator (the original, or a ``--resume``
        restart) it reaches next, so a crash between "job finished" and
        "record persisted" costs nothing — the first accepted copy wins
        and duplicates are counted and dropped;
    ``{"type": "heartbeat", "job_id": <id>}``
        liveness while executing a job (sent from a side task so a long
        simulation does not look like a dead worker).

observer → coordinator
    ``{"type": "status", "token": <str, optional>}``
        a live telemetry probe (``art9 status --connect``): answered with
        a ``status`` reply built from coordinator state and nothing else —
        the probe never receives a job and never disturbs scheduling, so
        connecting one to a running sweep is always safe.  When the
        coordinator requires a token, the probe must carry it too.

coordinator → worker
    ``{"type": "job", "job_id": <id>, "job": {...}}``
        one :class:`~repro.runner.spec.SweepJob` as pure data;
    ``{"type": "wait", "delay": <seconds>}``
        nothing to hand out right now but the run is not finished (jobs
        are in flight elsewhere and may yet be requeued);
    ``{"type": "done"}``
        every job has an accepted result — disconnect and exit.  Also
        broadcast to every still-connected worker when the coordinator
        shuts down after a completed run, so idle workers exit instead of
        mistaking the shutdown for a crash and burning their reconnect
        budget;
    ``{"type": "error", "error": <reason>}``
        the connection was refused (bad token, too-new protocol).  The
        coordinator closes the connection after sending it; the worker
        must not retry — the rejection is deterministic;
    ``{"type": "status", "status": {...}}``
        reply to a ``status`` request: queue depth, in-flight/done counts,
        and per-worker jobs-done/heartbeat-age/requeue stats.

A malformed line or a closed connection reads as ``None``, which both ends
treat as a disconnect; the coordinator requeues whatever the lost worker
was holding.  Workers reconnect with exponential backoff (see
:mod:`repro.service.workerclient`) instead of exiting, which is what lets
a killed-and-``--resume``-restarted coordinator pick its fleet back up.
"""

from __future__ import annotations

import asyncio
import hmac
import json
from typing import Optional

#: Default TCP port of ``art9 serve`` (any free port when 0).
DEFAULT_PORT = 7929

#: Per-line read limit: a record is a few KB, so this is generous headroom.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024

#: Version of the vocabulary above.  Version 2 added the auth token, the
#: ``error`` reply, the ``resumed`` result flag and the shutdown ``done``
#: broadcast.  A version-1 worker (no ``protocol`` field) still works
#: against a token-less coordinator; the coordinator refuses only versions
#: *newer* than its own.
PROTOCOL_VERSION = 2

#: Environment variable carrying the shared worker-auth token; the
#: ``--auth-token`` flags of ``art9 serve`` / ``art9 work`` / ``art9
#: status --connect`` override it.
AUTH_TOKEN_ENV = "ART9_AUTH_TOKEN"


def token_matches(expected: Optional[str], presented: object) -> bool:
    """Constant-time comparison of a presented auth token.

    ``expected is None`` means the coordinator requires no token and every
    client passes.  Anything non-string presented (absent field, JSON
    null, a number) fails closed.
    """
    if expected is None:
        return True
    if not isinstance(presented, str):
        return False
    return hmac.compare_digest(expected.encode("utf-8"),
                               presented.encode("utf-8"))


async def read_message(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one message; ``None`` means disconnect (EOF or a garbled line)."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError, ValueError):
        return None
    if not line:
        return None
    try:
        message = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(message, dict):
        return None
    return message


def send_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Queue one message on ``writer`` (callers drain when they need order)."""
    payload = json.dumps(message, sort_keys=True, separators=(",", ":"))
    writer.write(payload.encode("utf-8") + b"\n")


async def send_and_drain(writer: asyncio.StreamWriter, message: dict) -> None:
    """Send one message and wait for the transport buffer to flush."""
    send_message(writer, message)
    await writer.drain()
