"""Paper-facing report generation from aggregated sweep results.

``art9 report`` turns a :class:`~repro.service.resultsdb.ResultsDB` into
the evaluation artifacts of the paper:

* **Table II** — the Dhrystone comparison of ART-9 against VexRiscv and
  PicoRV32 (DMIPS/MHz, cycles, CPI, instruction-memory cells);
* **Table III** — processing cycles of every benchmark across the cores;
* **Table IV** — the CNTFET gate-level implementation (gates, fmax,
  power, DMIPS, DMIPS/W), combining stored Dhrystone cycle counts with
  the deterministic gate-level analyzer;
* **Table V** — the FPGA emulation (ALMs, registers, RAM bits, power,
  DMIPS/W) at its 150 MHz operating point;
* **Fig. 5** — instruction-memory cells per benchmark (ART-9 trits vs
  RV-32I bits vs ARMv6-M bits) and the ternary/binary ratio.

Simulation results come exclusively from the database — the cycle counts,
iteration counts and memory-cell footprints were measured by sweep jobs,
possibly on other machines — while the implementation models (gate-level
analyzer, FPGA resource model) are deterministic functions of the netlist
and are evaluated at report time through
:meth:`repro.framework.hwflow.HardwareFramework.performance_from_cycles`.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.framework.hwflow import HardwareFramework
from repro.hweval.estimator import DhrystoneMetrics
from repro.service.resultsdb import ResultsDB
from repro.sim.machine import DEFAULT_MACHINE_NAME, machine_names

#: ART-9 engines in lookup-preference order (identical numbers, so the
#: fast engine is simply the one more likely to be present in a sweep).
_ART9_ENGINES = ("fast", "compiled", "pipeline")


class ReportError(RuntimeError):
    """Raised when the database lacks the records a table needs."""


@dataclass
class ReportTable:
    """One rendered table plus its machine-checkable headline numbers."""

    key: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Headline quantities by name (what the acceptance tests assert on).
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.rows)

    def to_markdown(self) -> str:
        lines = [f"## {self.title}", ""]
        if self.rows:
            lines.append("| " + " | ".join(self.headers) + " |")
            lines.append("| " + " | ".join("---" for _ in self.headers) + " |")
            for row in self.rows:
                lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(row)
        return f"# {self.title}\n" + buffer.getvalue()


# -- record lookup ----------------------------------------------------------


def _ok_records(db: ResultsDB, machine: str = DEFAULT_MACHINE_NAME,
                **filters) -> List[dict]:
    # Tables II-V reproduce the paper's numbers, so they are pinned to the
    # default machine config; design-space records only surface in the
    # corners table, which asks for them explicitly.
    return [record for record in db.query(status="ok", latest_only=True,
                                          machine=machine, **filters)
            if record.get("verified")]


def _art9_record(db: ResultsDB, workload: str,
                 params: Optional[dict] = None,
                 machine: str = DEFAULT_MACHINE_NAME) -> Optional[dict]:
    for engine in _ART9_ENGINES:
        records = _ok_records(db, workload=workload, engine=engine,
                              optimize=True, params=params or {},
                              machine=machine)
        if records:
            return records[0]
    return None


def _baseline_record(db: ResultsDB, workload: str, engine: str) -> Optional[dict]:
    records = _ok_records(db, workload=workload, engine=engine, params={})
    return records[0] if records else None


def _require(record: Optional[dict], what: str) -> dict:
    if record is None:
        raise ReportError(
            f"no verified record for {what} in the results database; "
            "run a sweep that covers it (e.g. `art9 sweep --preset paper`)")
    return record


def _iterations(record: dict) -> int:
    """The benchmark iteration count a record measured.

    Records written before the report fields existed lack it; silently
    assuming 1 would shift every DMIPS number by the iteration factor, so
    stale records are an error (same policy as the Fig. 5 builder).
    """
    iterations = record.get("iterations")
    if not iterations:
        raise ReportError(
            f"the {record.get('label', record.get('job_id'))} record predates "
            "the iteration-count field; rerun the sweep with --no-resume to "
            "refresh it")
    return int(iterations)


def _dmips_per_mhz(record: dict) -> float:
    return DhrystoneMetrics(cycles=record["cycles"],
                            iterations=_iterations(record)).dmips_per_mhz


def _default_workloads(db: ResultsDB) -> List[str]:
    """Workloads with a default-parameter ART-9 record, sorted."""
    present = []
    seen = set()
    for record in _ok_records(db, params={}):
        name = record.get("workload")
        if name and name not in seen and record.get("engine") in _ART9_ENGINES:
            seen.add(name)
            present.append(name)
    return sorted(present)


# -- table builders ---------------------------------------------------------


def table2_dhrystone(db: ResultsDB) -> ReportTable:
    """Table II — Dhrystone comparison of the three cores."""
    art9 = _require(_art9_record(db, "dhrystone"), "dhrystone on an ART-9 engine")
    vex = _require(_baseline_record(db, "dhrystone", "vexriscv"),
                   "dhrystone on the vexriscv baseline")
    pico = _require(_baseline_record(db, "dhrystone", "picorv32"),
                    "dhrystone on the picorv32 baseline")
    table = ReportTable(
        key="table2",
        title="Table II — Dhrystone simulation results",
        headers=["core", "cycles", "CPI", "DMIPS/MHz", "memory cells"],
    )
    for slug, label, record, unit in (
        ("art9", "ART-9 (this work)", art9, "trits"),
        ("vexriscv", "VexRiscv", vex, "bits"),
        ("picorv32", "PicoRV32", pico, "bits"),
    ):
        dmips = _dmips_per_mhz(record)
        table.rows.append([
            label, record["cycles"], f"{record['cpi']:.3f}", f"{dmips:.3f}",
            f"{record.get('memory_cells', 0)} {unit}",
        ])
        table.metrics[f"{slug}_dmips_per_mhz"] = dmips
    table.metrics["art9_cycles"] = float(art9["cycles"])
    table.metrics["art9_cpi"] = float(art9["cpi"])
    return table


def table3_cycles(db: ResultsDB) -> ReportTable:
    """Table III — processing cycles of every benchmark across the cores."""
    table = ReportTable(
        key="table3",
        title="Table III — processing cycles per benchmark",
        headers=["workload", "ART-9 cycles", "PicoRV32 cycles", "VexRiscv cycles"],
    )
    workloads = _default_workloads(db)
    if not workloads:
        raise ReportError("no verified default-parameter ART-9 records in the "
                          "results database")
    for name in workloads:
        art9 = _require(_art9_record(db, name), f"{name} on an ART-9 engine")
        pico = _baseline_record(db, name, "picorv32")
        vex = _baseline_record(db, name, "vexriscv")
        table.rows.append([
            name, art9["cycles"],
            pico["cycles"] if pico else "-",
            vex["cycles"] if vex else "-",
        ])
        table.metrics[f"{name}_art9_cycles"] = float(art9["cycles"])
        if pico:
            table.metrics[f"{name}_picorv32_cycles"] = float(pico["cycles"])
        if vex:
            table.metrics[f"{name}_vexriscv_cycles"] = float(vex["cycles"])
    return table


def _dhrystone_performance(db: ResultsDB, hardware: HardwareFramework):
    art9 = _require(_art9_record(db, "dhrystone"), "dhrystone on an ART-9 engine")
    cntfet, fpga = hardware.performance_from_cycles(
        art9["cycles"], _iterations(art9),
        memory_cells=art9.get("memory_cells"))
    return art9, cntfet, fpga


def table4_cntfet(db: ResultsDB, hardware: HardwareFramework) -> ReportTable:
    """Table IV — CNTFET ternary-gate implementation."""
    _, cntfet, _ = _dhrystone_performance(db, hardware)
    gate_report = hardware.analyze_gates()
    table = ReportTable(
        key="table4",
        title="Table IV — CNTFET ternary-gate implementation",
        headers=["metric", "value"],
        rows=[
            ["technology", gate_report.technology],
            ["supply voltage (V)", gate_report.supply_voltage],
            ["total ternary gates", gate_report.total_gates],
            ["max frequency (MHz)", f"{gate_report.max_frequency_mhz:.1f}"],
            ["power at fmax (uW)", f"{gate_report.total_power_uw:.2f}"],
            ["DMIPS", f"{cntfet.dmips:.1f}"],
            ["DMIPS/MHz", f"{cntfet.dmips_per_mhz:.3f}"],
            ["DMIPS/W", f"{cntfet.dmips_per_watt:.3e}"],
        ],
        metrics={
            "total_gates": float(gate_report.total_gates),
            "max_frequency_mhz": gate_report.max_frequency_mhz,
            "total_power_uw": gate_report.total_power_uw,
            "dmips": cntfet.dmips,
            "dmips_per_mhz": cntfet.dmips_per_mhz,
            "dmips_per_watt": cntfet.dmips_per_watt,
        },
    )
    return table


def table5_fpga(db: ResultsDB, hardware: HardwareFramework) -> ReportTable:
    """Table V — FPGA-based ternary-logic emulation."""
    _, _, fpga = _dhrystone_performance(db, hardware)
    fpga_report = hardware.analyze_fpga()
    table = ReportTable(
        key="table5",
        title="Table V — FPGA-based ternary-logic emulation",
        headers=["metric", "value"],
        rows=[
            ["device", fpga_report.device],
            ["ALMs", fpga_report.alms],
            ["registers", fpga_report.registers],
            ["RAM bits", fpga_report.ram_bits],
            ["frequency (MHz)", f"{fpga_report.frequency_mhz:.1f}"],
            ["power (W)", f"{fpga_report.total_power_w:.3f}"],
            ["DMIPS", f"{fpga.dmips:.1f}"],
            ["DMIPS/W", f"{fpga.dmips_per_watt:.1f}"],
        ],
        metrics={
            "alms": float(fpga_report.alms),
            "registers": float(fpga_report.registers),
            "ram_bits": float(fpga_report.ram_bits),
            "frequency_mhz": fpga_report.frequency_mhz,
            "total_power_w": fpga_report.total_power_w,
            "dmips": fpga.dmips,
            "dmips_per_watt": fpga.dmips_per_watt,
        },
    )
    return table


def fig5_memory_cells(db: ResultsDB) -> ReportTable:
    """Fig. 5 — instruction-memory cells per benchmark program."""
    table = ReportTable(
        key="fig5",
        title="Fig. 5 — instruction-memory cells per benchmark",
        headers=["workload", "ART-9 (trits)", "RV-32I (bits)", "ARMv6-M (bits)",
                 "trits/bits ratio"],
    )
    workloads = _default_workloads(db)
    if not workloads:
        raise ReportError("no verified default-parameter ART-9 records in the "
                          "results database")
    for name in workloads:
        art9 = _require(_art9_record(db, name), f"{name} on an ART-9 engine")
        trits = art9.get("memory_cells")
        ratio = art9.get("memory_cell_ratio")
        if trits is None or not ratio:
            raise ReportError(
                f"the {name} record predates the memory-cell fields; rerun "
                "the sweep with --no-resume to refresh it")
        rv_record = (_baseline_record(db, name, "picorv32")
                     or _baseline_record(db, name, "vexriscv"))
        # The translation report embeds trits/bits, so the binary footprint
        # is recoverable even without a baseline record in the database.
        rv_bits = (rv_record["memory_cells"] if rv_record
                   else round(trits / ratio))
        thumb = _baseline_record(db, name, "armv6m")
        table.rows.append([
            name, trits, rv_bits,
            thumb["memory_cells"] if thumb else "-",
            f"{trits / rv_bits:.3f}",
        ])
        table.metrics[f"{name}_ratio"] = trits / rv_bits
        if thumb:
            table.metrics[f"{name}_armv6m_bits"] = float(thumb["memory_cells"])
    return table


def machine_corners(db: ResultsDB, hardware: HardwareFramework) -> ReportTable:
    """Design-space corners — Dhrystone across machine configurations.

    One row per microarchitecture config with a verified default-parameter
    Dhrystone record in the database: measured cycles/CPI joined with the
    Table IV/V implementation models
    (:meth:`~repro.framework.hwflow.HardwareFramework.
    performance_from_cycles`), so deepening the pipeline or changing the
    branch policy shows up directly as CNTFET and FPGA DMIPS deltas.
    """
    table = ReportTable(
        key="machines",
        title="Design-space corners — Dhrystone across machine configs",
        headers=["config", "cycles", "CPI", "CNTFET DMIPS/MHz",
                 "CNTFET DMIPS", "FPGA DMIPS"],
    )
    present: List[str] = []
    for record in db.query(workload="dhrystone", params={}, optimize=True,
                           status="ok", latest_only=True):
        name = str(record.get("machine", DEFAULT_MACHINE_NAME))
        if (record.get("verified") and record.get("engine") in _ART9_ENGINES
                and name not in present):
            present.append(name)
    known = list(machine_names())
    ordered = ([name for name in known if name in present]
               + sorted(name for name in present if name not in known))
    if not ordered:
        raise ReportError(
            "no verified dhrystone record for any machine config; run "
            "`art9 sweep --preset machines` (or any dhrystone sweep) first")
    for name in ordered:
        record = _require(
            _art9_record(db, "dhrystone", machine=name),
            f"dhrystone on an ART-9 engine under the {name!r} machine")
        cntfet, fpga = hardware.performance_from_cycles(
            record["cycles"], _iterations(record),
            memory_cells=record.get("memory_cells"))
        table.rows.append([
            name, record["cycles"], f"{record['cpi']:.3f}",
            f"{cntfet.dmips_per_mhz:.3f}", f"{cntfet.dmips:.1f}",
            f"{fpga.dmips:.1f}",
        ])
        table.metrics[f"{name}_cycles"] = float(record["cycles"])
        table.metrics[f"{name}_cpi"] = float(record["cpi"])
        table.metrics[f"{name}_cntfet_dmips_per_mhz"] = cntfet.dmips_per_mhz
        table.metrics[f"{name}_fpga_dmips"] = fpga.dmips
    table.notes.append(
        f"Tables II-V above are pinned to the {DEFAULT_MACHINE_NAME!r} "
        "config; this table compares every config present in the database.")
    return table


def timings_summary(db: ResultsDB) -> ReportTable:
    """Per-phase wall-time summary — where sweep time actually went.

    Aggregates the ``timings`` field the workers attach to every record
    (translation / engine build / execution seconds, plus the artifact-cache
    hit flag) per engine.  Records written before the instrumentation
    existed carry NULL columns and are counted but not timed, so mixed
    databases still render honestly.
    """
    table = ReportTable(
        key="timings",
        title="Per-phase timing summary — where the sweep time went",
        headers=["engine", "jobs", "timed", "xlate (s)", "codegen (s)",
                 "execute (s)", "cache hit rate"],
    )
    rows = db.phase_summary(latest_only=True)
    timed = [row for row in rows if row["timed_jobs"]]
    if not timed:
        raise ReportError(
            "no records with phase timings in the results database; records "
            "written before the instrumentation existed lack them — rerun "
            "the sweep with --no-resume to refresh")
    total_xlate = total_codegen = total_execute = 0.0
    for row in rows:
        hit_rate = ("-" if not row["cache_known"]
                    else f"{row['cache_hits'] / row['cache_known']:.0%}")
        table.rows.append([
            row["engine"], row["jobs"], row["timed_jobs"],
            f"{row['xlate_s']:.3f}", f"{row['codegen_s']:.3f}",
            f"{row['execute_s']:.3f}", hit_rate,
        ])
        total_xlate += row["xlate_s"]
        total_codegen += row["codegen_s"]
        total_execute += row["execute_s"]
        table.metrics[f"{row['engine']}_execute_s"] = row["execute_s"]
    table.metrics["total_xlate_s"] = total_xlate
    table.metrics["total_codegen_s"] = total_codegen
    table.metrics["total_execute_s"] = total_execute
    known = sum(row["cache_known"] for row in rows)
    if known:
        table.metrics["cache_hit_rate"] = (
            sum(row["cache_hits"] for row in rows) / known)
    untimed = sum(row["jobs"] - row["timed_jobs"] for row in rows)
    if untimed:
        table.notes.append(
            f"{untimed} record(s) predate the timing instrumentation and "
            "contribute no seconds; rerun with --no-resume to refresh them.")
    return table


# -- report assembly --------------------------------------------------------


def build_report(db: ResultsDB, hardware: Optional[HardwareFramework] = None,
                 strict: bool = False) -> List[ReportTable]:
    """All five artifacts from one database.

    With ``strict`` the first table whose records are missing raises
    :class:`ReportError`; otherwise the failed table is emitted empty with
    the explanation as a note, so partial databases still render.
    """
    hardware = hardware or HardwareFramework()
    builders = (
        ("table2", "Table II — Dhrystone simulation results",
         lambda: table2_dhrystone(db)),
        ("table3", "Table III — processing cycles per benchmark",
         lambda: table3_cycles(db)),
        ("table4", "Table IV — CNTFET ternary-gate implementation",
         lambda: table4_cntfet(db, hardware)),
        ("table5", "Table V — FPGA-based ternary-logic emulation",
         lambda: table5_fpga(db, hardware)),
        ("fig5", "Fig. 5 — instruction-memory cells per benchmark",
         lambda: fig5_memory_cells(db)),
        ("machines", "Design-space corners — Dhrystone across machine configs",
         lambda: machine_corners(db, hardware)),
        ("timings", "Per-phase timing summary — where the sweep time went",
         lambda: timings_summary(db)),
    )
    tables = []
    for key, title, builder in builders:
        try:
            tables.append(builder())
        except ReportError as exc:
            if strict:
                raise
            tables.append(ReportTable(key=key, title=title, headers=[],
                                      notes=[str(exc)]))
    return tables


def render_report(tables: Sequence[ReportTable], fmt: str = "markdown") -> str:
    """Render the tables as one markdown or CSV document."""
    if fmt == "markdown":
        parts = ["# ART-9 evaluation report", ""]
        parts.extend(table.to_markdown() + "\n" for table in tables)
        return "\n".join(parts).rstrip() + "\n"
    if fmt == "csv":
        return "\n".join(table.to_csv() for table in tables)
    raise ValueError(f"unknown report format {fmt!r}; known: markdown, csv")
