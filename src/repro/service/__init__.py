"""Distributed execution service and results-aggregation subsystem.

``repro.service`` is the scaling layer above :mod:`repro.runner`: the sweep
grid already expands into pure picklable :class:`~repro.runner.spec.SweepJob`
records, and this package decides *where* those jobs run and *what happens
to the records afterwards*:

* :mod:`repro.service.backends` — the :class:`ExecutionBackend` interface
  extracted from the sweep orchestrator, with in-process
  (:class:`SerialBackend`) and worker-pool (:class:`MultiprocessingBackend`)
  implementations;
* :mod:`repro.service.protocol` — the newline-delimited JSON wire protocol
  spoken between the coordinator and its workers;
* :mod:`repro.service.coordinator` — the asyncio TCP coordinator behind
  ``art9 serve``: hands jobs to pulling workers (idle workers steal the
  remaining load), requeues jobs lost to dead connections or missed
  heartbeats, and streams accepted records straight into the JSONL store;
* :mod:`repro.service.workerclient` — the worker side (``art9 work``):
  connect, pull, execute, heartbeat, report — and reconnect with backoff
  when the coordinator goes away;
* :mod:`repro.service.journal` — the coordinator's fsync'd write-ahead
  journal of queue lifecycle events, which is what makes ``art9 serve
  --resume`` able to restart a killed coordinator where it left off;
* :mod:`repro.service.queue_backend` — :class:`AsyncQueueBackend`, which
  runs a coordinator in-process and optionally spawns local worker
  processes (CI uses a coordinator plus two local workers);
* :mod:`repro.service.resultsdb` — :class:`ResultsDB`, a sqlite aggregation
  of any number of sweep run directories with a query API (filter by grid
  axes, latest-per-job dedup, cross-run deltas);
* :mod:`repro.service.report` — ``art9 report``: the paper's Tables II–V
  and the Fig. 5 memory-cell series regenerated from a :class:`ResultsDB`.
"""

from repro.service.backends import (
    ExecutionBackend,
    MultiprocessingBackend,
    SerialBackend,
)
from repro.service.coordinator import (
    Coordinator,
    CoordinatorBindError,
    CoordinatorStats,
)
from repro.service.journal import (
    JournalRecovery,
    RunJournal,
    journal_path,
    recover_run,
    replay_journal,
)
from repro.service.protocol import AUTH_TOKEN_ENV, DEFAULT_PORT, PROTOCOL_VERSION
from repro.service.queue_backend import AsyncQueueBackend
from repro.service.report import ReportError, ReportTable, build_report, render_report
from repro.service.resultsdb import IngestReport, ResultsDB
from repro.service.workerclient import WorkerSummary, request_status, work

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "MultiprocessingBackend",
    "AsyncQueueBackend",
    "Coordinator",
    "CoordinatorBindError",
    "CoordinatorStats",
    "AUTH_TOKEN_ENV",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "JournalRecovery",
    "RunJournal",
    "journal_path",
    "recover_run",
    "replay_journal",
    "ResultsDB",
    "IngestReport",
    "ReportError",
    "ReportTable",
    "build_report",
    "render_report",
    "WorkerSummary",
    "request_status",
    "work",
]
