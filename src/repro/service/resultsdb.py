"""Results aggregation: many sweep run directories, one queryable sqlite DB.

A sweep run leaves a ``results.jsonl`` directory behind; this module turns
any number of those into one database so performance can be tracked across
runs, machines and time:

* :meth:`ResultsDB.ingest` loads a run directory (spec + records).  One
  row per ``(run, job_id)`` — re-ingesting the same directory replaces its
  rows, and records whose canonical content (volatile wall-clock/PID
  fields stripped) already exists for the same content-addressed job ID in
  a previously ingested run are counted as duplicates, which is how "the
  same code produced the same numbers" shows up in the aggregate.
* :meth:`ResultsDB.query` filters on the grid axes (workload, engine,
  optimize, params), on status, and optionally collapses to the latest
  record per job ID across all ingested runs (``latest_only``).
* :meth:`ResultsDB.deltas` diffs two ingested runs with exactly the same
  field semantics as ``art9 sweep --compare``
  (:func:`repro.runner.compare.diff_records`).

The database is a cache over the JSONL artifacts, never the other way
around: dropping it and re-ingesting is always safe.
"""

from __future__ import annotations

import datetime
import json
import os
import sqlite3
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.runner.compare import CompareReport, compare_record_maps
from repro.runner.store import RunStore, StoreError, canonical_record
from repro.sim.machine import DEFAULT_MACHINE_NAME

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id       INTEGER PRIMARY KEY AUTOINCREMENT,
    root         TEXT NOT NULL UNIQUE,
    spec_json    TEXT NOT NULL,
    ingested_at  TEXT NOT NULL,
    record_count INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    run_id      INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    job_id      TEXT NOT NULL,
    workload    TEXT NOT NULL,
    engine      TEXT NOT NULL,
    optimize    INTEGER NOT NULL,
    params_json TEXT NOT NULL,
    machine     TEXT NOT NULL DEFAULT 'paper3stage',
    status      TEXT NOT NULL,
    verified    INTEGER NOT NULL,
    cycles      INTEGER,
    cpi         REAL,
    xlate_s     REAL,
    codegen_s   REAL,
    execute_s   REAL,
    cache_hit   INTEGER,
    canonical   TEXT NOT NULL,
    record_json TEXT NOT NULL,
    PRIMARY KEY (run_id, job_id)
);
CREATE INDEX IF NOT EXISTS idx_results_job  ON results(job_id, run_id);
CREATE INDEX IF NOT EXISTS idx_results_axes ON results(workload, engine, optimize);
"""


def _params_json(params: Optional[Mapping[str, object]]) -> str:
    return json.dumps(dict(params or {}), sort_keys=True, separators=(",", ":"))


@dataclass
class IngestReport:
    """What one :meth:`ResultsDB.ingest` call did."""

    root: str
    run_id: int
    records: int
    duplicates: int
    replaced: bool

    def summary(self) -> str:
        mode = "re-ingested" if self.replaced else "ingested"
        return (
            f"{mode} {self.root}: {self.records} records "
            f"({self.duplicates} duplicating earlier runs)"
        )


class ResultsDB:
    """Sqlite aggregation of sweep run directories."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(path)
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        self._migrate()

    def _migrate(self) -> None:
        """Bring older databases up to the current schema.

        ``CREATE TABLE IF NOT EXISTS`` leaves an existing ``results`` table
        untouched, so databases written before the machine axis (or before
        the phase-timing columns) lack those columns; pre-machine records
        were all default-machine runs, and pre-timing records simply carry
        NULL timings (they predate the instrumentation).
        """
        columns = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(results)")
        }
        if "machine" not in columns:
            self._conn.execute(
                "ALTER TABLE results ADD COLUMN machine TEXT NOT NULL "
                f"DEFAULT '{DEFAULT_MACHINE_NAME}'")
        for column, kind in (("xlate_s", "REAL"), ("codegen_s", "REAL"),
                             ("execute_s", "REAL"), ("cache_hit", "INTEGER")):
            if column not in columns:
                self._conn.execute(
                    f"ALTER TABLE results ADD COLUMN {column} {kind}")
        self._conn.commit()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ingest -------------------------------------------------------------

    def ingest(self, run_dir: str) -> IngestReport:
        """Load (or reload) one sweep run directory into the database."""
        store = RunStore(run_dir)
        if not store.exists():
            raise StoreError(
                f"{run_dir!r} is not a sweep run directory (no {store.spec_path})")
        root = os.path.abspath(run_dir)
        spec_json = json.dumps(store.load_spec().to_dict(), sort_keys=True,
                               separators=(",", ":"))
        records = store.records()

        cursor = self._conn.cursor()
        existing = cursor.execute(
            "SELECT run_id FROM runs WHERE root = ?", (root,)).fetchone()
        replaced = existing is not None
        if replaced:
            cursor.execute("DELETE FROM results WHERE run_id = ?",
                           (existing["run_id"],))
            cursor.execute("DELETE FROM runs WHERE run_id = ?",
                           (existing["run_id"],))

        cursor.execute(
            "INSERT INTO runs (root, spec_json, ingested_at, record_count) "
            "VALUES (?, ?, ?, ?)",
            (root, spec_json,
             datetime.datetime.now(datetime.timezone.utc).isoformat(),
             len(records)))
        run_id = cursor.lastrowid

        duplicates = 0
        for record in records:
            canonical = canonical_record(record)
            duplicate = cursor.execute(
                "SELECT 1 FROM results WHERE job_id = ? AND canonical = ? "
                "AND run_id != ? LIMIT 1",
                (record["job_id"], canonical, run_id)).fetchone()
            if duplicate is not None:
                duplicates += 1
            timings = record.get("timings")
            if not isinstance(timings, Mapping):
                timings = {}
            cache_hit = record.get("cache_hit")
            cursor.execute(
                "INSERT INTO results (run_id, job_id, workload, engine, "
                "optimize, params_json, machine, status, verified, cycles, "
                "cpi, xlate_s, codegen_s, execute_s, cache_hit, canonical, "
                "record_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (run_id,
                 record["job_id"],
                 str(record.get("workload", "")),
                 str(record.get("engine", "")),
                 1 if record.get("optimize") else 0,
                 _params_json(record.get("params")),
                 # An explicit ``"machine": null`` means the same as a missing
                 # key (pre-machine-config records): the paper default — not
                 # the literal string "None".
                 str(record.get("machine") or DEFAULT_MACHINE_NAME),
                 str(record.get("status", "")),
                 1 if record.get("verified") else 0,
                 record.get("cycles"),
                 record.get("cpi"),
                 timings.get("xlate_s"),
                 timings.get("codegen_s"),
                 timings.get("execute_s"),
                 # Records predating the instrumentation carry NULL, which
                 # keeps "unknown" distinct from "cold miss".
                 None if cache_hit is None else (1 if cache_hit else 0),
                 canonical,
                 json.dumps(record, sort_keys=True, separators=(",", ":"))))
        self._conn.commit()
        return IngestReport(root=root, run_id=run_id, records=len(records),
                            duplicates=duplicates, replaced=replaced)

    # -- queries ------------------------------------------------------------

    def runs(self) -> List[dict]:
        """Ingested runs, oldest first."""
        rows = self._conn.execute(
            "SELECT run_id, root, ingested_at, record_count FROM runs "
            "ORDER BY run_id").fetchall()
        return [dict(row) for row in rows]

    def query(
        self,
        workload: Optional[str] = None,
        engine: Optional[str] = None,
        optimize: Optional[bool] = None,
        params: Optional[Mapping[str, object]] = None,
        machine: Optional[str] = None,
        status: Optional[str] = None,
        run_root: Optional[str] = None,
        latest_only: bool = False,
    ) -> List[dict]:
        """Records matching the given grid-axis filters.

        ``params`` matches the exact parameter dict of the job (``{}``
        selects default-parameter instances); ``machine`` matches the
        microarchitecture-config name the job ran under.  ``latest_only``
        keeps, for every content-addressed job ID, only the record from the
        most recently ingested run — the deduplicated "current state of the
        grid" view.
        """
        clauses, values = [], []
        if workload is not None:
            clauses.append("workload = ?")
            values.append(workload)
        if engine is not None:
            clauses.append("engine = ?")
            values.append(engine)
        if optimize is not None:
            clauses.append("optimize = ?")
            values.append(1 if optimize else 0)
        if params is not None:
            clauses.append("params_json = ?")
            values.append(_params_json(params))
        if machine is not None:
            clauses.append("machine = ?")
            values.append(machine)
        if status is not None:
            clauses.append("status = ?")
            values.append(status)
        if run_root is not None:
            clauses.append("run_id = ?")
            values.append(self._run_id(run_root))
        if latest_only:
            clauses.append(
                "run_id = (SELECT MAX(r2.run_id) FROM results r2 "
                "WHERE r2.job_id = results.job_id)")
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        rows = self._conn.execute(
            "SELECT record_json FROM results" + where +
            " ORDER BY workload, params_json, engine, optimize DESC, run_id",
            values).fetchall()
        return [json.loads(row["record_json"]) for row in rows]

    def phase_summary(self, latest_only: bool = True) -> List[dict]:
        """Per-engine aggregation of the phase-timing columns.

        One row per engine: job count, how many rows carry timings (older
        records predate the instrumentation and hold NULLs), total seconds
        in each phase, and the artifact-cache hit rate over the rows where
        the flag is known.  ``latest_only`` mirrors :meth:`query`.
        """
        where = ""
        if latest_only:
            where = (" WHERE run_id = (SELECT MAX(r2.run_id) FROM results r2 "
                     "WHERE r2.job_id = results.job_id)")
        rows = self._conn.execute(
            "SELECT engine, COUNT(*) AS jobs, "
            "COUNT(execute_s) AS timed_jobs, "
            "COALESCE(SUM(xlate_s), 0.0) AS xlate_s, "
            "COALESCE(SUM(codegen_s), 0.0) AS codegen_s, "
            "COALESCE(SUM(execute_s), 0.0) AS execute_s, "
            "COUNT(cache_hit) AS cache_known, "
            "COALESCE(SUM(cache_hit), 0) AS cache_hits "
            "FROM results" + where +
            " GROUP BY engine ORDER BY engine").fetchall()
        return [dict(row) for row in rows]

    def latest(self, job_id: str) -> Optional[dict]:
        """Newest-ingested record of one job ID, or ``None``."""
        row = self._conn.execute(
            "SELECT record_json FROM results WHERE job_id = ? "
            "ORDER BY run_id DESC LIMIT 1", (job_id,)).fetchone()
        return json.loads(row["record_json"]) if row else None

    def job_history(self, job_id: str) -> List[dict]:
        """Every ingested record of one job ID, oldest run first."""
        rows = self._conn.execute(
            "SELECT record_json FROM results WHERE job_id = ? ORDER BY run_id",
            (job_id,)).fetchall()
        return [json.loads(row["record_json"]) for row in rows]

    # -- cross-run deltas ---------------------------------------------------

    def _run_id(self, root: str) -> int:
        """The run row for ``root``; an unknown root is an error, not an
        empty result (a typo'd path must not read as 'zero records')."""
        run = self._conn.execute(
            "SELECT run_id FROM runs WHERE root = ?",
            (os.path.abspath(root),)).fetchone()
        if run is None:
            known = [row["root"] for row in self.runs()]
            raise StoreError(
                f"run {root!r} has not been ingested; ingested runs: {known}")
        return run["run_id"]

    def _run_records(self, root: str) -> Dict[str, dict]:
        rows = self._conn.execute(
            "SELECT record_json FROM results WHERE run_id = ?",
            (self._run_id(root),)).fetchall()
        records = [json.loads(row["record_json"]) for row in rows]
        return {record["job_id"]: record for record in records}

    def deltas(self, root_a: str, root_b: str) -> CompareReport:
        """Diff two ingested runs (same semantics as ``sweep --compare``)."""
        return compare_record_maps(
            self._run_records(root_a), self._run_records(root_b),
            os.path.abspath(root_a), os.path.abspath(root_b))
