"""Write-ahead lifecycle journal for the sweep coordinator.

``results.jsonl`` records *outcomes*; it says nothing about jobs that were
handed to a worker and never came back.  The journal fills that gap: the
coordinator appends one fsync'd whole-line JSON event per queue-lifecycle
transition, so after a ``kill -9`` the exact scheduling state can be
rebuilt from disk.  Events, in the order a healthy job produces them::

    {"event": "enqueued",        "job_id": ...}
    {"event": "leased",          "job_id": ..., "worker": ..., "attempt": n}
    {"event": "result-accepted", "job_id": ..., "status": "ok"|"error"}

and on the unhappy paths::

    {"event": "requeued", "job_id": ..., "reason": ..., "worker": ...}
    {"event": "lost",     "job_id": ..., "reason": ..., "attempts": n}

``art9 serve --resume RUN_DIR`` replays the journal together with
``results.jsonl``:

* the **pending set** is every expanded job without an ``ok`` record —
  exactly the orchestrator's normal resume rule, so a journal-less run
  directory still resumes;
* **formerly-leased jobs** (a ``leased`` with no later ``result-accepted``
  / ``requeued`` / ``lost``) were in a dead worker's hands when the
  coordinator died; recovery writes an explicit
  ``requeued (coordinator restart)`` event for each, so the journal reads
  as a complete history across the crash;
* **dispatch counts** (number of ``leased`` events per job) survive the
  restart, so the ``max_requeues`` poison-job budget cannot be reset by
  crashing the coordinator.

Torn tails are expected — the coordinator may die mid-append — so
:func:`replay_journal` skips unparseable trailing garbage exactly like
:meth:`repro.runner.store.RunStore.records`, and :meth:`RunJournal.append`
seals a torn final line before writing so one interrupted write can never
eat the next event.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

logger = logging.getLogger(__name__)

#: Journal file name inside a run directory (next to ``results.jsonl``).
JOURNAL_FILENAME = "journal.jsonl"


def journal_path(run_dir: str) -> str:
    """Location of the coordinator journal for one run directory."""
    return os.path.join(run_dir, JOURNAL_FILENAME)


class RunJournal:
    """Append-only, fsync'd JSONL journal of coordinator lifecycle events.

    The file handle stays open across appends (the coordinator journals
    every dispatch); each event is flushed and fsync'd before ``append``
    returns, so an event the coordinator acted on is on disk before the
    action's consequences can be observed elsewhere.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = None
        self.events_written = 0

    def _open(self):
        if self._handle is not None:
            return self._handle
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # Seal a torn final line (a previous coordinator died mid-append)
        # so the next event starts on its own line and replay drops only
        # the torn fragment — the same discipline RunStore.append uses.
        needs_newline = False
        if os.path.exists(self.path):
            with open(self.path, "rb") as existing:
                existing.seek(0, os.SEEK_END)
                if existing.tell() > 0:
                    existing.seek(-1, os.SEEK_END)
                    needs_newline = existing.read(1) != b"\n"
        self._handle = open(self.path, "a", encoding="utf-8")
        if needs_newline:
            self._handle.write("\n")
        return self._handle

    def append(self, event: str, **fields) -> None:
        """Durably append one lifecycle event (whole line, fsync'd)."""
        self.append_many([{"event": event, **fields}])

    def append_many(self, events: Iterable[dict]) -> None:
        """Append a batch of events under a single fsync.

        Used for the enqueue burst at serve start — one fsync per job
        would serialize startup on disk latency for large grids, and the
        batch is all-or-nothing from the scheduler's point of view anyway.
        """
        handle = self._open()
        count = 0
        for payload in events:
            handle.write(json.dumps(payload, sort_keys=True,
                                    separators=(",", ":")))
            handle.write("\n")
            count += 1
        if not count:
            return
        handle.flush()
        os.fsync(handle.fileno())
        self.events_written += count

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay_journal(path: str) -> List[dict]:
    """All parseable events of a journal file, in append order.

    A truncated trailing line (the coordinator died mid-append) is skipped
    with a warning rather than raised — recovery must work precisely when
    the previous run ended badly.
    """
    if not os.path.exists(path):
        return []
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                logger.warning(
                    "skipping torn journal event on line %d of %s "
                    "(partial write from a killed coordinator)", lineno, path)
                continue
            if not isinstance(event, dict) or not event.get("event"):
                logger.warning("skipping non-event JSON on line %d of %s",
                               lineno, path)
                continue
            events.append(event)
    return events


@dataclass
class JournalRecovery:
    """Scheduling state rebuilt from a journal replay."""

    #: ``leased`` events per job — restores the poison-job budget.
    dispatch_counts: Dict[str, int] = field(default_factory=dict)
    #: Jobs a worker was holding when the coordinator died (job_id ->
    #: worker name), minus anything ``results.jsonl`` shows completed.
    leased: Dict[str, str] = field(default_factory=dict)
    #: Events the replay parsed (for logs and tests).
    events_replayed: int = 0

    def summary(self) -> str:
        return (f"journal: {self.events_replayed} events replayed, "
                f"{len(self.leased)} leased jobs requeued, "
                f"{len(self.dispatch_counts)} jobs with dispatch history")


def recover_from_events(events: Iterable[dict],
                        completed_ids: Optional[Set[str]] = None
                        ) -> JournalRecovery:
    """Fold a journal replay into restart state.

    ``completed_ids`` — job IDs with an ``ok`` record in ``results.jsonl``
    — always wins over the journal: a job whose record was persisted but
    whose ``result-accepted`` event was lost to a torn tail must not be
    treated as leased.
    """
    recovery = JournalRecovery()
    completed = completed_ids or set()
    for event in events:
        recovery.events_replayed += 1
        kind = event.get("event")
        job_id = event.get("job_id")
        if not isinstance(job_id, str):
            continue
        if kind == "leased":
            recovery.dispatch_counts[job_id] = \
                recovery.dispatch_counts.get(job_id, 0) + 1
            recovery.leased[job_id] = str(event.get("worker") or "?")
        elif kind in ("result-accepted", "requeued", "lost"):
            recovery.leased.pop(job_id, None)
    for job_id in completed:
        recovery.leased.pop(job_id, None)
    return recovery


def recover_run(run_dir: str,
                completed_ids: Optional[Set[str]] = None) -> JournalRecovery:
    """Replay ``run_dir``'s journal and return the restart state.

    Pure read — writing the explicit ``requeued (coordinator restart)``
    events for the recovered leases is the caller's job (it owns the live
    :class:`RunJournal` handle).
    """
    return recover_from_events(replay_journal(journal_path(run_dir)),
                               completed_ids=completed_ids)
