"""The distributed execution backend: a coordinator plus worker clients.

:class:`AsyncQueueBackend` runs a :class:`~repro.service.coordinator.
Coordinator` in the calling process and executes jobs on worker clients
connected over TCP.  Two deployment shapes share the one implementation:

* ``workers=N`` (N >= 1) spawns N local worker processes against the
  coordinator's ephemeral port — a single-machine distributed run, which is
  what the CI regression job and the backend conformance suite use;
* ``workers=0`` binds the requested host/port and waits for external
  ``art9 work --connect host:port`` clients — the multi-machine shape
  behind ``art9 serve``.

Worker processes are started with the ``spawn`` method: each one is a fresh
interpreter that imports :mod:`repro` on its own, exactly like a remote
worker on another machine would, so the local convenience mode cannot hide
fork-only behaviour.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
from typing import Callable, List, Mapping, Optional, Sequence

from repro.runner.spec import SweepJob
from repro.service.backends import EmitFn, ExecutionBackend
from repro.service.coordinator import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_MAX_REQUEUES,
    Coordinator,
    CoordinatorStats,
)
from repro.service.journal import RunJournal
from repro.service.workerclient import (
    DEFAULT_HEARTBEAT_INTERVAL,
    run_worker_process,
)

#: Callback announcing the bound (host, port) once the coordinator listens.
StartedFn = Callable[[str, int], None]


class AsyncQueueBackend(ExecutionBackend):
    """Execute jobs through the asyncio TCP coordinator."""

    name = "queue"

    def __init__(
        self,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        on_started: Optional[StartedFn] = None,
        journal: Optional[RunJournal] = None,
        auth_token: Optional[str] = None,
        job_timeout: Optional[float] = None,
        dispatch_counts: Optional[Mapping[str, int]] = None,
        recovered_jobs: int = 0,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.host = host
        self.port = port
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = heartbeat_interval
        self.max_requeues = max_requeues
        self.on_started = on_started
        #: Write-ahead journal handle (``art9 serve`` wires one per run
        #: dir); coordinator lifecycle events land here, fsync'd.
        self.journal = journal
        #: Shared worker-auth token; local spawned workers receive it too.
        self.auth_token = auth_token
        #: Per-job wall-clock execution budget for local spawned workers.
        self.job_timeout = job_timeout
        #: Dispatch counts recovered from a journal replay (``--resume``),
        #: so the poison-job budget keeps counting across restarts.
        self.dispatch_counts = dict(dispatch_counts or {})
        #: Number of formerly-leased jobs a journal replay requeued (shown
        #: in the final stats line of a resumed run).
        self.recovered_jobs = recovered_jobs
        #: Stats of the most recent run (None before the first execute()).
        self.stats: Optional[CoordinatorStats] = None

    def describe(self) -> str:
        if self.workers:
            return f"{self.name} (coordinator + {self.workers} local workers)"
        return f"{self.name} (coordinator on {self.host}:{self.port}, external workers)"

    def execute(self, jobs: Sequence[SweepJob], emit: EmitFn) -> None:
        if not jobs:
            return
        asyncio.run(self._run(list(jobs), emit))

    async def _run(self, jobs: List[SweepJob], emit: EmitFn) -> None:
        coordinator = Coordinator(
            jobs,
            on_result=emit,
            host=self.host,
            port=self.port,
            heartbeat_timeout=self.heartbeat_timeout,
            max_requeues=self.max_requeues,
            journal=self.journal,
            auth_token=self.auth_token,
            dispatch_counts=self.dispatch_counts,
            recovered_jobs=self.recovered_jobs,
        )
        serve_task = asyncio.create_task(coordinator.serve())
        await coordinator.wait_started()
        if coordinator.port is None:
            await serve_task  # propagates the bind error (port in use, ...)
            return
        if self.on_started is not None:
            self.on_started(self.host, coordinator.port)
        processes = self._spawn_workers(coordinator.port)
        monitor = (asyncio.create_task(self._monitor(processes, coordinator))
                   if processes else None)
        try:
            await serve_task
        finally:
            if monitor is not None:
                monitor.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await monitor
            for process in processes:
                process.join(timeout=10)
                if process.is_alive():  # pragma: no cover - cleanup backstop
                    process.terminate()
                    process.join(timeout=5)
        self.stats = coordinator.stats

    @staticmethod
    async def _monitor(processes: List, coordinator: Coordinator) -> None:
        """Abort the run instead of hanging if every worker is gone.

        External workers may coexist with the spawned local ones (``art9
        serve --local-workers N``), so dead local processes only abort the
        run when no worker connection is open either.
        """
        while True:
            await asyncio.sleep(0.5)
            if coordinator.outstanding <= 0:
                return
            if (all(not process.is_alive() for process in processes)
                    and coordinator.connected_workers == 0):
                coordinator.abort("all local worker processes exited and "
                                  "no external workers are connected")
                return

    def _spawn_workers(self, port: Optional[int]) -> List:
        if not self.workers or port is None:
            return []
        # A wildcard bind is not a connectable address; local workers dial
        # loopback in that case.
        connect_host = "127.0.0.1" if self.host in ("0.0.0.0", "::") else self.host
        context = multiprocessing.get_context("spawn")
        processes = []
        for _ in range(self.workers):
            process = context.Process(
                target=run_worker_process,
                args=(connect_host, port),
                kwargs={"heartbeat_interval": self.heartbeat_interval,
                        "auth_token": self.auth_token,
                        "job_timeout": self.job_timeout},
                daemon=True,
            )
            process.start()
            processes.append(process)
        return processes
