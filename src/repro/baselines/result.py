"""Common result record returned by the baseline cycle models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class BaselineRunResult:
    """Cycle-model outcome for one workload on one baseline core."""

    core: str
    workload: str
    cycles: int
    instructions: int
    instruction_mix: Dict[str, int] = field(default_factory=dict)
    detail: Dict[str, int] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        """Cycles per executed instruction."""
        if self.instructions == 0:
            return float("nan")
        return self.cycles / self.instructions

    def summary(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.core:10s} {self.workload:12s} "
            f"cycles={self.cycles:>10d} instructions={self.instructions:>9d} CPI={self.cpi:.2f}"
        )
