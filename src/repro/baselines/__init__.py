"""Baseline processor models used by the paper's evaluation.

Tables II and III compare the ART-9 core against two open-source RISC-V
cores (VexRiscv and PicoRV32) and Fig. 5 adds an ARMv6-M (Thumb) code-size
point.  Offline we cannot run the original RTL, so each baseline is modelled
at the level the comparison actually needs:

* :class:`PicoRV32Model` — a per-instruction-class cycle-cost model of the
  non-pipelined PicoRV32 core, driven by the RV-32 functional simulator.
  The default costs follow the cycle counts documented in the PicoRV32
  README (average CPI ≈ 4).
* :class:`VexRiscvModel` — a 5-stage pipelined cycle model (one instruction
  per cycle plus load-use interlocks and taken-branch penalties), matching
  the lightweight VexRiscv configuration used in the paper.
* :class:`ARMv6MCodeSizeModel` — a Thumb-1 code-size estimator used only for
  the memory-cell comparison of Fig. 5.
"""

from repro.baselines.picorv32 import PicoRV32CycleCosts, PicoRV32Model
from repro.baselines.vexriscv import VexRiscvModel, VexRiscvParameters
from repro.baselines.armv6m import ARMv6MCodeSizeModel
from repro.baselines.result import BaselineRunResult

__all__ = [
    "PicoRV32Model",
    "PicoRV32CycleCosts",
    "VexRiscvModel",
    "VexRiscvParameters",
    "ARMv6MCodeSizeModel",
    "BaselineRunResult",
]
