"""Cycle model of the PicoRV32 core (non-pipelined RV-32IM baseline).

PicoRV32 is a size-optimised, non-pipelined core that takes several cycles
per instruction; its README documents typical per-instruction timings
(direct loads/stores, 3-cycle ALU operations, serial shifter, PCPI
multiplier) and an average CPI of about 4, with a measured Dhrystone score
of roughly 0.31 DMIPS/MHz — the number quoted in Table II of the paper.

This model drives the RV-32 functional simulator instruction by instruction
and charges each executed instruction a cost from :class:`PicoRV32CycleCosts`.
Shift instructions are charged per shifted bit position (the core uses a
single-bit-per-cycle shifter in its small configuration), and the PCPI
multiplier/divider is charged its documented latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.result import BaselineRunResult
from repro.riscv.program import RVProgram
from repro.riscv.simulator import RVSimulator


@dataclass
class PicoRV32CycleCosts:
    """Per-instruction-class cycle costs (defaults follow the PicoRV32 docs)."""

    alu: int = 3
    load: int = 5
    store: int = 5
    branch_not_taken: int = 3
    branch_taken: int = 5
    jump: int = 5
    shift_base: int = 3
    shift_per_bit: int = 1
    mul_div: int = 40
    system: int = 3


class PicoRV32Model:
    """Execute a workload and report PicoRV32-style cycle counts."""

    name = "PicoRV32"

    def __init__(self, costs: PicoRV32CycleCosts = None):
        self.costs = costs or PicoRV32CycleCosts()

    def run(self, program: RVProgram, max_instructions: int = 20_000_000,
            simulator: RVSimulator = None,
            max_cycles: int = None) -> BaselineRunResult:
        """Run ``program`` to completion and accumulate the cycle cost.

        Pass a freshly built ``simulator`` to keep a handle on the final
        architectural state (the sweep runner verifies the result region
        against the workload reference that way).  ``max_cycles`` bounds
        the *modelled* cycle count, so a sweep's per-job cycle budget means
        the same thing on every engine of the grid.
        """
        simulator = simulator or RVSimulator(program)
        costs = self.costs
        cycles = 0
        detail = {"shift_bits": 0}

        while not simulator.halted:
            if simulator.instructions_executed >= max_instructions:
                raise RuntimeError("PicoRV32 model: program did not halt")
            if max_cycles is not None and cycles >= max_cycles:
                raise RuntimeError("PicoRV32 model: cycle budget exhausted")
            pc_before = simulator.pc
            instruction = simulator.step()
            spec = instruction.spec

            if spec.is_mul_div:
                cycles += costs.mul_div
            elif spec.is_load:
                cycles += costs.load
            elif spec.is_store:
                cycles += costs.store
            elif spec.is_jump:
                cycles += costs.jump
            elif spec.is_branch:
                taken = simulator.pc != pc_before + 4
                cycles += costs.branch_taken if taken else costs.branch_not_taken
            elif instruction.mnemonic in ("sll", "srl", "sra", "slli", "srli", "srai"):
                if instruction.mnemonic in ("slli", "srli", "srai"):
                    amount = (instruction.imm or 0) & 0x1F
                else:
                    amount = simulator.read_reg(instruction.rs2) & 0x1F
                detail["shift_bits"] += amount
                cycles += costs.shift_base + costs.shift_per_bit * amount
            elif spec.fmt == "SYS":
                cycles += costs.system
            else:
                cycles += costs.alu

        return BaselineRunResult(
            core=self.name,
            workload=program.name,
            cycles=cycles,
            instructions=simulator.instructions_executed,
            instruction_mix=dict(simulator.instruction_mix),
            detail=detail,
        )
