"""ARMv6-M (Thumb-1) code-size model for the Fig. 5 comparison.

Fig. 5 of the paper compares the memory cells needed to store each benchmark
on the ART-9 (9-trit instructions), RV-32I (32-bit instructions) and ARMv6-M
(16-bit Thumb instructions).  Only the ARMv6-M *code size* matters for that
figure, so this model estimates how many 16-bit Thumb-1 instructions an
ARMv6-M compiler would need for the same program, starting from the RV-32I
instruction stream:

* two-operand ALU instructions whose destination differs from both sources
  cost an extra ``MOV`` (Thumb-1 ALU ops are two-address);
* compare-and-branch needs a ``CMP``/``Bcc`` pair, whereas RV-32I fuses the
  comparison into the branch;
* large constants built with ``LUI``/``ADDI`` pairs map onto a PC-relative
  literal load (one instruction plus a 32-bit literal pool entry);
* everything else (loads, stores, small immediates, register moves, jumps)
  maps one-to-one.

The resulting estimate lands within a few percent of the published ARMv6-M
Dhrystone code size ratio, which is all Fig. 5 requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.riscv.program import RVProgram

#: Bits per Thumb-1 instruction.
THUMB_INSTRUCTION_BITS = 16


@dataclass
class ARMv6MCodeSize:
    """Estimated ARMv6-M footprint of a program."""

    thumb_instructions: int
    literal_pool_words: int

    @property
    def total_bits(self) -> int:
        """Total instruction-memory bits, literal pool included."""
        return self.thumb_instructions * THUMB_INSTRUCTION_BITS + self.literal_pool_words * 32


class ARMv6MCodeSizeModel:
    """Estimate Thumb-1 code size from an RV-32I instruction stream."""

    name = "ARMv6-M"

    #: RV mnemonics that translate one-to-one into a single Thumb instruction.
    _ONE_TO_ONE = {
        "lw", "sw", "lb", "lbu", "lh", "lhu", "sb", "sh",
        "jal", "jalr", "lui", "auipc", "ecall", "ebreak",
        "mul",
    }

    def estimate(self, program: RVProgram) -> ARMv6MCodeSize:
        """Estimate the ARMv6-M code size of ``program``."""
        thumb = 0
        literal_words = 0
        instructions = program.instructions
        index = 0
        while index < len(instructions):
            instr = instructions[index]
            spec = instr.spec
            mnemonic = instr.mnemonic

            # LUI + ADDI constant pairs become one LDR from a literal pool.
            if (
                mnemonic == "lui"
                and index + 1 < len(instructions)
                and instructions[index + 1].mnemonic == "addi"
                and instructions[index + 1].rd == instr.rd
                and instructions[index + 1].rs1 == instr.rd
            ):
                thumb += 1
                literal_words += 1
                index += 2
                continue

            if spec.is_branch:
                # CMP + conditional branch; branches against x0 still need
                # the compare because Thumb-1 has no compare-and-branch.
                thumb += 2
            elif mnemonic in self._ONE_TO_ONE:
                thumb += 1
            elif spec.fmt == "R" or spec.fmt == "I":
                # Two-address ALU: an extra MOV when rd differs from rs1.
                needs_move = instr.rd is not None and instr.rs1 is not None and instr.rd != instr.rs1 and instr.rs1 != 0
                thumb += 2 if needs_move else 1
            else:
                thumb += 1
            index += 1

        return ARMv6MCodeSize(thumb_instructions=thumb, literal_pool_words=literal_words)

    def instruction_memory_bits(self, program: RVProgram) -> int:
        """Convenience wrapper returning only the total bit count."""
        return self.estimate(program).total_bits
