"""Cycle model of the VexRiscv core (5-stage pipelined RV-32I baseline).

The VexRiscv configuration referenced by Table II is a lightweight 5-stage
pipeline without a branch predictor: one instruction completes per cycle
except when the pipeline inserts

* a load-use interlock (one cycle, when an instruction consumes the result
  of the immediately preceding load), or
* a taken-branch/jump flush (the frontend refetches; two cycles in the
  small configuration modelled here).

This model steps the RV-32 functional simulator and detects those events on
the dynamic instruction stream, so the penalty accounting matches the
workload exactly rather than relying on static averages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.result import BaselineRunResult
from repro.riscv.program import RVProgram
from repro.riscv.simulator import RVSimulator


@dataclass
class VexRiscvParameters:
    """Pipeline penalty parameters for the VexRiscv cycle model."""

    pipeline_fill: int = 4
    load_use_penalty: int = 1
    taken_branch_penalty: int = 2
    jump_penalty: int = 2
    mul_cycles: int = 1   # the paper's VexRiscv has a hardware multiplier
    div_cycles: int = 33  # iterative divider


class VexRiscvModel:
    """Execute a workload and report VexRiscv-style cycle counts."""

    name = "VexRiscv"

    def __init__(self, parameters: VexRiscvParameters = None):
        self.parameters = parameters or VexRiscvParameters()

    def run(self, program: RVProgram, max_instructions: int = 20_000_000,
            simulator: RVSimulator = None,
            max_cycles: int = None) -> BaselineRunResult:
        """Run ``program`` to completion and accumulate the cycle cost.

        Pass a freshly built ``simulator`` to keep a handle on the final
        architectural state (the sweep runner verifies the result region
        against the workload reference that way).  ``max_cycles`` bounds
        the *modelled* cycle count, so a sweep's per-job cycle budget means
        the same thing on every engine of the grid.
        """
        simulator = simulator or RVSimulator(program)
        params = self.parameters
        cycles = params.pipeline_fill
        detail = {"load_use_stalls": 0, "taken_branches": 0, "jumps": 0}

        previous_load_destination = None
        while not simulator.halted:
            if simulator.instructions_executed >= max_instructions:
                raise RuntimeError("VexRiscv model: program did not halt")
            if max_cycles is not None and cycles >= max_cycles:
                raise RuntimeError("VexRiscv model: cycle budget exhausted")
            pc_before = simulator.pc
            instruction = simulator.step()
            spec = instruction.spec

            cycles += 1

            # Load-use interlock against the immediately preceding load.
            if previous_load_destination is not None and previous_load_destination in instruction.sources():
                cycles += params.load_use_penalty
                detail["load_use_stalls"] += 1
            previous_load_destination = instruction.destination() if spec.is_load else None

            if spec.is_branch:
                if simulator.pc != pc_before + 4:
                    cycles += params.taken_branch_penalty
                    detail["taken_branches"] += 1
            elif spec.is_jump:
                cycles += params.jump_penalty
                detail["jumps"] += 1
            elif spec.is_mul_div:
                if instruction.mnemonic in ("div", "divu", "rem", "remu"):
                    cycles += params.div_cycles - 1
                else:
                    cycles += params.mul_cycles - 1

        return BaselineRunResult(
            core=self.name,
            workload=program.name,
            cycles=cycles,
            instructions=simulator.instructions_executed,
            instruction_mix=dict(simulator.instruction_mix),
            detail=detail,
        )
