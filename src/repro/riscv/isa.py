"""RV-32I (plus M-extension multiply/divide) instruction definitions.

Only the user-level integer instructions needed by the benchmarks and by the
translation framework are modelled: the full RV-32I base set (loads/stores,
ALU register/immediate forms, branches, jumps, LUI/AUIPC) and the MUL/DIV
group of the M extension used by the PicoRV32 RV-32IM baseline of Table II.
CSR and fence instructions are outside the scope of the benchmarks and are
not modelled; ECALL/EBREAK terminate simulation (they play the role of the
ART-9 HALT extension).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.riscv.registers import rv_register_name

# Instruction format classes (standard RISC-V nomenclature).
FORMAT_R = "R"
FORMAT_I = "I"
FORMAT_S = "S"
FORMAT_B = "B"
FORMAT_U = "U"
FORMAT_J = "J"
FORMAT_SYS = "SYS"


@dataclass(frozen=True)
class RVInstructionSpec:
    """Static description of one RV-32 instruction."""

    mnemonic: str
    fmt: str
    opcode: int
    funct3: Optional[int] = None
    funct7: Optional[int] = None
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_jump: bool = False
    is_mul_div: bool = False
    description: str = ""

    @property
    def writes_rd(self) -> bool:
        """True when the instruction writes a destination register."""
        return self.fmt in (FORMAT_R, FORMAT_I, FORMAT_U, FORMAT_J)

    @property
    def reads_rs1(self) -> bool:
        """True when the instruction reads rs1."""
        return self.fmt in (FORMAT_R, FORMAT_I, FORMAT_S, FORMAT_B)

    @property
    def reads_rs2(self) -> bool:
        """True when the instruction reads rs2."""
        return self.fmt in (FORMAT_R, FORMAT_S, FORMAT_B)


RV_INSTRUCTION_SPECS: Dict[str, RVInstructionSpec] = {}


def _register(spec: RVInstructionSpec) -> None:
    RV_INSTRUCTION_SPECS[spec.mnemonic] = spec


# -- U / J type ----------------------------------------------------------------
_register(RVInstructionSpec("lui", FORMAT_U, 0b0110111, description="rd = imm << 12"))
_register(RVInstructionSpec("auipc", FORMAT_U, 0b0010111, description="rd = pc + (imm << 12)"))
_register(RVInstructionSpec("jal", FORMAT_J, 0b1101111, is_jump=True, description="rd = pc+4; pc += imm"))

# -- I type --------------------------------------------------------------------
_register(RVInstructionSpec("jalr", FORMAT_I, 0b1100111, funct3=0b000, is_jump=True,
                            description="rd = pc+4; pc = rs1 + imm"))
_register(RVInstructionSpec("lb", FORMAT_I, 0b0000011, funct3=0b000, is_load=True))
_register(RVInstructionSpec("lh", FORMAT_I, 0b0000011, funct3=0b001, is_load=True))
_register(RVInstructionSpec("lw", FORMAT_I, 0b0000011, funct3=0b010, is_load=True))
_register(RVInstructionSpec("lbu", FORMAT_I, 0b0000011, funct3=0b100, is_load=True))
_register(RVInstructionSpec("lhu", FORMAT_I, 0b0000011, funct3=0b101, is_load=True))
_register(RVInstructionSpec("addi", FORMAT_I, 0b0010011, funct3=0b000))
_register(RVInstructionSpec("slti", FORMAT_I, 0b0010011, funct3=0b010))
_register(RVInstructionSpec("sltiu", FORMAT_I, 0b0010011, funct3=0b011))
_register(RVInstructionSpec("xori", FORMAT_I, 0b0010011, funct3=0b100))
_register(RVInstructionSpec("ori", FORMAT_I, 0b0010011, funct3=0b110))
_register(RVInstructionSpec("andi", FORMAT_I, 0b0010011, funct3=0b111))
_register(RVInstructionSpec("slli", FORMAT_I, 0b0010011, funct3=0b001, funct7=0b0000000))
_register(RVInstructionSpec("srli", FORMAT_I, 0b0010011, funct3=0b101, funct7=0b0000000))
_register(RVInstructionSpec("srai", FORMAT_I, 0b0010011, funct3=0b101, funct7=0b0100000))

# -- S type --------------------------------------------------------------------
_register(RVInstructionSpec("sb", FORMAT_S, 0b0100011, funct3=0b000, is_store=True))
_register(RVInstructionSpec("sh", FORMAT_S, 0b0100011, funct3=0b001, is_store=True))
_register(RVInstructionSpec("sw", FORMAT_S, 0b0100011, funct3=0b010, is_store=True))

# -- B type --------------------------------------------------------------------
_register(RVInstructionSpec("beq", FORMAT_B, 0b1100011, funct3=0b000, is_branch=True))
_register(RVInstructionSpec("bne", FORMAT_B, 0b1100011, funct3=0b001, is_branch=True))
_register(RVInstructionSpec("blt", FORMAT_B, 0b1100011, funct3=0b100, is_branch=True))
_register(RVInstructionSpec("bge", FORMAT_B, 0b1100011, funct3=0b101, is_branch=True))
_register(RVInstructionSpec("bltu", FORMAT_B, 0b1100011, funct3=0b110, is_branch=True))
_register(RVInstructionSpec("bgeu", FORMAT_B, 0b1100011, funct3=0b111, is_branch=True))

# -- R type --------------------------------------------------------------------
_register(RVInstructionSpec("add", FORMAT_R, 0b0110011, funct3=0b000, funct7=0b0000000))
_register(RVInstructionSpec("sub", FORMAT_R, 0b0110011, funct3=0b000, funct7=0b0100000))
_register(RVInstructionSpec("sll", FORMAT_R, 0b0110011, funct3=0b001, funct7=0b0000000))
_register(RVInstructionSpec("slt", FORMAT_R, 0b0110011, funct3=0b010, funct7=0b0000000))
_register(RVInstructionSpec("sltu", FORMAT_R, 0b0110011, funct3=0b011, funct7=0b0000000))
_register(RVInstructionSpec("xor", FORMAT_R, 0b0110011, funct3=0b100, funct7=0b0000000))
_register(RVInstructionSpec("srl", FORMAT_R, 0b0110011, funct3=0b101, funct7=0b0000000))
_register(RVInstructionSpec("sra", FORMAT_R, 0b0110011, funct3=0b101, funct7=0b0100000))
_register(RVInstructionSpec("or", FORMAT_R, 0b0110011, funct3=0b110, funct7=0b0000000))
_register(RVInstructionSpec("and", FORMAT_R, 0b0110011, funct3=0b111, funct7=0b0000000))

# -- M extension ---------------------------------------------------------------
_register(RVInstructionSpec("mul", FORMAT_R, 0b0110011, funct3=0b000, funct7=0b0000001, is_mul_div=True))
_register(RVInstructionSpec("mulh", FORMAT_R, 0b0110011, funct3=0b001, funct7=0b0000001, is_mul_div=True))
_register(RVInstructionSpec("mulhu", FORMAT_R, 0b0110011, funct3=0b011, funct7=0b0000001, is_mul_div=True))
_register(RVInstructionSpec("div", FORMAT_R, 0b0110011, funct3=0b100, funct7=0b0000001, is_mul_div=True))
_register(RVInstructionSpec("divu", FORMAT_R, 0b0110011, funct3=0b101, funct7=0b0000001, is_mul_div=True))
_register(RVInstructionSpec("rem", FORMAT_R, 0b0110011, funct3=0b110, funct7=0b0000001, is_mul_div=True))
_register(RVInstructionSpec("remu", FORMAT_R, 0b0110011, funct3=0b111, funct7=0b0000001, is_mul_div=True))

# -- system --------------------------------------------------------------------
_register(RVInstructionSpec("ecall", FORMAT_SYS, 0b1110011, funct3=0b000,
                            description="terminate simulation"))
_register(RVInstructionSpec("ebreak", FORMAT_SYS, 0b1110011, funct3=0b000,
                            description="terminate simulation"))


def rv_spec_for(mnemonic: str) -> RVInstructionSpec:
    """Look up the spec for ``mnemonic`` (case-insensitive)."""
    try:
        return RV_INSTRUCTION_SPECS[mnemonic.lower()]
    except KeyError:
        raise ValueError(f"unknown RV-32 instruction: {mnemonic!r}") from None


@dataclass
class RVInstruction:
    """One RV-32 instruction instance (rd/rs1/rs2 are register numbers)."""

    mnemonic: str
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    label: Optional[str] = None
    source: Optional[str] = None

    def __post_init__(self):
        self.mnemonic = self.mnemonic.lower()
        self.spec  # validates

    @property
    def spec(self) -> RVInstructionSpec:
        """The static spec of this instruction's mnemonic."""
        return rv_spec_for(self.mnemonic)

    def destination(self) -> Optional[int]:
        """Destination register (never x0 — writes to x0 are discarded)."""
        if self.spec.writes_rd and self.rd not in (None, 0):
            return self.rd
        return None

    def sources(self) -> Tuple[int, ...]:
        """Registers read by this instruction."""
        spec = self.spec
        out = []
        if spec.reads_rs1 and self.rs1 is not None:
            out.append(self.rs1)
        if spec.reads_rs2 and self.rs2 is not None:
            out.append(self.rs2)
        return tuple(out)

    def render(self) -> str:
        """Render back to (register-numbered) assembly text."""
        spec = self.spec
        fmt = spec.fmt
        if fmt == FORMAT_R:
            return f"{self.mnemonic} {rv_register_name(self.rd)}, {rv_register_name(self.rs1)}, {rv_register_name(self.rs2)}"
        if fmt == FORMAT_I:
            if spec.is_load or self.mnemonic == "jalr":
                return f"{self.mnemonic} {rv_register_name(self.rd)}, {self.imm}({rv_register_name(self.rs1)})"
            return f"{self.mnemonic} {rv_register_name(self.rd)}, {rv_register_name(self.rs1)}, {self.imm}"
        if fmt == FORMAT_S:
            return f"{self.mnemonic} {rv_register_name(self.rs2)}, {self.imm}({rv_register_name(self.rs1)})"
        if fmt == FORMAT_B:
            target = self.label if self.label else str(self.imm)
            return f"{self.mnemonic} {rv_register_name(self.rs1)}, {rv_register_name(self.rs2)}, {target}"
        if fmt == FORMAT_U:
            return f"{self.mnemonic} {rv_register_name(self.rd)}, {self.imm}"
        if fmt == FORMAT_J:
            target = self.label if self.label else str(self.imm)
            return f"{self.mnemonic} {rv_register_name(self.rd)}, {target}"
        return self.mnemonic

    def __str__(self) -> str:
        return self.render()

    def copy(self, **overrides) -> "RVInstruction":
        """Return a copy with selected fields replaced."""
        values = dict(
            mnemonic=self.mnemonic, rd=self.rd, rs1=self.rs1, rs2=self.rs2,
            imm=self.imm, label=self.label, source=self.source,
        )
        values.update(overrides)
        return RVInstruction(**values)
