"""Two-pass assembler for RV-32I (+M) assembly text.

The accepted syntax is the conventional GNU-style one emitted by RISC-V
compilers, restricted to the instructions in :mod:`repro.riscv.isa`:

::

    .text
    main:
        addi  sp, sp, -16
        li    a0, 1200          # pseudo-instruction, expands as needed
        lw    a1, 0(a2)
        beq   a0, a1, done
        jal   ra, helper
        ecall
    .data
    array:  .word 5, -3, 8
    buffer: .zero 16            # sixteen zero words

Like the ART-9 assembler, the machine is Harvard-style: instruction
addresses are byte addresses starting at 0, and the data section occupies a
separate data memory whose word ``i`` lives at byte address ``4 * i``.

Supported pseudo-instructions: ``nop``, ``li``, ``la``, ``mv``, ``not``,
``neg``, ``seqz``, ``snez``, ``sltz``, ``sgtz``, ``j``, ``jr``, ``ret``,
``call``, ``beqz``, ``bnez``, ``blez``, ``bgez``, ``bltz``, ``bgtz``,
``bgt``, ``ble``, ``bgtu``, ``bleu``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.riscv.isa import RVInstruction, rv_spec_for
from repro.riscv.program import RVDataSegment, RVProgram
from repro.riscv.registers import rv_register_index

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_COMMENT_RE = re.compile(r"[#;].*$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\s*\(\s*(\w+)\s*\)$")


class RVAssemblerError(ValueError):
    """Raised for syntax or range errors in RV-32 assembly input."""

    def __init__(self, message: str, line_number: Optional[int] = None, line: str = ""):
        location = f"line {line_number}: " if line_number is not None else ""
        suffix = f"  [{line.strip()}]" if line else ""
        super().__init__(f"{location}{message}{suffix}")
        self.line_number = line_number


def _to_signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def split_hi_lo(value: int) -> Tuple[int, int]:
    """Split a 32-bit constant into (lui_imm, addi_imm) with sign correction.

    ``lui rd, hi`` followed by ``addi rd, rd, lo`` reconstructs ``value``
    because the ADDI immediate is sign extended: when bit 11 of the low part
    is set, the high part is incremented by one to compensate.
    """
    value &= 0xFFFFFFFF
    lo = value & 0xFFF
    if lo >= 0x800:
        lo -= 0x1000
    hi = ((value - lo) >> 12) & 0xFFFFF
    return hi, lo


class _RVAssembler:
    def __init__(self, name: str):
        self.program = RVProgram(name=name)
        self.section = ".text"
        self.data_values: List[int] = []

    # -- operand parsing --------------------------------------------------------

    def _reg(self, token: str, line_number: int, line: str) -> int:
        try:
            return rv_register_index(token)
        except ValueError as exc:
            raise RVAssemblerError(str(exc), line_number, line) from None

    def _int(self, token: str, line_number: int, line: str) -> int:
        try:
            return int(token.strip(), 0)
        except ValueError:
            raise RVAssemblerError(f"bad integer literal {token!r}", line_number, line) from None

    def _imm_or_label(self, token: str, line_number: int, line: str):
        token = token.strip()
        if re.match(r"^-?(0[xXoObB])?\d", token):
            return self._int(token, line_number, line), None
        return None, token

    def _mem_operand(self, token: str, line_number: int, line: str) -> Tuple[int, int]:
        """Parse ``imm(rs1)`` into (imm, rs1)."""
        match = _MEM_OPERAND_RE.match(token.strip())
        if not match:
            raise RVAssemblerError(f"expected imm(reg), got {token!r}", line_number, line)
        imm = self._int(match.group(1), line_number, line)
        rs1 = self._reg(match.group(2), line_number, line)
        return imm, rs1

    def _emit(self, instruction: RVInstruction) -> None:
        self.program.instructions.append(instruction)

    # -- pseudo-instruction expansion ---------------------------------------------

    def _expand_pseudo(self, mnemonic: str, operands: List[str], line_number: int, line: str) -> bool:
        """Expand pseudo-instructions; returns True when handled."""
        m = mnemonic
        if m == "nop":
            self._emit(RVInstruction("addi", rd=0, rs1=0, imm=0))
            return True
        if m == "li":
            rd = self._reg(operands[0], line_number, line)
            value = self._int(operands[1], line_number, line)
            if -2048 <= value <= 2047:
                self._emit(RVInstruction("addi", rd=rd, rs1=0, imm=value))
            else:
                hi, lo = split_hi_lo(value)
                self._emit(RVInstruction("lui", rd=rd, imm=hi))
                if lo != 0:
                    self._emit(RVInstruction("addi", rd=rd, rs1=rd, imm=lo))
            return True
        if m == "la":
            rd = self._reg(operands[0], line_number, line)
            # Data addresses in this substrate are small; resolved after pass 1.
            self._emit(RVInstruction("addi", rd=rd, rs1=0, imm=None, label=f"%abs:{operands[1].strip()}"))
            return True
        if m == "mv":
            rd = self._reg(operands[0], line_number, line)
            rs = self._reg(operands[1], line_number, line)
            self._emit(RVInstruction("addi", rd=rd, rs1=rs, imm=0))
            return True
        if m == "not":
            rd = self._reg(operands[0], line_number, line)
            rs = self._reg(operands[1], line_number, line)
            self._emit(RVInstruction("xori", rd=rd, rs1=rs, imm=-1))
            return True
        if m == "neg":
            rd = self._reg(operands[0], line_number, line)
            rs = self._reg(operands[1], line_number, line)
            self._emit(RVInstruction("sub", rd=rd, rs1=0, rs2=rs))
            return True
        if m == "seqz":
            rd = self._reg(operands[0], line_number, line)
            rs = self._reg(operands[1], line_number, line)
            self._emit(RVInstruction("sltiu", rd=rd, rs1=rs, imm=1))
            return True
        if m == "snez":
            rd = self._reg(operands[0], line_number, line)
            rs = self._reg(operands[1], line_number, line)
            self._emit(RVInstruction("sltu", rd=rd, rs1=0, rs2=rs))
            return True
        if m == "sltz":
            rd = self._reg(operands[0], line_number, line)
            rs = self._reg(operands[1], line_number, line)
            self._emit(RVInstruction("slt", rd=rd, rs1=rs, rs2=0))
            return True
        if m == "sgtz":
            rd = self._reg(operands[0], line_number, line)
            rs = self._reg(operands[1], line_number, line)
            self._emit(RVInstruction("slt", rd=rd, rs1=0, rs2=rs))
            return True
        if m == "j":
            imm, label = self._imm_or_label(operands[0], line_number, line)
            self._emit(RVInstruction("jal", rd=0, imm=imm, label=label))
            return True
        if m == "jr":
            rs = self._reg(operands[0], line_number, line)
            self._emit(RVInstruction("jalr", rd=0, rs1=rs, imm=0))
            return True
        if m == "ret":
            self._emit(RVInstruction("jalr", rd=0, rs1=1, imm=0))
            return True
        if m == "call":
            imm, label = self._imm_or_label(operands[0], line_number, line)
            self._emit(RVInstruction("jal", rd=1, imm=imm, label=label))
            return True
        if m in ("beqz", "bnez", "blez", "bgez", "bltz", "bgtz"):
            rs = self._reg(operands[0], line_number, line)
            imm, label = self._imm_or_label(operands[1], line_number, line)
            mapping = {
                "beqz": ("beq", rs, 0), "bnez": ("bne", rs, 0),
                "blez": ("bge", 0, rs), "bgez": ("bge", rs, 0),
                "bltz": ("blt", rs, 0), "bgtz": ("blt", 0, rs),
            }
            real, rs1, rs2 = mapping[m]
            self._emit(RVInstruction(real, rs1=rs1, rs2=rs2, imm=imm, label=label))
            return True
        if m in ("bgt", "ble", "bgtu", "bleu"):
            rs = self._reg(operands[0], line_number, line)
            rt = self._reg(operands[1], line_number, line)
            imm, label = self._imm_or_label(operands[2], line_number, line)
            mapping = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}
            self._emit(RVInstruction(mapping[m], rs1=rt, rs2=rs, imm=imm, label=label))
            return True
        return False

    # -- architectural instructions ----------------------------------------------

    def _handle_instruction(self, mnemonic: str, operand_text: str, line_number: int, line: str) -> None:
        operands = [tok.strip() for tok in operand_text.split(",") if tok.strip()] if operand_text else []
        mnemonic = mnemonic.lower()

        if self._expand_pseudo(mnemonic, operands, line_number, line):
            return

        try:
            spec = rv_spec_for(mnemonic)
        except ValueError as exc:
            raise RVAssemblerError(str(exc), line_number, line) from None

        if spec.fmt == "SYS":
            self._emit(RVInstruction(mnemonic))
            return
        if spec.fmt == "R":
            rd = self._reg(operands[0], line_number, line)
            rs1 = self._reg(operands[1], line_number, line)
            rs2 = self._reg(operands[2], line_number, line)
            self._emit(RVInstruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2))
            return
        if spec.fmt == "I":
            rd = self._reg(operands[0], line_number, line)
            if spec.is_load or (mnemonic == "jalr" and len(operands) == 2 and "(" in operands[1]):
                imm, rs1 = self._mem_operand(operands[1], line_number, line)
            elif mnemonic == "jalr":
                rs1 = self._reg(operands[1], line_number, line)
                imm = self._int(operands[2], line_number, line) if len(operands) > 2 else 0
            else:
                rs1 = self._reg(operands[1], line_number, line)
                imm = self._int(operands[2], line_number, line)
            self._emit(RVInstruction(mnemonic, rd=rd, rs1=rs1, imm=imm))
            return
        if spec.fmt == "S":
            rs2 = self._reg(operands[0], line_number, line)
            imm, rs1 = self._mem_operand(operands[1], line_number, line)
            self._emit(RVInstruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm))
            return
        if spec.fmt == "B":
            rs1 = self._reg(operands[0], line_number, line)
            rs2 = self._reg(operands[1], line_number, line)
            imm, label = self._imm_or_label(operands[2], line_number, line)
            self._emit(RVInstruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm, label=label))
            return
        if spec.fmt == "U":
            rd = self._reg(operands[0], line_number, line)
            imm = self._int(operands[1], line_number, line)
            self._emit(RVInstruction(mnemonic, rd=rd, imm=imm))
            return
        if spec.fmt == "J":
            rd = self._reg(operands[0], line_number, line)
            imm, label = self._imm_or_label(operands[1], line_number, line)
            self._emit(RVInstruction(mnemonic, rd=rd, imm=imm, label=label))
            return
        raise RVAssemblerError(f"unhandled format {spec.fmt!r}", line_number, line)

    # -- data section --------------------------------------------------------------

    def _handle_data_directive(self, directive: str, rest: str, line_number: int, line: str) -> None:
        if directive == ".word":
            values = [self._int(tok, line_number, line) for tok in rest.split(",") if tok.strip()]
            if not values:
                raise RVAssemblerError(".word needs at least one value", line_number, line)
            self.data_values.extend(values)
        elif directive == ".zero":
            count = self._int(rest, line_number, line)
            if count < 0:
                raise RVAssemblerError(".zero count must be non-negative", line_number, line)
            self.data_values.extend([0] * count)
        else:
            raise RVAssemblerError(f"unknown data directive {directive!r}", line_number, line)

    # -- driver ----------------------------------------------------------------------

    def run(self, text: str) -> RVProgram:
        for line_number, raw_line in enumerate(text.splitlines(), start=1):
            line = _COMMENT_RE.sub("", raw_line).strip()
            if not line:
                continue

            match = _LABEL_RE.match(line)
            while match:
                label, line = match.group(1), match.group(2).strip()
                if self.section == ".text":
                    self.program.labels[label] = 4 * len(self.program.instructions)
                else:
                    self.program.data_labels[label] = 4 * len(self.data_values)
                match = _LABEL_RE.match(line) if line else None
            if not line:
                continue

            if line.startswith("."):
                parts = line.split(None, 1)
                directive = parts[0].lower()
                rest = parts[1] if len(parts) > 1 else ""
                if directive in (".text", ".data"):
                    self.section = directive
                elif directive in (".globl", ".global", ".align", ".section"):
                    continue  # accepted and ignored, like a linker would
                elif self.section == ".data":
                    self._handle_data_directive(directive, rest, line_number, raw_line)
                else:
                    raise RVAssemblerError(
                        f"directive {directive!r} is only valid in .data", line_number, raw_line
                    )
                continue

            if self.section == ".data":
                raise RVAssemblerError(
                    "instructions are not allowed in the .data section", line_number, raw_line
                )

            parts = line.split(None, 1)
            self._handle_instruction(parts[0], parts[1] if len(parts) > 1 else "", line_number, raw_line)

        if self.data_values:
            self.program.data.append(RVDataSegment(base_address=0, values=list(self.data_values)))
        self._resolve()
        return self.program

    def _resolve(self) -> None:
        program = self.program
        for index, instruction in enumerate(program.instructions):
            label = instruction.label
            if label is None:
                continue
            if label.startswith("%abs:"):
                target_name = label[len("%abs:"):]
                if target_name in program.data_labels:
                    target = program.data_labels[target_name]
                elif target_name in program.labels:
                    target = program.labels[target_name]
                else:
                    raise RVAssemblerError(f"undefined label {target_name!r}")
                instruction.imm = target
                instruction.label = None
                continue
            if label in program.labels:
                target = program.labels[label]
            elif label in program.data_labels:
                target = program.data_labels[label]
            else:
                raise RVAssemblerError(f"undefined label {label!r}")
            if instruction.spec.is_branch or instruction.mnemonic == "jal":
                instruction.imm = target - 4 * index
            else:
                instruction.imm = target


def assemble_riscv(text: str, name: str = "rv_program") -> RVProgram:
    """Assemble RV-32 assembly ``text`` into an :class:`RVProgram`."""
    return _RVAssembler(name).run(text)
