"""RV-32I substrate.

The paper's software-level framework starts from the output of an existing
RISC-V compiler.  Offline, that toolchain is replaced by this package: a
model of the RV-32I ISA (plus the M-extension multiply/divide used by the
PicoRV32 baseline), a two-pass assembler for the standard assembly syntax, a
32-bit instruction encoder, and a functional simulator used both to validate
workloads and to drive the baseline cycle models of Tables II and III.
"""

from repro.riscv.isa import (
    RV_INSTRUCTION_SPECS,
    RVInstruction,
    RVInstructionSpec,
    rv_spec_for,
)
from repro.riscv.registers import rv_register_index, rv_register_name
from repro.riscv.program import RVProgram
from repro.riscv.assembler import RVAssemblerError, assemble_riscv
from repro.riscv.encoder import encode_rv_instruction
from repro.riscv.simulator import RVExecutionResult, RVSimulator

__all__ = [
    "RVInstruction",
    "RVInstructionSpec",
    "RV_INSTRUCTION_SPECS",
    "rv_spec_for",
    "rv_register_index",
    "rv_register_name",
    "RVProgram",
    "assemble_riscv",
    "RVAssemblerError",
    "encode_rv_instruction",
    "RVSimulator",
    "RVExecutionResult",
]
