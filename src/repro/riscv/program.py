"""Container for assembled RV-32 programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.riscv.isa import RVInstruction

#: RV-32I instruction width in bits (all base instructions are 32 bits).
RV_INSTRUCTION_BITS = 32


@dataclass
class RVDataSegment:
    """Initial data-memory contents (32-bit words at a byte base address)."""

    base_address: int = 0
    values: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class RVProgram:
    """An assembled RV-32 program.

    Instruction addresses are byte addresses: instruction ``i`` lives at
    ``4 * i``, matching the real ISA so that branch offsets and JAL targets
    have their architectural meaning.
    """

    instructions: List[RVInstruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    data: List[RVDataSegment] = field(default_factory=list)
    data_labels: Dict[str, int] = field(default_factory=dict)
    name: str = "rv_program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[RVInstruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> RVInstruction:
        return self.instructions[index]

    def address_of(self, index: int) -> int:
        """Byte address of instruction ``index``."""
        return 4 * index

    def index_of_address(self, address: int) -> int:
        """Instruction index of byte address ``address``."""
        if address % 4 != 0:
            raise ValueError(f"misaligned instruction address {address:#x}")
        return address // 4

    def instruction_memory_bits(self) -> int:
        """Bits of instruction memory needed for the program (Fig. 5 metric)."""
        return len(self.instructions) * RV_INSTRUCTION_BITS

    def listing(self) -> str:
        """Render an address-annotated listing."""
        address_to_labels: Dict[int, List[str]] = {}
        for name, address in self.labels.items():
            address_to_labels.setdefault(address, []).append(name)
        lines: List[str] = []
        for index, instruction in enumerate(self.instructions):
            for label in sorted(address_to_labels.get(4 * index, [])):
                lines.append(f"{label}:")
            lines.append(f"  {4 * index:6d}: {instruction.render()}")
        return "\n".join(lines)

    def copy(self) -> "RVProgram":
        """Copy the program (instructions are copied, labels/data shared-copied)."""
        return RVProgram(
            instructions=[instr.copy() for instr in self.instructions],
            labels=dict(self.labels),
            data=[RVDataSegment(seg.base_address, list(seg.values)) for seg in self.data],
            data_labels=dict(self.data_labels),
            name=self.name,
        )
