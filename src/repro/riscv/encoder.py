"""Encoding of RV-32 instructions into their 32-bit machine words.

The encoder follows the standard RISC-V R/I/S/B/U/J field layouts.  It is
used by round-trip tests and by the code-size analyses (which only need the
fact that every base instruction occupies 32 bits, but benefit from a real
encoder when dumping memory images).
"""

from __future__ import annotations

from repro.riscv.isa import RVInstruction


class RVEncodeError(ValueError):
    """Raised when an operand does not fit its field."""


def _check_range(value: int, lo: int, hi: int, what: str) -> int:
    if not lo <= value <= hi:
        raise RVEncodeError(f"{what} {value} out of range [{lo}, {hi}]")
    return value


def _reg(value, what: str) -> int:
    if value is None:
        raise RVEncodeError(f"missing {what} register")
    return _check_range(value, 0, 31, what)


def encode_rv_instruction(instruction: RVInstruction) -> int:
    """Return the 32-bit machine word of ``instruction``."""
    spec = instruction.spec
    opcode = spec.opcode
    fmt = spec.fmt
    imm = instruction.imm or 0

    if fmt == "R":
        return (
            (spec.funct7 << 25)
            | (_reg(instruction.rs2, "rs2") << 20)
            | (_reg(instruction.rs1, "rs1") << 15)
            | (spec.funct3 << 12)
            | (_reg(instruction.rd, "rd") << 7)
            | opcode
        )
    if fmt == "I":
        if instruction.mnemonic in ("slli", "srli", "srai"):
            _check_range(imm, 0, 31, "shift amount")
            imm_field = (spec.funct7 << 5) | imm
        else:
            _check_range(imm, -2048, 2047, "I-type immediate")
            imm_field = imm & 0xFFF
        return (
            (imm_field << 20)
            | (_reg(instruction.rs1, "rs1") << 15)
            | (spec.funct3 << 12)
            | (_reg(instruction.rd, "rd") << 7)
            | opcode
        )
    if fmt == "S":
        _check_range(imm, -2048, 2047, "S-type immediate")
        imm_field = imm & 0xFFF
        return (
            ((imm_field >> 5) << 25)
            | (_reg(instruction.rs2, "rs2") << 20)
            | (_reg(instruction.rs1, "rs1") << 15)
            | (spec.funct3 << 12)
            | ((imm_field & 0x1F) << 7)
            | opcode
        )
    if fmt == "B":
        _check_range(imm, -4096, 4094, "branch offset")
        if imm % 2 != 0:
            raise RVEncodeError(f"branch offset must be even, got {imm}")
        imm_field = imm & 0x1FFF
        bit12 = (imm_field >> 12) & 0x1
        bit11 = (imm_field >> 11) & 0x1
        bits10_5 = (imm_field >> 5) & 0x3F
        bits4_1 = (imm_field >> 1) & 0xF
        return (
            (bit12 << 31)
            | (bits10_5 << 25)
            | (_reg(instruction.rs2, "rs2") << 20)
            | (_reg(instruction.rs1, "rs1") << 15)
            | (spec.funct3 << 12)
            | (bits4_1 << 8)
            | (bit11 << 7)
            | opcode
        )
    if fmt == "U":
        _check_range(imm, 0, 0xFFFFF, "U-type immediate")
        return (imm << 12) | (_reg(instruction.rd, "rd") << 7) | opcode
    if fmt == "J":
        _check_range(imm, -(1 << 20), (1 << 20) - 2, "jump offset")
        if imm % 2 != 0:
            raise RVEncodeError(f"jump offset must be even, got {imm}")
        imm_field = imm & 0x1FFFFF
        bit20 = (imm_field >> 20) & 0x1
        bits10_1 = (imm_field >> 1) & 0x3FF
        bit11 = (imm_field >> 11) & 0x1
        bits19_12 = (imm_field >> 12) & 0xFF
        return (
            (bit20 << 31)
            | (bits10_1 << 21)
            | (bit11 << 20)
            | (bits19_12 << 12)
            | (_reg(instruction.rd, "rd") << 7)
            | opcode
        )
    if fmt == "SYS":
        funct12 = 0 if instruction.mnemonic == "ecall" else 1
        return (funct12 << 20) | opcode
    raise RVEncodeError(f"unhandled format {fmt!r}")
