"""Functional simulator for RV-32I (+M) programs.

The simulator executes architectural semantics only (no pipeline); the
baseline cycle models of :mod:`repro.baselines` attach per-instruction cycle
costs to its execution trace.  Memory is a Harvard-style byte-addressed data
memory separate from the instruction stream, mirroring the TIM/TDM split of
the ART-9 core so the translated programs see the same address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.riscv.isa import RVInstruction
from repro.riscv.program import RVProgram
from repro.riscv.registers import ABI_NAMES

_MASK32 = 0xFFFFFFFF


def to_signed32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= _MASK32
    return value - 0x100000000 if value >= 0x80000000 else value


def to_unsigned32(value: int) -> int:
    """Interpret ``value`` as an unsigned 32-bit integer."""
    return value & _MASK32


class RVSimulationError(RuntimeError):
    """Raised for bad PCs, unaligned accesses or runaway programs."""


@dataclass
class RVExecutionResult:
    """Summary of one RV-32 functional simulation run."""

    instructions_executed: int
    halted: bool
    registers: Dict[str, int]
    pc: int
    instruction_mix: Dict[str, int] = field(default_factory=dict)
    executed_trace: List[str] = field(default_factory=list)

    def register(self, name: str) -> int:
        """Convenience accessor for a named register value."""
        return self.registers[name.lower()]


class RVSimulator:
    """Architectural executor for :class:`~repro.riscv.program.RVProgram`."""

    def __init__(self, program: RVProgram, memory_bytes: int = 1 << 20, record_trace: bool = False):
        self.program = program
        self.registers = [0] * 32
        self.memory = bytearray(memory_bytes)
        self.pc = 0
        self.halted = False
        self.instructions_executed = 0
        self.instruction_mix: Dict[str, int] = {}
        self.record_trace = record_trace
        self.executed_trace: List[str] = []
        # Per-class dynamic counts consumed by the baseline cycle models.
        self.class_counts = {
            "alu": 0, "load": 0, "store": 0, "branch_taken": 0,
            "branch_not_taken": 0, "jump": 0, "mul_div": 0, "shift": 0, "system": 0,
        }
        self._load_data_segments()
        # Conventional initial stack pointer: top of the data memory.
        self.registers[2] = memory_bytes - 16

    def _load_data_segments(self) -> None:
        for segment in self.program.data:
            for offset, value in enumerate(segment.values):
                self.store_word(segment.base_address + 4 * offset, value)

    # -- memory helpers -----------------------------------------------------------

    def _check_address(self, address: int, size: int) -> int:
        if address < 0 or address + size > len(self.memory):
            raise RVSimulationError(f"data address {address:#x} out of range")
        return address

    def load_word(self, address: int) -> int:
        """Load a signed 32-bit word (must be 4-byte aligned)."""
        if address % 4 != 0:
            raise RVSimulationError(f"misaligned word load at {address:#x}")
        self._check_address(address, 4)
        return to_signed32(int.from_bytes(self.memory[address:address + 4], "little"))

    def store_word(self, address: int, value: int) -> None:
        """Store a 32-bit word (must be 4-byte aligned)."""
        if address % 4 != 0:
            raise RVSimulationError(f"misaligned word store at {address:#x}")
        self._check_address(address, 4)
        self.memory[address:address + 4] = (value & _MASK32).to_bytes(4, "little")

    def load_byte(self, address: int, signed: bool) -> int:
        """Load one byte, sign- or zero-extended."""
        self._check_address(address, 1)
        value = self.memory[address]
        if signed and value >= 0x80:
            value -= 0x100
        return value

    def store_byte(self, address: int, value: int) -> None:
        """Store the low byte of ``value``."""
        self._check_address(address, 1)
        self.memory[address] = value & 0xFF

    def load_half(self, address: int, signed: bool) -> int:
        """Load a 16-bit halfword, sign- or zero-extended."""
        if address % 2 != 0:
            raise RVSimulationError(f"misaligned halfword load at {address:#x}")
        self._check_address(address, 2)
        value = int.from_bytes(self.memory[address:address + 2], "little")
        if signed and value >= 0x8000:
            value -= 0x10000
        return value

    def store_half(self, address: int, value: int) -> None:
        """Store the low 16 bits of ``value``."""
        if address % 2 != 0:
            raise RVSimulationError(f"misaligned halfword store at {address:#x}")
        self._check_address(address, 2)
        self.memory[address:address + 2] = (value & 0xFFFF).to_bytes(2, "little")

    # -- register helpers -----------------------------------------------------------

    def read_reg(self, index: int) -> int:
        """Read register ``index`` (x0 always reads zero)."""
        return 0 if index == 0 else to_signed32(self.registers[index])

    def write_reg(self, index: int, value: int) -> None:
        """Write register ``index`` (writes to x0 are discarded)."""
        if index != 0:
            self.registers[index] = to_signed32(value)

    # -- execution ---------------------------------------------------------------------

    def step(self) -> Optional[RVInstruction]:
        """Execute one instruction; returns it, or None when halted."""
        if self.halted:
            return None
        index = self.pc // 4
        if self.pc % 4 != 0 or not 0 <= index < len(self.program.instructions):
            raise RVSimulationError(
                f"PC {self.pc:#x} outside program of {len(self.program.instructions)} instructions"
            )
        instruction = self.program.instructions[index]
        self._execute(instruction)
        self.instructions_executed += 1
        self.instruction_mix[instruction.mnemonic] = self.instruction_mix.get(instruction.mnemonic, 0) + 1
        if self.record_trace:
            self.executed_trace.append(instruction.mnemonic)
        return instruction

    def _execute(self, instr: RVInstruction) -> None:
        m = instr.mnemonic
        spec = instr.spec
        next_pc = self.pc + 4
        rs1 = self.read_reg(instr.rs1) if instr.rs1 is not None else 0
        rs2 = self.read_reg(instr.rs2) if instr.rs2 is not None else 0
        imm = instr.imm if instr.imm is not None else 0

        if spec.is_mul_div:
            self.class_counts["mul_div"] += 1
        elif spec.is_load:
            self.class_counts["load"] += 1
        elif spec.is_store:
            self.class_counts["store"] += 1
        elif spec.is_jump:
            self.class_counts["jump"] += 1
        elif m in ("sll", "srl", "sra", "slli", "srli", "srai"):
            self.class_counts["shift"] += 1
        elif spec.fmt == "SYS":
            self.class_counts["system"] += 1
        elif not spec.is_branch:
            self.class_counts["alu"] += 1

        if m == "lui":
            self.write_reg(instr.rd, imm << 12)
        elif m == "auipc":
            self.write_reg(instr.rd, self.pc + (imm << 12))
        elif m == "jal":
            self.write_reg(instr.rd, self.pc + 4)
            next_pc = self.pc + imm
        elif m == "jalr":
            target = (rs1 + imm) & ~1
            self.write_reg(instr.rd, self.pc + 4)
            next_pc = to_unsigned32(target)
        elif spec.is_branch:
            taken = {
                "beq": rs1 == rs2,
                "bne": rs1 != rs2,
                "blt": rs1 < rs2,
                "bge": rs1 >= rs2,
                "bltu": to_unsigned32(rs1) < to_unsigned32(rs2),
                "bgeu": to_unsigned32(rs1) >= to_unsigned32(rs2),
            }[m]
            if taken:
                next_pc = self.pc + imm
                self.class_counts["branch_taken"] += 1
            else:
                self.class_counts["branch_not_taken"] += 1
        elif m == "lw":
            self.write_reg(instr.rd, self.load_word(to_unsigned32(rs1 + imm)))
        elif m == "lb":
            self.write_reg(instr.rd, self.load_byte(to_unsigned32(rs1 + imm), signed=True))
        elif m == "lbu":
            self.write_reg(instr.rd, self.load_byte(to_unsigned32(rs1 + imm), signed=False))
        elif m == "lh":
            self.write_reg(instr.rd, self.load_half(to_unsigned32(rs1 + imm), signed=True))
        elif m == "lhu":
            self.write_reg(instr.rd, self.load_half(to_unsigned32(rs1 + imm), signed=False))
        elif m == "sw":
            self.store_word(to_unsigned32(rs1 + imm), rs2)
        elif m == "sb":
            self.store_byte(to_unsigned32(rs1 + imm), rs2)
        elif m == "sh":
            self.store_half(to_unsigned32(rs1 + imm), rs2)
        elif m == "addi":
            self.write_reg(instr.rd, rs1 + imm)
        elif m == "slti":
            self.write_reg(instr.rd, 1 if rs1 < imm else 0)
        elif m == "sltiu":
            self.write_reg(instr.rd, 1 if to_unsigned32(rs1) < to_unsigned32(imm) else 0)
        elif m == "xori":
            self.write_reg(instr.rd, rs1 ^ imm)
        elif m == "ori":
            self.write_reg(instr.rd, rs1 | imm)
        elif m == "andi":
            self.write_reg(instr.rd, rs1 & imm)
        elif m == "slli":
            self.write_reg(instr.rd, rs1 << (imm & 0x1F))
        elif m == "srli":
            self.write_reg(instr.rd, to_unsigned32(rs1) >> (imm & 0x1F))
        elif m == "srai":
            self.write_reg(instr.rd, rs1 >> (imm & 0x1F))
        elif m == "add":
            self.write_reg(instr.rd, rs1 + rs2)
        elif m == "sub":
            self.write_reg(instr.rd, rs1 - rs2)
        elif m == "sll":
            self.write_reg(instr.rd, rs1 << (rs2 & 0x1F))
        elif m == "slt":
            self.write_reg(instr.rd, 1 if rs1 < rs2 else 0)
        elif m == "sltu":
            self.write_reg(instr.rd, 1 if to_unsigned32(rs1) < to_unsigned32(rs2) else 0)
        elif m == "xor":
            self.write_reg(instr.rd, rs1 ^ rs2)
        elif m == "srl":
            self.write_reg(instr.rd, to_unsigned32(rs1) >> (rs2 & 0x1F))
        elif m == "sra":
            self.write_reg(instr.rd, rs1 >> (rs2 & 0x1F))
        elif m == "or":
            self.write_reg(instr.rd, rs1 | rs2)
        elif m == "and":
            self.write_reg(instr.rd, rs1 & rs2)
        elif m == "mul":
            self.write_reg(instr.rd, rs1 * rs2)
        elif m == "mulh":
            self.write_reg(instr.rd, (rs1 * rs2) >> 32)
        elif m == "mulhu":
            self.write_reg(instr.rd, (to_unsigned32(rs1) * to_unsigned32(rs2)) >> 32)
        elif m == "div":
            if rs2 == 0:
                self.write_reg(instr.rd, -1)
            else:
                self.write_reg(instr.rd, int(rs1 / rs2))
        elif m == "divu":
            self.write_reg(instr.rd, 0xFFFFFFFF if rs2 == 0 else to_unsigned32(rs1) // to_unsigned32(rs2))
        elif m == "rem":
            if rs2 == 0:
                self.write_reg(instr.rd, rs1)
            else:
                self.write_reg(instr.rd, rs1 - int(rs1 / rs2) * rs2)
        elif m == "remu":
            self.write_reg(instr.rd, rs1 if rs2 == 0 else to_unsigned32(rs1) % to_unsigned32(rs2))
        elif m in ("ecall", "ebreak"):
            self.halted = True
        else:  # pragma: no cover - all modelled mnemonics handled above
            raise RVSimulationError(f"unimplemented mnemonic {m!r}")

        self.pc = next_pc

    def run(self, max_instructions: int = 20_000_000) -> RVExecutionResult:
        """Run until ECALL/EBREAK (or ``max_instructions``)."""
        while not self.halted:
            if self.instructions_executed >= max_instructions:
                raise RVSimulationError(
                    f"program did not halt within {max_instructions} instructions"
                )
            self.step()
        registers = {f"x{i}": self.read_reg(i) for i in range(32)}
        registers.update({ABI_NAMES[i]: self.read_reg(i) for i in range(32)})
        return RVExecutionResult(
            instructions_executed=self.instructions_executed,
            halted=self.halted,
            registers=registers,
            pc=self.pc,
            instruction_mix=dict(self.instruction_mix),
            executed_trace=list(self.executed_trace),
        )

    def memory_words(self, base: int, count: int) -> List[int]:
        """Read ``count`` consecutive words starting at byte address ``base``."""
        return [self.load_word(base + 4 * i) for i in range(count)]
