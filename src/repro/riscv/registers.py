"""RV-32I register names (x0..x31 and their ABI aliases)."""

from __future__ import annotations

#: ABI register names indexed by register number.
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

_NAME_TO_INDEX = {name: index for index, name in enumerate(ABI_NAMES)}
_NAME_TO_INDEX["fp"] = 8  # frame pointer alias of s0


def rv_register_index(name: str) -> int:
    """Parse ``x<N>`` or an ABI name into a register number 0..31."""
    key = name.strip().lower()
    if key in _NAME_TO_INDEX:
        return _NAME_TO_INDEX[key]
    if key.startswith("x") and key[1:].isdigit():
        index = int(key[1:])
        if 0 <= index < 32:
            return index
    raise ValueError(f"unknown RISC-V register: {name!r}")


def rv_register_name(index: int, abi: bool = True) -> str:
    """Return the ABI (default) or numeric name of register ``index``."""
    if not 0 <= index < 32:
        raise ValueError(f"register index out of range 0..31: {index}")
    return ABI_NAMES[index] if abi else f"x{index}"
