"""Functional (architectural) simulator for ART-9 programs.

The functional simulator executes one instruction per step with pure ISA
semantics — no pipeline, no stalls.  It serves three roles:

* golden reference model for the cycle-accurate pipeline simulator (both
  must produce identical architectural state for every program);
* correctness oracle for the translation framework (an RV-32I program and
  its ART-9 translation must compute the same results);
* fast workload debugging while writing benchmark assembly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.sim.alu import TernaryALU
from repro.sim.memory import TernaryMemory
from repro.sim.regfile import TernaryRegisterFile
from repro.ternary.word import WORD_TRITS, TernaryWord


class SimulationError(RuntimeError):
    """Raised when a program misbehaves (bad PC, runaway execution, ...)."""


@dataclass
class ExecutionResult:
    """Summary of one functional simulation run."""

    instructions_executed: int
    halted: bool
    registers: Dict[str, int]
    pc: int
    instruction_mix: Dict[str, int] = field(default_factory=dict)
    memory: Dict[int, int] = field(default_factory=dict)

    def register(self, name: str) -> int:
        """Convenience accessor for a named register value."""
        return self.registers[name.upper()]

    def memory_word(self, address: int) -> int:
        """Value of the TDM word at ``address`` (untouched cells read zero)."""
        return self.memory.get(address, 0)


class FunctionalSimulator:
    """Instruction-accurate executor for :class:`~repro.isa.program.Program`."""

    def __init__(self, program: Program, tdm_depth: int = 3 ** WORD_TRITS):
        self.program = program
        self.registers = TernaryRegisterFile()
        self.tdm = TernaryMemory(depth=tdm_depth, name="TDM")
        self.alu = TernaryALU()
        self.pc = 0
        self.halted = False
        self.instructions_executed = 0
        self.instruction_mix: Dict[str, int] = {}
        self._load_data_segments()

    def _load_data_segments(self) -> None:
        for segment in self.program.data:
            self.tdm.load_words(segment.values, base=segment.base_address)

    # -- single-step execution ---------------------------------------------------

    def step(self) -> Optional[Instruction]:
        """Execute one instruction; returns it, or None when already halted."""
        if self.halted:
            return None
        if not 0 <= self.pc < len(self.program.instructions):
            raise SimulationError(
                f"PC {self.pc} outside program of {len(self.program.instructions)} instructions"
            )
        instruction = self.program.instructions[self.pc]
        self._execute(instruction)
        self.instructions_executed += 1
        self.instruction_mix[instruction.mnemonic] = (
            self.instruction_mix.get(instruction.mnemonic, 0) + 1
        )
        return instruction

    def _execute(self, instruction: Instruction) -> None:
        mnemonic = instruction.mnemonic
        spec = instruction.spec
        next_pc = self.pc + 1

        if mnemonic == "HALT":
            self.halted = True
        elif spec.category in ("R", "I"):
            operand_a = self.registers.read(instruction.ta) if spec.reads_ta or mnemonic == "LI" else TernaryWord.zero()
            operand_b = self.registers.read(instruction.tb) if spec.reads_tb else None
            result = self.alu.execute(mnemonic, operand_a, operand_b, imm=instruction.imm)
            self.registers.write(instruction.ta, result.value)
        elif mnemonic in ("BEQ", "BNE"):
            lst = self.registers.read(instruction.tb).lst
            taken = (lst == instruction.branch_trit) if mnemonic == "BEQ" else (lst != instruction.branch_trit)
            if taken:
                next_pc = self.pc + instruction.imm
        elif mnemonic == "JAL":
            self.registers.write_int(instruction.ta, self.pc + 1)
            next_pc = self.pc + instruction.imm
        elif mnemonic == "JALR":
            base = self.registers.read(instruction.tb)
            self.registers.write_int(instruction.ta, self.pc + 1)
            next_pc = (base.value + instruction.imm) % (3 ** WORD_TRITS)
        elif mnemonic == "LOAD":
            address = TernaryMemory.effective_address(self.registers.read(instruction.tb), instruction.imm)
            self.registers.write(instruction.ta, self.tdm.read(address))
        elif mnemonic == "STORE":
            address = TernaryMemory.effective_address(self.registers.read(instruction.tb), instruction.imm)
            self.tdm.write(address, self.registers.read(instruction.ta))
        else:  # pragma: no cover - every mnemonic is covered above
            raise SimulationError(f"unimplemented mnemonic {mnemonic!r}")

        self.pc = next_pc

    # -- whole-program execution ---------------------------------------------------

    def run(self, max_instructions: int = 10_000_000) -> ExecutionResult:
        """Run until HALT (or until ``max_instructions`` is exceeded)."""
        while not self.halted:
            if self.instructions_executed >= max_instructions:
                raise SimulationError(
                    f"program did not halt within {max_instructions} instructions"
                )
            self.step()
        return ExecutionResult(
            instructions_executed=self.instructions_executed,
            halted=self.halted,
            registers=self.registers.snapshot(),
            pc=self.pc,
            instruction_mix=dict(self.instruction_mix),
            memory=self.tdm.contents(),
        )

    # -- inspection helpers -------------------------------------------------------

    def memory_values(self, base: int, count: int) -> List[int]:
        """Read ``count`` consecutive TDM words starting at ``base``."""
        return self.tdm.dump(base, count)
