"""Golden architectural traces: capture and digest of final machine state.

A *golden trace* pins the architectural outcome of one program — the final
register file, the touched data-memory cells and the full
:class:`~repro.sim.pipeline.stats.PipelineStats` record — as a small JSON
fixture.  The fixtures are generated from the stage-by-stage pipeline
simulator (the structural reference model) and replayed against every
executor, so any later refactor that drifts an engine's architectural
behaviour or its cycle accounting fails the regression suite immediately.

Memory contents are stored as a SHA-256 digest over a canonical JSON
rendering (full dumps would bloat the fixtures for large workloads); the
nine architectural registers are stored verbatim for readable diffs.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from repro.isa.program import Program
from repro.sim.machine import MachineConfig, resolve_machine
from repro.sim.pipeline import PipelineSimulator
from repro.sim.pipeline.stats import PipelineStats

#: Fixture schema version, bumped when the trace layout changes.
TRACE_FORMAT = 1


def _canonical(data) -> bytes:
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode("utf-8")


def memory_digest(memory: Dict[int, int]) -> str:
    """SHA-256 digest of the touched TDM cells (address → balanced value)."""
    return hashlib.sha256(
        _canonical({str(address): memory[address] for address in sorted(memory)})
    ).hexdigest()


def state_digest(registers: Dict[str, int], memory: Dict[int, int]) -> str:
    """Combined SHA-256 digest of register file and data memory."""
    return hashlib.sha256(
        _canonical({
            "registers": {name: registers[name] for name in sorted(registers)},
            "memory_digest": memory_digest(memory),
        })
    ).hexdigest()


def capture_golden_trace(program: Program, max_cycles: int = 50_000_000,
                         machine: Optional[MachineConfig] = None) -> dict:
    """Run the pipeline reference model and record its architectural outcome.

    ``machine`` selects the microarchitecture config the reference pipeline
    runs under; it is recorded in the trace (by name) only when given, so
    the default-machine fixtures written before the machine axis existed
    stay byte-identical.
    """
    simulator = PipelineSimulator(program, machine=machine)
    stats = simulator.run(max_cycles=max_cycles)
    registers = simulator.register_snapshot()
    memory = simulator.tdm.contents()
    trace = {
        "format": TRACE_FORMAT,
        "program": program.name,
        "registers": {name: registers[name] for name in sorted(registers)},
        "memory_digest": memory_digest(memory),
        "state_digest": state_digest(registers, memory),
        "stats": stats.to_dict(),
    }
    if machine is not None:
        trace["machine"] = resolve_machine(machine).name
    return trace


def trace_mismatches(
    trace: dict,
    registers: Dict[str, int],
    memory: Dict[int, int],
    stats: Optional[PipelineStats] = None,
) -> List[str]:
    """Compare one executor's final state against a golden trace.

    Returns a list of human-readable mismatch descriptions (empty when the
    state matches).  ``stats`` is optional because the functional simulator
    has no cycle model to check.
    """
    mismatches: List[str] = []
    expected_registers = trace["registers"]
    if registers != expected_registers:
        diffs = {
            name: (registers.get(name), expected_registers.get(name))
            for name in sorted(set(registers) | set(expected_registers))
            if registers.get(name) != expected_registers.get(name)
        }
        mismatches.append(f"registers differ (actual, golden): {diffs}")
    actual_digest = memory_digest(memory)
    if actual_digest != trace["memory_digest"]:
        mismatches.append(
            f"memory digest differs: actual={actual_digest} golden={trace['memory_digest']}"
        )
    if stats is not None:
        golden_stats = trace["stats"]
        actual_stats = stats.to_dict()
        for name in sorted(set(actual_stats) | set(golden_stats)):
            if actual_stats.get(name) != golden_stats.get(name):
                mismatches.append(
                    f"stats.{name} differs: actual={actual_stats.get(name)!r} "
                    f"golden={golden_stats.get(name)!r}"
                )
    return mismatches
