"""The cycle-accurate 5-stage pipeline simulator (Fig. 4 of the paper).

Stage model
-----------

Within one simulated cycle the stages are evaluated in reverse order
(WB, MEM, EX, ID, IF) over the latch values captured at the start of the
cycle, which reproduces the behaviour of the real pipeline:

* write-back happens in the first half of the cycle, so a register written
  in WB is visible to the register read performed in ID of the same cycle
  (the TRF has asynchronous read ports, Sec. IV-B);
* the TALU result computed in EX this cycle is visible to the ID-stage
  branch condition checker and JALR base path through the dedicated
  ID forwarding network ("forwarding one-trit values", Sec. IV-B);
* the EX/MEM and MEM/WB latches feed the TALU forwarding multiplexers,
  removing all ALU-use hazards.

The only hardware-inserted stall cycles are load-use hazards (one bubble)
and taken branches/jumps (one flushed fetch), matching the statement in
Sec. IV-B that those are the only observed stall sources.

Machine configs
---------------

The structural wiring above is parameterized by a
:class:`~repro.sim.machine.MachineConfig`: the retire stage (pipeline
depth), the fetch-steering predictor and redirect penalty (branch policy
and penalties), the initial fetch refill (I-fetch latency) and whether an
adjacent load consumer stalls or takes a same-cycle MEM-output bypass
(load-use penalty).  The default ``paper3stage`` config reproduces the
behaviour described above exactly.  At depths below 5 instructions still
traverse all five structural stages; they merely *retire* (count as
committed, and stop the clock on HALT) at the configured stage, with the
remaining stages drained outside the cycle count.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.sim.alu import TernaryALU
from repro.sim.functional import SimulationError
from repro.sim.memory import TernaryMemory
from repro.sim.pipeline.branch import BranchUnit
from repro.sim.pipeline.forwarding import ForwardingUnit
from repro.sim.machine import MachineConfig, resolve_machine
from repro.sim.pipeline.hazards import HazardDetectionUnit
from repro.sim.pipeline.stages import DecodeLatch, ExecuteLatch, FetchLatch, MemoryLatch
from repro.sim.pipeline.stats import PipelineStats
from repro.sim.regfile import TernaryRegisterFile
from repro.ternary.word import WORD_TRITS, TernaryWord


class PipelineSimulator:
    """Cycle-accurate simulator of the pipelined ART-9 core."""

    def __init__(self, program: Program, tdm_depth: int = 3 ** WORD_TRITS,
                 machine: Optional[MachineConfig] = None):
        self.program = program
        self.machine = resolve_machine(machine)
        self.registers = TernaryRegisterFile()
        self.tim_words = program.encode()  # validates that the program encodes
        self.tdm = TernaryMemory(depth=tdm_depth, name="TDM")
        self.alu = TernaryALU()
        self.hdu = HazardDetectionUnit(
            load_use_penalty=self.machine.load_use_penalty)
        self.forwarding = ForwardingUnit()
        self.branch_unit = BranchUnit()
        self.stats = PipelineStats()
        #: Stage (1=IF .. 5=WB) at which instructions count as committed.
        self.retire_stage = self.machine.depth

        self.pc = 0
        self.halted = False
        self._draining = False
        # Pipelined I-fetch refill: bubbles still owed before the next fetch
        # can deliver (initial fill, and redirect_penalty after a redirect).
        self._fetch_bubbles = self.machine.fetch_latency

        self.if_id = FetchLatch.bubble()
        self.id_ex = DecodeLatch.bubble()
        self.ex_mem = ExecuteLatch.bubble()
        self.mem_wb = MemoryLatch.bubble()

        for segment in program.data:
            self.tdm.load_words(segment.values, base=segment.base_address)

    # ------------------------------------------------------------------ stages

    def _writeback(self) -> None:
        """WB: commit the MEM/WB latch to the register file."""
        latch = self.mem_wb
        if not latch.valid:
            return
        destination = latch.destination
        if destination is not None and latch.writeback_value is not None:
            self.registers.write(destination, latch.writeback_value)
        if self.retire_stage == 5:
            self._retire(latch.instruction)

    def _retire(self, instruction: Instruction) -> None:
        """Commit accounting at the configured retire stage.

        Register/memory side effects always happen in their structural
        stages; this hook only decides *when* an instruction counts as
        committed and when HALT stops the cycle counter.
        """
        self.stats.instructions_committed += 1
        self.stats.instruction_mix[instruction.mnemonic] = (
            self.stats.instruction_mix.get(instruction.mnemonic, 0) + 1
        )
        if instruction.mnemonic == "HALT":
            self.halted = True

    def _memory(self) -> MemoryLatch:
        """MEM: perform the TDM access of the EX/MEM latch."""
        latch = self.ex_mem
        if not latch.valid:
            return MemoryLatch.bubble()
        instruction = latch.instruction
        writeback_value = latch.alu_result
        if instruction.spec.is_load:
            writeback_value = self.tdm.read(latch.memory_address)
        elif instruction.spec.is_store:
            self.tdm.write(latch.memory_address, latch.store_value)
            writeback_value = None
        return MemoryLatch(
            valid=True,
            pc=latch.pc,
            instruction=instruction,
            writeback_value=writeback_value,
        )

    def _execute(self, mem_output: Optional[MemoryLatch] = None) -> ExecuteLatch:
        """EX: run the TALU (with forwarding) or compute the memory address.

        ``mem_output`` is the MEM result produced this cycle; it is passed
        only on machines whose load-use penalty is 0, where it feeds the
        same-cycle load bypass in the forwarding unit.
        """
        latch = self.id_ex
        if not latch.valid:
            return ExecuteLatch.bubble()
        instruction = latch.instruction
        spec = instruction.spec

        operand_a = latch.operand_a
        operand_b = latch.operand_b
        if spec.reads_ta:
            operand_a = self.forwarding.forward_operand(
                instruction.ta, operand_a, self.ex_mem, self.mem_wb, mem_output
            )
        if spec.reads_tb:
            operand_b = self.forwarding.forward_operand(
                instruction.tb, operand_b, self.ex_mem, self.mem_wb, mem_output
            )

        alu_result: Optional[TernaryWord] = None
        store_value: Optional[TernaryWord] = None
        memory_address: Optional[int] = None

        if spec.category in ("R", "I"):
            alu_result = self.alu.execute(
                instruction.mnemonic, operand_a, operand_b, imm=instruction.imm
            ).value
        elif spec.is_load or spec.is_store:
            memory_address = self.alu.effective_address(operand_b, instruction.imm)
            if spec.is_store:
                store_value = operand_a
        elif spec.is_jump:
            # The link value (PC + 1) was computed in ID; it rides down the
            # pipeline as the writeback value.
            alu_result = TernaryWord(latch.link_value, WORD_TRITS)
        # Conditional branches and HALT carry nothing: they were fully
        # resolved in ID and only flow through for commit accounting.

        return ExecuteLatch(
            valid=True,
            pc=latch.pc,
            instruction=instruction,
            alu_result=alu_result,
            store_value=store_value,
            memory_address=memory_address,
        )

    def _decode(self, ex_output: ExecuteLatch, mem_output: MemoryLatch):
        """ID: hazard check, register read, branch resolution.

        Returns ``(id_ex_next, stall, redirect_target)``.
        """
        latch = self.if_id
        if not latch.valid:
            return DecodeLatch.bubble(), False, None
        instruction = latch.instruction
        spec = instruction.spec

        hazard = self.hdu.check(instruction, self.id_ex)
        if hazard.stall:
            self.stats.load_use_stalls += 1
            return DecodeLatch.bubble(), True, None

        operand_a = self.registers.read(instruction.ta) if spec.reads_ta else None
        operand_b = self.registers.read(instruction.tb) if spec.reads_tb else None

        redirect_target = None
        link_value = None
        if spec.is_control:
            tb_value = None
            if spec.reads_tb:
                tb_value = self.forwarding.forward_for_id(
                    instruction.tb, self.registers, ex_output, mem_output
                )
            outcome = self.branch_unit.evaluate(instruction, latch.pc, tb_value)
            # The front end already steered fetch by the static prediction;
            # redirect only on a mispredict.  JALR is indirect, so its
            # target is never known at fetch time and it always redirects
            # (even when the computed target happens to equal PC + 1).
            if instruction.mnemonic == "JALR":
                mispredicted = True
            elif instruction.mnemonic == "JAL":
                mispredicted = not self.machine.folds_jal
            else:
                mispredicted = outcome.taken != self.machine.predicts_taken(
                    instruction.mnemonic, instruction.imm)
            if mispredicted:
                redirect_target = (
                    outcome.target if outcome.taken else latch.pc + 1)
            link_value = outcome.link_value
        elif instruction.mnemonic == "HALT":
            # Stop fetching; let the HALT drain to WB to finish the run.
            self._draining = True

        id_ex_next = DecodeLatch(
            valid=True,
            pc=latch.pc,
            instruction=instruction,
            operand_a=operand_a,
            operand_b=operand_b,
            link_value=link_value,
        )
        return id_ex_next, False, redirect_target

    def _fetch(self, stall: bool, redirect_target: Optional[int]) -> FetchLatch:
        """IF: fetch the next instruction (or hold / squash / refill)."""
        if stall:
            return self.if_id  # IF/ID holds; PC is held by the caller.
        if redirect_target is not None:
            self.pc = redirect_target
            penalty = self.machine.redirect_penalty
            self.stats.control_flush_bubbles += penalty
            self._fetch_bubbles = penalty
        if self._fetch_bubbles > 0:
            self._fetch_bubbles -= 1
            return FetchLatch.bubble()
        if self._draining or not 0 <= self.pc < len(self.program.instructions):
            return FetchLatch.bubble()
        instruction = self.program.instructions[self.pc]
        fetched = FetchLatch(valid=True, pc=self.pc, instruction=instruction)
        if self.machine.predicts_taken(instruction.mnemonic,
                                       instruction.imm or 0):
            self.pc += instruction.imm
        else:
            self.pc += 1
        return fetched

    # ------------------------------------------------------------------ driver

    def step_cycle(self) -> None:
        """Advance the machine by one clock cycle."""
        self.stats.cycles += 1

        self._writeback()
        mem_wb_next = self._memory()
        ex_mem_next = self._execute(
            mem_wb_next if self.machine.load_use_penalty == 0 else None)
        id_ex_next, stall, redirect_target = self._decode(ex_mem_next, mem_wb_next)
        if_id_next = self._fetch(stall, redirect_target)

        retire_stage = self.retire_stage
        if retire_stage == 4 and mem_wb_next.valid:
            self._retire(mem_wb_next.instruction)
        elif retire_stage == 3 and ex_mem_next.valid:
            self._retire(ex_mem_next.instruction)
        elif retire_stage == 2 and id_ex_next.valid:
            self._retire(id_ex_next.instruction)

        self.mem_wb = mem_wb_next
        self.ex_mem = ex_mem_next
        self.id_ex = id_ex_next
        self.if_id = if_id_next

    def _drain_uncounted(self) -> None:
        """Complete the structural stages past the retire stage.

        When the retire stage is earlier than WB, the cycle counter stops
        as soon as HALT retires, but older instructions still hold EX/MEM/WB
        work (register writes, TDM accesses).  Flush them through without
        counting cycles or commits; HALT itself carries no side effects, so
        the extra passes touch no statistics.
        """
        for _ in range(5 - self.retire_stage):
            self._writeback()
            mem_wb_next = self._memory()
            ex_mem_next = self._execute(
                mem_wb_next if self.machine.load_use_penalty == 0 else None)
            self.mem_wb = mem_wb_next
            self.ex_mem = ex_mem_next
            self.id_ex = DecodeLatch.bubble()

    def run(self, max_cycles: int = 50_000_000) -> PipelineStats:
        """Run until the HALT instruction commits (or ``max_cycles``)."""
        if not self.program.instructions:
            raise SimulationError("cannot simulate an empty program")
        while not self.halted:
            if self.stats.cycles >= max_cycles:
                raise SimulationError(
                    f"program did not halt within {max_cycles} cycles"
                )
            self.step_cycle()
        self._drain_uncounted()
        self._finalize_stats()
        return self.stats

    def _finalize_stats(self) -> None:
        self.stats.taken_branches = self.branch_unit.taken_branches
        self.stats.not_taken_branches = self.branch_unit.not_taken_branches
        self.stats.jumps = self.branch_unit.jumps
        self.stats.ex_forwards = self.forwarding.ex_forwards
        self.stats.mem_forwards = self.forwarding.mem_forwards
        self.stats.id_forwards = self.forwarding.id_forwards

    # ------------------------------------------------------------------ helpers

    def register_snapshot(self) -> dict:
        """Name → integer value of the architectural registers."""
        return self.registers.snapshot()

    def memory_values(self, base: int, count: int) -> list:
        """Read ``count`` consecutive TDM words starting at ``base``."""
        return self.tdm.dump(base, count)
