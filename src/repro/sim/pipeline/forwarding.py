"""Forwarding multiplexers of the ART-9 pipeline.

Two forwarding paths exist in the design of Fig. 4:

* **TALU input forwarding** (EX stage): results sitting in the EX/MEM or
  MEM/WB latches are routed back to the TALU inputs, removing ALU-use data
  hazards entirely.
* **ID-stage forwarding** (branch unit): the branch condition checker and
  the JALR base-address path in ID receive the newest available value of
  their register, including the value computed by the TALU in the *current*
  cycle — this is the "forwarding one-trit values" mechanism that keeps the
  branch datapath short.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.pipeline.stages import ExecuteLatch, MemoryLatch
from repro.sim.regfile import TernaryRegisterFile
from repro.ternary.word import TernaryWord


@dataclass
class ForwardingEvent:
    """Book-keeping record of a single forwarded operand (for statistics)."""

    register: int
    source: str  # "EX/MEM", "MEM/WB" or "EX-output"


class ForwardingUnit:
    """Resolves register operands against in-flight pipeline results."""

    def __init__(self):
        self.ex_forwards = 0
        self.mem_forwards = 0
        self.id_forwards = 0

    # -- EX-stage operand forwarding ---------------------------------------------

    def forward_operand(
        self,
        register: Optional[int],
        read_value: TernaryWord,
        ex_mem: ExecuteLatch,
        mem_wb: MemoryLatch,
        mem_output: Optional[MemoryLatch] = None,
    ) -> TernaryWord:
        """Return the freshest value of ``register`` for the TALU input.

        Priority is EX/MEM (younger, closer producer) over MEM/WB over the
        register-file read performed in ID, matching the standard forwarding
        priority of five-stage RISC pipelines.  ``mem_output`` — passed only
        on machines with ``load_use_penalty == 0`` — is the MEM result
        produced *this* cycle, enabling a same-cycle bypass of a fresh load
        value into the TALU instead of a load-use stall.
        """
        if register is None:
            return read_value
        if ex_mem.valid and ex_mem.destination == register and not ex_mem.is_load:
            if ex_mem.alu_result is not None:
                self.ex_forwards += 1
                return ex_mem.alu_result
        if (mem_output is not None and ex_mem.valid and ex_mem.is_load
                and ex_mem.destination == register
                and mem_output.writeback_value is not None):
            self.mem_forwards += 1
            return mem_output.writeback_value
        if mem_wb.valid and mem_wb.destination == register:
            if mem_wb.writeback_value is not None:
                self.mem_forwards += 1
                return mem_wb.writeback_value
        return read_value

    # -- ID-stage (branch / JALR) forwarding ---------------------------------------

    def forward_for_id(
        self,
        register: int,
        register_file: TernaryRegisterFile,
        ex_output: ExecuteLatch,
        mem_output: MemoryLatch,
    ) -> TernaryWord:
        """Return the freshest value of ``register`` visible to the ID stage.

        ``ex_output`` and ``mem_output`` are the latch values *produced in
        the current cycle* (the TALU output and the memory read data), which
        the dedicated ID-stage forwarding paths can observe.  Older values
        have already been written back to the TRF because write-back happens
        in the first half of the cycle.
        """
        if ex_output.valid and ex_output.destination == register and ex_output.alu_result is not None and not ex_output.is_load:
            self.id_forwards += 1
            return ex_output.alu_result
        if mem_output.valid and mem_output.destination == register and mem_output.writeback_value is not None:
            self.id_forwards += 1
            return mem_output.writeback_value
        return register_file.read(register)

    def reset_statistics(self) -> None:
        """Zero all forwarding counters."""
        self.ex_forwards = 0
        self.mem_forwards = 0
        self.id_forwards = 0
