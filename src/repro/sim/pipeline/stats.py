"""Execution statistics produced by the cycle-accurate pipeline simulator."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class PipelineStats:
    """Cycle-level statistics of one pipelined execution.

    These are the numbers the hardware-level evaluation framework feeds into
    the performance estimator: total cycles (Table III), committed
    instructions, CPI, and the breakdown of hardware-inserted stall cycles
    (load-use stalls and taken-branch flush bubbles, the only two sources in
    the ART-9 design).
    """

    cycles: int = 0
    instructions_committed: int = 0
    load_use_stalls: int = 0
    control_flush_bubbles: int = 0
    taken_branches: int = 0
    not_taken_branches: int = 0
    jumps: int = 0
    ex_forwards: int = 0
    mem_forwards: int = 0
    id_forwards: int = 0
    instruction_mix: Dict[str, int] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction."""
        if self.instructions_committed == 0:
            return float("nan")
        return self.cycles / self.instructions_committed

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return float("nan")
        return self.instructions_committed / self.cycles

    @property
    def stall_cycles(self) -> int:
        """All cycles lost to hazards (stalls plus flush bubbles)."""
        return self.load_use_stalls + self.control_flush_bubbles

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form for JSON stores and golden-trace fixtures."""
        data: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            data[spec.name] = dict(value) if spec.name == "instruction_mix" else value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PipelineStats":
        """Rebuild a stats record written by :meth:`to_dict`."""
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown PipelineStats fields: {sorted(unknown)}")
        return cls(**data)  # type: ignore[arg-type]

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"cycles                 : {self.cycles}",
            f"instructions committed : {self.instructions_committed}",
            f"CPI                    : {self.cpi:.3f}",
            f"load-use stalls        : {self.load_use_stalls}",
            f"control flush bubbles  : {self.control_flush_bubbles}",
            f"taken branches         : {self.taken_branches}",
            f"not-taken branches     : {self.not_taken_branches}",
            f"jumps                  : {self.jumps}",
            f"EX forwards            : {self.ex_forwards}",
            f"MEM forwards           : {self.mem_forwards}",
            f"ID forwards            : {self.id_forwards}",
        ]
        return "\n".join(lines)
