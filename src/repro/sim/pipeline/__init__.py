"""Cycle-accurate model of the 5-stage pipelined ART-9 core (Fig. 4).

The package is organised like the block diagram of the paper:

``stages``
    The pipeline latch payloads carried between IF/ID, ID/EX, EX/MEM and
    MEM/WB.
``hazards``
    The hazard detection unit (HDU) of the ID stage: load-use stall
    detection and the stall control signal that selects a NOP at the next
    ID stage.
``forwarding``
    The forwarding multiplexers that route EX/MEM and MEM/WB results back to
    the TALU inputs and the 1-trit condition forwarding to the ID-stage
    branch checker.
``branch``
    The dedicated branch-target calculator and condition checker placed in
    ID, which redirect the PC with a single bubble for taken branches.
``core``
    The :class:`PipelineSimulator` that wires everything together and
    advances the machine cycle by cycle.
"""

from repro.sim.pipeline.core import PipelineSimulator
from repro.sim.pipeline.stats import PipelineStats

__all__ = ["PipelineSimulator", "PipelineStats"]
