"""Branch-target calculator and condition checker of the ID stage.

The ART-9 pipeline resolves every control transfer in ID (Sec. IV-B): a
dedicated adder computes the PC-relative target, the condition checker
compares the forwarded least-significant trit against the instruction's B
constant, and the computed address is forwarded directly to the PC register.
A taken branch or jump therefore squashes exactly one fetched instruction
(one bubble), and a not-taken branch costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.instructions import Instruction
from repro.ternary.word import WORD_TRITS, TernaryWord


@dataclass
class BranchOutcome:
    """Decision of the ID-stage branch unit for one instruction."""

    is_control: bool = False
    taken: bool = False
    target: Optional[int] = None
    link_value: Optional[int] = None  # PC + 1 for JAL/JALR


class BranchUnit:
    """Evaluates B-type instructions (BEQ, BNE, JAL, JALR) in the ID stage."""

    def __init__(self):
        self.taken_branches = 0
        self.not_taken_branches = 0
        self.jumps = 0

    def evaluate(
        self,
        instruction: Instruction,
        pc: int,
        tb_value: Optional[TernaryWord],
    ) -> BranchOutcome:
        """Return the control-flow outcome of ``instruction`` at ``pc``.

        ``tb_value`` is the forwarded value of the Tb register (None for
        JAL, which has no register source).
        """
        mnemonic = instruction.mnemonic
        if mnemonic in ("BEQ", "BNE"):
            lst = tb_value.lst
            matches = lst == instruction.branch_trit
            taken = matches if mnemonic == "BEQ" else not matches
            if taken:
                self.taken_branches += 1
            else:
                self.not_taken_branches += 1
            return BranchOutcome(
                is_control=True,
                taken=taken,
                target=pc + instruction.imm if taken else None,
            )
        if mnemonic == "JAL":
            self.jumps += 1
            return BranchOutcome(
                is_control=True,
                taken=True,
                target=pc + instruction.imm,
                link_value=pc + 1,
            )
        if mnemonic == "JALR":
            self.jumps += 1
            target = (tb_value.value + instruction.imm) % (3 ** WORD_TRITS)
            return BranchOutcome(
                is_control=True,
                taken=True,
                target=target,
                link_value=pc + 1,
            )
        return BranchOutcome(is_control=False)

    def reset_statistics(self) -> None:
        """Zero the taken/not-taken/jump counters."""
        self.taken_branches = 0
        self.not_taken_branches = 0
        self.jumps = 0
