"""The hazard detection unit (HDU) of the ID stage.

The ART-9 pipeline resolves almost every data hazard with forwarding; the
HDU only has to insert hardware-level stalls in two situations (Sec. IV-B):

* **load-use hazards** — the instruction in ID needs a register that the
  LOAD currently in EX will only produce at the end of MEM; and
* **taken branches / jumps** — handled by the branch unit as a one-cycle
  flush rather than by the HDU, but counted alongside.

When a stall is required the HDU asserts the stall control signal: the PC
and IF/ID latch hold their values and a NOP is selected into ID/EX, exactly
the mechanism described for the main decoder in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction
from repro.sim.pipeline.stages import DecodeLatch


@dataclass
class HazardDecision:
    """Outcome of the HDU for the instruction currently in ID."""

    stall: bool = False
    reason: str = ""


class HazardDetectionUnit:
    """Compares the adjacent instructions in ID and EX to find stalls.

    ``load_use_penalty`` comes from the machine config: at the default 1 a
    consumer adjacent to a LOAD always stalls one bubble; at 0 the machine
    has a same-cycle MEM-output bypass into the TALU, so only ID-stage
    consumers (the branch condition / JALR base path, which need the value
    a stage before MEM produces it) still stall.
    """

    def __init__(self, load_use_penalty: int = 1):
        self.load_use_penalty = load_use_penalty
        self.load_use_stalls = 0

    def check(self, decoding: Instruction, id_ex: DecodeLatch) -> HazardDecision:
        """Decide whether the instruction entering ID must stall one cycle.

        ``decoding`` is the instruction in ID; ``id_ex`` is the latch feeding
        EX (i.e. the immediately preceding instruction).  The only stall
        source is the load-use case: the preceding instruction is a LOAD and
        ``decoding`` reads its destination register.  Everything else is
        resolved by the forwarding multiplexers.
        """
        if not id_ex.is_load:
            return HazardDecision(stall=False)
        load_destination = id_ex.destination
        if load_destination is None:
            return HazardDecision(stall=False)
        if load_destination in decoding.sources() and (
            self.load_use_penalty >= 1 or decoding.spec.is_control
        ):
            self.load_use_stalls += 1
            return HazardDecision(
                stall=True,
                reason=f"load-use hazard on T{load_destination} "
                f"({id_ex.instruction.render()} -> {decoding.render()})",
            )
        # Branches and JALR consume register values in ID itself (the
        # condition trit / jump base); a LOAD one slot ahead is also a
        # load-use hazard for them and is caught by the sources() check
        # above, because B-type and JALR instructions list Tb as a source.
        return HazardDecision(stall=False)

    def reset_statistics(self) -> None:
        """Zero the stall counter."""
        self.load_use_stalls = 0
