"""Pipeline latch payloads for the 5-stage ART-9 core.

Each dataclass models the ternary pipeline register between two stages.  A
latch whose ``valid`` flag is False carries a bubble (the hardware would be
holding the NOP selected by the stall control signal of the main decoder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.instructions import Instruction
from repro.ternary.word import TernaryWord


@dataclass
class FetchLatch:
    """IF/ID pipeline register: the fetched instruction and its PC."""

    valid: bool = False
    pc: int = 0
    instruction: Optional[Instruction] = None

    @classmethod
    def bubble(cls) -> "FetchLatch":
        """An empty slot (inserted after a taken branch flush)."""
        return cls(valid=False)


@dataclass
class DecodeLatch:
    """ID/EX pipeline register: decoded fields and register operands.

    ``operand_a`` / ``operand_b`` hold the values read from the TRF in ID;
    the forwarding unit may override them at the TALU inputs in EX.
    """

    valid: bool = False
    pc: int = 0
    instruction: Optional[Instruction] = None
    operand_a: Optional[TernaryWord] = None
    operand_b: Optional[TernaryWord] = None
    link_value: Optional[int] = None

    @classmethod
    def bubble(cls) -> "DecodeLatch":
        """The NOP inserted by the stall control signal."""
        return cls(valid=False)

    @property
    def destination(self) -> Optional[int]:
        """Destination register of the instruction in flight, if any."""
        if not self.valid or self.instruction is None:
            return None
        return self.instruction.destination()

    @property
    def is_load(self) -> bool:
        """True when the latch carries a LOAD (needed by the HDU)."""
        return self.valid and self.instruction is not None and self.instruction.spec.is_load


@dataclass
class ExecuteLatch:
    """EX/MEM pipeline register: the TALU result or memory request."""

    valid: bool = False
    pc: int = 0
    instruction: Optional[Instruction] = None
    alu_result: Optional[TernaryWord] = None
    store_value: Optional[TernaryWord] = None
    memory_address: Optional[int] = None

    @classmethod
    def bubble(cls) -> "ExecuteLatch":
        return cls(valid=False)

    @property
    def destination(self) -> Optional[int]:
        """Destination register of the instruction in flight, if any."""
        if not self.valid or self.instruction is None:
            return None
        return self.instruction.destination()

    @property
    def is_load(self) -> bool:
        """True when the latch carries a LOAD whose data is not yet available."""
        return self.valid and self.instruction is not None and self.instruction.spec.is_load


@dataclass
class MemoryLatch:
    """MEM/WB pipeline register: the value to commit to the TRF."""

    valid: bool = False
    pc: int = 0
    instruction: Optional[Instruction] = None
    writeback_value: Optional[TernaryWord] = None

    @classmethod
    def bubble(cls) -> "MemoryLatch":
        return cls(valid=False)

    @property
    def destination(self) -> Optional[int]:
        """Destination register of the instruction in flight, if any."""
        if not self.valid or self.instruction is None:
            return None
        return self.instruction.destination()
