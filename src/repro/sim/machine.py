"""Declarative microarchitecture descriptions consumed by every engine.

A :class:`MachineConfig` captures the *timing* shape of an ART-9 core —
pipeline depth, branch-handling policy, load-use penalty and instruction
fetch latency — as pure data.  All three cycle-accurate executors consume
the same config object:

* the stage-by-stage :class:`~repro.sim.pipeline.PipelineSimulator`
  derives its fetch steering, hazard-detection wiring, redirect penalty
  and retire stage from it;
* :meth:`FastEngine.run_with_stats <repro.sim.engine.FastEngine>`
  parameterizes its single-pass analytic model with the same constants;
* :class:`~repro.sim.compiled.CompiledEngine` folds whichever hazard
  decisions are static *for that config* into its generated code, and the
  config digest joins the codegen artifact-cache key so compiled timing
  can never leak between configs.

Because every engine reads the identical description, the config-matrix
differential suite (``tests/test_machine_differential.py``) can assert
bit-identical ``PipelineStats`` across engines for *every* built-in
config, and architectural state that is invariant across configs.

Timing semantics
----------------

For a committed dynamic instruction stream of length ``N``::

    cycles = N + fill_cycles + load_use_stalls + control_flush_bubbles

``fill_cycles = depth - 1 + fetch_latency`` is the constant pipe-fill.
Stall bubbles come from exactly two sources:

* **load-use**: a consumer adjacent to a LOAD that produces its register
  pays ``load_use_penalty`` bubbles (0 enables a same-cycle MEM-output
  bypass into EX; consumers that need the value in *ID* — the branch
  condition / JALR base path — always pay at least one bubble because ID
  precedes the bypass point);
* **redirects**: every control transfer the front end did not predict
  pays ``redirect_penalty = branch_penalty + fetch_latency`` bubbles.

Which control transfers redirect is the branch policy:

``flush-on-taken``
    The paper's scheme: fetch always falls through, so every taken
    conditional, JAL and JALR redirects.
``predict-not-taken``
    A predecoder in IF folds direct jumps (JAL) to zero cost;
    conditionals are predicted not-taken (redirect iff taken); JALR is
    indirect and always redirects.
``static-btfn``
    Backward-taken/forward-not-taken: the predecoder folds JAL and
    predicts backward conditionals (``imm <= 0``) taken, forward ones
    not-taken; a conditional redirects iff mispredicted; JALR always
    redirects.

The default config is named ``paper3stage`` after the issue/paper
shorthand for the baseline machine (the implemented microarchitecture is
the 5-stage Fig. 4 pipe; ``depth=5``); it reproduces the pre-config
cycle numbers and every forwarding counter exactly, which the golden
traces pin byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple, Union

#: Legal values of :attr:`MachineConfig.branch_policy`.
BRANCH_POLICIES = ("flush-on-taken", "predict-not-taken", "static-btfn")

#: Name of the built-in config that reproduces the paper's numbers.
DEFAULT_MACHINE_NAME = "paper3stage"

#: Bounds of the validated fields.
MIN_DEPTH, MAX_DEPTH = 2, 5
MAX_BRANCH_PENALTY = 4
MAX_FETCH_LATENCY = 2


class MachineError(ValueError):
    """Raised for malformed machine configurations or unknown names."""


@dataclass(frozen=True)
class MachineConfig:
    """Declarative timing description of one ART-9 microarchitecture.

    ``name`` is a label only: the timing identity (and the codegen cache
    key contribution, :meth:`digest`) is a function of the parameter
    fields alone, so two differently-named but parameter-identical
    configs share compiled artifacts.
    """

    name: str = DEFAULT_MACHINE_NAME
    depth: int = 5
    branch_policy: str = "flush-on-taken"
    load_use_penalty: int = 1
    branch_penalty: int = 1
    fetch_latency: int = 0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise MachineError("machine config needs a non-empty name")
        if not MIN_DEPTH <= self.depth <= MAX_DEPTH:
            raise MachineError(
                f"pipeline depth {self.depth} outside {MIN_DEPTH}..{MAX_DEPTH}")
        if self.branch_policy not in BRANCH_POLICIES:
            raise MachineError(
                f"unknown branch policy {self.branch_policy!r}; "
                f"known: {list(BRANCH_POLICIES)}")
        if self.load_use_penalty not in (0, 1):
            # Penalties > 1 would make the load-use window span non-adjacent
            # instructions, which the single-pass adjacency model (and the
            # paper's one-bubble HDU) does not describe.
            raise MachineError(
                f"load-use penalty {self.load_use_penalty} not in (0, 1)")
        if not 0 <= self.branch_penalty <= MAX_BRANCH_PENALTY:
            raise MachineError(
                f"branch penalty {self.branch_penalty} outside "
                f"0..{MAX_BRANCH_PENALTY}")
        if not 0 <= self.fetch_latency <= MAX_FETCH_LATENCY:
            raise MachineError(
                f"fetch latency {self.fetch_latency} outside "
                f"0..{MAX_FETCH_LATENCY}")

    # -- derived timing constants -------------------------------------------

    @property
    def fill_cycles(self) -> int:
        """Constant pipe-fill cycles added to every run."""
        return self.depth - 1 + self.fetch_latency

    @property
    def redirect_penalty(self) -> int:
        """Bubbles paid per front-end redirect (mispredicted transfer)."""
        return self.branch_penalty + self.fetch_latency

    @property
    def folds_jal(self) -> bool:
        """True when the front end resolves direct jumps at fetch time."""
        return self.branch_policy != "flush-on-taken"

    def predicts_taken(self, mnemonic: str, imm: int) -> bool:
        """Static fetch-time prediction for a control instruction."""
        if mnemonic == "JAL":
            return self.folds_jal
        if mnemonic in ("BEQ", "BNE"):
            return self.branch_policy == "static-btfn" and imm <= 0
        return False  # JALR is indirect: the front end never has a target.

    def redirect_gap(self, mnemonic: str, imm: int, taken: bool) -> int:
        """Bubbles the *next* instruction sees behind this control transfer."""
        if mnemonic == "JALR":
            return self.redirect_penalty
        if mnemonic == "JAL":
            return 0 if self.folds_jal else self.redirect_penalty
        if mnemonic in ("BEQ", "BNE"):
            if taken != self.predicts_taken(mnemonic, imm):
                return self.redirect_penalty
            return 0
        return 0

    def control_gaps(self, mnemonic: str, imm: int) -> Tuple[int, int]:
        """``(taken_gap, not_taken_gap)`` for one control instruction.

        Both outcomes of :meth:`redirect_gap` at once — the compile-time
        seam constants the chained code generator folds into a trace
        (the chained direction's gap becomes a constant flush, the other
        the bail-out's pended redirect).
        """
        return (self.redirect_gap(mnemonic, imm, True),
                self.redirect_gap(mnemonic, imm, False))

    # -- identity / serialisation -------------------------------------------

    def params_dict(self) -> Dict[str, object]:
        """The timing-relevant fields (everything except the name)."""
        return {
            "depth": self.depth,
            "branch_policy": self.branch_policy,
            "load_use_penalty": self.load_use_penalty,
            "branch_penalty": self.branch_penalty,
            "fetch_latency": self.fetch_latency,
        }

    def digest(self) -> str:
        """SHA-256 over the canonical parameter JSON (name excluded)."""
        blob = json.dumps(self.params_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"name": self.name}
        data.update(self.params_dict())
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MachineConfig":
        unknown = set(data) - {"name", "depth", "branch_policy",
                               "load_use_penalty", "branch_penalty",
                               "fetch_latency"}
        if unknown:
            raise MachineError(
                f"unknown machine config fields: {sorted(unknown)}")
        defaults = cls()
        return cls(
            name=str(data.get("name", defaults.name)),
            depth=int(data.get("depth", defaults.depth)),  # type: ignore[arg-type]
            branch_policy=str(data.get("branch_policy", defaults.branch_policy)),
            load_use_penalty=int(data.get("load_use_penalty",  # type: ignore[arg-type]
                                          defaults.load_use_penalty)),
            branch_penalty=int(data.get("branch_penalty",  # type: ignore[arg-type]
                                        defaults.branch_penalty)),
            fetch_latency=int(data.get("fetch_latency",  # type: ignore[arg-type]
                                       defaults.fetch_latency)),
        )


#: Built-in configs.  ``paper3stage`` is the default and reproduces the
#: blessed numbers; the others span the design-space axes (policy, depth,
#: penalties) and are each covered by the config-matrix differential and
#: golden suites.
MACHINES: Dict[str, MachineConfig] = {
    config.name: config
    for config in (
        MachineConfig(),
        # Idealized shallow pipe: no hazard penalties at all, so
        # cycles == instructions + 1 (the property suite pins this).
        MachineConfig(name="ideal2", depth=2, branch_policy="predict-not-taken",
                      load_use_penalty=0, branch_penalty=0, fetch_latency=0),
        # The paper pipe with a not-taken-predicting front end.
        MachineConfig(name="predictnt", depth=5,
                      branch_policy="predict-not-taken"),
        # Four-stage core with static backward-taken/forward-not-taken.
        MachineConfig(name="btfn4", depth=4, branch_policy="static-btfn"),
        # Slow instruction memory: every fetch adds a cycle of latency,
        # redirects pay branch + fetch restart (worst-case corner).
        MachineConfig(name="slowfetch5", depth=5, branch_penalty=2,
                      fetch_latency=1),
    )
}


def machine_names() -> Tuple[str, ...]:
    """Built-in config names, default first, then alphabetical."""
    rest = sorted(name for name in MACHINES if name != DEFAULT_MACHINE_NAME)
    return (DEFAULT_MACHINE_NAME, *rest)


def get_machine(name: str) -> MachineConfig:
    """Look up a built-in config by name."""
    try:
        return MACHINES[name]
    except KeyError:
        raise MachineError(
            f"unknown machine config {name!r}; known: {list(machine_names())}"
        ) from None


def resolve_machine(
    machine: Union[MachineConfig, str, None]) -> MachineConfig:
    """Coerce a machine argument (config, name or None) to a config."""
    if machine is None:
        return MACHINES[DEFAULT_MACHINE_NAME]
    if isinstance(machine, MachineConfig):
        return machine
    if isinstance(machine, str):
        return get_machine(machine)
    raise MachineError(
        f"machine must be a MachineConfig, a name or None, got {machine!r}")
