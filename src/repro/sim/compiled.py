"""Compiled-code execution engine: superblock codegen for ART-9 programs.

:class:`~repro.sim.engine.FastEngine` already executes on plain Python
integers, but it still pays per-instruction dispatch through a long
``if``/``elif`` chain on every dynamic instruction.  This module removes
that cost by *compiling the program to Python*:

1. the :class:`~repro.isa.program.Program` is pre-decoded once (sharing
   ``FastEngine``'s validation) and partitioned into **superblocks** —
   straight-line runs that end at a control transfer (``BEQ``/``BNE``/
   ``JAL``/``JALR``/``HALT``) or just before a static branch target;
2. each superblock is emitted as one specialized Python function via
   ``compile()``/``exec``: registers live in local variables for the
   duration of the block, balanced-ternary wraparound is inlined
   arithmetically, immediates/targets/link values are folded to literal
   constants, and the trit-wise gates index the same precomputed value
   tables the fast engine uses;
3. execution dispatches block-to-block through a PC → function table.
   Entry points that are not statically visible (``JALR`` returns land on
   the instruction after a call site, and a computed ``JALR`` can target
   any address) are compiled lazily as *suffix* blocks on first dispatch.

Superblock **chaining** extends the traces beyond single blocks.  At
codegen time the engine inlines unconditional-``JAL`` targets (and
fall-through successors with exactly one static predecessor) into the
caller's trace, so longer straight-line runs fold more of the timing
model into constants and skip dispatch-table round-trips entirely; the
chained seams charge the machine's redirect gap as a compile-time flush
constant, keeping the carried 2-instruction pipeline window bit-identical
to dispatching block-by-block.  A **profile-guided mode**
(``CompiledEngine(pgo=True)``) goes further: a first pass runs the
program on an unchained profiling engine, hot blocks above an
execution-share threshold are recompiled as extended traces chained
across their *observed dominant successors* — including conditional
branches — and the cold direction of every interior branch bails out to
the dispatch table with the pipeline window and committed-instruction
count restored exactly.  The chosen chain plan is itself a cacheable
artifact (``chainplan`` kind in :mod:`repro.cache`), so the profiling
pass runs once per program across a worker fleet.

The analytic timing model of ``FastEngine.run_with_stats`` is **fused
into the generated code**.  Inside a trace the committed instruction
stream is statically known, so every stall/forwarding decision between
interior instructions folds to a compile-time constant: a trace
contributes one constant increment per :class:`PipelineStats` counter,
plus dynamic terms only for (a) its first two instructions, whose hazards
depend on the rolling two-instruction window carried in from the previous
block, and (b) its conditional-branch outcomes.  The carried window
(previous destination/load/ALU flags, pending redirect gap, previous gap
and the destination two instructions back) crosses block boundaries in a
small mutable state vector.

Both entry points are bit-identical to the fast engine (and therefore to
the functional and pipeline simulators — asserted by the 5-way
differential machinery in :mod:`repro.testing` and the golden-trace
suite):

``run()``
    Architectural execution behind the exact :class:`ExecutionResult`
    contract.

``run_with_stats()``
    Architectural execution plus the fused :class:`PipelineStats` model.

Differences under *error* conditions are limited to internal engine state:
the instruction-budget check runs at block granularity, so a budget
overrun raises the same :class:`SimulationError` (identical message)
*before* executing the partial block instead of after it (variable-length
PGO traces that might straddle the budget fall back to their fixed base
block so the check stays exact); out-of-range memory accesses raise the
same :class:`MemoryError_` mid-trace with the architectural prefix state
(registers written so far, ``pc`` of the faulting instruction,
committed-instruction count) restored to match the fast engine.

Generated sources are deterministic functions of (program content,
codegen version, timing mode, TDM depth, machine-config parameter
digest, chaining mode — and, for PGO overlays, the chain-plan digest),
which is what lets the cross-process artifact cache (:mod:`repro.cache`)
ship them between sweep workers: ``CompiledEngine`` asks the cache for
the block sources before generating, so codegen happens once per grid
point across a whole worker fleet.  The machine digest is part of the
key in *both* timing modes, so artifacts never cross machine configs
even though untimed codegen happens to be config-independent today.
"""

from __future__ import annotations

import base64
import hashlib
import importlib.util
import json
import marshal
import sys
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.program import Program
from repro.isa.registers import NUM_REGISTERS, register_name
from repro.obs import metrics
from repro.sim import engine as _fast
from repro.sim.engine import (
    HALF,
    MOD,
    OP_ADD,
    OP_ADDI,
    OP_AND,
    OP_ANDI,
    OP_BEQ,
    OP_BNE,
    OP_COMP,
    OP_HALT,
    OP_JAL,
    OP_JALR,
    OP_LI,
    OP_LOAD,
    OP_LUI,
    OP_MV,
    OP_NTI,
    OP_OR,
    OP_PTI,
    OP_SL,
    OP_SLI,
    OP_SR,
    OP_SRI,
    OP_STI,
    OP_STORE,
    OP_SUB,
    OP_XOR,
    FastEngine,
    _MemoryView,
    _MNEMONIC_OF,
    _POW3,
    _READS,
    _WRITERS,
    wrap,
)
from repro.sim.functional import ExecutionResult, SimulationError
from repro.sim.machine import MachineConfig, resolve_machine
from repro.sim.memory import MemoryError_
from repro.sim.pipeline.stats import PipelineStats

#: Bumped whenever the shape of the generated code changes; part of the
#: artifact-cache key so stale cached sources can never be executed.
#: v3: optional profile-counter prologue (``profile=True`` engines).
#: v4: chained traces (seam flush constants, interior-branch bail-outs,
#: committed-count cell for variable-length traces).
CODEGEN_VERSION = 4

#: Interpreter identity for the marshalled code objects stored alongside
#: the sources: ``marshal`` payloads are only valid for the exact bytecode
#: format, so the magic number keys them (a different interpreter simply
#: regenerates rather than loading garbage).
PYTHON_TAG = (
    f"{sys.implementation.name}-{sys.version_info[0]}.{sys.version_info[1]}-"
    f"{importlib.util.MAGIC_NUMBER.hex()}"
)

#: In-process memo of compiled block bundles ``(codes, sources)`` keyed by
#: the pre-decoded records (small LRU): the differential harness builds
#: several engines per program and should pay for codegen once, artifact
#: cache or not.  Suffix blocks discovered at run time (computed JALR
#: targets) are added to the shared bundle, so they too compile once per
#: process — and once per *fleet* when the artifact is re-published.
_CODE_MEMO: "OrderedDict[tuple, tuple]" = OrderedDict()
_CODE_MEMO_CAP = 64

#: In-process memo of PGO chain plans keyed by program digest: the bench
#: harness builds many ``pgo=True`` engines per program and should pay
#: for the profiling pass once per process (and once per fleet through
#: the ``chainplan`` artifact kind).
_PLAN_MEMO: "OrderedDict[tuple, dict]" = OrderedDict()
_PLAN_MEMO_CAP = 16

#: Opcodes that terminate a superblock.
_TERMINALS = frozenset((OP_BEQ, OP_BNE, OP_JAL, OP_JALR, OP_HALT))

# Timing state-vector layout (one flat list of ints, shared between the
# driver loop and every generated block function):
#   [0] load-use stalls        [1] control-flush bubbles
#   [2] taken branches         [3] not-taken branches
#   [4] jumps                  [5] EX forwards
#   [6] MEM forwards           [7] ID forwards
#   [8] p1 dest (-1 none)      [9] p1 is-load
#   [10] p1 is-ALU-writer      [11] p1 pending redirect gap (0 or R)
#   [12] previous gap          [13] p2 dest (-1 none)
#   [14] first-commit flag
#   [15] fault pc              [16] fault offset in trace
#   [17] committed-instruction count (variable-length traces only)
_TS_LEN = 18
_FAULT_PC, _FAULT_OFF = 15, 16
_DYN_T = 17
#: Plain (untimed) blocks use the fault cells at the front plus the
#: committed-count cell.
_ST_LEN = 3
_DYN_U = 2

#: Static-chaining limits: a chain stops growing once it spans this many
#: constituent superblocks or this many instructions (long traces hit
#: diminishing returns and inflate codegen artifacts).
CHAIN_MAX_BLOCKS = 8
CHAIN_MAX_INSTRUCTIONS = 96

#: PGO thresholds: a block is *hot* when it accounts for at least this
#: share of the profiled dynamic instructions, and a conditional edge is
#: chained through only when the observed outcome is at least this share
#: of the branch's executions.
PGO_HOT_SHARE = 0.01
PGO_DOMINANT_SHARE = 0.6

#: Instruction budget of the PGO profiling pass (first pass of the
#: two-pass mode).
PGO_PROFILE_BUDGET = 10_000_000

#: Bumped whenever the chain-plan construction changes; part of the
#: ``chainplan`` artifact key and of the plan digest folded into PGO
#: codegen keys.
CHAIN_PLAN_VERSION = 1

#: Histogram bounds for installed trace lengths (instructions).
_TRACE_LEN_BOUNDS = (4, 8, 16, 32, 64, 96, 128)


def superblock_leaders(records: Sequence[tuple]) -> set:
    """Static block-entry addresses: 0, branch targets, fall-throughs."""
    length = len(records)
    leaders = {0} if length else set()
    for pc, (op, _ta, _tb, imm, _bt) in enumerate(records):
        if op in (OP_BEQ, OP_BNE, OP_JAL):
            target = pc + imm
            if 0 <= target < length:
                leaders.add(target)
        if op in _TERMINALS and pc + 1 < length:
            leaders.add(pc + 1)
    return leaders


def superblock_span(records: Sequence[tuple], leaders: set, entry: int) -> List[int]:
    """Addresses of the superblock entered at ``entry``."""
    span = []
    pc = entry
    length = len(records)
    while True:
        span.append(pc)
        if records[pc][0] in _TERMINALS:
            break
        nxt = pc + 1
        if nxt >= length or nxt in leaders:
            break
        pc = nxt
    return span


def _static_pred_counts(records: Sequence[tuple], leaders: set) -> Dict[int, int]:
    """Leader → number of static control-flow edges that enter it.

    Counts the program entry edge into 0, both directions of every
    conditional, JAL targets, and block fall-throughs.  JALR edges are
    dynamic and uncountable — which is safe, because chaining *copies* a
    successor into the predecessor's trace: the successor stays
    independently dispatchable at its own table entry, so an uncounted
    JALR landing there still works.
    """
    length = len(records)
    preds: Dict[int, int] = {0: 1} if length else {}
    for entry in leaders:
        span = superblock_span(records, leaders, entry)
        last_pc = span[-1]
        op, _ta, _tb, imm, _bt = records[last_pc]
        if op in (OP_BEQ, OP_BNE):
            targets = (last_pc + imm, last_pc + 1)
        elif op == OP_JAL:
            targets = (last_pc + imm,)
        elif op in (OP_JALR, OP_HALT):
            targets = ()
        else:
            targets = (last_pc + 1,)
        for target in targets:
            if 0 <= target < length:
                preds[target] = preds.get(target, 0) + 1
    return preds


def build_chain(records: Sequence[tuple], leaders: set,
                preds: Dict[int, int], entry: int,
                max_blocks: int = CHAIN_MAX_BLOCKS,
                max_instructions: int = CHAIN_MAX_INSTRUCTIONS) -> List[int]:
    """Greedy static chain of block entries starting at ``entry``.

    Follows unconditional JAL targets always, and block fall-throughs
    only when the successor has exactly one static predecessor (inlining
    a shared join point would duplicate it into every caller).  Stops at
    conditionals (their continuation is not static), indirect JALR, HALT,
    cycles, and the size caps.
    """
    chain = [entry]
    seen = {entry}
    length = len(records)
    total = len(superblock_span(records, leaders, entry))
    cur = entry
    while len(chain) < max_blocks:
        span = superblock_span(records, leaders, cur)
        last_pc = span[-1]
        op, _ta, _tb, imm, _bt = records[last_pc]
        if op == OP_JAL:
            nxt = last_pc + imm
        elif op in _TERMINALS:  # BEQ/BNE/JALR/HALT end static chains
            break
        else:
            nxt = last_pc + 1
            if preds.get(nxt, 0) != 1:
                break
        if not 0 <= nxt < length or nxt in seen or nxt not in leaders:
            break
        nxt_len = len(superblock_span(records, leaders, nxt))
        if total + nxt_len > max_instructions:
            break
        chain.append(nxt)
        seen.add(nxt)
        total += nxt_len
        cur = nxt
    return chain


def chain_span(records: Sequence[tuple], leaders: set,
               chain: Sequence[int]) -> List[int]:
    """Concatenated instruction addresses of a block chain.

    Validates every seam: a JAL must jump to the next chained entry, a
    conditional must have the next entry as exactly one of its two
    distinct targets (``imm == 1`` branches are ambiguous — taken and
    fall-through coincide but their redirect costs differ — and are
    rejected), JALR/HALT cannot be chain-interior, and fall-throughs must
    be contiguous.  Raises :class:`ValueError` on any violation, which is
    how stale cached chain plans are detected and discarded.
    """
    span: List[int] = []
    for i, entry in enumerate(chain):
        if i:
            prev_pc = span[-1]
            op, _ta, _tb, imm, _bt = records[prev_pc]
            if op == OP_JAL:
                if prev_pc + imm != entry:
                    raise ValueError(
                        f"chain breaks at {prev_pc}: JAL target mismatch")
            elif op in (OP_BEQ, OP_BNE):
                t_tk, t_ft = prev_pc + imm, prev_pc + 1
                if t_tk == t_ft:
                    raise ValueError(
                        f"chain breaks at {prev_pc}: ambiguous branch")
                if entry not in (t_tk, t_ft):
                    raise ValueError(
                        f"chain breaks at {prev_pc}: {entry} is not a "
                        "branch successor")
            elif op in (OP_JALR, OP_HALT):
                raise ValueError(
                    f"chain breaks at {prev_pc}: "
                    f"{_MNEMONIC_OF[op]} cannot be chain-interior")
            elif prev_pc + 1 != entry:
                raise ValueError(
                    f"chain breaks at {prev_pc}: non-contiguous")
        span.extend(superblock_span(records, leaders, entry))
    return span


def pgo_chain_plan(records: Sequence[tuple], leaders: set,
                   block_counts: Dict[int, int],
                   edges: Dict[tuple, int], *,
                   hot_share: float = PGO_HOT_SHARE,
                   dominant_share: float = PGO_DOMINANT_SHARE,
                   max_blocks: int = CHAIN_MAX_BLOCKS,
                   max_instructions: int = CHAIN_MAX_INSTRUCTIONS,
                   ) -> Dict[int, List[int]]:
    """Hot-head → block chain, derived from a profiling run.

    ``block_counts`` maps block entry → executions (the ``profile=True``
    counters); ``edges`` maps (predecessor entry, successor entry) →
    dispatch count from the same run.  A leader is a trace head when it
    accounts for at least ``hot_share`` of the profiled dynamic
    instructions; the trace extends through JAL targets and fall-throughs
    unconditionally and through conditional branches only when one
    direction carried at least ``dominant_share`` of the observed
    outcomes (the cold direction becomes a bail-out).
    """
    lengths = {entry: len(superblock_span(records, leaders, entry))
               for entry in leaders}
    total = sum(block_counts.get(entry, 0) * lengths[entry]
                for entry in leaders)
    if not total:
        return {}
    length = len(records)
    plan: Dict[int, List[int]] = {}
    for head in sorted(leaders):
        execs = block_counts.get(head, 0)
        if not execs or execs * lengths[head] < hot_share * total:
            continue
        chain = [head]
        seen = {head}
        span_len = lengths[head]
        cur = head
        while len(chain) < max_blocks:
            span_last = superblock_span(records, leaders, cur)[-1]
            op, _ta, _tb, imm, _bt = records[span_last]
            if op == OP_JAL:
                nxt = span_last + imm
            elif op in (OP_BEQ, OP_BNE):
                t_tk, t_ft = span_last + imm, span_last + 1
                if t_tk == t_ft:
                    break  # ambiguous: redirect cost differs per outcome
                c_tk = edges.get((cur, t_tk), 0)
                c_ft = edges.get((cur, t_ft), 0)
                outcomes = c_tk + c_ft
                if not outcomes:
                    break
                nxt, dom = (t_tk, c_tk) if c_tk >= c_ft else (t_ft, c_ft)
                if dom < dominant_share * outcomes:
                    break
            elif op in (OP_JALR, OP_HALT):
                break
            else:
                nxt = span_last + 1
            if not 0 <= nxt < length or nxt in seen or nxt not in leaders:
                break
            if span_len + lengths[nxt] > max_instructions:
                break
            chain.append(nxt)
            seen.add(nxt)
            span_len += lengths[nxt]
            cur = nxt
        if len(chain) > 1:
            plan[head] = chain
    return plan


def chain_plan_digest(traces: Dict[int, List[int]]) -> str:
    """Stable digest of a chain plan (folded into PGO codegen keys)."""
    blob = json.dumps(
        {"version": CHAIN_PLAN_VERSION,
         "traces": {str(head): list(chain)
                    for head, chain in sorted(traces.items())}},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class _Attrs:
    """Static dataflow attributes of one pre-decoded record."""

    __slots__ = ("op", "ta", "tb", "imm", "bt", "reads_ta", "reads_tb",
                 "id_reads", "dest", "load", "alu")

    def __init__(self, record: tuple):
        self.op, self.ta, self.tb, self.imm, self.bt = record
        self.reads_ta, self.reads_tb, self.id_reads = _READS[self.op]
        self.dest = self.ta if self.op in _WRITERS else -1
        self.load = self.op == OP_LOAD
        self.alu = self.op in _WRITERS and self.op != OP_LOAD


def _static_gap(prev: _Attrs, cur: _Attrs, machine: MachineConfig) -> int:
    """Load-use gap between two adjacent straight-line instructions.

    Straight-line predecessors are never control transfers (those become
    chain seams instead), so the only possible bubble is the one-cycle
    load-use stall — waived for EX-path consumers when the machine has
    the zero-penalty MEM-output bypass (ID-path consumers always stall).
    """
    if prev.load and ((cur.reads_ta and cur.ta == prev.dest)
                      or (cur.reads_tb and cur.tb == prev.dest)):
        if machine.load_use_penalty >= 1 or (cur.id_reads
                                             and cur.tb == prev.dest):
            return 1
    return 0


class _BlockWriter:
    """Line buffer with indentation for one generated function."""

    def __init__(self):
        self.lines: List[str] = []

    def emit(self, line: str, indent: int = 1) -> None:
        self.lines.append("    " * indent + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def generate_block_source(
    entry: int,
    span: Sequence[int],
    records: Sequence[tuple],
    timing: bool,
    tdm_depth: int,
    machine: Optional[MachineConfig] = None,
    profile: bool = False,
    name: Optional[str] = None,
    profile_key: Optional[int] = None,
) -> str:
    """Emit the Python source of one superblock/trace function.

    The function is named ``_blk_<entry>`` (``_blk_<entry>_t`` for the
    timing variant; ``name`` overrides the base for PGO trace overlays)
    and has the signature ``(regs, mem, st) -> next_pc``.  The machine
    config's constants — redirect penalty, branch-policy prediction,
    load-use bypass — are folded into the emitted timing code.

    ``span`` may cross superblock boundaries (a chained trace): interior
    JAL seams charge the machine's folded-or-redirect gap as a constant
    flush, and interior conditional seams compile the *observed/static
    continue direction* inline with a bail-out on the other outcome that
    restores the pipeline window, writes the committed-instruction count
    into the state vector, and returns the cold-path PC to the dispatch
    table.  Seam validity is checked here as a last line of defence
    (:func:`chain_span` validates plans earlier).

    With ``profile=True`` the trace's first statement bumps its slot
    (``profile_key``, default ``entry``) in the shared ``_P``
    execution-count dict — the per-block profile that ``art9 profile``
    reports and that profile-guided recompilation consumes.
    """
    machine = resolve_machine(machine)
    redirect = machine.redirect_penalty
    bypass = machine.load_use_penalty == 0
    recs = [_Attrs(records[pc]) for pc in span]
    n = len(recs)
    last = recs[-1]
    check_depth = tdm_depth != MOD
    dyn_cell = _DYN_T if timing else _DYN_U

    # -- seam classification ------------------------------------------------
    # gaps[k] is the bubble count instruction k pays behind instruction
    # k-1: the load-use stall inside a straight-line run, or the machine's
    # redirect gap across a chained control seam (a *flush*, exactly as
    # the fast engine pends it into the next commit).
    gaps = [0] * n
    flush_seam = [False] * n
    variable = False
    for k in range(1, n):
        prev = recs[k - 1]
        prev_pc = span[k - 1]
        if prev.op == OP_JAL:
            if span[k] != prev_pc + prev.imm:
                raise ValueError(
                    f"chained span breaks at {prev_pc}: JAL target mismatch")
            gaps[k] = machine.control_gaps("JAL", prev.imm)[0]
            flush_seam[k] = True
        elif prev.op in (OP_BEQ, OP_BNE):
            mn = "BEQ" if prev.op == OP_BEQ else "BNE"
            t_tk, t_ft = prev_pc + prev.imm, prev_pc + 1
            if t_tk == t_ft:
                raise ValueError(
                    f"chained span breaks at {prev_pc}: ambiguous branch")
            if span[k] == t_tk:
                seam_taken = True
            elif span[k] == t_ft:
                seam_taken = False
            else:
                raise ValueError(
                    f"chained span breaks at {prev_pc}: {span[k]} is not "
                    "a branch successor")
            g_tk, g_ft = machine.control_gaps(mn, prev.imm)
            gaps[k] = g_tk if seam_taken else g_ft
            flush_seam[k] = True
            variable = True
        elif prev.op in _TERMINALS:
            raise ValueError(
                f"chained span breaks at {prev_pc}: "
                f"{_MNEMONIC_OF[prev.op]} cannot be chain-interior")
        else:
            if span[k] != prev_pc + 1:
                raise ValueError(
                    f"chained span breaks at {prev_pc}: non-contiguous")
            gaps[k] = _static_gap(prev, recs[k], machine)

    w = _BlockWriter()
    base_name = name if name is not None else f"_blk_{entry}"
    fn_name = f"{base_name}_t" if timing else base_name
    w.emit(f"def {fn_name}(regs, mem, st):", 0)
    if profile:
        key = profile_key if profile_key is not None else entry
        w.emit(f"_P[{key}] += 1")

    # -- register locals ----------------------------------------------------
    used = set()
    for a in recs:
        if a.reads_ta or a.dest >= 0:
            used.add(a.ta)
        if a.reads_tb:
            used.add(a.tb)
    for reg in sorted(used):
        w.emit(f"r{reg} = regs[{reg}]")
    if any(a.load for a in recs):
        w.emit("_mg = mem.get")
    written: set = set()

    # -- timing bookkeeping -------------------------------------------------
    s_stall = s_flush = s_taken = s_nt = s_jump = 0
    s_ex = s_mem = s_id = 0
    if timing:
        w.emit("_e8 = st[8]")

    def fault_guard(addr_var: str, pc: int, offset: int) -> None:
        w.emit(f"if {addr_var} >= {tdm_depth}:")
        for reg in sorted(written):
            w.emit(f"regs[{reg}] = r{reg}", 2)
        base = _FAULT_PC if timing else 0
        w.emit(f"st[{base}] = {pc}", 2)
        w.emit(f"st[{base + 1}] = {offset}", 2)
        w.emit(
            f"raise MemoryError_('TDM: address %d out of range 0..{tdm_depth - 1}'"
            f" % {addr_var})", 2)

    def emit_forward_checks(cur: _Attrs, gap_expr, p1: Optional[_Attrs],
                            wb_expr) -> None:
        """EX/MEM/ID forwarding for the first two (dynamic) instructions.

        ``gap_expr``/``wb_expr`` are either ints (statically known) or
        variable names; ``p1`` is None when the predecessor is the carried
        window (entry instruction), in which case its flags live in ``st``.
        """
        nonlocal s_ex, s_mem, s_id

        def one(reads: bool, reg: int, stat_bucket: str) -> None:
            nonlocal s_ex, s_mem, s_id
            if not reads:
                return
            # EX-stage forward from the immediately preceding ALU writer.
            if p1 is None:
                ex_cond = f"{gap_expr} == 0 and st[10] and st[8] == {reg}" \
                    if not isinstance(gap_expr, int) else (
                        f"st[10] and st[8] == {reg}" if gap_expr == 0 else None)
            else:
                ex_hit = (isinstance(gap_expr, int) and gap_expr == 0
                          and p1.alu and p1.dest == reg)
                ex_cond = None
                if ex_hit:
                    if stat_bucket == "ex":
                        s_ex += 1
                    else:
                        s_id += 1
                    return
                # Zero-penalty machines bypass a fresh load value into EX in
                # the same cycle; this is a MEM forward (the ID path never
                # gets here: its consumers force the stall instead).
                if (bypass and isinstance(gap_expr, int) and gap_expr == 0
                        and p1.load and p1.dest == reg
                        and stat_bucket == "ex"):
                    s_mem += 1
                    return
            if ex_cond is not None:
                w.emit(f"if {ex_cond}:")
                w.emit(f"st[{5 if stat_bucket == 'ex' else 7}] += 1", 2)
                prefix_elif = True
            else:
                prefix_elif = False
            if (bypass and p1 is None and stat_bucket == "ex"
                    and not isinstance(gap_expr, int)):
                w.emit(f"{'elif' if prefix_elif else 'if'} {gap_expr} == 0 "
                       f"and st[9] and st[8] == {reg}:")
                w.emit("st[6] += 1", 2)
                prefix_elif = True
            # MEM/WB forward from two slots back.
            if isinstance(wb_expr, int):
                if wb_expr >= 0 and wb_expr == reg:
                    if stat_bucket == "ex":
                        s_mem += 1
                    else:
                        s_id += 1
                return
            mem_counter = 6 if stat_bucket == "ex" else 7
            if prefix_elif:
                w.emit(f"elif {wb_expr} == {reg}:")
            else:
                w.emit(f"if {wb_expr} == {reg}:")
            w.emit(f"st[{mem_counter}] += 1", 2)

        one(cur.reads_ta, cur.ta, "ex")
        one(cur.reads_tb, cur.tb, "ex")
        one(cur.id_reads, cur.tb, "id")

    def emit_timing(k: int) -> None:
        """Per-instruction stall/forward accounting, constants folded."""
        nonlocal s_stall, s_flush
        cur = recs[k]
        if k == 0:
            # Fully dynamic: hazards against the carried window.  st[11] is
            # the redirect gap pended by the previous block's terminal
            # (0 or the machine's redirect penalty).
            w.emit("_g0 = 0")
            w.emit("if st[14]:")
            w.emit("st[14] = 0", 2)
            w.emit("elif st[11]:")
            w.emit("_g0 = st[11]", 2)
            w.emit("st[1] += st[11]", 2)
            read_regs = []
            if bypass:
                # Only ID-path consumers stall on this machine; EX-path
                # consumers take the same-cycle MEM-output bypass instead.
                if cur.id_reads:
                    read_regs.append(cur.tb)
            else:
                if cur.reads_ta:
                    read_regs.append(cur.ta)
                if cur.reads_tb and cur.tb not in read_regs:
                    read_regs.append(cur.tb)
            if read_regs:
                cond = " or ".join(f"st[8] == {reg}" for reg in read_regs)
                w.emit(f"elif st[9] and ({cond}):")
                w.emit("_g0 = 1", 2)
                w.emit("st[0] += 1", 2)
            if cur.reads_ta or cur.reads_tb or cur.id_reads:
                w.emit("if _g0 == 1:")
                w.emit("_wb = st[8]", 2)
                w.emit("elif _g0 == 0 and st[12] == 0:")
                w.emit("_wb = st[13]", 2)
                w.emit("else:")
                w.emit("_wb = -1", 2)
                emit_forward_checks(cur, "_g0", None, "_wb")
            return
        prev = recs[k - 1]
        gap = gaps[k]
        if flush_seam[k]:
            s_flush += gap
        else:
            s_stall += gap
        if k == 1:
            # gap and the EX-forward source are static; the MEM/WB slot may
            # still be occupied by the carried predecessor when both gaps
            # around it are empty.
            if gap == 1:
                emit_forward_checks(cur, gap, prev, prev.dest)
            elif gap == 0:
                emit_forward_checks(cur, gap, prev, "(_e8 if _g0 == 0 else -1)")
            else:
                emit_forward_checks(cur, gap, prev, -1)
            return
        gap_prev = gaps[k - 1]
        if gap == 1:
            wb = prev.dest
        elif gap == 0 and gap_prev == 0:
            wb = recs[k - 2].dest
        else:
            wb = -1
        emit_forward_checks(cur, gap, prev, wb)

    def emit_bail(j: int) -> None:
        """Cold-path exit of a chain-interior conditional at position j.

        Taken when the branch resolves *against* the chained continue
        direction: the accumulated prefix constants are flushed into the
        state vector, the carried pipeline window is restored exactly as
        the fast engine would leave it after committing the branch, the
        committed-instruction count lands in the dynamic-count cell, and
        control returns to the dispatch table at the cold PC.
        """
        nonlocal s_taken, s_nt
        a = recs[j]
        p = span[j]
        mn = "BEQ" if a.op == OP_BEQ else "BNE"
        t_tk, t_ft = p + a.imm, p + 1
        cont_taken = span[j + 1] == t_tk
        bail_taken = not cont_taken
        bail_pc = t_tk if bail_taken else t_ft
        w.emit(f"if {'not _tk' if cont_taken else '_tk'}:")
        if timing:
            g_tk, g_ft = machine.control_gaps(mn, a.imm)
            bail_gap = g_tk if bail_taken else g_ft
            for slot, value in (
                    (0, s_stall), (1, s_flush),
                    (2, s_taken + (1 if bail_taken else 0)),
                    (3, s_nt + (0 if bail_taken else 1)),
                    (4, s_jump), (5, s_ex), (6, s_mem), (7, s_id)):
                if value:
                    w.emit(f"st[{slot}] += {value}", 2)
            w.emit(f"st[13] = {recs[j - 1].dest}" if j >= 1
                   else "st[13] = _e8", 2)
            w.emit("st[8] = -1", 2)
            w.emit("st[9] = 0", 2)
            w.emit("st[10] = 0", 2)
            w.emit(f"st[11] = {bail_gap}", 2)
            w.emit(f"st[12] = {gaps[j]}" if j >= 1 else "st[12] = _g0", 2)
        for reg in sorted(written):
            w.emit(f"regs[{reg}] = r{reg}", 2)
        w.emit(f"st[{dyn_cell}] = {j + 1}", 2)
        w.emit(f"return {bail_pc}", 2)
        if timing:
            if cont_taken:
                s_taken += 1
            else:
                s_nt += 1

    # -- per-instruction emission -------------------------------------------
    for k, pc in enumerate(span):
        a = recs[k]
        if timing:
            emit_timing(k)
        op, ta, tb, imm = a.op, a.ta, a.tb, a.imm
        A, B = f"r{ta}", f"r{tb}"

        if op == OP_ADDI:
            if imm:
                w.emit(f"{A} += {imm}")
                w.emit(f"if {A} > {HALF}:")
                w.emit(f"{A} -= {MOD}", 2)
                w.emit(f"elif {A} < {-HALF}:")
                w.emit(f"{A} += {MOD}", 2)
                written.add(ta)
        elif op == OP_ADD:
            w.emit(f"{A} += {A if ta == tb else B}")
            w.emit(f"if {A} > {HALF}:")
            w.emit(f"{A} -= {MOD}", 2)
            w.emit(f"elif {A} < {-HALF}:")
            w.emit(f"{A} += {MOD}", 2)
            written.add(ta)
        elif op == OP_LOAD:
            addr = f"({B} + {imm}) % {MOD}" if imm else f"{B} % {MOD}"
            w.emit(f"_a = {addr}")
            if check_depth:
                fault_guard("_a", pc, k)
            w.emit(f"{A} = _mg(_a, 0)")
            written.add(ta)
        elif op == OP_STORE:
            addr = f"({B} + {imm}) % {MOD}" if imm else f"{B} % {MOD}"
            if check_depth:
                w.emit(f"_a = {addr}")
                fault_guard("_a", pc, k)
                w.emit(f"mem[_a] = {A}")
            else:
                w.emit(f"mem[{addr}] = {A}")
        elif op in (OP_BEQ, OP_BNE):
            cmp = "==" if op == OP_BEQ else "!="
            w.emit(f"_tk = ({B} + 1) % 3 - 1 {cmp} {a.bt}")
        elif op == OP_LI:
            w.emit(f"{A} = {imm} + {A} - (({A} + 121) % 243 - 121)")
            written.add(ta)
        elif op == OP_MV:
            if ta != tb:
                w.emit(f"{A} = {B}")
                written.add(ta)
        elif op == OP_SUB:
            if ta == tb:
                w.emit(f"{A} = 0")
            else:
                w.emit(f"{A} -= {B}")
                w.emit(f"if {A} > {HALF}:")
                w.emit(f"{A} -= {MOD}", 2)
                w.emit(f"elif {A} < {-HALF}:")
                w.emit(f"{A} += {MOD}", 2)
            written.add(ta)
        elif op == OP_JAL:
            w.emit(f"{A} = {wrap(pc + 1)}")
            written.add(ta)
        elif op == OP_JALR:
            w.emit(f"_base = {B}")
            w.emit(f"{A} = {wrap(pc + 1)}")
            w.emit(f"_nx = (_base + {imm}) % {MOD}" if imm
                   else f"_nx = _base % {MOD}")
            written.add(ta)
        elif op == OP_LUI:
            w.emit(f"{A} = {wrap(imm * 243)}")
            written.add(ta)
        elif op == OP_COMP:
            if ta == tb:
                w.emit(f"{A} = 0")
            else:
                w.emit(f"{A} = ({A} > {B}) - ({A} < {B})")
            written.add(ta)
        elif op == OP_SLI:
            p3 = _POW3[imm % 9]
            if p3 != 1:
                w.emit(f"{A} = ({A} * {p3} + {HALF}) % {MOD} - {HALF}")
                written.add(ta)
        elif op == OP_SRI:
            p3 = _POW3[imm % 9]
            if p3 != 1:
                h = (p3 - 1) // 2
                w.emit(f"{A} = ({A} - (({A} + {h}) % {p3} - {h})) // {p3}")
                written.add(ta)
        elif op == OP_SL:
            w.emit(f"_p = P3[{B} % 9]")
            w.emit(f"{A} = ({A} * _p + {HALF}) % {MOD} - {HALF}")
            written.add(ta)
        elif op == OP_SR:
            w.emit(f"_p = P3[{B} % 9]")
            w.emit("_h = (_p - 1) // 2")
            w.emit(f"{A} = ({A} - (({A} + _h) % _p - _h)) // _p")
            written.add(ta)
        elif op in (OP_AND, OP_OR, OP_XOR):
            w.emit(f"_x = T[{A} % {MOD}]")
            w.emit(f"_y = T[{B} % {MOD}]")
            w.emit("_v = 0")
            w.emit("for _k in range(8, -1, -1):")
            if op == OP_XOR:
                w.emit("_s = _x[_k] + _y[_k]", 2)
                w.emit("if _s == 2:", 2)
                w.emit("_s = -1", 3)
                w.emit("elif _s == -2:", 2)
                w.emit("_s = 1", 3)
                w.emit("_v = _v * 3 + _s", 2)
            else:
                pick = "<" if op == OP_AND else ">"
                w.emit("_xa = _x[_k]", 2)
                w.emit("_yb = _y[_k]", 2)
                w.emit(f"_v = _v * 3 + (_xa if _xa {pick} _yb else _yb)", 2)
            w.emit(f"{A} = _v")
            written.add(ta)
        elif op == OP_PTI:
            w.emit(f"{A} = PTIT[{B} % {MOD}]")
            written.add(ta)
        elif op == OP_NTI:
            w.emit(f"{A} = NTIT[{B} % {MOD}]")
            written.add(ta)
        elif op == OP_STI:
            w.emit(f"{A} = -{B}")
            written.add(ta)
        elif op == OP_ANDI:
            const_trits = _fast._TRITS[imm % MOD]
            w.emit(f"_x = T[{A} % {MOD}]")
            w.emit(f"_y = {const_trits!r}")
            w.emit("_v = 0")
            w.emit("for _k in range(8, -1, -1):")
            w.emit("_xa = _x[_k]", 2)
            w.emit("_yb = _y[_k]", 2)
            w.emit("_v = _v * 3 + (_xa if _xa < _yb else _yb)", 2)
            w.emit(f"{A} = _v")
            written.add(ta)
        # OP_HALT emits nothing: the driver reads the halt flag from the
        # block metadata and the fall-through return below yields pc + 1.

        # Chain-interior control transfers: a JAL's jump is folded into
        # the span itself (only its timing/link effects remain), and a
        # conditional needs its cold-direction bail-out.
        if k < n - 1:
            if op == OP_JAL:
                if timing:
                    s_jump += 1
            elif op in (OP_BEQ, OP_BNE):
                emit_bail(k)

    # -- terminal accounting and carried-window epilogue --------------------
    if timing:
        if last.op in (OP_BEQ, OP_BNE):
            w.emit("if _tk:")
            w.emit("st[2] += 1", 2)
            w.emit("else:")
            w.emit("st[3] += 1", 2)
        elif last.op in (OP_JAL, OP_JALR):
            s_jump += 1
        for slot, value in ((0, s_stall), (1, s_flush), (2, s_taken),
                            (3, s_nt), (4, s_jump), (5, s_ex),
                            (6, s_mem), (7, s_id)):
            if value:
                w.emit(f"st[{slot}] += {value}")
        # p2 dest before p1 dest: for single-instruction blocks the new p2
        # is the carried p1, captured in _e8 at entry.
        w.emit(f"st[13] = {recs[-2].dest}" if n >= 2 else "st[13] = _e8")
        w.emit(f"st[8] = {last.dest}")
        w.emit(f"st[9] = {1 if last.load else 0}")
        w.emit(f"st[10] = {1 if last.alu else 0}")
        # Pend the redirect gap for the next block's first instruction.
        # Folded JALs and correctly-predicted conditionals cost nothing;
        # JALR is indirect and always redirects.
        if last.op == OP_JALR or (last.op == OP_JAL and not machine.folds_jal):
            w.emit(f"st[11] = {redirect}")
        elif last.op in (OP_BEQ, OP_BNE) and redirect:
            predicted_taken = machine.predicts_taken(
                "BEQ" if last.op == OP_BEQ else "BNE", last.imm)
            if predicted_taken:
                w.emit(f"st[11] = 0 if _tk else {redirect}")
            else:
                w.emit(f"st[11] = {redirect} if _tk else 0")
        else:
            w.emit("st[11] = 0")
        w.emit(f"st[12] = {gaps[-1]}" if n >= 2 else "st[12] = _g0")

    for reg in sorted(written):
        w.emit(f"regs[{reg}] = r{reg}")
    if variable:
        # Full-path commit count for the driver (bail-outs wrote their
        # own prefix length above).
        w.emit(f"st[{dyn_cell}] = {n}")

    last_pc = span[-1]
    if last.op in (OP_BEQ, OP_BNE):
        w.emit(f"return {last_pc + last.imm} if _tk else {last_pc + 1}")
    elif last.op == OP_JAL:
        w.emit(f"return {last_pc + last.imm}")
    elif last.op == OP_JALR:
        w.emit("return _nx")
    else:  # HALT or fall-through into the next leader
        w.emit(f"return {last_pc + 1}")
    return w.source()


class CompiledEngine:
    """Superblock-compiled interpreter for ART-9 programs.

    Construction mirrors :class:`FastEngine` (program + TDM depth) and
    performs the same operand validation.  ``cache`` accepts an
    :class:`~repro.cache.ArtifactCache` (or ``None`` to disable); by
    default the process-wide cache of :func:`repro.cache.default_cache`
    is used, so concurrently running sweep workers generate each
    program's block sources exactly once between them.

    ``chain=True`` (the default) enables static superblock chaining;
    ``chain=False`` reproduces the unchained per-block partition.
    ``pgo=True`` adds the two-pass profile-guided mode: a profiling run
    picks hot blocks, which are recompiled as extended traces chained
    across their observed dominant successors and overlaid onto the
    dispatch table (cold directions bail out to the table).
    ``record_edges=True`` makes the driver count block-to-block dispatch
    edges — the successor profile the PGO planner consumes.
    """

    def __init__(self, program: Program, tdm_depth: int = MOD,
                 cache: object = "default",
                 machine: Optional[MachineConfig] = None,
                 profile: bool = False,
                 chain: bool = True,
                 pgo: bool = False,
                 pgo_budget: int = PGO_PROFILE_BUDGET,
                 record_edges: bool = False):
        _fast._build_tables()
        self.program = program
        self.tdm_depth = tdm_depth
        self.machine = resolve_machine(machine)
        self.profile = profile
        self.chain = bool(chain)
        self.pgo = bool(pgo)
        self._pgo_budget = pgo_budget
        self._record_edges = bool(record_edges)
        self._profile_counts: Dict[int, int] = {}
        self._records = FastEngine._predecode(program)
        self._mem: Dict[int, int] = {}
        for segment in program.data:
            for offset, value in enumerate(segment.values):
                address = segment.base_address + offset
                if not 0 <= address < tdm_depth:
                    raise MemoryError_(
                        f"TDM: address {address} out of range 0..{tdm_depth - 1}"
                    )
                self._mem[address] = wrap(value)
        self._regs = [0] * NUM_REGISTERS
        self.pc = 0
        self.halted = False
        self.instructions_executed = 0
        self._leaders = superblock_leaders(self._records)
        self._namespace = {
            "__builtins__": {"range": range},
            "MemoryError_": MemoryError_,
            "T": _fast._TRITS,
            "PTIT": _fast._PTI_WORD,
            "NTIT": _fast._NTI_WORD,
            "P3": _POW3,
            "_P": self._profile_counts,
        }
        # timing-mode → entry pc → (fn, length, halts, entry idx, variable)
        self._tables: Dict[bool, Dict[int, tuple]] = {False: {}, True: {}}
        # timing-mode → the shared (codes, sources) bundle backing the table
        self._bundles: Dict[bool, tuple] = {}
        self._entries: List[Tuple[int, Tuple[str, ...]]] = []
        self._counts: List[int] = []
        self._entry_index: Dict[object, int] = {}
        self._fault_partial: Optional[Tuple[int, int]] = None
        self._digest: Optional[str] = None
        # Static chain plan: leader → constituent block entries.  Built
        # eagerly for the static partition; suffix entries (computed JALR
        # targets) join lazily via _span_of.
        self._preds = (_static_pred_counts(self._records, self._leaders)
                       if self.chain else None)
        self._chain_plan: Dict[int, List[int]] = {}
        if self.chain and self._records:
            for entry in sorted(self._leaders):
                self._chain_plan[entry] = build_chain(
                    self._records, self._leaders, self._preds, entry)
            inlined = sum(len(c) - 1 for c in self._chain_plan.values())
            if inlined:
                metrics.counter("compiled.chain.blocks_inlined").inc(inlined)
        self._span_cache: Dict[int, List[int]] = {}
        # timing-mode → head pc → fixed base record shadowed by a PGO
        # trace (budget-straddle fallback for variable-length traces).
        self._fallbacks: Dict[bool, Dict[int, tuple]] = {False: {}, True: {}}
        # entry idx → committed prefix length → bail-out count.
        self._trace_bails: Dict[int, Dict[int, int]] = {}
        # profile key → (display pc, installed span length, entry idx).
        self._profile_meta: Dict[int, tuple] = {}
        # (predecessor entry, successor entry) → dispatch count.
        self._edge_counts: Dict[tuple, int] = {}
        self._pgo_plan: Optional[Dict[int, List[int]]] = None
        self._pgo_installed: Dict[int, List[int]] = {}
        if cache == "default":
            from repro.cache import default_cache
            cache = default_cache()
        self._cache = cache

    # -- codegen ------------------------------------------------------------

    def content_digest(self) -> str:
        if self._digest is None:
            self._digest = self.program.content_digest()
        return self._digest

    def _cache_key_material(self, timing: bool) -> dict:
        return {
            "program_digest": self.content_digest(),
            "codegen_version": CODEGEN_VERSION,
            "python": PYTHON_TAG,
            "timing": timing,
            "tdm_depth": self.tdm_depth,
            # Keyed in both timing modes so artifacts never cross machine
            # configs (a config change is a cache miss, never a wrong-
            # timing hit).
            "machine": self.machine.digest(),
            # Profiled code carries the counter prologue, and chained
            # code a different partition, so the variants can never
            # share artifacts.
            "profile": self.profile,
            "chain": self.chain,
        }

    def _span_of(self, entry: int) -> List[int]:
        """Installed trace span for ``entry`` (chained when enabled)."""
        span = self._span_cache.get(entry)
        if span is not None:
            return span
        if self.chain:
            plan = self._chain_plan.get(entry)
            if plan is None:
                plan = build_chain(self._records, self._leaders,
                                   self._preds, entry)
                self._chain_plan[entry] = plan
            if len(plan) > 1:
                span = chain_span(self._records, self._leaders, plan)
            else:
                span = superblock_span(self._records, self._leaders, entry)
        else:
            span = superblock_span(self._records, self._leaders, entry)
        self._span_cache[entry] = span
        return span

    def _publish(self, codes: Dict[int, object],
                 sources: Dict[int, str], timing: bool) -> None:
        """Write the current block bundle to the cross-process cache."""
        if self._cache is not None:
            self._cache.put_json("codegen", self._cache_key_material(timing), {
                "code": base64.b64encode(marshal.dumps(codes)).decode("ascii"),
                "blocks": {str(entry): source
                           for entry, source in sources.items()},
            })

    def _block_bundle(self, timing: bool) -> tuple:
        """``(codes, sources)`` for every known superblock of this program.

        Resolution order: in-process memo, then the cross-process artifact
        cache (marshalled code objects, orders of magnitude cheaper to
        load than re-running ``compile``), then generation from scratch —
        which populates both layers for the next consumer.

        The memo keys on the pre-decoded records themselves (codegen is a
        pure function of them plus the TDM depth), so a memo hit never
        pays for a program content digest; the digest is only computed
        when the disk cache has to be consulted.
        """
        memo_key = (tuple(self._records), CODEGEN_VERSION, timing,
                    self.tdm_depth, self.machine.digest(), self.profile,
                    self.chain)
        bundle = _CODE_MEMO.get(memo_key)
        if bundle is not None:
            _CODE_MEMO.move_to_end(memo_key)
            metrics.counter("compiled.blocks_memo").inc(len(bundle[0]))
            return bundle
        cache = self._cache
        if cache is not None:
            hit = cache.get_json("codegen", self._cache_key_material(timing))
            if hit is not None:
                try:
                    loaded = marshal.loads(base64.b64decode(hit["code"]))
                    bundle = (
                        {int(entry): code for entry, code in loaded.items()},
                        {int(entry): source
                         for entry, source in hit.get("blocks", {}).items()},
                    )
                except (KeyError, TypeError, ValueError, EOFError):
                    bundle = None  # treat a malformed artifact as a miss
                else:
                    metrics.counter("compiled.blocks_loaded").inc(
                        len(bundle[0]))
        if bundle is None:
            sources = {
                entry: generate_block_source(
                    entry, self._span_of(entry),
                    self._records, timing, self.tdm_depth, self.machine,
                    self.profile)
                for entry in sorted(self._leaders)
            }
            codes = {
                entry: compile(source, f"<art9 block {entry}>", "exec")
                for entry, source in sources.items()
            }
            bundle = (codes, sources)
            metrics.counter("compiled.blocks_compiled").inc(len(codes))
            self._publish(codes, sources, timing)
        _CODE_MEMO[memo_key] = bundle
        while len(_CODE_MEMO) > _CODE_MEMO_CAP:
            _CODE_MEMO.popitem(last=False)
        return bundle

    def _install_block(self, entry: int, code, timing: bool) -> tuple:
        if self.profile:
            self._profile_counts.setdefault(entry, 0)
        exec(code, self._namespace)
        name = f"_blk_{entry}_t" if timing else f"_blk_{entry}"
        span = self._span_of(entry)
        idx = self._entry_index.get(entry)
        if idx is None:
            idx = len(self._entries)
            self._entry_index[entry] = idx
            self._entries.append((entry, tuple(
                _MNEMONIC_OF[self._records[pc][0]] for pc in span)))
            self._counts.append(0)
            plan = self._chain_plan.get(entry)
            if plan is not None and len(plan) > 1:
                metrics.histogram("compiled.chain.trace_instructions",
                                  bounds=_TRACE_LEN_BOUNDS).observe(len(span))
        if self.profile:
            self._profile_meta[entry] = (entry, len(span), idx)
        variable = any(self._records[pc][0] in (OP_BEQ, OP_BNE)
                       for pc in span[:-1])
        record = (self._namespace[name], len(span),
                  self._records[span[-1]][0] == OP_HALT, idx, variable)
        self._tables[timing][entry] = record
        return record

    def _build_table(self, timing: bool) -> None:
        bundle = self._block_bundle(timing)
        self._bundles[timing] = bundle
        for entry, code in bundle[0].items():
            self._install_block(entry, code, timing)
        if self.pgo:
            self._install_pgo_overlay(timing)

    def _compile_suffix(self, entry: int, timing: bool) -> tuple:
        """Lazily compile a block entered mid-way (e.g. a JALR return).

        The result joins the shared bundle — and is re-published to the
        artifact cache — so every later engine on this program (in this
        process or any other) installs it up front instead of re-paying
        ``compile`` per instance.  Before republishing, the current cache
        entry is re-read and merged in: concurrent workers discovering
        *different* suffixes would otherwise overwrite each other's
        last-write-wins (content per block is still deterministic, so a
        merge conflict cannot change behaviour — only who pays compile()).
        """
        bundle = self._bundles.get(timing)
        if bundle is not None and entry in bundle[0]:
            return self._install_block(entry, bundle[0][entry], timing)
        source = generate_block_source(
            entry, self._span_of(entry),
            self._records, timing, self.tdm_depth, self.machine, self.profile)
        code = compile(source, f"<art9 block {entry}>", "exec")
        metrics.counter("compiled.suffix_compiles").inc()
        if bundle is not None:
            codes, sources = bundle
            codes[entry] = code
            sources[entry] = source
            if self._cache is not None:
                current = self._cache.get_json(
                    "codegen", self._cache_key_material(timing))
                if current is not None:
                    try:
                        loaded = marshal.loads(base64.b64decode(current["code"]))
                        for other, other_code in loaded.items():
                            codes.setdefault(int(other), other_code)
                        for other, other_source in current.get("blocks", {}).items():
                            sources.setdefault(int(other), other_source)
                    except (KeyError, TypeError, ValueError, EOFError):
                        pass  # unreadable entry: our fresh bundle replaces it
            self._publish(codes, sources, timing)
        return self._install_block(entry, code, timing)

    # -- profile-guided traces ----------------------------------------------

    def _plan_key_material(self) -> dict:
        """Cache key of the chain plan (architectural — machine-free)."""
        return {
            "program_digest": self.content_digest(),
            "plan_version": CHAIN_PLAN_VERSION,
            "tdm_depth": self.tdm_depth,
            "hot_share": PGO_HOT_SHARE,
            "dominant_share": PGO_DOMINANT_SHARE,
            "profile_budget": self._pgo_budget,
            "max_blocks": CHAIN_MAX_BLOCKS,
            "max_instructions": CHAIN_MAX_INSTRUCTIONS,
        }

    def _parse_plan(self, payload) -> Optional[Dict[int, List[int]]]:
        """Validate a cached chain plan; ``None`` rejects the artifact."""
        try:
            raw = payload["traces"]
            plan: Dict[int, List[int]] = {}
            for head_str, chain in raw.items():
                head = int(head_str)
                chain = [int(block) for block in chain]
                if (head not in self._leaders or len(chain) < 2
                        or chain[0] != head
                        or any(block not in self._leaders
                               for block in chain)):
                    continue
                chain_span(self._records, self._leaders, chain)  # seams
                plan[head] = chain
            return plan
        except (KeyError, TypeError, ValueError, AttributeError):
            return None

    def _profile_plan(self) -> Dict[int, List[int]]:
        """First pass of the two-pass mode: profile, then plan."""
        probe = CompiledEngine(
            self.program, self.tdm_depth, cache=self._cache,
            machine=self.machine, profile=True, chain=False,
            record_edges=True)
        try:
            probe.run(max_instructions=self._pgo_budget)
        except (SimulationError, MemoryError_):
            # A program that cannot complete a profiling pass (budget,
            # PC escape, memory fault) simply gets no hot traces.
            return {}
        return probe.pgo_plan_from_profile()

    def _ensure_pgo_plan(self) -> Dict[int, List[int]]:
        """Chain plan for this program: memo → artifact cache → profile."""
        if self._pgo_plan is not None:
            return self._pgo_plan
        memo_key = (self.content_digest(), CHAIN_PLAN_VERSION,
                    self.tdm_depth, self._pgo_budget)
        plan = _PLAN_MEMO.get(memo_key)
        if plan is not None:
            _PLAN_MEMO.move_to_end(memo_key)
        else:
            material = self._plan_key_material()
            if self._cache is not None:
                hit = self._cache.get_json("chainplan", material)
                if hit is not None:
                    plan = self._parse_plan(hit)
            if plan is None:
                plan = self._profile_plan()
                if self._cache is not None:
                    self._cache.put_json("chainplan", material, {
                        "traces": {str(head): list(chain)
                                   for head, chain in sorted(plan.items())},
                    })
            _PLAN_MEMO[memo_key] = plan
            while len(_PLAN_MEMO) > _PLAN_MEMO_CAP:
                _PLAN_MEMO.popitem(last=False)
        self._pgo_plan = plan
        return plan

    def pgo_plan_from_profile(self) -> Dict[int, List[int]]:
        """Chain plan a PGO engine would derive from *this* engine's run.

        Requires ``profile=True, chain=False`` (block-granularity counts
        and edges).  Exposed so ``art9 profile --pgo-plan`` can dump the
        plan without running the second pass.
        """
        if not self.profile or self.chain:
            raise SimulationError(
                "pgo_plan_from_profile() requires a "
                "CompiledEngine(profile=True, chain=False)")
        counts = {key: value for key, value in self._profile_counts.items()
                  if isinstance(key, int) and key >= 0}
        return pgo_chain_plan(self._records, self._leaders, counts,
                              self._edge_counts)

    def _install_pgo_overlay(self, timing: bool) -> None:
        """Overlay hot-path trace functions onto the dispatch table."""
        plan = self._ensure_pgo_plan()
        traces: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        for head in sorted(plan):
            chain = plan[head]
            if head not in self._leaders or len(chain) < 2:
                continue
            if self.chain and list(chain) == list(self._chain_plan.get(head, ())):
                continue  # static chaining already produced this trace
            try:
                span = chain_span(self._records, self._leaders, chain)
            except ValueError:
                continue
            traces[head] = (tuple(chain), tuple(span))
        self._pgo_installed = {head: list(chain)
                               for head, (chain, _span) in traces.items()}
        if not traces:
            return
        digest = chain_plan_digest(
            {head: list(chain) for head, (chain, _span) in traces.items()})
        memo_key = (tuple(self._records), CODEGEN_VERSION, timing,
                    self.tdm_depth, self.machine.digest(), self.profile,
                    "pgo", digest)
        bundle = _CODE_MEMO.get(memo_key)
        if bundle is not None:
            _CODE_MEMO.move_to_end(memo_key)
            metrics.counter("compiled.blocks_memo").inc(len(bundle[0]))
        else:
            material = self._cache_key_material(timing)
            material["variant"] = "pgo-traces"
            material["plan"] = digest
            if self._cache is not None:
                hit = self._cache.get_json("codegen", material)
                if hit is not None:
                    try:
                        loaded = marshal.loads(base64.b64decode(hit["code"]))
                        bundle = (
                            {int(head): code
                             for head, code in loaded.items()},
                            {int(head): source for head, source
                             in hit.get("blocks", {}).items()},
                        )
                    except (KeyError, TypeError, ValueError, EOFError):
                        bundle = None
                    else:
                        metrics.counter("compiled.blocks_loaded").inc(
                            len(bundle[0]))
            if bundle is None:
                sources = {
                    head: generate_block_source(
                        head, traces[head][1], self._records, timing,
                        self.tdm_depth, self.machine, self.profile,
                        name=f"_pgo_{head}", profile_key=-(head + 1))
                    for head in sorted(traces)
                }
                codes = {
                    head: compile(source, f"<art9 pgo trace {head}>", "exec")
                    for head, source in sources.items()
                }
                bundle = (codes, sources)
                metrics.counter("compiled.blocks_compiled").inc(len(codes))
                if self._cache is not None:
                    self._cache.put_json("codegen", material, {
                        "code": base64.b64encode(
                            marshal.dumps(codes)).decode("ascii"),
                        "blocks": {str(head): source
                                   for head, source in sources.items()},
                    })
            _CODE_MEMO[memo_key] = bundle
            while len(_CODE_MEMO) > _CODE_MEMO_CAP:
                _CODE_MEMO.popitem(last=False)
        for head, code in bundle[0].items():
            if head in traces:
                self._install_trace(head, code, list(traces[head][1]), timing)

    def _install_trace(self, head: int, code, span: List[int],
                       timing: bool) -> tuple:
        """Install one PGO trace over the base record at ``head``."""
        key = -(head + 1)
        if self.profile:
            self._profile_counts.setdefault(key, 0)
        exec(code, self._namespace)
        name = f"_pgo_{head}_t" if timing else f"_pgo_{head}"
        idx = self._entry_index.get(("pgo", head))
        if idx is None:
            idx = len(self._entries)
            self._entry_index[("pgo", head)] = idx
            self._entries.append((head, tuple(
                _MNEMONIC_OF[self._records[pc][0]] for pc in span)))
            self._counts.append(0)
            metrics.counter("compiled.pgo.traces").inc()
            metrics.histogram("compiled.chain.trace_instructions",
                              bounds=_TRACE_LEN_BOUNDS).observe(len(span))
        if self.profile:
            self._profile_meta[key] = (head, len(span), idx)
        variable = any(self._records[pc][0] in (OP_BEQ, OP_BNE)
                       for pc in span[:-1])
        record = (self._namespace[name], len(span),
                  self._records[span[-1]][0] == OP_HALT, idx, variable)
        table = self._tables[timing]
        base = table.get(head)
        if base is not None:
            self._fallbacks[timing].setdefault(head, base)
        table[head] = record
        return record

    # -- execution ----------------------------------------------------------

    def prepare(self, timing: bool = True) -> None:
        """Build the block dispatch table now instead of on first execution.

        Purely a scheduling choice — ``_execute`` builds lazily anyway —
        but it lets callers (the sweep worker's phase breakdown) attribute
        codegen/bundle-load time (and, for ``pgo=True``, the profiling
        pass) separately from execution time.
        """
        if not self._tables[timing] and self._records:
            self._build_table(timing)

    def run(self, max_instructions: int = 10_000_000) -> ExecutionResult:
        """Run until HALT; same contract and limits as the fast engine."""
        self._execute(max_instructions, None)
        return ExecutionResult(
            instructions_executed=self.instructions_executed,
            halted=self.halted,
            registers=self.registers_snapshot(),
            pc=self.pc,
            instruction_mix=self.instruction_mix(),
            memory=dict(self._mem),
        )

    def run_with_stats(self, max_cycles: int = 50_000_000) -> PipelineStats:
        """Execute and return pipeline statistics identical to the 5-stage model."""
        if not self.program.instructions:
            raise SimulationError("cannot simulate an empty program")
        if self.instructions_executed or self.halted:
            raise SimulationError(
                "engine state already consumed; build a fresh CompiledEngine "
                "for timing statistics"
            )
        stats = PipelineStats()
        self._execute(max_cycles, stats)
        if stats.cycles > max_cycles:
            raise SimulationError(
                f"program did not halt within {max_cycles} cycles"
            )
        return stats

    def _execute(self, max_instructions: int,
                 stats: Optional[PipelineStats]) -> None:
        timing = stats is not None
        table = self._tables[timing]
        if not table and self._records:
            self._build_table(timing)
        if timing:
            st = [0] * _TS_LEN
            st[8] = st[13] = -1
            st[14] = 1
        else:
            st = [0] * _ST_LEN
        dyn = _DYN_T if timing else _DYN_U
        table_get = table.get
        fallbacks = self._fallbacks[timing]
        record_edges = self._record_edges
        edges = self._edge_counts
        trace_bails = self._trace_bails
        regs = self._regs
        mem = self._mem
        counts = self._counts
        program_length = len(self._records)
        pc = self.pc
        executed = self.instructions_executed
        halted = self.halted
        prev_entry = -1
        bail_counter = None

        while not halted:
            if executed >= max_instructions:
                self.pc, self.instructions_executed = pc, executed
                raise SimulationError(
                    f"program did not halt within {max_instructions} instructions"
                )
            if not 0 <= pc < program_length:
                self.pc, self.instructions_executed = pc, executed
                raise SimulationError(
                    f"PC {pc} outside program of {program_length} instructions"
                )
            entry = table_get(pc)
            if entry is None:
                entry = self._compile_suffix(pc, timing)
                counts = self._counts
            fn, length, halts, idx, variable = entry
            if executed + length > max_instructions:
                # A fixed trace commits all of its instructions, so the
                # fast engine would raise too (identical message).  A
                # variable trace might bail early and stay inside the
                # budget: re-dispatch through its fixed base block so the
                # check stays exact.
                fallback = fallbacks.get(pc) if variable else None
                if (fallback is None
                        or executed + fallback[1] > max_instructions):
                    self.pc, self.instructions_executed = pc, executed
                    raise SimulationError(
                        f"program did not halt within {max_instructions} "
                        "instructions"
                    )
                fn, length, halts, idx, variable = fallback
            if record_edges:
                edge = (prev_entry, pc)
                edges[edge] = edges.get(edge, 0) + 1
                prev_entry = pc
            counts[idx] += 1
            try:
                pc = fn(regs, mem, st)
            except MemoryError_:
                base = _FAULT_PC if timing else 0
                self.pc = st[base]
                self.instructions_executed = executed + st[base + 1]
                self._fault_partial = (idx, st[base + 1])
                self.halted = False
                raise
            if variable:
                committed = st[dyn]
                if committed != length:
                    bails = trace_bails.setdefault(idx, {})
                    bails[committed] = bails.get(committed, 0) + 1
                    if bail_counter is None:
                        bail_counter = metrics.counter("compiled.pgo.bailouts")
                    bail_counter.inc()
                    executed += committed
                    continue
            executed += length
            if halts:
                halted = True

        self.pc = pc
        self.instructions_executed = executed
        self.halted = halted

        if timing:
            stats.instructions_committed = executed
            stats.cycles = executed + self.machine.fill_cycles + st[0] + st[1]
            stats.load_use_stalls = st[0]
            stats.control_flush_bubbles = st[1]
            stats.taken_branches = st[2]
            stats.not_taken_branches = st[3]
            stats.jumps = st[4]
            stats.ex_forwards = st[5]
            stats.mem_forwards = st[6]
            stats.id_forwards = st[7]
            stats.instruction_mix = self.instruction_mix()

    # -- inspection helpers -------------------------------------------------

    @property
    def tdm(self) -> _MemoryView:
        """Workload-checker-compatible view of the ternary data memory."""
        return _MemoryView(self._mem, self.tdm_depth)

    def registers_snapshot(self) -> Dict[str, int]:
        """Name → integer value of the architectural registers."""
        return {register_name(i): value for i, value in enumerate(self._regs)}

    def register_snapshot(self) -> Dict[str, int]:
        """Alias matching the pipeline simulator's accessor name."""
        return self.registers_snapshot()

    def instruction_mix(self) -> Dict[str, int]:
        """Mnemonic → dynamic execution count (bail- and fault-aware)."""
        mix: Dict[str, int] = {}
        for idx, count in enumerate(self._counts):
            if count:
                for mnemonic in self._entries[idx][1]:
                    mix[mnemonic] = mix.get(mnemonic, 0) + count
        for idx, bails in self._trace_bails.items():
            mnemonics = self._entries[idx][1]
            for committed, times in bails.items():
                for mnemonic in mnemonics[committed:]:
                    mix[mnemonic] -= times
                    if not mix[mnemonic]:
                        del mix[mnemonic]
        if self._fault_partial is not None:
            idx, offset = self._fault_partial
            for mnemonic in self._entries[idx][1][offset:]:
                mix[mnemonic] -= 1
                if not mix[mnemonic]:
                    del mix[mnemonic]
        return mix

    def memory_values(self, base: int, count: int) -> List[int]:
        """Read ``count`` consecutive TDM words starting at ``base``."""
        return self.tdm.dump(base, count)

    def block_map(self) -> Dict[int, int]:
        """Entry address → block length of the static (pre-chaining)
        superblock partition."""
        return {
            entry: len(superblock_span(self._records, self._leaders, entry))
            for entry in sorted(self._leaders)
        }

    def chain_map(self) -> Dict[int, List[int]]:
        """Leader → constituent block entries of multi-block static chains."""
        return {entry: list(chain)
                for entry, chain in sorted(self._chain_plan.items())
                if len(chain) > 1}

    def pgo_trace_map(self) -> Dict[int, List[int]]:
        """Hot head → block chain of every installed PGO trace."""
        return {head: list(chain)
                for head, chain in sorted(self._pgo_installed.items())}

    def block_profile(self) -> List[dict]:
        """Execution profile rows from the generated-code ``_P`` counters.

        Requires ``profile=True``; each row carries the trace's display
        PC (its entry), how many times the generated function ran, its
        installed length, and the dynamic instructions it accounts for.
        The instruction totals sum to ``instructions_executed``: a
        mid-trace memory fault charges the faulting trace only its
        committed prefix, and every cold-path bail-out of a PGO trace
        subtracts the un-committed suffix — both matching the driver's
        accounting, which is what lets ``art9 profile`` cross-check the
        table against the engine.
        """
        if not self.profile:
            raise SimulationError(
                "block_profile() requires a CompiledEngine(profile=True)")
        fault_idx = fault_offset = None
        if self._fault_partial is not None:
            fault_idx, fault_offset = self._fault_partial
        rows = []
        for key, executions in self._profile_counts.items():
            if not executions:
                # Compiled but never dispatched standalone — e.g. a block
                # that only ever ran inlined as a chain interior.  The
                # counter bumps at trace entry, so zero here means zero
                # instructions to account for.
                continue
            pc, length, idx = self._profile_meta[key]
            instructions = executions * length
            for committed, times in self._trace_bails.get(idx, {}).items():
                instructions -= (length - committed) * times
            if idx == fault_idx:
                instructions -= length - fault_offset
            rows.append({
                "pc": pc,
                "executions": executions,
                "length": length,
                "instructions": instructions,
            })
        rows.sort(key=lambda row: (row["pc"], row["length"]))
        return rows


def compile_and_run(program: Program,
                    max_instructions: int = 10_000_000) -> ExecutionResult:
    """One-call convenience: run ``program`` on the compiled engine."""
    return CompiledEngine(program).run(max_instructions=max_instructions)
