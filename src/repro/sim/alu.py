"""The ternary arithmetic logic unit (TALU) of the EX stage.

The TALU performs every R-type and I-type data operation of Table I.  It is
deliberately a standalone component with a single ``execute`` entry point so
that (a) the functional and pipeline simulators share identical semantics
and (b) the gate-level analyzer can attribute hardware resources to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ternary.arithmetic import (
    add_words,
    compare_words,
    shift_amount_from_word,
    shift_left,
    shift_right,
    sub_words,
)
from repro.ternary.logic import (
    word_and,
    word_nti,
    word_or,
    word_pti,
    word_sti,
    word_xor,
)
from repro.ternary.word import WORD_TRITS, TernaryWord


@dataclass
class ALUResult:
    """Outcome of one TALU operation."""

    value: TernaryWord
    operation: str


class TernaryALU:
    """Executes the arithmetic/logic portion of the ART-9 ISA.

    The ``execute`` method takes the mnemonic and the two (already forwarded)
    operand words.  For I-type instructions the immediate operand is passed
    in ``imm`` and the ``operand_b`` argument is ignored.
    """

    #: Mnemonics handled by the TALU (everything that produces its result in EX).
    OPERATIONS = (
        "MV", "PTI", "NTI", "STI", "AND", "OR", "XOR", "ADD", "SUB", "SR", "SL",
        "COMP", "ANDI", "ADDI", "SRI", "SLI", "LUI", "LI",
    )

    def __init__(self):
        self.operation_counts = {op: 0 for op in self.OPERATIONS}

    def execute(
        self,
        mnemonic: str,
        operand_a: TernaryWord,
        operand_b: Optional[TernaryWord] = None,
        imm: Optional[int] = None,
    ) -> ALUResult:
        """Compute one operation and return its :class:`ALUResult`."""
        mnemonic = mnemonic.upper()
        if mnemonic not in self.operation_counts:
            raise ValueError(f"TALU does not implement {mnemonic!r}")
        self.operation_counts[mnemonic] += 1

        if mnemonic == "MV":
            result = operand_b
        elif mnemonic == "PTI":
            result = word_pti(operand_b)
        elif mnemonic == "NTI":
            result = word_nti(operand_b)
        elif mnemonic == "STI":
            result = word_sti(operand_b)
        elif mnemonic == "AND":
            result = word_and(operand_a, operand_b)
        elif mnemonic == "OR":
            result = word_or(operand_a, operand_b)
        elif mnemonic == "XOR":
            result = word_xor(operand_a, operand_b)
        elif mnemonic == "ADD":
            result = add_words(operand_a, operand_b)
        elif mnemonic == "SUB":
            result = sub_words(operand_a, operand_b)
        elif mnemonic == "SR":
            result = shift_right(operand_a, shift_amount_from_word(operand_b))
        elif mnemonic == "SL":
            result = shift_left(operand_a, shift_amount_from_word(operand_b))
        elif mnemonic == "COMP":
            result = TernaryWord(compare_words(operand_a, operand_b), WORD_TRITS)
        elif mnemonic == "ANDI":
            result = word_and(operand_a, TernaryWord(imm, WORD_TRITS))
        elif mnemonic == "ADDI":
            result = add_words(operand_a, TernaryWord(imm, WORD_TRITS))
        elif mnemonic == "SRI":
            result = shift_right(operand_a, self._imm_shift_amount(imm))
        elif mnemonic == "SLI":
            result = shift_left(operand_a, self._imm_shift_amount(imm))
        elif mnemonic == "LUI":
            result = shift_left(TernaryWord(imm, WORD_TRITS), 5)
        elif mnemonic == "LI":
            low = TernaryWord(imm, 5)
            result = operand_a.replace_low(low)
        else:  # pragma: no cover - guarded by the membership test above
            raise AssertionError(mnemonic)
        return ALUResult(value=result, operation=mnemonic)

    @staticmethod
    def _imm_shift_amount(imm: int) -> int:
        """Decode the 2-trit immediate shift amount of SRI/SLI (mod 9)."""
        return imm % 9

    def effective_address(self, base: TernaryWord, offset: int) -> int:
        """Address computation of the M-type instructions (shared adder)."""
        return (base.value + offset) % (3 ** base.width)

    def reset_statistics(self) -> None:
        """Zero the per-operation usage counters."""
        for key in self.operation_counts:
            self.operation_counts[key] = 0
