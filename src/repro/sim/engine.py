"""Fast-path execution engine for ART-9 programs.

The object-model simulators (:class:`~repro.sim.functional.FunctionalSimulator`
and the cycle-accurate pipeline) execute every instruction through per-trit
``TernaryWord``/``Trit`` churn: each ADD allocates a tuple of nine trits, each
register read returns an immutable word object, and so on.  That is the right
representation for gate-level attribution, but it is far too slow for large
workload sweeps.

:class:`FastEngine` is the speed-oriented counterpart.  It pre-decodes each
:class:`~repro.isa.program.Program` once into flat dispatch records (small-int
opcode tag, register indices, plain-int immediate) and then executes on Python
integers, with balanced-ternary wraparound done arithmetically instead of
digit-by-digit.  Per-trit operations (the AND/OR/XOR gates and the PTI/NTI
inverters) use precomputed word tables over the 3**9 = 19 683 value universe,
so no ``TernaryWord`` is allocated anywhere on the hot path.

Two entry points are exposed:

``run()``
    Architectural execution behind the exact :class:`ExecutionResult`
    contract of the functional simulator (bit-identical registers, memory,
    PC, halt flag and instruction mix).

``run_with_stats()``
    Architectural execution plus an analytic timing model of the 5-stage
    pipeline.  The ART-9 pipeline has only two stall sources — load-use
    hazards (one bubble) and taken control transfers (one flushed fetch) —
    so its cycle count and every :class:`PipelineStats` counter are a pure
    function of the dynamic instruction stream.  The model reproduces the
    pipeline simulator's statistics bit-identically (this is asserted by the
    differential tests in ``repro.testing``) at a fraction of the cost,
    which is what lets :class:`~repro.framework.hwflow.HardwareFramework`
    opt into the fast path for benchmarking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.encoder import EncodeError
from repro.isa.formats import imm_range
from repro.isa.program import Program
from repro.isa.registers import NUM_REGISTERS, register_name
from repro.sim.functional import ExecutionResult, SimulationError
from repro.sim.machine import MachineConfig, resolve_machine
from repro.sim.memory import MemoryError_
from repro.sim.pipeline.stats import PipelineStats
from repro.ternary.word import WORD_TRITS

#: Modulus and half-range of the 9-trit balanced datapath.
MOD = 3 ** WORD_TRITS
HALF = (MOD - 1) // 2

# Small-int opcode tags of the dispatch records, roughly ordered by dynamic
# frequency in the translated workloads (the interpreter's if/elif chain
# tests them in this order).
OP_ADDI = 0
OP_ADD = 1
OP_LOAD = 2
OP_STORE = 3
OP_BEQ = 4
OP_BNE = 5
OP_LI = 6
OP_MV = 7
OP_SUB = 8
OP_JAL = 9
OP_JALR = 10
OP_LUI = 11
OP_COMP = 12
OP_SLI = 13
OP_SRI = 14
OP_SL = 15
OP_SR = 16
OP_AND = 17
OP_OR = 18
OP_XOR = 19
OP_PTI = 20
OP_NTI = 21
OP_STI = 22
OP_ANDI = 23
OP_HALT = 24

_OPCODES = {
    "ADDI": OP_ADDI, "ADD": OP_ADD, "LOAD": OP_LOAD, "STORE": OP_STORE,
    "BEQ": OP_BEQ, "BNE": OP_BNE, "LI": OP_LI, "MV": OP_MV, "SUB": OP_SUB,
    "JAL": OP_JAL, "JALR": OP_JALR, "LUI": OP_LUI, "COMP": OP_COMP,
    "SLI": OP_SLI, "SRI": OP_SRI, "SL": OP_SL, "SR": OP_SR, "AND": OP_AND,
    "OR": OP_OR, "XOR": OP_XOR, "PTI": OP_PTI, "NTI": OP_NTI, "STI": OP_STI,
    "ANDI": OP_ANDI, "HALT": OP_HALT,
}

_MNEMONIC_OF = {code: name for name, code in _OPCODES.items()}

#: Opcodes whose EX-stage product can be forwarded (R/I-type results and the
#: JAL/JALR link value; loads produce their value one stage later).
_ALU_WRITERS = frozenset(
    code for name, code in _OPCODES.items()
    if name not in ("LOAD", "STORE", "BEQ", "BNE", "HALT")
)

_POW3 = tuple(3 ** k for k in range(WORD_TRITS))

# Lazily built value tables, shared by every engine instance:
#   _TRITS[u]     little-endian 9-trit tuple of the word with unsigned index u
#   _PTI_WORD[u]  balanced value of the trit-wise PTI of that word
#   _NTI_WORD[u]  balanced value of the trit-wise NTI of that word
_TRITS: Optional[List[tuple]] = None
_PTI_WORD: Optional[List[int]] = None
_NTI_WORD: Optional[List[int]] = None


def wrap(value: int) -> int:
    """Wrap ``value`` into the balanced range of a 9-trit word.

    Arithmetic equivalent of dropping the carry out of the most significant
    trit of a fixed-width balanced adder.
    """
    return (value + HALF) % MOD - HALF


def _build_tables() -> None:
    global _TRITS, _PTI_WORD, _NTI_WORD
    if _TRITS is not None:
        return
    trits_table: List[tuple] = [()] * MOD
    pti_table = [0] * MOD
    nti_table = [0] * MOD
    for unsigned in range(MOD):
        value = unsigned if unsigned <= HALF else unsigned - MOD
        remaining = value
        trits = []
        for _ in range(WORD_TRITS):
            digit = remaining % 3
            if digit == 2:
                digit = -1
            remaining = (remaining - digit) // 3
            trits.append(digit)
        trits_table[unsigned] = tuple(trits)
        pti = nti = 0
        for k in range(WORD_TRITS - 1, -1, -1):
            t = trits[k]
            pti = pti * 3 + (-1 if t == 1 else 1)
            nti = nti * 3 + (1 if t == -1 else -1)
        pti_table[unsigned] = pti
        nti_table[unsigned] = nti
    _TRITS = trits_table
    _PTI_WORD = pti_table
    _NTI_WORD = nti_table


class _MemoryView:
    """Read-only ``TernaryMemory``-shaped facade over the engine's int cells.

    Provides the ``read_int``/``dump`` surface that the workload result
    checkers and inspection helpers expect, so a :class:`FastEngine` can be
    dropped in wherever a finished simulator is examined.
    """

    def __init__(self, cells: Dict[int, int], depth: int):
        self._cells = cells
        self.depth = depth

    def read_int(self, address: int) -> int:
        if not 0 <= address < self.depth:
            raise MemoryError_(
                f"TDM: address {address} out of range 0..{self.depth - 1}"
            )
        return self._cells.get(address, 0)

    def dump(self, base: int, count: int) -> List[int]:
        return [self.read_int(base + offset) for offset in range(count)]

    def contents(self) -> Dict[int, int]:
        """Touched cells as an address → balanced-value mapping."""
        return dict(self._cells)


class FastEngine:
    """Pre-decoded integer interpreter for ART-9 programs.

    Parameters mirror :class:`FunctionalSimulator`: a program and the TDM
    depth.  The engine validates operands at pre-decode time (raising
    :class:`EncodeError` like the encoding path would) so malformed programs
    fail fast rather than corrupting the integer state.
    """

    def __init__(self, program: Program, tdm_depth: int = MOD,
                 machine: Optional[MachineConfig] = None):
        _build_tables()
        self.program = program
        self.tdm_depth = tdm_depth
        self.machine = resolve_machine(machine)
        self._records = self._predecode(program)
        self._mem: Dict[int, int] = {}
        for segment in program.data:
            for offset, value in enumerate(segment.values):
                address = segment.base_address + offset
                if not 0 <= address < tdm_depth:
                    raise MemoryError_(
                        f"TDM: address {address} out of range 0..{tdm_depth - 1}"
                    )
                self._mem[address] = wrap(value)
        self._regs = [0] * NUM_REGISTERS
        self.pc = 0
        self.halted = False
        self.instructions_executed = 0
        self._exec_counts = [0] * len(self._records)

    # -- pre-decoding -------------------------------------------------------

    @staticmethod
    def _predecode(program: Program) -> List[Tuple[int, int, int, int, int]]:
        records = []
        for address, instruction in enumerate(program.instructions):
            spec = instruction.spec
            try:
                op = _OPCODES[instruction.mnemonic]
            except KeyError:
                raise SimulationError(
                    f"unimplemented mnemonic {instruction.mnemonic!r} at address {address}"
                ) from None
            ta = instruction.ta if instruction.ta is not None else 0
            tb = instruction.tb if instruction.tb is not None else 0
            imm = instruction.imm if instruction.imm is not None else 0
            bt = instruction.branch_trit if instruction.branch_trit is not None else 0
            if "ta" in spec.operands and instruction.ta is None:
                raise EncodeError(f"{instruction.mnemonic} requires a Ta operand")
            if "tb" in spec.operands and instruction.tb is None:
                raise EncodeError(f"{instruction.mnemonic} requires a Tb operand")
            if not 0 <= ta < NUM_REGISTERS or not 0 <= tb < NUM_REGISTERS:
                raise EncodeError(f"register index out of range in {instruction.render()}")
            if spec.uses_imm:
                if instruction.imm is None:
                    raise EncodeError(
                        f"{instruction.mnemonic} at address {address} has an "
                        "unresolved immediate (label not resolved?)"
                    )
                lo, hi = imm_range(instruction.mnemonic)
                if not lo <= imm <= hi:
                    raise EncodeError(
                        f"immediate {imm} does not fit {instruction.mnemonic}"
                    )
            if "branch_trit" in spec.operands and bt not in (-1, 0, 1):
                raise EncodeError(f"branch trit must be balanced, got {bt}")
            records.append((op, ta, tb, imm, bt))
        return records

    # -- architectural execution --------------------------------------------

    def run(self, max_instructions: int = 10_000_000) -> ExecutionResult:
        """Run until HALT; same contract and limits as the functional model."""
        self._execute(max_instructions, timing=None)
        return self._result()

    def _result(self) -> ExecutionResult:
        return ExecutionResult(
            instructions_executed=self.instructions_executed,
            halted=self.halted,
            registers=self.registers_snapshot(),
            pc=self.pc,
            instruction_mix=self.instruction_mix(),
            memory=dict(self._mem),
        )

    def _execute(self, max_instructions, timing: Optional[PipelineStats]) -> None:
        # Hot loop: every mutable piece of state is bound to a local.
        records = self._records
        program_length = len(records)
        regs = self._regs
        mem = self._mem
        counts = self._exec_counts
        depth = self.tdm_depth
        check_depth = depth != MOD
        trits_table = _TRITS
        pti_table = _PTI_WORD
        nti_table = _NTI_WORD
        pc = self.pc
        executed = self.instructions_executed
        halted = self.halted
        reads_table = _READS

        # Analytic pipeline timing (only when ``timing`` is a stats object):
        # a rolling two-instruction window over the committed stream is all
        # the pipe's stall/forwarding behaviour depends on, so the model is
        # O(1) in memory and single-pass.  p1_* describe I_{k-1}, p2_dest
        # describes I_{k-2}; gap_prev is the bubble count between them.  The
        # machine config contributes only constants: the pipe fill, the
        # per-redirect penalty, which transfers redirect under the branch
        # policy, and whether adjacent load consumers stall or bypass.
        model_timing = timing is not None
        machine = self.machine
        fill = machine.fill_cycles
        redirect_penalty = machine.redirect_penalty
        load_penalty = machine.load_use_penalty
        btfn = machine.branch_policy == "static-btfn"
        jal_redirects = not machine.folds_jal
        stalls = flushes = 0
        taken_branches = not_taken = jumps = 0
        ex_forwards = mem_forwards = id_forwards = 0
        p1_dest = p2_dest = -1
        p1_load = p1_alu = False
        p1_redirect_gap = 0
        gap_prev = 0
        first_commit = True

        while not halted:
            if executed >= max_instructions:
                self.pc, self.instructions_executed = pc, executed
                raise SimulationError(
                    f"program did not halt within {max_instructions} instructions"
                )
            if not 0 <= pc < program_length:
                self.pc, self.instructions_executed = pc, executed
                raise SimulationError(
                    f"PC {pc} outside program of {program_length} instructions"
                )
            op, ta, tb, imm, bt = records[pc]
            counts[pc] += 1
            executed += 1
            next_pc = pc + 1
            branch_was_taken = False

            if model_timing:
                reads_ta, reads_tb, id_reads = reads_table[op]
                gap = 0
                if first_commit:
                    first_commit = False
                elif p1_redirect_gap:
                    gap = p1_redirect_gap
                    flushes += p1_redirect_gap
                elif p1_load and p1_dest >= 0 and (
                    (reads_ta and ta == p1_dest) or (reads_tb and tb == p1_dest)
                ):
                    # EX-path consumers bypass the fresh MEM output when the
                    # config waives the penalty; ID-path consumers (branch
                    # condition / JALR base) read a stage earlier and always
                    # stall one bubble.
                    if load_penalty or (id_reads and tb == p1_dest):
                        gap = 1
                        stalls += 1

                # Occupant of the MEM/WB slot two stages ahead (the same
                # instruction feeds the EX-stage MEM/WB mux and the ID-stage
                # memory-output path): I_{k-1} when one bubble separates
                # them, I_{k-2} when both gaps are empty, nobody when the
                # gap is a multi-bubble redirect shadow.
                if gap == 1:
                    wb_dest = p1_dest
                elif gap == 0 and gap_prev == 0:
                    wb_dest = p2_dest
                else:
                    wb_dest = -1

                # EX-stage forwarding events (one per matched operand read).
                # The middle branch is the zero-penalty load bypass: a fresh
                # MEM output feeding EX in the same cycle (unreachable when
                # the config charges a load-use bubble).
                if reads_ta:
                    if gap == 0 and p1_alu and p1_dest == ta:
                        ex_forwards += 1
                    elif gap == 0 and p1_load and p1_dest == ta:
                        mem_forwards += 1
                    elif wb_dest >= 0 and wb_dest == ta:
                        mem_forwards += 1
                if reads_tb:
                    if gap == 0 and p1_alu and p1_dest == tb:
                        ex_forwards += 1
                    elif gap == 0 and p1_load and p1_dest == tb:
                        mem_forwards += 1
                    elif wb_dest >= 0 and wb_dest == tb:
                        mem_forwards += 1

                # ID-stage forwarding (branch condition / JALR base path).
                if id_reads:
                    if gap == 0 and p1_alu and p1_dest == tb:
                        id_forwards += 1
                    elif wb_dest >= 0 and wb_dest == tb:
                        id_forwards += 1
                gap_prev = gap

            if op == OP_ADDI:
                v = regs[ta] + imm
                if v > HALF:
                    v -= MOD
                elif v < -HALF:
                    v += MOD
                regs[ta] = v
            elif op == OP_ADD:
                v = regs[ta] + regs[tb]
                if v > HALF:
                    v -= MOD
                elif v < -HALF:
                    v += MOD
                regs[ta] = v
            elif op == OP_LOAD:
                address = (regs[tb] + imm) % MOD
                if check_depth and address >= depth:
                    # The faulting access aborts before the instruction counts,
                    # mirroring the functional simulator's TernaryMemory check.
                    counts[pc] -= 1
                    self.pc, self.instructions_executed = pc, executed - 1
                    raise MemoryError_(
                        f"TDM: address {address} out of range 0..{depth - 1}"
                    )
                regs[ta] = mem.get(address, 0)
            elif op == OP_STORE:
                address = (regs[tb] + imm) % MOD
                if check_depth and address >= depth:
                    counts[pc] -= 1
                    self.pc, self.instructions_executed = pc, executed - 1
                    raise MemoryError_(
                        f"TDM: address {address} out of range 0..{depth - 1}"
                    )
                mem[address] = regs[ta]
            elif op == OP_BEQ or op == OP_BNE:
                lst = (regs[tb] + 1) % 3 - 1
                branch_was_taken = (lst == bt) if op == OP_BEQ else (lst != bt)
                if branch_was_taken:
                    next_pc = pc + imm
            elif op == OP_LI:
                v = regs[ta]
                regs[ta] = imm + v - ((v + 121) % 243 - 121)
            elif op == OP_MV:
                regs[ta] = regs[tb]
            elif op == OP_SUB:
                v = regs[ta] - regs[tb]
                if v > HALF:
                    v -= MOD
                elif v < -HALF:
                    v += MOD
                regs[ta] = v
            elif op == OP_JAL:
                regs[ta] = wrap(pc + 1)
                next_pc = pc + imm
            elif op == OP_JALR:
                base = regs[tb]
                regs[ta] = wrap(pc + 1)
                next_pc = (base + imm) % MOD
            elif op == OP_LUI:
                regs[ta] = wrap(imm * 243)
            elif op == OP_COMP:
                a = regs[ta]
                b = regs[tb]
                regs[ta] = (a > b) - (a < b)
            elif op == OP_SLI:
                regs[ta] = wrap(regs[ta] * _POW3[imm % 9])
            elif op == OP_SRI:
                amount = imm % 9
                p = _POW3[amount]
                h = (p - 1) // 2
                v = regs[ta]
                regs[ta] = (v - ((v + h) % p - h)) // p
            elif op == OP_SL:
                regs[ta] = wrap(regs[ta] * _POW3[regs[tb] % 9])
            elif op == OP_SR:
                p = _POW3[regs[tb] % 9]
                h = (p - 1) // 2
                v = regs[ta]
                regs[ta] = (v - ((v + h) % p - h)) // p
            elif op == OP_AND or op == OP_OR or op == OP_XOR:
                trits_a = trits_table[regs[ta] % MOD]
                trits_b = trits_table[regs[tb] % MOD]
                v = 0
                if op == OP_AND:
                    for k in range(WORD_TRITS - 1, -1, -1):
                        x = trits_a[k]
                        y = trits_b[k]
                        v = v * 3 + (x if x < y else y)
                elif op == OP_OR:
                    for k in range(WORD_TRITS - 1, -1, -1):
                        x = trits_a[k]
                        y = trits_b[k]
                        v = v * 3 + (x if x > y else y)
                else:
                    for k in range(WORD_TRITS - 1, -1, -1):
                        s = trits_a[k] + trits_b[k]
                        if s == 2:
                            s = -1
                        elif s == -2:
                            s = 1
                        v = v * 3 + s
                regs[ta] = v
            elif op == OP_PTI:
                regs[ta] = pti_table[regs[tb] % MOD]
            elif op == OP_NTI:
                regs[ta] = nti_table[regs[tb] % MOD]
            elif op == OP_STI:
                regs[ta] = -regs[tb]
            elif op == OP_ANDI:
                trits_a = trits_table[regs[ta] % MOD]
                trits_b = trits_table[imm % MOD]
                v = 0
                for k in range(WORD_TRITS - 1, -1, -1):
                    x = trits_a[k]
                    y = trits_b[k]
                    v = v * 3 + (x if x < y else y)
                regs[ta] = v
            else:  # OP_HALT
                halted = True

            if model_timing:
                if op == OP_BEQ or op == OP_BNE:
                    if branch_was_taken:
                        taken_branches += 1
                    else:
                        not_taken += 1
                    if btfn:
                        # Static BTFN predicts backward branches taken.
                        mispredicted = branch_was_taken != (imm <= 0)
                    else:
                        mispredicted = branch_was_taken
                    p1_redirect_gap = redirect_penalty if mispredicted else 0
                elif op == OP_JAL or op == OP_JALR:
                    jumps += 1
                    if op == OP_JALR or jal_redirects:
                        p1_redirect_gap = redirect_penalty
                    else:
                        p1_redirect_gap = 0
                else:
                    p1_redirect_gap = 0
                p2_dest = p1_dest
                if op in _WRITERS:
                    p1_dest = ta
                    p1_alu = op != OP_LOAD
                else:
                    p1_dest = -1
                    p1_alu = False
                p1_load = op == OP_LOAD

            pc = next_pc

        self.pc = pc
        self.instructions_executed = executed
        self.halted = halted

        if model_timing:
            timing.instructions_committed = executed
            timing.cycles = executed + fill + stalls + flushes
            timing.load_use_stalls = stalls
            timing.control_flush_bubbles = flushes
            timing.taken_branches = taken_branches
            timing.not_taken_branches = not_taken
            timing.jumps = jumps
            timing.ex_forwards = ex_forwards
            timing.mem_forwards = mem_forwards
            timing.id_forwards = id_forwards
            timing.instruction_mix = self.instruction_mix()

    # -- analytic pipeline timing -------------------------------------------

    def run_with_stats(self, max_cycles: int = 50_000_000) -> PipelineStats:
        """Execute and return pipeline statistics identical to the pipeline model.

        The ART-9 pipeline commits exactly one instruction per cycle except
        for the two hardware stall sources (Sec. IV-B): a load-use stall and
        a flush shadow behind every front-end redirect, plus the machine
        config's constant pipe fill.  Under the default ``paper3stage``
        config these are one bubble per adjacent load consumer, one bubble
        per taken control transfer and a four-cycle fill — the paper's
        numbers.  Both stall sources and all forwarding events are
        determined by adjacency in the dynamic instruction stream, so the
        model runs single-pass inside the execution loop with a
        constant-size rolling window for any :class:`MachineConfig`.
        """
        if not self.program.instructions:
            raise SimulationError("cannot simulate an empty program")
        if self.instructions_executed or self.halted:
            raise SimulationError(
                "engine state already consumed; build a fresh FastEngine for "
                "timing statistics"
            )
        stats = PipelineStats()
        self._execute(max_cycles, stats)
        if stats.cycles > max_cycles:
            raise SimulationError(
                f"program did not halt within {max_cycles} cycles"
            )
        return stats

    # -- inspection helpers -------------------------------------------------

    @property
    def tdm(self) -> _MemoryView:
        """Workload-checker-compatible view of the ternary data memory."""
        return _MemoryView(self._mem, self.tdm_depth)

    def registers_snapshot(self) -> Dict[str, int]:
        """Name → integer value of the architectural registers."""
        return {register_name(i): value for i, value in enumerate(self._regs)}

    def register_snapshot(self) -> Dict[str, int]:
        """Alias matching the pipeline simulator's accessor name."""
        return self.registers_snapshot()

    def instruction_mix(self) -> Dict[str, int]:
        """Mnemonic → dynamic execution count."""
        mix: Dict[str, int] = {}
        records = self._records
        for index, count in enumerate(self._exec_counts):
            if count:
                mnemonic = _MNEMONIC_OF[records[index][0]]
                mix[mnemonic] = mix.get(mnemonic, 0) + count
        return mix

    def memory_values(self, base: int, count: int) -> List[int]:
        """Read ``count`` consecutive TDM words starting at ``base``."""
        return self.tdm.dump(base, count)


#: Opcodes that write their Ta register (used by the timing model).
_WRITERS = frozenset(
    code for name, code in _OPCODES.items()
    if name not in ("STORE", "BEQ", "BNE", "HALT")
)

#: Per-opcode operand-read profile: (reads_ta, reads_tb, id_reads_tb).
#: ``id_reads_tb`` marks the control instructions whose Tb value is consumed
#: by the ID-stage branch unit (BEQ/BNE condition trit, JALR base address).
def _build_reads() -> Dict[int, Tuple[bool, bool, bool]]:
    from repro.isa.instructions import INSTRUCTION_SPECS

    reads = {}
    for name, code in _OPCODES.items():
        spec = INSTRUCTION_SPECS[name]
        reads[code] = (spec.reads_ta, spec.reads_tb, spec.is_control and spec.reads_tb)
    return reads


_READS = _build_reads()


def execute_program(program: Program, max_instructions: int = 10_000_000) -> ExecutionResult:
    """One-call convenience: run ``program`` on the fast engine."""
    return FastEngine(program).run(max_instructions=max_instructions)
