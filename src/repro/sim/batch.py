"""Batched vectorized execution engine: many program instances, one process.

Sweeps and fuzz corpora execute thousands of *small, independent* jobs whose
instruction streams are identical and whose inputs differ only in the data
segment (seed-style workload parameters only regenerate ``.data`` words; the
translated code is byte-for-byte the same).  Running those one at a time
leaves most of the interpreter cost — dispatch, bookkeeping, the Python
bytecode loop itself — unamortised.

:class:`BatchEngine` executes B instances ("lanes") of one instruction
stream concurrently.  Architectural state is held in numpy arrays over the
batch dimension:

* registers as a ``(NUM_REGISTERS, B)`` int64 array, so one vectorized op
  retires the same instruction for every lane at once (balanced-ternary
  wraparound is three in-place array ops; the trit-wise gate ops go through
  precomputed ``(3**9, 9)`` trit-plane tables);
* data memory as a dense ``(B, depth)`` int16 plane plus a ``touched`` mask
  that reproduces the sparse engines' touched-cell ``memory`` dict exactly.

Control flow diverges per lane (data-dependent branches, JALR targets,
per-lane HALT and errors), so lanes are organised into **path groups**: sets
of lanes that have followed the same control path and therefore sit at the
same PC.  The scheduler always steps the group with the lowest PC, which
drives diverged groups back toward their join point, where they are merged
again.  A divergent branch splits a group in two; a divergent JALR splits by
target; HALT and per-lane errors (instruction budget, PC escape, TDM range
faults) retire lanes out of their group.

The cycle-accurate timing model rides on a key invariant of the analytic
model in :mod:`repro.sim.engine`: every :class:`PipelineStats` quantity is a
pure function of the *committed instruction stream* (opcodes, register
indices and branch outcomes) — never of data values.  Lanes in the same
path group therefore share one scalar rolling-window state (the same
``p1_*``/``p2_dest`` window the fast engine keeps), and per-lane counters
advance by group-wide scalar increments.  Groups merge only when both PC
and window state coincide, so a merged group remains exact.  The result is
bit-identical ``ExecutionResult`` *and* ``PipelineStats`` per lane — the
5-way differential suite pins every lane against
FastEngine/CompiledEngine/FunctionalSimulator/PipelineSimulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.sim.engine as _engine
from repro.isa.program import Program
from repro.isa.registers import NUM_REGISTERS, register_name
from repro.obs import metrics
from repro.sim.engine import (
    HALF,
    MOD,
    OP_ADD,
    OP_ADDI,
    OP_AND,
    OP_ANDI,
    OP_BEQ,
    OP_BNE,
    OP_COMP,
    OP_HALT,
    OP_JAL,
    OP_JALR,
    OP_LI,
    OP_LOAD,
    OP_LUI,
    OP_MV,
    OP_NTI,
    OP_OR,
    OP_PTI,
    OP_SL,
    OP_SLI,
    OP_SR,
    OP_SRI,
    OP_STI,
    OP_STORE,
    OP_SUB,
    OP_XOR,
    FastEngine,
    _MNEMONIC_OF,
    _POW3,
    _READS,
    _WRITERS,
    wrap,
)
from repro.sim.functional import ExecutionResult, SimulationError
from repro.sim.machine import MachineConfig, resolve_machine
from repro.sim.memory import MemoryError_
from repro.sim.pipeline.stats import PipelineStats


class BatchError(SimulationError):
    """Raised when a set of programs cannot share one batch."""


# Lazily built numpy value tables shared by every engine instance:
#   trit planes of all 3**9 words, the PTI/NTI word tables, and 3**k.
_NP_TABLES: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None


def _np_tables() -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    global _NP_TABLES
    if _NP_TABLES is None:
        _engine._build_tables()
        _NP_TABLES = (
            np.array(_engine._TRITS, dtype=np.int8),
            np.array(_engine._PTI_WORD, dtype=np.int64),
            np.array(_engine._NTI_WORD, dtype=np.int64),
            np.array(_POW3, dtype=np.int64),
        )
    return _NP_TABLES


def batchable_programs(programs: Sequence[Program]) -> bool:
    """True when every program shares lane 0's predecoded instruction stream.

    Data segments (and names) may differ freely — that is exactly the
    degree of freedom the batch dimension vectorizes over.  Malformed
    programs (predecode errors) are reported as not batchable so callers
    can fall back to the serial path, where the error surfaces normally.
    """
    if not programs:
        return False
    try:
        base = FastEngine._predecode(programs[0])
        return all(FastEngine._predecode(program) == base
                   for program in programs[1:])
    except Exception:
        return False


@dataclass
class LaneOutcome:
    """Per-lane result of one batched execution.

    Exactly one of ``result``/``error`` is set.  ``error`` carries the
    byte-identical message the fast engine would have raised for the same
    program, and ``error_kind`` its exception class name (``SimulationError``
    or ``MemoryError_``), so differential harnesses and sweep workers can
    reproduce the serial error contract without re-running the lane.
    """

    lane: int
    result: Optional[ExecutionResult] = None
    stats: Optional[PipelineStats] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class _Group:
    """One set of lanes sharing a control path (and thus a PC).

    The timing fields mirror the fast engine's rolling two-instruction
    window; they are scalars because the window is a function of the
    committed stream, which is common to every lane in the group.
    ``max_exec`` conservatively upper-bounds the lanes' executed counts so
    the per-step budget check stays a plain int comparison until the budget
    is actually near.
    """

    __slots__ = ("pc", "lanes", "first_commit", "gap_prev", "p1_dest",
                 "p1_load", "p1_alu", "p1_redirect_gap", "p2_dest", "max_exec")

    def __init__(self, pc: int, lanes: np.ndarray):
        self.pc = pc
        self.lanes = lanes
        self.first_commit = True
        self.gap_prev = 0
        self.p1_dest = -1
        self.p1_load = False
        self.p1_alu = False
        self.p1_redirect_gap = 0
        self.p2_dest = -1
        self.max_exec = 0

    def split(self, lanes: np.ndarray) -> "_Group":
        """A new group with identical window state over a lane subset."""
        twin = _Group.__new__(_Group)
        twin.pc = self.pc
        twin.lanes = lanes
        twin.first_commit = self.first_commit
        twin.gap_prev = self.gap_prev
        twin.p1_dest = self.p1_dest
        twin.p1_load = self.p1_load
        twin.p1_alu = self.p1_alu
        twin.p1_redirect_gap = self.p1_redirect_gap
        twin.p2_dest = self.p2_dest
        twin.max_exec = self.max_exec
        return twin

    def window_key(self) -> tuple:
        return (self.first_commit, self.gap_prev, self.p1_dest, self.p1_load,
                self.p1_alu, self.p1_redirect_gap, self.p2_dest)


class BatchEngine:
    """Vectorized multi-lane interpreter for one shared instruction stream.

    ``programs`` supplies one :class:`Program` per lane; all of them must
    predecode to the same dispatch records (:class:`BatchError` otherwise).
    Like :class:`FastEngine`, an instance is single-use: build a fresh
    engine per batched execution.
    """

    def __init__(self, programs: Sequence[Program], tdm_depth: int = MOD,
                 machine: Optional[MachineConfig] = None):
        if not programs:
            raise BatchError("BatchEngine needs at least one program")
        self.programs: List[Program] = list(programs)
        self.tdm_depth = tdm_depth
        self.machine = resolve_machine(machine)
        base = self.programs[0]
        self._records = FastEngine._predecode(base)
        for index, program in enumerate(self.programs[1:], start=1):
            # Equal instruction lists predecode identically; the comparison
            # is much cheaper than re-predecoding every lane of a large
            # batch (data variants even share the list object).
            if (program.instructions is base.instructions
                    or program.instructions == base.instructions):
                continue
            if FastEngine._predecode(program) != self._records:
                raise BatchError(
                    f"lane {index} ({program.name!r}) does not share lane 0's "
                    f"({base.name!r}) instruction stream"
                )
        _np_tables()

        batch = len(self.programs)
        self._batch = batch
        self._regs = np.zeros((NUM_REGISTERS, batch), dtype=np.int64)
        # int16 keeps the dense memory plane small (values are balanced
        # 9-trit words, |v| <= 9841); ``touched`` reproduces the sparse
        # engines' touched-cell semantics.
        self._mem = np.zeros((batch, tdm_depth), dtype=np.int16)
        self._touched = np.zeros((batch, tdm_depth), dtype=bool)
        self._counts = np.zeros((len(self._records), batch), dtype=np.int64)
        self._executed = np.zeros(batch, dtype=np.int64)
        self._final_pc = np.zeros(batch, dtype=np.int64)
        self._halted = np.zeros(batch, dtype=bool)
        self._errors: List[Optional[str]] = [None] * batch
        self._error_kinds: List[Optional[str]] = [None] * batch
        self._rows = np.arange(batch)
        self._consumed = False
        # Timing counter arrays, allocated on the run_with_stats path.
        self._t_stalls = self._t_flushes = None
        self._t_taken = self._t_not_taken = self._t_jumps = None
        self._t_exf = self._t_memf = self._t_idf = None

        for lane, program in enumerate(self.programs):
            for segment in program.data:
                values = segment.values
                if not values:
                    continue
                base = segment.base_address
                if not 0 <= base < tdm_depth or base + len(values) > tdm_depth:
                    # First offending address, in the same offset order the
                    # scalar engines initialise (and fail) in.
                    first_bad = base if (base < 0 or base >= tdm_depth) else tdm_depth
                    raise MemoryError_(
                        f"TDM: address {first_bad} out of range 0..{tdm_depth - 1}"
                    )
                cells = (np.asarray(values, dtype=np.int64) + HALF) % MOD - HALF
                self._mem[lane, base:base + len(values)] = cells
                self._touched[lane, base:base + len(values)] = True

    # -- entry points -------------------------------------------------------

    def run(self, max_instructions: int = 10_000_000) -> List[LaneOutcome]:
        """Architectural execution of every lane; per-lane ``LaneOutcome``."""
        self._consume()
        self._execute(max_instructions, timing=False)
        return self._outcomes(stats_limit=None)

    def run_with_stats(self, max_cycles: int = 50_000_000,
                       include_results: bool = True) -> List[LaneOutcome]:
        """Execution plus per-lane pipeline statistics (fast-engine parity).

        Mirrors :meth:`FastEngine.run_with_stats`: ``max_cycles`` bounds the
        committed-instruction count during execution, and lanes whose final
        cycle count still exceeds it come back with the same
        "did not halt within N cycles" error the fast engine raises.
        Outcomes carry both the ``ExecutionResult`` and the stats;
        ``include_results=False`` skips the per-lane result assembly (the
        registers/touched-memory dicts) for stats-only callers such as the
        throughput benchmark.
        """
        if not self.programs[0].instructions:
            raise SimulationError("cannot simulate an empty program")
        self._consume()
        self._execute(max_cycles, timing=True)
        return self._outcomes(stats_limit=max_cycles,
                              include_results=include_results)

    def _consume(self) -> None:
        if self._consumed:
            raise SimulationError(
                "engine state already consumed; build a fresh BatchEngine"
            )
        self._consumed = True

    # -- the vectorized interpreter -----------------------------------------

    def _execute(self, max_instructions: int, timing: bool) -> None:
        records = self._records
        program_length = len(records)
        regs = self._regs
        mem = self._mem
        touched = self._touched
        counts = self._counts
        final_pc = self._final_pc
        halted = self._halted
        errors = self._errors
        error_kinds = self._error_kinds
        rows = self._rows
        batch = self._batch
        depth = self.tdm_depth
        check_depth = depth != MOD
        trits_np, pti_np, nti_np, pow3_np = _np_tables()
        scratch = np.empty(batch, dtype=np.int64)
        bool_scratch = np.empty(batch, dtype=bool)

        machine = self.machine
        redirect_penalty = machine.redirect_penalty
        load_penalty = machine.load_use_penalty
        btfn = machine.branch_policy == "static-btfn"
        jal_redirects = not machine.folds_jal
        reads_table = _READS

        if timing:
            stalls = self._t_stalls = np.zeros(batch, dtype=np.int64)
            flushes = self._t_flushes = np.zeros(batch, dtype=np.int64)
            taken_arr = self._t_taken = np.zeros(batch, dtype=np.int64)
            not_taken_arr = self._t_not_taken = np.zeros(batch, dtype=np.int64)
            jumps_arr = self._t_jumps = np.zeros(batch, dtype=np.int64)
            exf = self._t_exf = np.zeros(batch, dtype=np.int64)
            memf = self._t_memf = np.zeros(batch, dtype=np.int64)
            idf = self._t_idf = np.zeros(batch, dtype=np.int64)

        def post_update(grp: _Group, op: int, ta: int, taken: bool,
                        imm: int) -> None:
            # The fast engine's end-of-commit window update, verbatim.
            if op == OP_BEQ or op == OP_BNE:
                if btfn:
                    mispredicted = taken != (imm <= 0)
                else:
                    mispredicted = taken
                grp.p1_redirect_gap = redirect_penalty if mispredicted else 0
            elif op == OP_JAL or op == OP_JALR:
                if op == OP_JALR or jal_redirects:
                    grp.p1_redirect_gap = redirect_penalty
                else:
                    grp.p1_redirect_gap = 0
            else:
                grp.p1_redirect_gap = 0
            grp.p2_dest = grp.p1_dest
            if op in _WRITERS:
                grp.p1_dest = ta
                grp.p1_alu = op != OP_LOAD
            else:
                grp.p1_dest = -1
                grp.p1_alu = False
            grp.p1_load = op == OP_LOAD

        groups: List[_Group] = [_Group(0, rows.copy())]

        # Group-dynamics telemetry accumulates in local ints (the hot loop
        # must not pay for metric lookups) and flushes once at the end.
        n_splits = n_merges = n_full = 0
        max_groups = 1

        while groups:
            if len(groups) == 1:
                group = groups[0]
            else:
                group = min(groups, key=lambda grp: grp.pc)
            pc = group.pc
            lanes = group.lanes
            full = lanes.shape[0] == batch
            if full:
                n_full += 1
            sel = slice(None) if full else lanes

            # Instruction budget: cheap scalar bound first (per-lane counts
            # are only materialised from the mix matrix once the bound
            # actually reaches the budget, which keeps the common path free
            # of per-step counter reads).
            if group.max_exec >= max_instructions:
                lane_exec = counts[:, lanes].sum(axis=0)
                over = lane_exec >= max_instructions
                if over.any():
                    bad = lanes[over]
                    final_pc[bad] = pc
                    message = (f"program did not halt within "
                               f"{max_instructions} instructions")
                    for lane in bad.tolist():
                        errors[lane] = message
                        error_kinds[lane] = "SimulationError"
                    lanes = lanes[~over]
                    if lanes.shape[0] == 0:
                        groups.remove(group)
                        continue
                    group.lanes = lanes
                    full = False
                    sel = lanes
                    lane_exec = lane_exec[~over]
                group.max_exec = int(lane_exec.max())

            if pc < 0 or pc >= program_length:
                final_pc[lanes] = pc
                message = f"PC {pc} outside program of {program_length} instructions"
                for lane in lanes.tolist():
                    errors[lane] = message
                    error_kinds[lane] = "SimulationError"
                groups.remove(group)
                continue

            op, ta, tb, imm, bt = records[pc]

            if timing:
                # Scalar pre-commit pass: gaps, stalls, flushes and the
                # forwarding events depend only on the window and the
                # operand indices, never on lane data, so one computation
                # covers the whole group (counters advance by scatter-add).
                reads_ta, reads_tb, id_reads = reads_table[op]
                gap = 0
                if group.first_commit:
                    group.first_commit = False
                elif group.p1_redirect_gap:
                    gap = group.p1_redirect_gap
                    flushes[sel] += gap
                elif group.p1_load and group.p1_dest >= 0 and (
                    (reads_ta and ta == group.p1_dest)
                    or (reads_tb and tb == group.p1_dest)
                ):
                    if load_penalty or (id_reads and tb == group.p1_dest):
                        gap = 1
                        stalls[sel] += 1

                if gap == 1:
                    wb_dest = group.p1_dest
                elif gap == 0 and group.gap_prev == 0:
                    wb_dest = group.p2_dest
                else:
                    wb_dest = -1

                ex_events = mem_events = id_events = 0
                if reads_ta:
                    if gap == 0 and group.p1_alu and group.p1_dest == ta:
                        ex_events += 1
                    elif gap == 0 and group.p1_load and group.p1_dest == ta:
                        mem_events += 1
                    elif wb_dest >= 0 and wb_dest == ta:
                        mem_events += 1
                if reads_tb:
                    if gap == 0 and group.p1_alu and group.p1_dest == tb:
                        ex_events += 1
                    elif gap == 0 and group.p1_load and group.p1_dest == tb:
                        mem_events += 1
                    elif wb_dest >= 0 and wb_dest == tb:
                        mem_events += 1
                if id_reads:
                    if gap == 0 and group.p1_alu and group.p1_dest == tb:
                        id_events += 1
                    elif wb_dest >= 0 and wb_dest == tb:
                        id_events += 1
                if ex_events:
                    exf[sel] += ex_events
                if mem_events:
                    memf[sel] += mem_events
                if id_events:
                    idf[sel] += id_events
                group.gap_prev = gap

            # -- lane-parallel semantics (FastEngine per-opcode code, lifted
            # to arrays; wrap() becomes in-place add/mod/sub).  Full-batch
            # groups — the lockstep common case — run in place on the
            # register rows; partial groups gather/scatter by lane index.
            taken_mask = None
            jalr_targets = None
            halt_now = False
            if op == OP_ADDI:
                if full:
                    row = regs[ta]
                    row += imm + HALF
                    row %= MOD
                    row -= HALF
                else:
                    value = regs[ta][lanes] + (imm + HALF)
                    value %= MOD
                    value -= HALF
                    regs[ta][lanes] = value
            elif op == OP_ADD:
                if full:
                    row = regs[ta]
                    row += regs[tb]
                    row += HALF
                    row %= MOD
                    row -= HALF
                else:
                    value = regs[ta][lanes] + regs[tb][lanes]
                    value += HALF
                    value %= MOD
                    value -= HALF
                    regs[ta][lanes] = value
            elif op == OP_LOAD or op == OP_STORE:
                if full:
                    np.add(regs[tb], imm, out=scratch)
                    scratch %= MOD
                    address = scratch
                else:
                    address = (regs[tb][lanes] + imm) % MOD
                if check_depth:
                    faulted = address >= depth
                    if faulted.any():
                        bad = lanes[faulted]
                        final_pc[bad] = pc
                        for lane, cell in zip(bad.tolist(),
                                              address[faulted].tolist()):
                            errors[lane] = (f"TDM: address {cell} out of "
                                            f"range 0..{depth - 1}")
                            error_kinds[lane] = "MemoryError_"
                        lanes = lanes[~faulted]
                        if lanes.shape[0] == 0:
                            groups.remove(group)
                            continue
                        group.lanes = lanes
                        full = False
                        sel = lanes
                        address = address[~faulted]
                lane_rows = rows if full else lanes
                if op == OP_LOAD:
                    regs[ta][sel] = mem[lane_rows, address]
                else:
                    mem[lane_rows, address] = regs[ta][sel]
                    touched[lane_rows, address] = True
            elif op == OP_BEQ or op == OP_BNE:
                # lst == bt  <=>  (v+1) % 3 == bt+1 (values are congruent
                # mod 3 across the balanced range).
                if full:
                    np.add(regs[tb], 1, out=scratch)
                    scratch %= 3
                    if op == OP_BEQ:
                        np.equal(scratch, bt + 1, out=bool_scratch)
                    else:
                        np.not_equal(scratch, bt + 1, out=bool_scratch)
                    taken_mask = bool_scratch
                else:
                    last_trit = (regs[tb][lanes] + 1) % 3
                    if op == OP_BEQ:
                        taken_mask = last_trit == bt + 1
                    else:
                        taken_mask = last_trit != bt + 1
            elif op == OP_LI:
                if full:
                    row = regs[ta]
                    np.add(row, 121, out=scratch)
                    scratch %= 243
                    scratch -= 121
                    row -= scratch
                    row += imm
                else:
                    value = regs[ta][lanes]
                    regs[ta][lanes] = imm + value - ((value + 121) % 243 - 121)
            elif op == OP_MV:
                if full:
                    np.copyto(regs[ta], regs[tb])
                else:
                    regs[ta][lanes] = regs[tb][lanes]
            elif op == OP_SUB:
                if full:
                    row = regs[ta]
                    row -= regs[tb]
                    row += HALF
                    row %= MOD
                    row -= HALF
                else:
                    value = regs[ta][lanes] - regs[tb][lanes]
                    value += HALF
                    value %= MOD
                    value -= HALF
                    regs[ta][lanes] = value
            elif op == OP_JAL:
                if full:
                    regs[ta].fill(wrap(pc + 1))
                else:
                    regs[ta][lanes] = wrap(pc + 1)
            elif op == OP_JALR:
                jalr_targets = (regs[tb][sel] + imm) % MOD
                if full:
                    regs[ta].fill(wrap(pc + 1))
                else:
                    regs[ta][lanes] = wrap(pc + 1)
            elif op == OP_LUI:
                if full:
                    regs[ta].fill(wrap(imm * 243))
                else:
                    regs[ta][lanes] = wrap(imm * 243)
            elif op == OP_COMP:
                if full:
                    row = regs[ta]
                    row -= regs[tb]
                    np.sign(row, out=row)
                else:
                    regs[ta][lanes] = np.sign(regs[ta][lanes] - regs[tb][lanes])
            elif op == OP_SLI:
                if full:
                    row = regs[ta]
                    row *= _POW3[imm % 9]
                    row += HALF
                    row %= MOD
                    row -= HALF
                else:
                    value = regs[ta][lanes] * _POW3[imm % 9]
                    value += HALF
                    value %= MOD
                    value -= HALF
                    regs[ta][lanes] = value
            elif op == OP_SRI:
                power = _POW3[imm % 9]
                half = (power - 1) // 2
                if full:
                    row = regs[ta]
                    np.add(row, half, out=scratch)
                    scratch %= power
                    scratch -= half
                    row -= scratch
                    row //= power
                else:
                    value = regs[ta][lanes]
                    regs[ta][lanes] = (value - ((value + half) % power - half)) // power
            elif op == OP_SL:
                power = pow3_np[regs[tb][sel] % 9]
                value = regs[ta][sel] * power
                value += HALF
                value %= MOD
                value -= HALF
                regs[ta][sel] = value
            elif op == OP_SR:
                power = pow3_np[regs[tb][sel] % 9]
                half = (power - 1) // 2
                value = regs[ta][sel]
                regs[ta][sel] = (value - ((value + half) % power - half)) // power
            elif op == OP_AND or op == OP_OR or op == OP_XOR:
                trits_a = trits_np[regs[ta][sel] % MOD].astype(np.int64)
                trits_b = trits_np[regs[tb][sel] % MOD]
                if op == OP_AND:
                    planes = np.minimum(trits_a, trits_b)
                elif op == OP_OR:
                    planes = np.maximum(trits_a, trits_b)
                else:
                    planes = trits_a + trits_b
                    planes += 1
                    planes %= 3
                    planes -= 1
                regs[ta][sel] = planes @ pow3_np
            elif op == OP_PTI:
                if full:
                    np.mod(regs[tb], MOD, out=scratch)
                    np.take(pti_np, scratch, out=regs[ta])
                else:
                    regs[ta][lanes] = pti_np[regs[tb][lanes] % MOD]
            elif op == OP_NTI:
                if full:
                    np.mod(regs[tb], MOD, out=scratch)
                    np.take(nti_np, scratch, out=regs[ta])
                else:
                    regs[ta][lanes] = nti_np[regs[tb][lanes] % MOD]
            elif op == OP_STI:
                if full:
                    np.negative(regs[tb], out=regs[ta])
                else:
                    regs[ta][lanes] = -regs[tb][lanes]
            elif op == OP_ANDI:
                trits_a = trits_np[regs[ta][sel] % MOD].astype(np.int64)
                trits_b = trits_np[imm % MOD]
                regs[ta][sel] = np.minimum(trits_a, trits_b) @ pow3_np
            else:  # OP_HALT
                halt_now = True

            counts_row = counts[pc]
            if full:
                counts_row += 1
            else:
                counts_row[lanes] += 1
            group.max_exec += 1

            if halt_now:
                halted[lanes] = True
                final_pc[lanes] = pc + 1
                groups.remove(group)
                continue

            if taken_mask is not None:
                n_taken = int(taken_mask.sum())
                if n_taken == 0:
                    if timing:
                        not_taken_arr[sel] += 1
                        post_update(group, op, ta, False, imm)
                    group.pc = pc + 1
                elif n_taken == lanes.shape[0]:
                    if timing:
                        taken_arr[sel] += 1
                        post_update(group, op, ta, True, imm)
                    group.pc = pc + imm
                else:
                    taken_lanes = lanes[taken_mask]
                    fall_lanes = lanes[~taken_mask]
                    twin = group.split(taken_lanes)
                    group.lanes = fall_lanes
                    if timing:
                        taken_arr[taken_lanes] += 1
                        not_taken_arr[fall_lanes] += 1
                        post_update(group, op, ta, False, imm)
                        post_update(twin, op, ta, True, imm)
                    group.pc = pc + 1
                    twin.pc = pc + imm
                    groups.append(twin)
                    n_splits += 1
                    if len(groups) > max_groups:
                        max_groups = len(groups)
            elif jalr_targets is not None:
                if timing:
                    jumps_arr[sel] += 1
                    # The window update is target-independent, so apply it
                    # before splitting and let every twin inherit it.
                    post_update(group, op, ta, False, imm)
                targets = np.unique(jalr_targets)
                if targets.shape[0] == 1:
                    group.pc = int(targets[0])
                else:
                    for index, target in enumerate(targets.tolist()):
                        subset = lanes[jalr_targets == target]
                        if index == 0:
                            group.lanes = subset
                            group.pc = target
                        else:
                            twin = group.split(subset)
                            twin.pc = target
                            groups.append(twin)
                            n_splits += 1
                    if len(groups) > max_groups:
                        max_groups = len(groups)
            else:
                if timing:
                    if op == OP_JAL:
                        jumps_arr[sel] += 1
                    post_update(group, op, ta, False, imm)
                group.pc = pc + imm if op == OP_JAL else pc + 1

            # Reconverge: groups whose PC and timing window coincide are
            # architecturally indistinguishable and fold back into one.
            if len(groups) > 1:
                merged: Dict[tuple, _Group] = {}
                for grp in groups:
                    key = ((grp.pc,) + grp.window_key()) if timing else grp.pc
                    kept = merged.get(key)
                    if kept is None:
                        merged[key] = grp
                    else:
                        kept.lanes = np.sort(
                            np.concatenate((kept.lanes, grp.lanes)))
                        kept.max_exec = max(kept.max_exec, grp.max_exec)
                if len(merged) != len(groups):
                    n_merges += len(groups) - len(merged)
                    groups = list(merged.values())

        # Per-lane executed counts are the column sums of the mix matrix
        # (fault-aborted accesses were never counted, matching the scalar
        # engines' decrement-on-fault behaviour).
        np.sum(counts, axis=0, out=self._executed)

        metrics.counter("batch.group_splits").inc(n_splits)
        metrics.counter("batch.group_merges").inc(n_merges)
        metrics.counter("batch.full_group_steps").inc(n_full)
        metrics.gauge("batch.concurrent_groups_max").set_max(max_groups)

    # -- result assembly ----------------------------------------------------

    def _outcomes(self, stats_limit: Optional[int],
                  include_results: bool = True) -> List[LaneOutcome]:
        counts = self._counts
        fill = self.machine.fill_cycles
        # Aggregate the (L, B) mix matrix to per-mnemonic lane vectors once,
        # so per-lane mix assembly touches <= 25 entries instead of scanning
        # an L-row column for every lane.
        mnemonic_rows: Dict[str, List[int]] = {}
        for index, record in enumerate(self._records):
            mnemonic_rows.setdefault(_MNEMONIC_OF[record[0]], []).append(index)
        mnemonic_counts = [
            (mnemonic, counts[row_indices].sum(axis=0).tolist())
            for mnemonic, row_indices in mnemonic_rows.items()
        ]
        executed = self._executed.tolist()
        halted_list = self._halted.tolist()
        final_pcs = self._final_pc.tolist()
        if stats_limit is not None:
            stalls = self._t_stalls.tolist()
            flushes = self._t_flushes.tolist()
            taken = self._t_taken.tolist()
            not_taken = self._t_not_taken.tolist()
            jumps = self._t_jumps.tolist()
            exf = self._t_exf.tolist()
            memf = self._t_memf.tolist()
            idf = self._t_idf.tolist()
        outcomes: List[LaneOutcome] = []
        for lane in range(self._batch):
            if self._errors[lane] is not None:
                outcomes.append(LaneOutcome(
                    lane=lane,
                    error=self._errors[lane],
                    error_kind=self._error_kinds[lane],
                ))
                continue
            mix = {mnemonic: lane_counts[lane]
                   for mnemonic, lane_counts in mnemonic_counts
                   if lane_counts[lane]}
            committed = executed[lane]
            stats = None
            if stats_limit is not None:
                cycles = committed + fill + stalls[lane] + flushes[lane]
                if cycles > stats_limit:
                    outcomes.append(LaneOutcome(
                        lane=lane,
                        error=f"program did not halt within {stats_limit} cycles",
                        error_kind="SimulationError",
                    ))
                    continue
                stats = PipelineStats(
                    cycles=cycles,
                    instructions_committed=committed,
                    load_use_stalls=stalls[lane],
                    control_flush_bubbles=flushes[lane],
                    taken_branches=taken[lane],
                    not_taken_branches=not_taken[lane],
                    jumps=jumps[lane],
                    ex_forwards=exf[lane],
                    mem_forwards=memf[lane],
                    id_forwards=idf[lane],
                    instruction_mix=dict(mix),
                )
            result = None
            if include_results:
                addresses = np.nonzero(self._touched[lane])[0]
                memory = {int(address): int(self._mem[lane, address])
                          for address in addresses.tolist()}
                registers = {register_name(index): int(self._regs[index, lane])
                             for index in range(NUM_REGISTERS)}
                result = ExecutionResult(
                    instructions_executed=committed,
                    halted=halted_list[lane],
                    registers=registers,
                    pc=final_pcs[lane],
                    instruction_mix=mix,
                    memory=memory,
                )
            outcomes.append(LaneOutcome(lane=lane, result=result, stats=stats))
        return outcomes
