"""Ternary instruction/data memories (TIM and TDM).

Both memories are word addressed: each address holds one 9-trit word.  The
ART-9 core uses synchronous single-port memories (Sec. IV-B); the timing
consequences (one access per cycle, load results available at the end of
MEM) are modelled by the pipeline simulator, while this class provides the
storage semantics shared by both simulators.

Addresses are non-negative word indices.  Registers hold balanced values, so
address computation wraps the balanced value into the unsigned window
(``value mod 3**9``), the ternary analogue of interpreting a two's-complement
word as an unsigned address.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.ternary.word import WORD_TRITS, TernaryWord


class MemoryError_(RuntimeError):
    """Raised on out-of-range accesses (named with a trailing underscore to
    avoid shadowing the built-in ``MemoryError``)."""


class TernaryMemory:
    """A word-addressed ternary memory with sparse backing storage.

    Parameters
    ----------
    depth:
        Number of addressable words.  The default (3**9 = 19 683) is the
        full address space reachable from a 9-trit register.
    name:
        Used in error messages and statistics ("TIM", "TDM").
    width:
        Word width in trits (9 for ART-9).
    """

    def __init__(self, depth: int = 3 ** WORD_TRITS, name: str = "memory", width: int = WORD_TRITS):
        if depth <= 0:
            raise ValueError(f"memory depth must be positive, got {depth}")
        self.depth = depth
        self.name = name
        self.width = width
        self._cells: Dict[int, TernaryWord] = {}
        self.reads = 0
        self.writes = 0

    # -- address handling ---------------------------------------------------

    def _check(self, address: int) -> int:
        if not isinstance(address, int):
            raise TypeError(f"{self.name}: address must be an int, got {type(address)!r}")
        if not 0 <= address < self.depth:
            raise MemoryError_(
                f"{self.name}: address {address} out of range 0..{self.depth - 1}"
            )
        return address

    @staticmethod
    def effective_address(base: TernaryWord, offset: int) -> int:
        """Compute the unsigned effective address ``base + offset``.

        Used by the LOAD/STORE datapath: the balanced sum wraps into the
        non-negative address window.
        """
        return (base.value + offset) % (3 ** base.width)

    # -- access ---------------------------------------------------------------

    def read(self, address: int) -> TernaryWord:
        """Read the word at ``address`` (uninitialised cells read as zero)."""
        address = self._check(address)
        self.reads += 1
        return self._cells.get(address, TernaryWord.zero(self.width))

    def write(self, address: int, value: TernaryWord) -> None:
        """Write ``value`` at ``address``."""
        address = self._check(address)
        if value.width != self.width:
            raise ValueError(
                f"{self.name}: word width {value.width} does not match memory width {self.width}"
            )
        self.writes += 1
        self._cells[address] = value

    def read_int(self, address: int) -> int:
        """Read the signed integer value stored at ``address``."""
        return self.read(address).value

    def write_int(self, address: int, value: int) -> None:
        """Write a Python integer (wrapped into the word range)."""
        self.write(address, TernaryWord(value, self.width))

    # -- bulk helpers -----------------------------------------------------------

    def load_words(self, values: Iterable[int], base: int = 0) -> None:
        """Initialise consecutive addresses starting at ``base``."""
        for offset, value in enumerate(values):
            self.write_int(base + offset, value)

    def dump(self, base: int, count: int) -> List[int]:
        """Return ``count`` integer values starting at ``base``."""
        return [self.read_int(base + offset) for offset in range(count)]

    def contents(self) -> Dict[int, int]:
        """Touched cells as an address → balanced-integer-value mapping."""
        return {address: word.value for address, word in self._cells.items()}

    def occupied_words(self) -> int:
        """Number of addresses that have been written at least once."""
        return len(self._cells)

    def highest_written(self) -> Optional[int]:
        """Highest written address, or None if the memory is untouched."""
        return max(self._cells) if self._cells else None

    def reset_statistics(self) -> None:
        """Zero the read/write counters (storage contents are kept)."""
        self.reads = 0
        self.writes = 0

    def clear(self) -> None:
        """Erase all contents and statistics."""
        self._cells.clear()
        self.reset_statistics()
