"""The ternary register file (TRF).

Nine general-purposed 9-trit registers, two asynchronous read ports and one
synchronous write port (Sec. IV-B).  The port structure matters for the
pipeline model: a write in WB and reads in ID of the same register within
one cycle see the *old* value unless the forwarding network intervenes; the
pipeline simulator models that explicitly by performing WB before ID within
a cycle (internal write-through), matching the usual register-file bypass of
five-stage RISC designs.
"""

from __future__ import annotations

from typing import List

from repro.isa.registers import NUM_REGISTERS, register_name
from repro.ternary.word import WORD_TRITS, TernaryWord


class TernaryRegisterFile:
    """Storage and access statistics for the nine ART-9 registers."""

    def __init__(self):
        self._registers: List[TernaryWord] = [TernaryWord.zero(WORD_TRITS) for _ in range(NUM_REGISTERS)]
        self.reads = 0
        self.writes = 0

    def _check(self, index: int) -> int:
        if not 0 <= index < NUM_REGISTERS:
            raise ValueError(f"register index out of range 0..8: {index}")
        return index

    def read(self, index: int) -> TernaryWord:
        """Read register ``index`` (asynchronous read port)."""
        self.reads += 1
        return self._registers[self._check(index)]

    def write(self, index: int, value: TernaryWord) -> None:
        """Write register ``index`` (synchronous write port)."""
        if value.width != WORD_TRITS:
            raise ValueError(f"register words are {WORD_TRITS} trits, got {value.width}")
        self.writes += 1
        self._registers[self._check(index)] = value

    def read_int(self, index: int) -> int:
        """Read the signed integer value of register ``index``."""
        return self.read(index).value

    def write_int(self, index: int, value: int) -> None:
        """Write a Python integer (wrapped into the 9-trit range)."""
        self.write(index, TernaryWord(value, WORD_TRITS))

    def snapshot(self) -> dict:
        """Return a name → integer-value mapping of all registers."""
        return {register_name(i): reg.value for i, reg in enumerate(self._registers)}

    def reset(self) -> None:
        """Zero every register and the access counters."""
        self._registers = [TernaryWord.zero(WORD_TRITS) for _ in range(NUM_REGISTERS)]
        self.reads = 0
        self.writes = 0

    def __repr__(self) -> str:
        values = ", ".join(f"T{i}={reg.value}" for i, reg in enumerate(self._registers))
        return f"TernaryRegisterFile({values})"
