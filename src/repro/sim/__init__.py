"""ART-9 simulators and datapath component models.

Two simulators are provided:

``FunctionalSimulator``
    Executes one instruction per step with architectural (ISA-level)
    semantics.  It is the golden reference model used to validate the
    pipeline and the translation framework.
``PipelineSimulator`` (in :mod:`repro.sim.pipeline`)
    The cycle-accurate model of the 5-stage ART-9 core of Fig. 4, including
    the hazard detection unit, forwarding multiplexers and the early branch
    resolution in ID.  This is the "cycle-accurate simulator" component of
    the paper's hardware-level evaluation framework.

Two further executors trade the object-model fidelity of the reference
simulators for speed while reproducing both the functional simulator's
``ExecutionResult`` and the pipeline simulator's ``PipelineStats``
bit-identically (asserted continuously by the 4-way differential suite):

``FastEngine`` (in :mod:`repro.sim.engine`)
    Pre-decodes the program into flat integer dispatch records and
    interprets them on plain Python ints.
``CompiledEngine`` (in :mod:`repro.sim.compiled`)
    Goes one step further: partitions the program into superblocks and
    ``compile()``s one specialized Python function per block (registers in
    locals, immediates and the analytic timing model folded to constants),
    dispatching block-to-block through a PC → function table.  Several
    times faster again than ``FastEngine`` on loop-heavy workloads, and
    its generated code is shareable across worker processes through the
    artifact cache (:mod:`repro.cache`).

Use them (directly, through :func:`execute_program` /
:func:`compile_and_run`, or via ``HardwareFramework.simulate(engine="fast")``
/ ``engine="compiled"``) whenever throughput matters more than per-trit
observability.

``BatchEngine`` (in :mod:`repro.sim.batch`)
    The throughput tier: executes *many* lanes of one shared instruction
    stream concurrently, with registers and data memory as numpy arrays
    over a batch dimension.  Lanes that diverge (data-dependent branches,
    indirect jumps, halts, faults) are tracked as path groups and
    reconverge automatically; per-lane ``PipelineStats`` stay bit-identical
    to ``FastEngine`` because the timing model depends only on the
    committed instruction stream.  Used by batched fuzzing, same-grid-point
    sweep batching and the ``jobs_per_second`` benchmark.

Shared component models (ternary register file, TIM/TDM memories, the TALU)
live in their own modules so that both simulators — and the gate-level
analyzer, which counts their hardware resources — agree on the semantics.
"""

from repro.sim.machine import (
    BRANCH_POLICIES,
    DEFAULT_MACHINE_NAME,
    MACHINES,
    MachineConfig,
    MachineError,
    get_machine,
    machine_names,
    resolve_machine,
)
from repro.sim.memory import MemoryError_, TernaryMemory
from repro.sim.regfile import TernaryRegisterFile
from repro.sim.alu import ALUResult, TernaryALU
from repro.sim.functional import ExecutionResult, FunctionalSimulator, SimulationError
from repro.sim.pipeline import PipelineSimulator, PipelineStats
from repro.sim.engine import FastEngine, execute_program
from repro.sim.compiled import CompiledEngine, compile_and_run
from repro.sim.batch import BatchEngine, BatchError, LaneOutcome, batchable_programs
from repro.sim.trace import capture_golden_trace, memory_digest, state_digest, trace_mismatches

__all__ = [
    "MachineConfig",
    "MachineError",
    "BRANCH_POLICIES",
    "DEFAULT_MACHINE_NAME",
    "MACHINES",
    "get_machine",
    "machine_names",
    "resolve_machine",
    "TernaryMemory",
    "MemoryError_",
    "TernaryRegisterFile",
    "TernaryALU",
    "ALUResult",
    "FunctionalSimulator",
    "ExecutionResult",
    "SimulationError",
    "PipelineSimulator",
    "PipelineStats",
    "FastEngine",
    "execute_program",
    "CompiledEngine",
    "compile_and_run",
    "BatchEngine",
    "BatchError",
    "LaneOutcome",
    "batchable_programs",
    "capture_golden_trace",
    "memory_digest",
    "state_digest",
    "trace_mismatches",
]
