"""Performance estimator: cycles + gate-level analysis → system metrics.

The estimator is the last box of the hardware-level framework (Fig. 3): it
"gathers all the outputs from prior steps, and finally generates the overall
evaluation information of the ternary processor implemented in certain
design technology".  Concretely it combines

* the cycle counts of the cycle-accurate pipeline simulator,
* the Dhrystone convention (1 DMIPS = 1757 Dhrystone iterations/second,
  the VAX 11/780 reference), and
* either a gate-level report (ASIC-style technologies such as the CNTFET
  library) or an FPGA resource report

into DMIPS, DMIPS/MHz and DMIPS/W — the numbers of Tables II, IV and V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hweval.analyzer import GateLevelReport
from repro.hweval.fpga import FPGAResourceReport

#: Dhrystones per second of the VAX 11/780 reference machine (1 DMIPS).
DHRYSTONES_PER_SECOND_PER_DMIPS = 1757.0


@dataclass
class DhrystoneMetrics:
    """Cycle-level Dhrystone results, independent of the implementation."""

    cycles: int
    iterations: int
    instructions: int = 0

    @property
    def cycles_per_iteration(self) -> float:
        """Average processor cycles per Dhrystone iteration."""
        if self.iterations == 0:
            return float("nan")
        return self.cycles / self.iterations

    @property
    def dmips_per_mhz(self) -> float:
        """DMIPS/MHz: iterations per 10^6 cycles divided by 1757."""
        return 1e6 / (self.cycles_per_iteration * DHRYSTONES_PER_SECOND_PER_DMIPS)

    def dmips_at(self, frequency_mhz: float) -> float:
        """Absolute DMIPS at a given clock frequency."""
        return self.dmips_per_mhz * frequency_mhz


@dataclass
class PerformanceReport:
    """Implementation-aware metrics for one technology target."""

    target: str
    frequency_mhz: float
    power_w: float
    dmips_per_mhz: float
    dmips: float
    dmips_per_watt: float
    total_gates: Optional[int] = None
    memory_cells: Optional[int] = None

    def summary(self) -> str:
        """Human-readable summary combining Tables II/IV/V style rows."""
        lines = [
            f"target        : {self.target}",
            f"frequency     : {self.frequency_mhz:.1f} MHz",
            f"power         : {self.power_w * 1e6:.1f} uW" if self.power_w < 0.01
            else f"power         : {self.power_w:.2f} W",
            f"DMIPS/MHz     : {self.dmips_per_mhz:.3f}",
            f"DMIPS         : {self.dmips:.2f}",
            f"DMIPS/W       : {self.dmips_per_watt:.3e}",
        ]
        if self.total_gates is not None:
            lines.append(f"ternary gates : {self.total_gates}")
        if self.memory_cells is not None:
            lines.append(f"memory cells  : {self.memory_cells}")
        return "\n".join(lines)


class PerformanceEstimator:
    """Combines cycle counts with implementation reports."""

    def __init__(self, dhrystone: DhrystoneMetrics):
        self.dhrystone = dhrystone

    @property
    def dmips_per_mhz(self) -> float:
        """Workload performance density (implementation independent)."""
        return self.dhrystone.dmips_per_mhz

    def for_gate_level(self, report: GateLevelReport,
                       frequency_mhz: Optional[float] = None,
                       memory_cells: Optional[int] = None) -> PerformanceReport:
        """Metrics for an ASIC-style implementation (e.g. CNTFET, Table IV)."""
        frequency = frequency_mhz or report.max_frequency_mhz
        power_uw = report.power_at(frequency)
        power_w = power_uw * 1e-6
        dmips = self.dhrystone.dmips_at(frequency)
        return PerformanceReport(
            target=report.technology,
            frequency_mhz=frequency,
            power_w=power_w,
            dmips_per_mhz=self.dmips_per_mhz,
            dmips=dmips,
            dmips_per_watt=dmips / power_w,
            total_gates=report.total_gates,
            memory_cells=memory_cells,
        )

    def for_fpga(self, report: FPGAResourceReport,
                 memory_cells: Optional[int] = None) -> PerformanceReport:
        """Metrics for the binary-encoded FPGA emulation (Table V)."""
        dmips = self.dhrystone.dmips_at(report.frequency_mhz)
        return PerformanceReport(
            target=report.device,
            frequency_mhz=report.frequency_mhz,
            power_w=report.total_power_w,
            dmips_per_mhz=self.dmips_per_mhz,
            dmips=dmips,
            dmips_per_watt=dmips / report.total_power_w,
            memory_cells=memory_cells,
        )
