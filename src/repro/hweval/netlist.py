"""Structural gate-level inventory of the pipelined ART-9 datapath.

The gate-level analyzer does not need a full RTL netlist: following the
paper, it consumes a block-structured description of the architecture
(Fig. 4) where each block lists how many primitive ternary gates it uses and
which gate chain forms its longest path.  The inventory below is derived
from the architecture of Sec. IV-B:

* a 9-trit TALU (ripple-carry adder/subtractor, trit-wise logic unit,
  two-stage shifter, comparator, result selection);
* the ternary register file (nine 9-trit registers with two read ports);
* the program counter, its increment adder and the ID-stage branch-target
  adder plus condition checker;
* the pipeline latches of the four stage boundaries;
* the forwarding multiplexers, the hazard detection unit and the main
  decoder.

The TIM and TDM memories are *not* part of the gate inventory (the paper
reports them separately as memory cells), but their sizes are carried along
for the FPGA resource model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hweval.technology import GateKind
from repro.ternary.word import WORD_TRITS

#: Word width used to size every block (9 trits).
W = WORD_TRITS


@dataclass
class DatapathBlock:
    """One architectural block: its gate counts and its longest gate chain."""

    name: str
    stage: str
    gates: Dict[str, int] = field(default_factory=dict)
    #: The longest combinational path through the block, as a sequence of
    #: gate kinds (used for the critical-delay estimate).
    critical_chain: Tuple[str, ...] = ()
    #: Position of the block on its stage's serial datapath.  Blocks with a
    #: position are chained (their delays add up); blocks without one sit on
    #: parallel side paths and only contribute if they are slower than the
    #: whole serial path.
    path_order: Optional[int] = None

    def gate_count(self) -> int:
        """Total number of primitive gates in the block."""
        return sum(self.gates.values())


def _block(name, stage, gates, chain=(), order=None):
    return DatapathBlock(name=name, stage=stage, gates=dict(gates),
                         critical_chain=tuple(chain), path_order=order)


def art9_datapath_netlist() -> List[DatapathBlock]:
    """Return the block inventory of the 5-stage pipelined ART-9 core."""
    blocks = [
        # ------------------------------------------------------------ IF stage
        _block(
            "program_counter", "IF",
            # PC register plus the stall/redirect selection network.
            {GateKind.FLIPFLOP: W, GateKind.MUX: 2 * W},
            chain=(GateKind.MUX,),
        ),
        _block(
            "pc_increment_adder", "IF",
            {GateKind.HALF_ADDER: W},
            chain=(GateKind.HALF_ADDER,) * 3,  # carry chain is short for +1
        ),
        _block(
            "if_id_latch", "IF",
            {GateKind.FLIPFLOP: 2 * W},  # fetched instruction + its PC
        ),
        # ------------------------------------------------------------ ID stage
        _block(
            "main_decoder", "ID",
            {GateKind.DECODER: 40, GateKind.NTI: 8, GateKind.PTI: 8},
            chain=(GateKind.DECODER, GateKind.DECODER),
        ),
        _block(
            "register_file", "ID",
            # 9 registers x 9 trits of storage plus two read ports built from
            # two cascaded levels of 3:1 selection per trit and port.
            {GateKind.FLIPFLOP: 9 * W, GateKind.MUX: 2 * 4 * W, GateKind.DECODER: 9},
            chain=(GateKind.MUX, GateKind.MUX),
            order=0,
        ),
        _block(
            "immediate_extender", "ID",
            # Sign-extension / field-selection of the 2/3/4/5-trit immediates.
            {GateKind.MUX: W, GateKind.DECODER: 3},
            chain=(GateKind.MUX,),
        ),
        _block(
            "branch_target_adder", "ID",
            {GateKind.FULL_ADDER: W, GateKind.MUX: W},
            chain=(GateKind.FULL_ADDER,) * 4 + (GateKind.MUX,),
            order=1,
        ),
        _block(
            "branch_condition_checker", "ID",
            {GateKind.COMPARATOR: 2, GateKind.XOR: 2, GateKind.MUX: 4},
            chain=(GateKind.MUX, GateKind.COMPARATOR, GateKind.XOR),
            order=2,
        ),
        _block(
            "hazard_detection_unit", "ID",
            {GateKind.COMPARATOR: 6, GateKind.AND: 8, GateKind.OR: 6},
            chain=(GateKind.COMPARATOR, GateKind.AND, GateKind.OR),
        ),
        _block(
            "stall_control", "ID",
            # NOP insertion multiplexers driven by the stall control signal.
            {GateKind.MUX: 2 * W, GateKind.AND: 4},
            chain=(GateKind.AND, GateKind.MUX),
        ),
        _block(
            "id_ex_latch", "ID",
            {GateKind.FLIPFLOP: 3 * W + 8},  # two operands + immediate + control
        ),
        # ------------------------------------------------------------ EX stage
        _block(
            "forwarding_muxes", "EX",
            {GateKind.MUX: 2 * 2 * W, GateKind.COMPARATOR: 6},
            chain=(GateKind.COMPARATOR, GateKind.MUX, GateKind.MUX),
            order=0,
        ),
        _block(
            "talu_adder", "EX",
            # Ripple adder with an STI row on the second operand for SUB.
            {GateKind.FULL_ADDER: W, GateKind.STI: W, GateKind.MUX: W},
            chain=(GateKind.MUX, GateKind.STI) + (GateKind.FULL_ADDER,) * W,
            order=1,
        ),
        _block(
            "talu_logic_unit", "EX",
            {GateKind.AND: W, GateKind.OR: W, GateKind.XOR: W,
             GateKind.STI: W, GateKind.NTI: W, GateKind.PTI: W},
            chain=(GateKind.XOR,),
        ),
        _block(
            "talu_shifter", "EX",
            # Two mux stages shift by 1 or 3 trit positions (amounts 0..4
            # per instruction; larger shifts issue as multiple instructions).
            {GateKind.MUX: 2 * W},
            chain=(GateKind.MUX, GateKind.MUX),
        ),
        _block(
            "talu_comparator", "EX",
            {GateKind.COMPARATOR: W, GateKind.MUX: W - 1},
            chain=(GateKind.COMPARATOR,) + (GateKind.MUX,) * 3,
        ),
        _block(
            "talu_result_mux", "EX",
            {GateKind.MUX: 3 * W},
            chain=(GateKind.MUX, GateKind.MUX),
            order=2,
        ),
        _block(
            "ex_mem_latch", "EX",
            {GateKind.FLIPFLOP: 2 * W + 6},  # result/address + store data + control
        ),
        # ------------------------------------------------------------ MEM stage
        _block(
            "memory_interface", "MEM",
            {GateKind.MUX: W, GateKind.DECODER: 4},
            chain=(GateKind.MUX,),
        ),
        _block(
            "mem_wb_latch", "MEM",
            {GateKind.FLIPFLOP: W + 4},
        ),
        # ------------------------------------------------------------ WB stage
        _block(
            "writeback_mux", "WB",
            {GateKind.MUX: W},
            chain=(GateKind.MUX,),
        ),
    ]
    return blocks


#: Module-level inventory (convenient constant for reports and tests).
ART9_BLOCKS: List[DatapathBlock] = art9_datapath_netlist()


@dataclass
class MemorySizing:
    """Capacity of the ternary instruction/data memories for a deployment."""

    tim_words: int = 256
    tdm_words: int = 256
    word_trits: int = W

    @property
    def total_trits(self) -> int:
        """Total memory cells (trits) across TIM and TDM."""
        return (self.tim_words + self.tdm_words) * self.word_trits

    def binary_encoded_bits(self) -> int:
        """Bits needed when each trit is emulated with two bits (FPGA)."""
        return 2 * self.total_trits
